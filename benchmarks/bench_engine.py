"""Experiment E10 support — multiset-engine throughput.

Not a paper claim, but the substrate every equivalence check rests on:
join + grouping throughput of the evaluator, and materialization cost of
a realistic summary view. Keeping these visible guards against substrate
regressions silently inflating the E1 speedups.
"""

import pytest

from repro.bench import ResultTable, time_best
from repro.workloads import star, telephony


@pytest.fixture(scope="module")
def warehouse():
    wl = telephony.generate(n_calls=5_000, seed=4)
    return wl, wl.database()


def test_scan_filter_group(warehouse, benchmark):
    wl, db = warehouse
    sql = (
        "SELECT Plan_Id, SUM(Charge) FROM Calls "
        "WHERE Year = 1995 GROUP BY Plan_Id"
    )
    benchmark(lambda: db.execute(sql))


def test_join_group(warehouse, benchmark):
    wl, db = warehouse
    benchmark(lambda: db.execute(wl.query))


def test_view_materialization(warehouse, benchmark):
    wl, db = warehouse

    def materialize_fresh():
        db.load("Calls", wl.tables["Calls"])  # invalidates the cache
        return db.materialize("V1")

    benchmark(materialize_fresh)


def test_throughput_series(benchmark):
    table_out = ResultTable(
        "engine throughput (join + group over Calls x Plans)",
        ["calls", "seconds", "rows_per_sec"],
    )
    for n_calls in (1_000, 4_000, 16_000):
        wl = telephony.generate(n_calls=n_calls, seed=4)
        db = wl.database()
        seconds = time_best(lambda: db.execute(wl.query), repeats=2)
        table_out.add(n_calls, seconds, int(n_calls / seconds))
    table_out.show()

    wl = telephony.generate(n_calls=2_000, seed=4)
    db = wl.database()
    benchmark(lambda: db.execute(wl.query))


def test_multiset_equal_large(benchmark):
    # Micro-benchmark for the single-pass Counter compare referenced by
    # Table.multiset_equal's docstring: the old implementation built two
    # Counters (materializing both row lists twice); the drain loop
    # builds one and short-circuits on the first missing row.
    from repro.engine.table import Table

    rows = [(i % 1_000, i % 37, f"v{i % 11}") for i in range(50_000)]
    left = Table(("A", "B", "C"), rows)
    right = Table(("A", "B", "C"), list(reversed(rows)))
    assert left.multiset_equal(right)
    benchmark(lambda: left.multiset_equal(right))


def test_star_materialization(benchmark):
    wl = star.generate(n_sales=3_000)
    db = wl.database()

    def materialize_all():
        db.load("Sales", wl.tables["Sales"])
        for name in wl.views:
            db.materialize(name)

    benchmark(materialize_all)

"""Experiment E13 (extension) — view-selection advisor (Section 7).

Measures candidate generation and greedy selection over a growing
workload, and reports the estimated workload improvement the chosen
summary views buy under a storage budget.
"""

import pytest

from repro.advisor import generate_candidates, recommend_views
from repro.bench import ResultTable, time_best
from repro.blocks.normalize import parse_query
from repro.workloads.telephony import telephony_catalog

WORKLOAD = [
    "SELECT Calls.Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Calls.Plan_Id",
    "SELECT Calls.Plan_Id, Month, COUNT(Charge) FROM Calls GROUP BY Calls.Plan_Id, Month",
    "SELECT Year, AVG(Charge) FROM Calls GROUP BY Year",
    "SELECT Cust_Id, SUM(Charge) FROM Calls GROUP BY Cust_Id",
    "SELECT Month, MIN(Charge), MAX(Charge) FROM Calls GROUP BY Month",
    "SELECT Day, Month, SUM(Charge) FROM Calls WHERE Year = 1994 GROUP BY Day, Month",
]


@pytest.fixture(scope="module")
def catalog():
    return telephony_catalog(n_calls=1_000_000)


def test_candidate_generation(catalog, benchmark):
    queries = [parse_query(q, catalog) for q in WORKLOAD]
    candidates = generate_candidates(queries)
    assert len(candidates) >= len(WORKLOAD) - 1
    benchmark(lambda: generate_candidates(queries))


def test_selection_scaling(catalog, benchmark):
    table_out = ResultTable(
        "E13: advisor scaling with workload size",
        ["queries", "candidates", "chosen", "est_speedup", "seconds"],
    )
    for size in (2, 4, 6):
        workload = WORKLOAD[:size]
        queries = [parse_query(q, catalog) for q in workload]
        n_candidates = len(generate_candidates(queries))
        rec = recommend_views(catalog, workload, space_budget_rows=20_000)
        seconds = time_best(
            lambda: recommend_views(
                catalog, workload, space_budget_rows=20_000
            ),
            repeats=2,
        )
        table_out.add(
            size,
            n_candidates,
            len(rec.views),
            round(rec.workload_speedup, 1),
            seconds,
        )
    table_out.show()

    benchmark(
        lambda: recommend_views(
            catalog, WORKLOAD[:4], space_budget_rows=20_000
        )
    )


def test_budget_sweep(catalog, benchmark):
    table_out = ResultTable(
        "E13: estimated workload speedup vs storage budget",
        ["budget_rows", "views", "est_speedup"],
    )
    for budget in (100, 1_000, 10_000, 100_000):
        rec = recommend_views(catalog, WORKLOAD, space_budget_rows=budget)
        table_out.add(budget, len(rec.views), round(rec.workload_speedup, 1))
    table_out.show()

    benchmark(
        lambda: recommend_views(catalog, WORKLOAD, space_budget_rows=10_000)
    )

"""Experiment E14 (extension) — the semantic query-result cache.

The mobile-computing motivation (Section 1) quantified: hit rates and
latencies of a QueryCache fed a workload of rollup queries over a single
cached summary, versus re-asking the (simulated slow) server. Semantic
matching is the point: none of the workload queries textually equals the
cached one.
"""

import random

import pytest

from repro.bench import ResultTable, time_best
from repro.cache import QueryCache
from repro.engine.database import Database
from repro.workloads.telephony import telephony_catalog

SUMMARY = (
    "SELECT Calls.Plan_Id, Month, Year, SUM(Charge), COUNT(Charge) "
    "FROM Calls GROUP BY Calls.Plan_Id, Month, Year"
)

ROLLUPS = [
    "SELECT Calls.Plan_Id, SUM(Charge) FROM Calls GROUP BY Calls.Plan_Id",
    "SELECT Year, SUM(Charge) FROM Calls GROUP BY Year",
    "SELECT Month, COUNT(Charge) FROM Calls GROUP BY Month",
    "SELECT Calls.Plan_Id, AVG(Charge) FROM Calls GROUP BY Calls.Plan_Id",
    "SELECT Calls.Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 "
    "GROUP BY Calls.Plan_Id",
    "SELECT Cust_Id, SUM(Charge) FROM Calls GROUP BY Cust_Id",  # miss
]


@pytest.fixture(scope="module")
def server():
    catalog = telephony_catalog(n_calls=5_000)
    rng = random.Random(17)
    calls = [
        (
            i,
            rng.randrange(100),
            rng.randrange(8),
            rng.randint(1, 28),
            rng.randint(1, 12),
            rng.choice([1994, 1995]),
            rng.randint(1, 500),
        )
        for i in range(5_000)
    ]
    return catalog, Database(catalog, {"Calls": calls})


def test_hit_rate_and_latency(server, benchmark):
    catalog, db = server
    cache = QueryCache(catalog)
    cache.remember(SUMMARY, db.execute(SUMMARY))

    table_out = ResultTable(
        "E14: semantic cache vs server round trip (ms)",
        ["query", "hit", "t_cache", "t_server"],
    )
    for sql in ROLLUPS:
        t_server = time_best(lambda: db.execute(sql), repeats=2) * 1000
        answer = cache.try_answer(sql)
        if answer is None:
            table_out.add(sql[:48], "miss", "-", round(t_server, 2))
            continue
        t_cache = time_best(lambda: cache.try_answer(sql), repeats=2) * 1000
        assert answer.multiset_equal(db.execute(sql))
        table_out.add(sql[:48], "HIT", round(t_cache, 2), round(t_server, 2))
    table_out.show()

    hits = sum(1 for sql in ROLLUPS if cache.find_rewriting(sql))
    assert hits == len(ROLLUPS) - 1  # only the per-customer query misses

    benchmark(lambda: cache.try_answer(ROLLUPS[0]))


def test_rewriting_search_latency(server, benchmark):
    """Cost of the semantic-match decision itself (per lookup)."""
    catalog, db = server
    cache = QueryCache(catalog)
    cache.remember(SUMMARY, db.execute(SUMMARY))
    benchmark(lambda: cache.find_rewriting(ROLLUPS[1]))


def test_miss_detection_latency(server, benchmark):
    catalog, db = server
    cache = QueryCache(catalog)
    cache.remember(SUMMARY, db.execute(SUMMARY))
    benchmark(lambda: cache.find_rewriting(ROLLUPS[-1]))


# ----------------------------------------------------------------------
# Machine-readable metrics (BENCH_rewriting.json)
# ----------------------------------------------------------------------


def _make_server(n_calls: int = 5_000):
    catalog = telephony_catalog(n_calls=n_calls)
    rng = random.Random(17)
    calls = [
        (
            i,
            rng.randrange(100),
            rng.randrange(8),
            rng.randint(1, 28),
            rng.randint(1, 12),
            rng.choice([1994, 1995]),
            rng.randint(1, 500),
        )
        for i in range(n_calls)
    ]
    return catalog, Database(catalog, {"Calls": calls})


def collect_cache_metrics(repeats: int = 5) -> dict:
    """Semantic-cache lookup latency, baseline vs planner-backed."""
    from repro.bench import time_best
    from repro.core.planner import baseline_mode

    catalog, db = _make_server()
    cache = QueryCache(catalog)
    cache.remember(SUMMARY, db.execute(SUMMARY))

    def sweep():
        return sum(
            1 for sql in ROLLUPS if cache.find_rewriting(sql) is not None
        )

    hits = sweep()
    assert hits == len(ROLLUPS) - 1, (
        f"telephony rollup hit count changed: {hits}/{len(ROLLUPS)}"
    )
    with baseline_mode():
        t_baseline = time_best(sweep, repeats=repeats)
    sweep()  # warm
    t_planner = time_best(sweep, repeats=repeats)
    return {
        "workload": "telephony-rollups",
        "lookups": len(ROLLUPS),
        "hits": hits,
        "baseline_seconds": t_baseline,
        "planner_seconds": t_planner,
        "speedup": t_baseline / t_planner if t_planner > 0 else None,
    }

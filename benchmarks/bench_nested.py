"""Experiment E16 (extension) — nested-query rewriting (Section 7).

A yearly rollup written as a subquery over a monthly aggregate: the
inner block is answered from the materialized monthly summary. Measures
(a) the rewrite_nested decision latency and (b) evaluation through the
rewritten plan vs the raw nested query.
"""

import pytest

from repro import Database, RewriteEngine
from repro.bench import ResultTable, speedup, time_best
from repro.workloads import telephony

NESTED_SQL = """
SELECT t.Plan_Id, SUM(t.Rev)
FROM (SELECT Calls.Plan_Id AS Plan_Id, Month, SUM(Charge) AS Rev
      FROM Calls WHERE Year = 1995
      GROUP BY Calls.Plan_Id, Month) t
GROUP BY t.Plan_Id
"""

VIEW_SQL = """
CREATE VIEW Monthly (Plan_Id, Month, Year, Rev, N) AS
SELECT Calls.Plan_Id, Month, Year, SUM(Charge), COUNT(Charge)
FROM Calls
GROUP BY Calls.Plan_Id, Month, Year
"""


def _setup(n_calls: int):
    wl = telephony.generate(n_calls=n_calls, seed=19)
    engine = RewriteEngine(wl.catalog)
    engine.add_view(VIEW_SQL, row_count=200)
    db = Database(wl.catalog, wl.tables)
    db.materialize("Monthly")
    return engine, db


def test_nested_speedup_series(benchmark):
    table_out = ResultTable(
        "E16: nested query direct vs inner-rewritten (seconds)",
        ["calls", "t_direct", "t_rewritten", "speedup"],
    )
    for n_calls in (1_000, 4_000, 16_000):
        engine, db = _setup(n_calls)
        result = engine.rewrite_nested(NESTED_SQL)
        assert result.inner_rewrites, "the inner block must be rewritten"
        t_direct = time_best(lambda: db.execute(NESTED_SQL), repeats=2)
        t_rewritten = time_best(lambda: result.execute(db), repeats=2)
        assert db.execute(NESTED_SQL).multiset_equal(result.execute(db))
        table_out.add(
            n_calls, t_direct, t_rewritten, speedup(t_direct, t_rewritten)
        )
    table_out.show()

    engine, db = _setup(4_000)
    result = engine.rewrite_nested(NESTED_SQL)
    benchmark(lambda: result.execute(db))


def test_rewrite_nested_latency(benchmark):
    engine, _db = _setup(1_000)
    benchmark(lambda: engine.rewrite_nested(NESTED_SQL))

"""Dialect + federation benchmarks: conformance and the N-way sweep.

The ``dialects`` workload entry for ``BENCH_rewriting.json`` answers:

1. *Does every dialect emit a correct corpus?* Each conformance case is
   emitted in every registered dialect, and the SQLite document is
   executed on a live ``sqlite3`` database against the engine's answer
   (DuckDB too when the driver is installed).
2. *Does the N-way oracle stay clean at scale?* A fuzz sweep with
   ``engine="both"`` (row = columnar on every evaluation) over every
   installed live backend; the full run covers >= 5000 scenarios and
   asserts zero mismatches. This is the cross-backend soundness budget
   the CI dialects job re-runs on every push (with DuckDB installed).

Like the other collectors, correctness failures raise AssertionError so
the benchmark gate doubles as a soundness gate.
"""

from __future__ import annotations

import sqlite3
import tempfile
import time
from pathlib import Path

from repro.dialects import DIALECT_NAMES
from repro.dialects.conformance import CASES, CORPUS_VERSION, emit_corpus
from repro.engine.database import Database
from repro.fuzz import FuzzRunner
from repro.oracle import available_backends, rows_multiset_equal

#: Version tag of the ``dialects`` workload schema in
#: ``BENCH_rewriting.json``; bump when fields change meaning.
DIALECTS_BENCH_VERSION = "dialects-bench/1"


def _engine_rows(case):
    catalog = case.catalog()
    db = Database(
        catalog, {name: list(rows) for name, rows in case.instance.items()}
    )
    return db.execute(case.query(catalog)).rows


def _execute_case_on_sqlite(case) -> bool:
    connection = sqlite3.connect(":memory:")
    for name, columns in case.tables.items():
        quoted = ", ".join('"' + c.replace('"', '""') + '"' for c in columns)
        tname = '"' + name.replace('"', '""') + '"'
        connection.execute(f"CREATE TABLE {tname} ({quoted})")
        marks = ", ".join("?" for _ in columns)
        connection.executemany(
            f"INSERT INTO {tname} VALUES ({marks})",
            case.instance.get(name, []),
        )
    rows = [
        tuple(r) for r in connection.execute(case.emit("sqlite")).fetchall()
    ]
    return rows_multiset_equal(rows, _engine_rows(case))


def collect_dialects_metrics(quick: bool = False) -> dict:
    """The ``dialects`` workload entry for ``BENCH_rewriting.json``."""
    # -- 1. conformance corpus, every dialect --------------------------
    corpus = {}
    for name in DIALECT_NAMES:
        document = emit_corpus(name)
        corpus[name] = {
            "cases": len(CASES),
            "bytes": len(document.encode()),
        }
    executed = sum(1 for case in CASES if _execute_case_on_sqlite(case))
    assert executed == len(CASES), (
        f"only {executed}/{len(CASES)} sqlite conformance cases "
        "execute to engine parity"
    )

    # -- 2. the N-way fuzz sweep ---------------------------------------
    backends = tuple(available_backends())
    n_scenarios = 400 if quick else 5_000
    with tempfile.TemporaryDirectory() as tmp:
        runner = FuzzRunner(
            out_dir=Path(tmp), engine="both", backends=backends
        )
        start = time.perf_counter()
        stats = runner.run(budget_seconds=None, max_scenarios=n_scenarios)
        elapsed = time.perf_counter() - start
    assert stats.failures == 0, (
        f"N-way sweep over {backends} found {stats.failures} mismatches: "
        f"{[str(p) for p in stats.failure_files]}"
    )
    assert stats.rewritings > 0, "vacuous sweep: no rewritings exercised"

    return {
        "version": DIALECTS_BENCH_VERSION,
        "corpus_version": CORPUS_VERSION,
        "dialects": list(DIALECT_NAMES),
        "conformance": corpus,
        "conformance_executed_sqlite": executed,
        "nway": {
            "backends": list(backends),
            "engine": "both",
            "scenarios": stats.scenarios,
            "checks": stats.checks,
            "rewritings": stats.rewritings,
            "skipped": stats.skipped,
            "mismatches": stats.failures,
            "scenarios_per_sec": round(stats.scenarios / elapsed, 1)
            if elapsed
            else None,
            "seconds": round(elapsed, 2),
        },
    }


if __name__ == "__main__":  # pragma: no cover
    import json
    import sys

    quick = "--quick" in sys.argv
    print(json.dumps(collect_dialects_metrics(quick=quick), indent=2))

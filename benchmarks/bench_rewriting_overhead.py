"""Experiment E11 — rewriting-search overhead for the optimizer.

The paper argues (Section 6, discussing [GMR95]) that "although our
algorithms may create a larger search space for the optimizer, we believe
this is not a practical concern". We measure it: latency of
``RewriteEngine.rewrite`` as the number of registered views and the query
size grow. The shape to observe: milliseconds, growing roughly linearly
in the number of candidate views.
"""

import pytest

from repro import Catalog, RewriteEngine, parse_view, table
from repro.bench import ResultTable, time_best

N_TABLES = 6


def make_catalog() -> Catalog:
    return Catalog(
        [
            table(f"T{i}", ["k", "g", "v"], key=["k"], row_count=1000)
            for i in range(N_TABLES)
        ]
    )


def make_engine(n_views: int) -> RewriteEngine:
    catalog = make_catalog()
    engine = RewriteEngine(catalog)
    for i in range(n_views):
        base = f"T{i % N_TABLES}"
        engine.add_view(
            f"CREATE VIEW W{i} (g, s, n) AS "
            f"SELECT g, SUM(v), COUNT(v) FROM {base} GROUP BY g"
        )
    return engine


QUERY = "SELECT g, SUM(v) FROM T0 GROUP BY g"
JOIN_QUERY = (
    "SELECT T0.g, SUM(T1.v) FROM T0, T1 WHERE T0.k = T1.k GROUP BY T0.g"
)


def test_latency_vs_view_count(benchmark):
    table_out = ResultTable(
        "E11: rewrite() latency vs registered views",
        ["views", "rewritings", "seconds"],
    )
    for n_views in (1, 2, 4, 8, 16):
        engine = make_engine(n_views)
        found = engine.rewrite(QUERY)
        seconds = time_best(lambda: engine.rewrite(QUERY), repeats=3)
        table_out.add(n_views, len(found), seconds)
    table_out.show()

    engine = make_engine(8)
    benchmark(lambda: engine.rewrite(QUERY))


def test_latency_vs_query_size(benchmark):
    table_out = ResultTable(
        "E11: rewrite() latency vs query FROM size",
        ["from_tables", "seconds"],
    )
    engine = make_engine(4)
    for n_tables in (1, 2, 3, 4):
        froms = ", ".join(f"T{i}" for i in range(n_tables))
        joins = " AND ".join(
            f"T{i}.k = T{i + 1}.k" for i in range(n_tables - 1)
        )
        sql = f"SELECT T0.g, SUM(T0.v) FROM {froms}"
        if joins:
            sql += f" WHERE {joins}"
        sql += " GROUP BY T0.g"
        seconds = time_best(lambda: engine.rewrite(sql), repeats=3)
        table_out.add(n_tables, seconds)
    table_out.show()

    benchmark(lambda: engine.rewrite(JOIN_QUERY))


def test_single_view_check(benchmark):
    """The inner loop: conditions + rewriting for one (view, mapping)."""
    engine = make_engine(1)
    view = engine.views[0]
    benchmark(lambda: engine.rewrite_with(QUERY, view))

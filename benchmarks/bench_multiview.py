"""Experiment E8 — multi-view rewriting (Theorem 3.2).

Measures the iterative all-rewritings search on the star warehouse and
checks the Church-Rosser property operationally: incorporating the views
in any order costs the same and lands on the same rewriting.
"""

import itertools

import pytest

from repro import Catalog, parse_query, parse_view, table
from repro.bench import ResultTable, time_best
from repro.core.canonical import canonical_key
from repro.core.multiview import all_rewritings, rewrite_iteratively
from repro.workloads import star


@pytest.fixture(scope="module")
def star_workload():
    return star.generate(n_sales=500)


def test_all_rewritings_star(star_workload, benchmark):
    wl = star_workload
    views = list(wl.views.values())
    table_out = ResultTable(
        "E8: all_rewritings over the star warehouse",
        ["query", "rewritings", "seconds"],
    )
    for name, query in wl.queries.items():
        found = all_rewritings(query, views, wl.catalog)
        seconds = time_best(
            lambda: all_rewritings(query, views, wl.catalog), repeats=2
        )
        table_out.add(name, len(found), seconds)
    table_out.show()

    query = wl.queries["category_revenue"]
    benchmark(lambda: all_rewritings(query, views, wl.catalog))


def test_church_rosser_orders(benchmark):
    """Theorem 3.2(2): every incorporation order, same canonical result."""
    catalog = Catalog(
        [
            table("R", ["A", "B"]),
            table("S", ["C", "D"]),
            table("T", ["E", "F"]),
        ]
    )
    views = []
    for name, base, cols in [
        ("VR", "R", "A, B"),
        ("VS", "S", "C, D"),
        ("VT", "T", "E, F"),
    ]:
        view = parse_view(
            f"CREATE VIEW {name} ({cols}) AS SELECT {cols} FROM {base}",
            catalog,
        )
        catalog.add_view(view)
        views.append(view)
    query = parse_query(
        "SELECT A, COUNT(C) FROM R, S, T WHERE B = C AND D = E GROUP BY A",
        catalog,
    )

    def all_orders():
        keys = set()
        for order in itertools.permutations(views):
            result = rewrite_iteratively(query, list(order), catalog)
            keys.add(canonical_key(result.query))
        assert len(keys) == 1
        return keys

    benchmark(all_orders)


def test_iterative_depth(benchmark):
    """Cost of one greedy full-order pass (the production code path)."""
    wl = star.generate(n_sales=200)
    views = list(wl.views.values())
    query = wl.queries["category_revenue"]
    benchmark(lambda: rewrite_iteratively(query, views, wl.catalog))


# ----------------------------------------------------------------------
# Machine-readable metrics (BENCH_rewriting.json)
# ----------------------------------------------------------------------


def collect_multiview_metrics(repeats: int = 7) -> dict:
    """The planner A/B numbers for the multi-view star workload.

    Baseline is the naive search with every memoization cache disabled
    (the seed behavior); the planner is timed warm, modeling repeated
    rewrite traffic against a fixed view set — the paper's semantic-cache
    scenario. Asserts result-set parity before timing anything.
    """
    from repro.constraints.closure import clear_closure_cache
    from repro.constraints.residual import clear_residual_cache
    from repro.core.canonical import clear_canonical_cache
    from repro.core.multiview import all_rewritings_naive
    from repro.core.planner import RewritePlanner, baseline_mode, cache_stats

    wl = star.generate(n_sales=1_000)
    views = list(wl.views.values())
    planner = RewritePlanner(views, wl.catalog)

    def run_naive():
        out = []
        for query in wl.queries.values():
            out.extend(
                all_rewritings_naive(
                    query,
                    views,
                    wl.catalog,
                    max_steps=3,
                    include_partial=False,
                )
            )
        return out

    def run_planner():
        out = []
        for query in wl.queries.values():
            out.extend(
                planner.all_rewritings(
                    query, max_steps=3, include_partial=False
                )
            )
        return out

    clear_closure_cache()
    clear_canonical_cache()
    clear_residual_cache()

    naive_keys = sorted(canonical_key(r.query) for r in run_naive())
    planner_keys = sorted(canonical_key(r.query) for r in run_planner())
    assert naive_keys == planner_keys, (
        "planner/naive parity violation on the star workload: "
        f"{len(naive_keys)} naive vs {len(planner_keys)} planned rewritings"
    )

    with baseline_mode():
        t_naive = time_best(run_naive, repeats=repeats)
    run_planner()  # warm the memoization caches
    t_planner = time_best(run_planner, repeats=repeats)

    per_query = {}
    for name, query in wl.queries.items():
        found = planner.all_rewritings(
            query, max_steps=3, include_partial=False
        )
        per_query[name] = {
            "rewritings": len(found),
            "seconds": time_best(
                lambda q=query: planner.all_rewritings(
                    q, max_steps=3, include_partial=False
                ),
                repeats=3,
            ),
        }

    return {
        "workload": "star",
        "queries": len(wl.queries),
        "views": len(views),
        "rewritings": len(naive_keys),
        "naive_seconds": t_naive,
        "planner_seconds": t_planner,
        "speedup": t_naive / t_planner if t_planner > 0 else None,
        "parity": "ok",
        "per_query": per_query,
        "planner_stats": planner.stats.as_dict(),
        "cache_stats": cache_stats(),
    }


def collect_church_rosser_metrics() -> dict:
    """Theorem 3.2(2) operationally: one canonical result per order."""
    catalog = Catalog(
        [
            table("R", ["A", "B"]),
            table("S", ["C", "D"]),
            table("T", ["E", "F"]),
        ]
    )
    views = []
    for name, base, cols in [
        ("VR", "R", "A, B"),
        ("VS", "S", "C, D"),
        ("VT", "T", "E, F"),
    ]:
        view = parse_view(
            f"CREATE VIEW {name} ({cols}) AS SELECT {cols} FROM {base}",
            catalog,
        )
        catalog.add_view(view)
        views.append(view)
    query = parse_query(
        "SELECT A, COUNT(C) FROM R, S, T WHERE B = C AND D = E GROUP BY A",
        catalog,
    )
    keys = set()
    orders = 0
    for order in itertools.permutations(views):
        result = rewrite_iteratively(query, list(order), catalog)
        keys.add(canonical_key(result.query))
        orders += 1
    assert len(keys) == 1, (
        f"Church-Rosser violation: {len(keys)} distinct results "
        f"over {orders} incorporation orders"
    )
    return {"orders": orders, "distinct_results": len(keys)}

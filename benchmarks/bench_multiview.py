"""Experiment E8 — multi-view rewriting (Theorem 3.2).

Measures the iterative all-rewritings search on the star warehouse and
checks the Church-Rosser property operationally: incorporating the views
in any order costs the same and lands on the same rewriting.
"""

import itertools

import pytest

from repro import Catalog, parse_query, parse_view, table
from repro.bench import ResultTable, time_best
from repro.core.canonical import canonical_key
from repro.core.multiview import all_rewritings, rewrite_iteratively
from repro.workloads import star


@pytest.fixture(scope="module")
def star_workload():
    return star.generate(n_sales=500)


def test_all_rewritings_star(star_workload, benchmark):
    wl = star_workload
    views = list(wl.views.values())
    table_out = ResultTable(
        "E8: all_rewritings over the star warehouse",
        ["query", "rewritings", "seconds"],
    )
    for name, query in wl.queries.items():
        found = all_rewritings(query, views, wl.catalog)
        seconds = time_best(
            lambda: all_rewritings(query, views, wl.catalog), repeats=2
        )
        table_out.add(name, len(found), seconds)
    table_out.show()

    query = wl.queries["category_revenue"]
    benchmark(lambda: all_rewritings(query, views, wl.catalog))


def test_church_rosser_orders(benchmark):
    """Theorem 3.2(2): every incorporation order, same canonical result."""
    catalog = Catalog(
        [
            table("R", ["A", "B"]),
            table("S", ["C", "D"]),
            table("T", ["E", "F"]),
        ]
    )
    views = []
    for name, base, cols in [
        ("VR", "R", "A, B"),
        ("VS", "S", "C, D"),
        ("VT", "T", "E, F"),
    ]:
        view = parse_view(
            f"CREATE VIEW {name} ({cols}) AS SELECT {cols} FROM {base}",
            catalog,
        )
        catalog.add_view(view)
        views.append(view)
    query = parse_query(
        "SELECT A, COUNT(C) FROM R, S, T WHERE B = C AND D = E GROUP BY A",
        catalog,
    )

    def all_orders():
        keys = set()
        for order in itertools.permutations(views):
            result = rewrite_iteratively(query, list(order), catalog)
            keys.add(canonical_key(result.query))
        assert len(keys) == 1
        return keys

    benchmark(all_orders)


def test_iterative_depth(benchmark):
    """Cost of one greedy full-order pass (the production code path)."""
    wl = star.generate(n_sales=200)
    views = list(wl.views.values())
    query = wl.queries["category_revenue"]
    benchmark(lambda: rewrite_iteratively(query, views, wl.catalog))

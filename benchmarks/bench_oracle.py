"""Oracle throughput benchmarks: cross-check and shrink rates.

Two questions about the :mod:`repro.oracle` / :mod:`repro.fuzz` layer,
written into ``BENCH_rewriting.json``:

1. *How fast does the fuzz loop burn scenarios?* A fixed-size clean run
   (every profile represented) reports scenarios/sec, checks and
   rewritings covered. The ISSUE acceptance floor is 300 scenarios in a
   60-second CI budget; the recorded rate shows the headroom.
2. *How expensive is delta-debugging a failure?* With a known bug
   injected, the first few failures are shrunk and the iteration counts
   and minimized sizes recorded.

Both runs assert their correctness envelope (zero mismatches clean; the
injected bug caught, and shrunk small), so a soundness regression fails
the benchmark gate too, mirroring the parity collectors.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.fuzz import FuzzRunner, inject_bug


def collect_oracle_metrics(quick: bool = False) -> dict:
    """The ``oracle`` workload entry for ``BENCH_rewriting.json``."""
    n_clean = 300 if quick else 1_500
    n_buggy = 200 if quick else 400

    # -- 1. clean throughput -------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        runner = FuzzRunner(out_dir=Path(tmp))
        start = time.perf_counter()
        clean = runner.run(budget_seconds=None, max_scenarios=n_clean)
        clean_elapsed = time.perf_counter() - start
    assert clean.failures == 0, (
        f"clean fuzz run found {clean.failures} mismatches: "
        f"{[str(p) for p in clean.failure_files]}"
    )
    assert clean.rewritings > 0, "vacuous corpus: no rewritings exercised"

    # -- 2. shrink cost under an injected evaluator bug ----------------
    with tempfile.TemporaryDirectory() as tmp:
        runner = FuzzRunner(out_dir=Path(tmp))
        with inject_bug("min-as-max"):
            buggy = runner.run(
                budget_seconds=None, max_scenarios=n_buggy, max_failures=3
            )
        assert buggy.failures >= 1, "injected bug escaped the fuzzer"
        shrunk_sizes = []
        for path in buggy.failure_files:
            doc = json.loads(Path(path).read_text())
            shrunk_sizes.append(
                {
                    "rows": sum(len(r) for r in doc["instance"].values()),
                    "views": len(doc["views"]),
                    "iterations": doc["shrink"]["iterations"],
                }
            )
        assert all(s["rows"] <= 3 and s["views"] <= 2 for s in shrunk_sizes), (
            f"shrinker missed the acceptance envelope: {shrunk_sizes}"
        )

    return {
        "clean_scenarios": clean.scenarios,
        "clean_checks": clean.checks,
        "clean_rewritings": clean.rewritings,
        "clean_seconds": round(clean_elapsed, 3),
        "scenarios_per_sec": round(clean.scenarios / clean_elapsed, 2),
        "injected_bug": "min-as-max",
        "buggy_scenarios_run": buggy.scenarios,
        "failures_caught": buggy.failures,
        "shrink_iterations_total": buggy.shrink_iterations,
        "shrunk_repro_sizes": shrunk_sizes,
    }


if __name__ == "__main__":
    print(json.dumps(collect_oracle_metrics(quick=True), indent=2))

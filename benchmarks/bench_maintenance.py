"""Experiment E12 (extension) — incremental maintenance vs recompute.

The warehouse setting of Section 1 only works if the summary views can be
kept fresh cheaply ([BLT86, GMS93, JMS95]). Measures per-insert cost of
:class:`~repro.maintenance.MaintainedView` against full recomputation of
the view, as the base table grows — the shape to observe: recompute cost
grows linearly with |Calls| while incremental cost stays flat.
"""

import pytest

from repro.bench import ResultTable, speedup, time_best
from repro.blocks.normalize import parse_view
from repro.engine.database import Database
from repro.maintenance import MaintainedView
from repro.workloads import telephony

VIEW_SQL = """
CREATE VIEW V1 (Plan_Id, Month, Year, Revenue, N) AS
SELECT Plan_Id, Month, Year, SUM(Charge), COUNT(Charge)
FROM Calls
GROUP BY Plan_Id, Month, Year
"""


def _setup(n_calls: int):
    wl = telephony.generate(n_calls=n_calls, seed=13)
    db = Database(wl.catalog, wl.tables)
    view = parse_view(VIEW_SQL, wl.catalog.copy())
    maintained = MaintainedView(view, db)
    return wl, db, maintained


def _fresh_call(i: int):
    return (10_000_000 + i, 1, 2, 3, 6, 1995, 42)


def test_insert_cost_series(benchmark):
    table_out = ResultTable(
        "E12: per-insert maintenance vs view recompute (seconds)",
        ["calls", "incremental", "recompute", "speedup"],
    )
    for n_calls in (1_000, 4_000, 16_000):
        wl, db, maintained = _setup(n_calls)
        counter = iter(range(1_000_000))

        def incremental():
            maintained.apply("Calls", inserts=[_fresh_call(next(counter))])
            return maintained.table()

        t_inc = time_best(incremental, repeats=3)

        def recompute():
            return db.execute(maintained.block)

        t_full = time_best(recompute, repeats=2)
        table_out.add(n_calls, t_inc, t_full, speedup(t_full, t_inc))
    table_out.show()

    _wl, _db, maintained = _setup(4_000)
    counter = iter(range(1_000_000))
    benchmark(
        lambda: maintained.apply(
            "Calls", inserts=[_fresh_call(next(counter))]
        )
    )


def test_delete_extremum_worst_case(benchmark):
    """Deleting a MIN/MAX extremum forces a group recompute — the
    documented worst case."""
    wl = telephony.generate(n_calls=4_000, seed=13)
    db = Database(wl.catalog, wl.tables)
    view = parse_view(
        "CREATE VIEW M (Plan_Id, Hi) AS "
        "SELECT Plan_Id, MAX(Charge) FROM Calls GROUP BY Plan_Id",
        wl.catalog.copy(),
    )
    maintained = MaintainedView(view, db)

    def churn():
        row = db.table("Calls").rows[0]
        maintained.apply("Calls", deletes=[row])
        result = maintained.table()  # may trigger the dirty recompute
        maintained.apply("Calls", inserts=[row])
        return result

    benchmark(churn)


def test_stream_consistency(benchmark):
    """A batch of inserts followed by a consistency check (the oracle the
    correctness tests rely on)."""
    _wl, _db, maintained = _setup(2_000)
    counter = iter(range(1_000_000))

    def burst():
        maintained.apply(
            "Calls",
            inserts=[_fresh_call(next(counter)) for _ in range(20)],
        )
        return len(maintained.table())

    benchmark(burst)
    assert maintained.consistency_check()

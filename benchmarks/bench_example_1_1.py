"""Experiment E1 — Example 1.1: answering Q from the monthly summary V1.

The paper's claim: "the materialized view V1 is likely to be orders of
magnitude smaller than the Calls table. Hence, evaluating Q' will be much
more efficient than evaluating Q."

We regenerate the claim as a series: evaluation time of Q (scans Calls)
versus Q' (scans materialized V1) as |Calls| grows, plus the |V1|/|Calls|
compression ratio. The *shape* to reproduce: speedup grows with |Calls|
and exceeds an order of magnitude once |Calls| >> |V1|.
"""

import pytest

from repro import RewriteEngine
from repro.bench import ResultTable, speedup, time_best
from repro.workloads import telephony

SIZES = {"small": [1_000, 4_000, 16_000], "full": [10_000, 50_000, 200_000]}


@pytest.fixture(scope="module")
def mid_setup():
    wl = telephony.generate(n_calls=8_000, threshold=100_000, seed=11)
    engine = RewriteEngine(wl.catalog)
    rewriting = engine.rewrite(wl.query).best()
    assert rewriting is not None
    db = wl.database()
    db.materialize("V1")  # the warehouse maintains V1 ahead of time
    return wl, db, rewriting


def test_speedup_series(bench_scale, benchmark):
    table = ResultTable(
        "E1: Example 1.1 original vs rewritten (seconds)",
        ["calls", "view_rows", "t_original", "t_rewritten", "speedup"],
    )
    observed = []
    for n_calls in SIZES[bench_scale]:
        wl = telephony.generate(
            n_calls=n_calls, threshold=100_000, seed=11
        )
        engine = RewriteEngine(wl.catalog)
        rewriting = engine.rewrite(wl.query).best()
        db = wl.database()
        view_rows = len(db.materialize("V1"))
        t_original = time_best(lambda: db.execute(wl.query), repeats=2)
        t_rewritten = time_best(
            lambda: db.execute(
                rewriting.query, extra_views=rewriting.extra_views()
            ),
            repeats=2,
        )
        gain = speedup(t_original, t_rewritten)
        observed.append(gain)
        table.add(n_calls, view_rows, t_original, t_rewritten, gain)
    table.show()

    # Shape assertions: the rewriting wins, and wins more at scale.
    assert all(g and g > 1 for g in observed)
    assert observed[-1] > observed[0]

    # Anchor a stable number for pytest-benchmark at the middle size.
    wl = telephony.generate(
        n_calls=SIZES[bench_scale][1], threshold=100_000, seed=11
    )
    engine = RewriteEngine(wl.catalog)
    rewriting = engine.rewrite(wl.query).best()
    db = wl.database()
    db.materialize("V1")
    benchmark(
        lambda: db.execute(
            rewriting.query, extra_views=rewriting.extra_views()
        )
    )


def test_original_query_eval(mid_setup, benchmark):
    wl, db, _rewriting = mid_setup
    benchmark(lambda: db.execute(wl.query))


def test_rewritten_query_eval(mid_setup, benchmark):
    wl, db, rewriting = mid_setup
    benchmark(
        lambda: db.execute(
            rewriting.query, extra_views=rewriting.extra_views()
        )
    )


def test_answers_agree(mid_setup, benchmark):
    """The speedup is only meaningful if the answers are identical."""
    wl, db, rewriting = mid_setup

    def both():
        left = db.execute(wl.query)
        right = db.execute(
            rewriting.query, extra_views=rewriting.extra_views()
        )
        assert left.multiset_equal(right)
        return len(left)

    benchmark(both)

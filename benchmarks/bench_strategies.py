"""Strategy benchmarks: completeness uplift and the differential sweep.

The ``strategies`` workload entry for ``BENCH_rewriting.json`` answers:

1. *Does the complete Cohen–Nutt strategy measurably grow rewriting
   coverage?* Per-profile found counts for both strategies over the
   fuzz corpus; the ``completeness`` profile is built from exactly the
   shapes C1–C4 cannot answer, so its uplift is the headline number.
2. *Does the cross-planner differential oracle stay clean at scale?*
   The full run sweeps >= 5000 scenarios with ``strategy="both"`` and
   asserts zero oracle mismatches and zero dominance violations
   (every C1–C4 rewriting present in the Cohen–Nutt result set).
3. *What does completeness cost?* Per-strategy search latency over the
   same seeded scenarios.

Like the other collectors, correctness failures raise AssertionError so
the benchmark gate doubles as a soundness gate.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.core.multiview import all_rewritings
from repro.fuzz import FuzzRunner
from repro.fuzz.generate import fuzz_scenario
from repro.strategies import STRATEGY_NAMES, cohen_nutt_rewritings

#: Version tag of the ``strategies`` workload schema in
#: ``BENCH_rewriting.json``; bump when fields change meaning.
STRATEGIES_BENCH_VERSION = "strategies-bench/1"


def _latency(n_scenarios: int) -> dict:
    """Mean search latency per scenario, per strategy."""
    scenarios = [fuzz_scenario(seed) for seed in range(n_scenarios)]
    start = time.perf_counter()
    base_found = 0
    for sc in scenarios:
        base_found += len(
            all_rewritings(sc.query, sc.views, sc.catalog, use_planner=True)
        )
    c1c4_seconds = time.perf_counter() - start
    start = time.perf_counter()
    extra_found = 0
    for sc in scenarios:
        extra_found += len(cohen_nutt_rewritings(sc.query, sc.views))
    extras_seconds = time.perf_counter() - start
    union_seconds = c1c4_seconds + extras_seconds
    return {
        "scenarios": n_scenarios,
        "c1c4_ms_per_scenario": round(
            c1c4_seconds * 1e3 / n_scenarios, 4
        ),
        "cohen_nutt_ms_per_scenario": round(
            union_seconds * 1e3 / n_scenarios, 4
        ),
        "completeness_overhead": round(
            union_seconds / c1c4_seconds, 3
        )
        if c1c4_seconds
        else None,
        "c1c4_rewritings": base_found,
        "cohen_nutt_extras": extra_found,
    }


def collect_strategies_metrics(quick: bool = False) -> dict:
    """The ``strategies`` workload entry for ``BENCH_rewriting.json``."""
    n_scenarios = 400 if quick else 5_000

    # -- 1 + 2. the dual-strategy differential sweep -------------------
    with tempfile.TemporaryDirectory() as tmp:
        runner = FuzzRunner(out_dir=Path(tmp), strategy="both")
        start = time.perf_counter()
        stats = runner.run(budget_seconds=None, max_scenarios=n_scenarios)
        elapsed = time.perf_counter() - start
    assert stats.failures == 0, (
        f"dual-strategy sweep found {stats.failures} failures "
        "(oracle mismatch or dominance violation): "
        f"{[str(p) for p in stats.failure_files]}"
    )
    assert stats.rewritings > 0, "vacuous sweep: no rewritings exercised"

    per_profile = {}
    dominance_violations = 0
    total_base = total_union = 0
    for profile, bucket in sorted(stats.profiles.items()):
        base = bucket.get("c1c4_found", 0)
        union = bucket.get("cohen_nutt_found", 0)
        dominance_violations += max(0, base - union)
        total_base += base
        total_union += union
        per_profile[profile] = {
            "scenarios": bucket["scenarios"],
            "c1c4_found": base,
            "cohen_nutt_found": union,
            "uplift": union - base,
        }
    assert dominance_violations == 0, per_profile
    assert total_union > total_base, (
        "the complete strategy answered no scenario beyond C1-C4: "
        f"{per_profile}"
    )

    # -- 3. per-strategy latency ---------------------------------------
    latency = _latency(120 if quick else 400)

    return {
        "version": STRATEGIES_BENCH_VERSION,
        "strategies": list(STRATEGY_NAMES),
        "sweep": {
            "strategy": "both",
            "scenarios": stats.scenarios,
            "checks": stats.checks,
            "rewritings": stats.rewritings,
            "skipped": stats.skipped,
            "mismatches": stats.failures,
            "dominance_violations": dominance_violations,
            "c1c4_scenarios_answered": total_base,
            "cohen_nutt_scenarios_answered": total_union,
            "scenarios_per_sec": round(stats.scenarios / elapsed, 1)
            if elapsed
            else None,
            "seconds": round(elapsed, 2),
            "per_profile": per_profile,
        },
        "latency": latency,
    }


if __name__ == "__main__":  # pragma: no cover
    import json
    import sys

    quick = "--quick" in sys.argv
    print(json.dumps(collect_strategies_metrics(quick=quick), indent=2))

"""Benchmark-suite configuration.

Run with ``pytest benchmarks/ --benchmark-only``. Each file regenerates
one experiment from EXPERIMENTS.md and prints its data series as a table
(captured with ``-s`` or in the pytest summary).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="small",
        choices=["small", "full"],
        help="'full' uses paper-like sizes; 'small' keeps CI fast",
    )


@pytest.fixture(scope="session")
def bench_scale(request):
    return request.config.getoption("--bench-scale")

#!/usr/bin/env python
"""CI smoke for the serving daemon — a real ``repro serve`` process.

Unlike ``bench_serving.py`` (in-process daemon, timing gates), this
script exercises the deployment path end to end:

1. start ``python -m repro serve`` as a subprocess, wait for its
   ``serve-ready`` line and read the bound port;
2. drive a mixed hot/cold workload through ``repro.api.connect`` —
   repeated hot fingerprints, one-off view-subset fingerprints, and a
   base-table update mid-stream — asserting every envelope;
3. restart with ``--queue-limit 0`` and assert overload is refused
   *in-band* (degraded response, ``queue_full`` tripped, connection
   survives);
4. leave ``serve-metrics.prom`` behind (written by ``--metrics-out``
   even on failure) for CI to upload as an artifact.

Exit code 0 means every assertion held.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

SCHEMA_SQL = """
CREATE TABLE Calls (Call_Id, Plan_Id, Year, Charge);
CREATE VIEW Yearly (Plan_Id, Year, Total) AS
SELECT Plan_Id, Year, SUM(Charge) FROM Calls GROUP BY Plan_Id, Year;
CREATE VIEW Totals (Plan_Id, Total) AS
SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id;
"""

HOT_QUERY = (
    "SELECT Plan_Id, SUM(Charge) FROM Calls "
    "WHERE Year = 1995 GROUP BY Plan_Id"
)


def start_daemon(schema: str, metrics_out: str, *extra: str):
    env = {**os.environ, "PYTHONPATH": SRC}
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--schema", schema, "--port", "0",
            "--metrics-out", str(Path(metrics_out).resolve()), *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    ready = json.loads(proc.stdout.readline())
    assert ready["schema"] == "repro-api/1", ready
    assert ready["kind"] == "serve-ready", ready
    port = next(
        addr[2] for addr in ready["result"]["addresses"]
        if addr[0] == "tcp"
    )
    return proc, int(port)


def stop_daemon(proc, client=None):
    if client is not None:
        assert client.shutdown()["ok"]
        client.close()
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError("daemon did not exit after shutdown")
    assert proc.returncode == 0, proc.stderr.read()


def main() -> int:
    from repro import api

    with tempfile.TemporaryDirectory() as tmp:
        schema = str(Path(tmp) / "schema.sql")
        Path(schema).write_text(SCHEMA_SQL)

        # -- mixed hot/cold workload against a real subprocess daemon
        proc, port = start_daemon(schema, "serve-metrics.prom")
        client = api.connect(("127.0.0.1", port))
        pong = client.ping()
        assert pong["ok"] and pong["result"]["pong"] is True, pong
        baseline = None
        for round_no in range(3):
            for i in range(6):  # hot: one fingerprint, re-asked
                doc = client.rewrite(
                    HOT_QUERY, tenant="dash", id=f"h{round_no}-{i}"
                )
                assert doc["ok"] and doc["result"]["rewritings"], doc
                sqls = [r["sql"] for r in doc["result"]["rewritings"]]
                if baseline is None:
                    baseline = sqls
                assert sqls == baseline, (round_no, i)
            for view in ("Yearly", "Totals"):  # cold-ish subsets
                doc = client.rewrite(HOT_QUERY, views=[view])
                assert doc["ok"], doc
            # an update lands mid-stream: epoch bumps, serving continues
            update = client.update(
                "Calls", insert=[[round_no, 1, 1995, 10]]
            )
            assert update["ok"], update
            assert update["result"]["epoch"] > update["result"][
                "epoch_before"
            ], update
        metrics = client.metrics()
        families = metrics["result"]["metrics"]["families"]
        assert "repro_serving_requests_total" in families, sorted(families)
        stop_daemon(proc, client)
        print("mixed workload: ok (3 rounds, 24 rewrites, 3 updates)")

        # -- overload under a zero-size queue refuses in-band
        proc, port = start_daemon(
            schema, "serve-metrics-refusal.prom", "--queue-limit", "0"
        )
        client = api.connect(("127.0.0.1", port))
        refused = client.rewrite(HOT_QUERY)
        assert refused["ok"] is True, refused  # the exchange succeeded
        result = refused["result"]
        assert result["degraded"] is True, result
        assert result["budget"]["tripped"] == ["queue_full"], result
        assert result["rewritings"] == [], result
        # ... and the connection is still perfectly usable.
        assert client.ping()["ok"], "connection died after refusal"
        stop_daemon(proc, client)
        print("graceful refusal: ok (queue_full in-band, connection survived)")

    assert Path("serve-metrics.prom").read_text().strip(), (
        "daemon left an empty Prometheus snapshot"
    )
    print("serving smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

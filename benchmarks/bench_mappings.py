"""Experiment E11b — candidate-mapping enumeration (condition C1).

Self-joins are the combinatorial worst case for Definition 2.1: a view
with k occurrences of table R against a query with n occurrences admits
n!/(n-k)! one-to-one mappings (and n^k many-to-1 ones). The rewriter
visits all of them; this bench quantifies that fan-out.
"""

import pytest

from repro.bench import ResultTable, time_best
from repro.blocks.normalize import parse_query, parse_view
from repro.catalog.schema import Catalog, table
from repro.mappings.enumerate_mappings import count_mappings


def make_pair(view_occurrences: int, query_occurrences: int):
    catalog = Catalog([table("R", ["a", "b"])])
    view_from = ", ".join(
        f"R v{i}" for i in range(view_occurrences)
    )
    query_from = ", ".join(
        f"R q{i}" for i in range(query_occurrences)
    )
    view = parse_view(
        f"CREATE VIEW V (x) AS SELECT v0.a FROM {view_from}", catalog
    )
    query = parse_query(f"SELECT q0.a FROM {query_from}", catalog)
    return view, query


def expected_one_to_one(n: int, k: int) -> int:
    out = 1
    for i in range(k):
        out *= n - i
    return out


def test_self_join_fanout(benchmark):
    table_out = ResultTable(
        "E11b: 1-1 mapping fan-out on self-joins",
        ["view_occs", "query_occs", "mappings", "seconds"],
    )
    for k, n in [(1, 4), (2, 4), (3, 4), (2, 6), (3, 6)]:
        view, query = make_pair(k, n)
        found = count_mappings(view.block, query)
        assert found == expected_one_to_one(n, k)
        seconds = time_best(
            lambda: count_mappings(view.block, query), repeats=3
        )
        table_out.add(k, n, found, seconds)
    table_out.show()

    view, query = make_pair(3, 6)
    benchmark(lambda: count_mappings(view.block, query))


def test_many_to_one_fanout(benchmark):
    table_out = ResultTable(
        "E11b: many-to-1 mapping fan-out (Section 5.2)",
        ["view_occs", "query_occs", "mappings"],
    )
    for k, n in [(2, 3), (3, 3), (2, 4)]:
        view, query = make_pair(k, n)
        found = count_mappings(view.block, query, many_to_one=True)
        assert found == n**k
        table_out.add(k, n, found)
    table_out.show()

    view, query = make_pair(3, 4)
    benchmark(
        lambda: count_mappings(view.block, query, many_to_one=True)
    )


def test_no_match_is_cheap(benchmark):
    """Mismatched table names must fail fast (the common case when many
    views are registered)."""
    catalog = Catalog([table("R", ["a"]), table("S", ["c"])])
    view = parse_view("CREATE VIEW V (c) AS SELECT c FROM S", catalog)
    query = parse_query("SELECT a FROM R", catalog)
    benchmark(lambda: count_mappings(view.block, query))

"""Observability benchmarks: stage timings, budget trips, trace overhead.

Three questions about the ``repro.obs`` layer, answered on the star
warehouse workload and written into ``BENCH_rewriting.json``:

1. *Where does rewrite time go?* Per-stage seconds aggregated from a
   traced run of every star query (parse → normalize → search
   [signature_probe / mapping_enumeration / checks / merge / maximality]
   → rank).
2. *What does an aggressive budget do?* Every query is searched under a
   hard deadline and under a mapping cap; the report records the trip
   rate, which limits tripped, and how many (sound) partial rewritings
   still came back.
3. *What does the instrumentation cost when off?* Warm planner searches
   timed with tracing disabled vs. enabled. The disabled figure is the
   one the ≤5%-overhead acceptance gate watches (compare
   ``workloads.multiview.planner_seconds`` across reports).
"""

import pytest

from repro.bench import time_best
from repro.core.planner import RewritePlanner
from repro.core.rewriter import RewriteEngine
from repro.obs import SearchBudget, Tracer, tracing
from repro.workloads import star


@pytest.fixture(scope="module")
def star_workload():
    return star.generate(n_sales=500)


def test_trace_overhead_smoke(star_workload, benchmark):
    """Tracing-off search must look exactly like the PR 1 hot path."""
    wl = star_workload
    planner = RewritePlanner(list(wl.views.values()), wl.catalog)
    query = wl.queries["category_revenue"]
    planner.all_rewritings(query, max_steps=3)  # warm the memos
    benchmark(lambda: planner.all_rewritings(query, max_steps=3))


def collect_obs_metrics(quick: bool = False) -> dict:
    """The ``obs`` workload entry for ``BENCH_rewriting.json``."""
    repeats = 3 if quick else 7
    wl = star.generate(n_sales=200 if quick else 1_000)
    views = list(wl.views.values())

    # -- 1. stage timings from one traced engine pass over every query --
    engine = RewriteEngine(wl.catalog)
    stage_seconds: dict[str, float] = {}
    counters: dict[str, int] = {}
    for query in wl.queries.values():
        result = engine.rewrite(query, trace=True)
        for stage, seconds in result.trace.stage_seconds().items():
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds
        for name, value in result.trace.counters.items():
            counters[name] = counters.get(name, 0) + value

    # -- 2. budget trips under an aggressive deadline / mapping cap -----
    def budget_sweep(budget: SearchBudget) -> dict:
        runs = exhausted = partial_results = 0
        tripped: dict[str, int] = {}
        for query in wl.queries.values():
            # A fresh planner per run: budgets bound work actually done,
            # and a warm substitution memo would make every search free.
            planner = RewritePlanner(views, wl.catalog)
            meter = budget.start()
            found = planner.all_rewritings(query, max_steps=3, budget=meter)
            runs += 1
            if meter.exhausted:
                exhausted += 1
                partial_results += len(found)
                for reason in meter.tripped:
                    tripped[reason] = tripped.get(reason, 0) + 1
        return {
            "budget": budget.as_dict(),
            "runs": runs,
            "exhausted_runs": exhausted,
            "trip_rate": round(exhausted / runs, 4) if runs else 0.0,
            "tripped": tripped,
            "partial_results": partial_results,
        }

    deadline_sweep = budget_sweep(SearchBudget(deadline=1e-4))
    mapping_sweep = budget_sweep(SearchBudget(max_mappings=2))

    # -- 3. warm-path overhead: tracing off vs. on ----------------------
    planner = RewritePlanner(views, wl.catalog)

    def run_all():
        for query in wl.queries.values():
            planner.all_rewritings(query, max_steps=3, include_partial=False)

    run_all()  # warm the memos (the PR 1 steady-state scenario)
    untraced = time_best(run_all, repeats=repeats)

    def run_all_traced():
        with tracing(Tracer()):
            run_all()

    traced = time_best(run_all_traced, repeats=repeats)

    return {
        "workload": "star",
        "queries": len(wl.queries),
        "stage_seconds": {
            name: round(seconds, 6)
            for name, seconds in sorted(stage_seconds.items())
        },
        "search_counters": counters,
        "budget_sweeps": {
            "deadline": deadline_sweep,
            "max_mappings": mapping_sweep,
        },
        "untraced_seconds": untraced,
        "traced_seconds": traced,
        "trace_overhead": round(traced / untraced, 4) if untraced > 0 else None,
    }

"""Benchmark — metrics-registry overhead on the planner hot path.

The acceptance gate behind docs/observability.md's when-off contract:
metrics-enabled cold planner throughput must stay within 3% of the
disabled baseline.

A naive A/B wall-clock comparison cannot resolve 3% on shared CI
runners: scheduler and frequency noise on tens-of-millisecond samples
routinely exceeds ±10%, so an honest enabled/disabled ratio would flap
(control experiments with recording stubbed out entirely still produced
ratios anywhere between 0.89x and 1.47x). The gate therefore decomposes
the measurement into two quantities that *are* stable at this scale:

1. ``search_seconds`` — cold full-engine rewrite cost per query (a
   fresh :class:`RewriteEngine` per query, so parse, normalize, real
   mapping enumeration and cost ranking all run with no memo hits),
   min over several sweeps.
2. ``recording_seconds`` — the amortized cost of everything an enabled
   search adds: the ``current_metrics()`` probes, the mapping-counter
   increments, the before/after stats and memo-counter tuple captures,
   and the final ``_record_search`` flush. Measured as a tight
   thousands-of-iterations loop over the real recording functions
   (min-of-k of the per-iteration average), which amortizes scheduler
   noise to well under a microsecond.

``overhead = 1 + recording_seconds / search_seconds`` is the gated
ratio. The raw A/B wall-clock numbers are still collected and reported
(``disabled_seconds`` / ``enabled_seconds`` / ``wall_ratio``) as
informational context, but are not asserted on. The report lands under
the versioned ``metrics`` key of ``BENCH_rewriting.json``.
"""

from __future__ import annotations

import time

from repro.core import planner as _planner
from repro.core.multiview import _mapping_counters
from repro.core.rewriter import RewriteEngine
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    collecting,
    current_metrics,
)
from repro.workloads import star

#: The acceptance gate: metrics-enabled cold planner throughput must be
#: within 3% of the disabled baseline.
MAX_OVERHEAD = 1.03

#: Iterations of the tight recording loop per timing sample.
RECORD_ITERS = 3_000


def _recording_seconds_per_search(registry: MetricsRegistry) -> float:
    """Amortized per-search cost of the enabled recording path.

    Replays exactly what one instrumented search adds on top of the
    planning work: the thread-local registry probes, two mapping-counter
    resolutions and increments (one per enumeration pass), the
    before-stats and before/after memo-tuple captures, and the final
    counter flush. Values are representative of a real star-workload
    search (a handful of nodes, views, and candidates per query).
    """
    stats = _planner.PlannerStats()
    stats.nodes_expanded = 5
    stats.views_considered = 10
    stats.views_pruned = 3
    stats.candidates_generated = 2
    stats.substitution_misses = 2

    def record_once() -> None:
        current_metrics()
        current_metrics()
        current_metrics()
        before = _planner._stats_tuple(stats)
        memo_before = _planner._memo_tuple()
        _mapping_counters(registry)[0].inc(3)
        _mapping_counters(registry)[1].inc(1)
        _planner._record_search(registry, before, memo_before, stats, 1)

    best = None
    with collecting(registry):
        record_once()  # warm the per-registry handle caches
        for _ in range(5):
            started = time.perf_counter()
            for _ in range(RECORD_ITERS):
                record_once()
            per_iter = (time.perf_counter() - started) / RECORD_ITERS
            best = per_iter if best is None or per_iter < best else best
    return best


def collect_metrics_metrics(repeats: int = 7, quick: bool = False) -> dict:
    """The ``metrics`` workload entry for ``BENCH_rewriting.json``."""
    repeats = max(3, min(repeats, 4) if quick else repeats)
    wl = star.generate(n_sales=200 if quick else 1_000)
    queries = list(wl.queries.values())

    def run_cold() -> None:
        # Fresh engine per query: every rewrite pays the full cold
        # production path (parse, normalize, search, rank), the regime
        # where per-search recording cost must vanish.
        for query in queries:
            engine = RewriteEngine(wl.catalog)
            engine.rewrite(query)

    def sample(fn) -> float:
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    registry = MetricsRegistry()

    def run_enabled() -> None:
        with collecting(registry):
            run_cold()

    run_cold()  # first-call warmup (imports, process-wide caches)
    run_enabled()
    disabled_samples = []
    enabled_samples = []
    for _ in range(repeats):
        disabled_samples.append(sample(run_cold))
        enabled_samples.append(sample(run_enabled))

    disabled_seconds = min(disabled_samples)
    enabled_seconds = min(enabled_samples)
    search_seconds = disabled_seconds / len(queries)
    recording_seconds = _recording_seconds_per_search(registry)
    overhead = (
        1.0 + recording_seconds / search_seconds if search_seconds > 0 else 1.0
    )
    assert overhead <= MAX_OVERHEAD, (
        f"metrics overhead gate: 1 + recording/search = {overhead:.4f} "
        f"exceeds {MAX_OVERHEAD} ({recording_seconds * 1e6:.2f}us recording "
        f"per {search_seconds * 1e6:.1f}us cold search)"
    )

    snapshot = registry.snapshot()
    searches = snapshot.counter_value("repro_planner_searches_total")
    return {
        "schema": METRICS_SCHEMA,
        "workload": "star",
        "queries": len(queries),
        "samples_per_arm": repeats,
        "searches_recorded": searches,
        "families_recorded": len(snapshot.families),
        "search_seconds": search_seconds,
        "recording_seconds": recording_seconds,
        "overhead": round(overhead, 4),
        "max_overhead": MAX_OVERHEAD,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "wall_ratio": (
            round(enabled_seconds / disabled_seconds, 4)
            if disabled_seconds > 0
            else 1.0
        ),
    }


def test_metrics_overhead_gate():
    """The ≤3% gate itself, runnable as a plain pytest."""
    report = collect_metrics_metrics(quick=True)
    assert report["overhead"] <= MAX_OVERHEAD
    assert report["searches_recorded"] > 0

#!/usr/bin/env python
"""Run the tier-1 tests, then the rewriting benchmarks, and write
``BENCH_rewriting.json`` at the repository root.

Usage::

    python benchmarks/run_benchmarks.py [--skip-tests] [--quick] [--output PATH]

The exit code is non-zero when the tier-1 tests fail or when any
planner/naive parity assertion inside a collector fires, so the script
doubles as the performance-regression gate described in DESIGN.md.
``--quick`` shrinks workload sizes and repeat counts for use as a CI
smoke gate (numbers are indicative only — do not compare them against a
full run).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT / "src", REPO_ROOT / "benchmarks"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))


def run_tier1_tests() -> int:
    """The repo's own test suite; benchmarks are meaningless if it fails."""
    print("== tier-1 tests ==", flush=True)
    env = {"PYTHONPATH": str(REPO_ROOT / "src")}
    import os

    env = {**os.environ, **env}
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"],
        cwd=REPO_ROOT,
        env=env,
    )
    return proc.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--skip-tests",
        action="store_true",
        help="skip the tier-1 pytest run (benchmarks only)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads / few repeats (CI smoke gate)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_rewriting.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if not args.skip_tests:
        code = run_tier1_tests()
        if code != 0:
            print("tier-1 tests failed; not benchmarking", file=sys.stderr)
            return code

    from repro.bench import BenchReport

    from bench_cache import collect_cache_metrics
    from bench_closure import collect_closure_metrics
    from bench_columnar import collect_columnar_metrics
    from bench_dialects import collect_dialects_metrics
    from bench_metrics import collect_metrics_metrics
    from bench_multiview import (
        collect_church_rosser_metrics,
        collect_multiview_metrics,
    )
    from bench_obs import collect_obs_metrics
    from bench_oracle import collect_oracle_metrics
    from bench_service import collect_service_metrics
    from bench_serving import collect_serving_metrics
    from bench_strategies import collect_strategies_metrics

    repeats = 2 if args.quick else 7
    report = BenchReport()
    if args.quick:
        report.meta["quick"] = True
    failures = 0
    for name, collector in [
        ("multiview", lambda: collect_multiview_metrics(repeats=repeats)),
        ("church_rosser", collect_church_rosser_metrics),
        ("cache", lambda: collect_cache_metrics(repeats=min(repeats, 5))),
        ("closure", lambda: collect_closure_metrics(repeats=min(repeats, 5))),
        ("obs", lambda: collect_obs_metrics(quick=args.quick)),
        (
            "metrics",
            lambda: collect_metrics_metrics(
                repeats=repeats, quick=args.quick
            ),
        ),
        (
            "service",
            lambda: collect_service_metrics(
                repeats=repeats, quick=args.quick
            ),
        ),
        (
            "serving",
            lambda: collect_serving_metrics(
                repeats=repeats, quick=args.quick
            ),
        ),
        ("oracle", lambda: collect_oracle_metrics(quick=args.quick)),
        ("columnar", lambda: collect_columnar_metrics(quick=args.quick)),
        ("dialects", lambda: collect_dialects_metrics(quick=args.quick)),
        (
            "strategies",
            lambda: collect_strategies_metrics(quick=args.quick),
        ),
    ]:
        print(f"== bench: {name} ==", flush=True)
        try:
            report.add_workload(name, **collector())
        except AssertionError as exc:
            # Parity violations are correctness bugs, not perf noise.
            failures += 1
            report.add_workload(name, error=str(exc))
            print(f"PARITY FAILURE in {name}: {exc}", file=sys.stderr)

    report.write(args.output)
    print(f"wrote {args.output}")

    multiview = report.workloads.get("multiview", {})
    if "speedup" in multiview and multiview["speedup"] is not None:
        print(
            f"multiview speedup: {multiview['speedup']:.2f}x "
            f"(naive {multiview['naive_seconds'] * 1e3:.2f} ms, "
            f"planner {multiview['planner_seconds'] * 1e3:.2f} ms)"
        )
    oracle = report.workloads.get("oracle", {})
    if "scenarios_per_sec" in oracle:
        print(
            f"oracle throughput: {oracle['scenarios_per_sec']:.0f} "
            f"scenarios/sec ({oracle['clean_checks']} checks, "
            f"{oracle['clean_rewritings']} rewritings cross-checked)"
        )
    service = report.workloads.get("service", {})
    if "speedup_at_4_workers" in service:
        print(
            f"service speedup at 4 workers: "
            f"{service['speedup_at_4_workers']:.2f}x vs per-request serial "
            f"({service['requests']} hot requests, "
            f"{service['groups']} signature groups)"
        )
    serving = report.workloads.get("serving", {})
    if "sustained_rps" in serving:
        print(
            f"serving daemon: {serving['sustained_rps']:.0f} req/s "
            f"sustained (p99 {serving['p99_seconds'] * 1e3:.2f} ms), "
            f"warm shared-memo {serving['warm_speedup']:.2f}x cold, "
            f"live invalidation without restart"
        )
    columnar = report.workloads.get("columnar", {})
    if "min_speedup_at_floor" in columnar:
        print(
            f"columnar speedup at {columnar['floor_rows']} rows: "
            f"{columnar['min_speedup_at_floor']:.1f}x – "
            f"{columnar['max_speedup_at_floor']:.1f}x vs row engine "
            f"(floor {columnar['speedup_floor']:.0f}x; parity sweep "
            f"{columnar['parity_sweep']['scenarios']} scenarios, "
            f"{columnar['parity_sweep']['checks']} checks, 0 mismatches)"
        )
    metrics = report.workloads.get("metrics", {})
    if "overhead" in metrics:
        print(
            f"metrics overhead: {metrics['overhead']:.4f}x "
            f"({metrics['recording_seconds'] * 1e6:.2f}us recording per "
            f"{metrics['search_seconds'] * 1e6:.1f}us cold search, "
            f"gate <= {metrics['max_overhead']})"
        )
    dialects = report.workloads.get("dialects", {})
    if "nway" in dialects:
        nway = dialects["nway"]
        print(
            f"dialects N-way sweep [{', '.join(nway['backends'])}]: "
            f"{nway['scenarios']} scenarios, {nway['checks']} checks, "
            f"{nway['mismatches']} mismatches "
            f"({nway['scenarios_per_sec']:.0f}/s)"
        )
    strategies = report.workloads.get("strategies", {})
    if "sweep" in strategies:
        sweep = strategies["sweep"]
        print(
            f"strategies sweep: {sweep['scenarios']} scenarios, "
            f"{sweep['mismatches']} mismatches, "
            f"{sweep['dominance_violations']} dominance violations; "
            f"coverage {sweep['c1c4_scenarios_answered']} (C1-C4) -> "
            f"{sweep['cohen_nutt_scenarios_answered']} (Cohen-Nutt), "
            f"search overhead "
            f"{strategies['latency']['completeness_overhead']}x"
        )
    print(json.dumps({"parity_failures": failures}))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

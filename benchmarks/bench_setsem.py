"""Experiment E7 — Section 5: keys, set semantics and many-to-1 mappings.

Measures (a) key inference for query results (Propositions 5.1/5.2 and
the FD closure behind them) and (b) the Example 5.1 rewriting path with
its many-to-1 mapping enumeration.
"""

import pytest

from repro import Catalog, parse_query, parse_view, table
from repro.bench import ResultTable, time_best
from repro.catalog.keys import core_key, result_is_set
from repro.core.setsem import try_rewrite_set_semantics
from repro.mappings.enumerate_mappings import enumerate_mappings


@pytest.fixture(scope="module")
def keyed_catalog():
    return Catalog(
        [
            table("R1", ["A", "B", "C"], key=["A"]),
            table("K", ["id", "ref", "val"], key=["id"]),
            table("L", ["lid", "w"], key=["lid"]),
        ]
    )


@pytest.fixture(scope="module")
def example_51(keyed_catalog):
    query = parse_query("SELECT A FROM R1 WHERE B = C", keyed_catalog)
    view = parse_view(
        "CREATE VIEW V1 (A2, A3) AS "
        "SELECT x.A, y.A FROM R1 x, R1 y WHERE x.B = y.C",
        keyed_catalog,
    )
    return query, view


def test_key_inference(keyed_catalog, benchmark):
    table_out = ResultTable(
        "E7: key inference for query results",
        ["query", "is_set", "core_key_size"],
    )
    queries = {
        "key retained": "SELECT id, val FROM K",
        "key dropped": "SELECT val FROM K",
        "fk join": "SELECT id, w FROM K, L WHERE ref = lid",
        "cartesian": "SELECT id, lid FROM K, L",
    }
    for name, sql in queries.items():
        block = parse_query(sql, keyed_catalog)
        key = core_key(block, keyed_catalog)
        table_out.add(
            name,
            result_is_set(block, keyed_catalog),
            len(key) if key else 0,
        )
    table_out.show()

    block = parse_query(
        "SELECT id, w FROM K, L WHERE ref = lid", keyed_catalog
    )
    benchmark(lambda: result_is_set(block, keyed_catalog))


def test_example_5_1_rewrite(keyed_catalog, example_51, benchmark):
    query, view = example_51

    def find():
        out = []
        for mapping in enumerate_mappings(
            view.block, query, many_to_one=True
        ):
            rewriting = try_rewrite_set_semantics(
                query, view, mapping, keyed_catalog
            )
            if rewriting is not None:
                out.append(rewriting)
        return out

    found = find()
    assert found, "Example 5.1 must be rewritable with the key"
    benchmark(find)


def test_set_semantics_overhead_vs_multiset(
    keyed_catalog, example_51, benchmark
):
    """How much the Section 5 machinery adds on top of the 1-1 path."""
    from repro.core.multiview import single_view_rewritings

    query, view = example_51
    table_out = ResultTable(
        "E7: rewriting search with and without set semantics",
        ["mode", "rewritings", "seconds"],
    )
    for mode, use_sets in (("multiset only", False), ("with Section 5", True)):
        found = single_view_rewritings(
            query, view, keyed_catalog, use_set_semantics=use_sets
        )
        seconds = time_best(
            lambda: single_view_rewritings(
                query, view, keyed_catalog, use_set_semantics=use_sets
            ),
            repeats=3,
        )
        table_out.add(mode, len(found), seconds)
    table_out.show()

    benchmark(
        lambda: single_view_rewritings(
            query, view, keyed_catalog, use_set_semantics=True
        )
    )

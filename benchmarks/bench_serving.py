"""Benchmark — the always-on rewriting daemon under mixed traffic.

The daemon's pitch over the batch service is *statefulness*: a
long-lived process keeps planners and the cross-worker memo tier warm
across requests, so the dashboard's hot query shapes pay their planner
warm-up once per fingerprint instead of once per request — while view
updates arriving mid-stream evict exactly the affected fingerprints and
force honest cold re-planning.

Three measurements, three gates:

1. **Mixed hot/cold workload** through a real socket: interleaved hot
   requests (repeated fingerprints), cold requests (one-off view-subset
   fingerprints) and periodic base-table updates that re-chill the hot
   set. Records sustained requests/sec and p99 latency — the numbers a
   deployment would see, including JSONL framing and syscall overhead.
2. **Warm-vs-cold A/B** in process (no socket noise): importing a hot
   fingerprint's memo from the *shared* tier must be at least
   ``MIN_WARM_SPEEDUP``x faster than planning it cold. This is the
   whole reason the memo tier exists, so it gates.
3. **Live invalidation**: a view update through the running daemon must
   bump the epoch and evict without a restart, and every post-update
   response must match a cold planner over the post-update catalog.

As everywhere in ``benchmarks/``, parity is asserted before any timing
is trusted: warm responses are compared field-for-field against
``execute_request`` cold plans.
"""

from __future__ import annotations

import contextlib
import statistics
import time

import pytest

from repro.bench import time_best
from repro.blocks.to_sql import block_to_sql
from repro.engine.database import Database
from repro.serving import PlannerCache, RewriteDaemon, ServingClient
from repro.serving.memo import LocalMemoTier, create_memo_tier
from repro.serving.worker import COLD, WARM_SHARED
from repro.service.executor import execute_request
from repro.service.requests import RewriteRequest
from repro.workloads.random_queries import random_scenario

#: Scenario driving the socket workload (needs >= 2 views for subsets).
DAEMON_SEED = 7
#: Hot fingerprints in the in-process A/B.
N_HOT_FINGERPRINTS = 6
#: Rounds of the mixed workload; each round ends in a view update that
#: re-chills the hot fingerprints.
N_ROUNDS = 4
#: Hot requests per round (all hit the same fingerprint).
HOT_PER_ROUND = 24
#: The acceptance gate: warm-starting a hot fingerprint from the shared
#: memo tier must beat cold planning by at least this factor.
MIN_WARM_SPEEDUP = 2.0


def scenario_with_views(seed: int, minimum: int = 2):
    for s in range(seed, seed + 50):
        sc = random_scenario(s)
        if len(sc.views) >= minimum:
            return sc
    raise AssertionError("no multi-view scenario found")


@contextlib.contextmanager
def daemon_on_thread(catalog, **kwargs):
    """A RewriteDaemon on a background event-loop thread.

    Self-contained twin of ``tests/serving/conftest.running_daemon`` —
    the benchmarks directory must stay importable without the test
    package on ``sys.path``.
    """
    import asyncio
    import threading

    daemon = RewriteDaemon(catalog, **kwargs)
    bound = threading.Event()
    failure: list = []

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(
                daemon.start(host="127.0.0.1", port=0)
            )
            bound.set()
            loop.run_until_complete(daemon.serve_forever())
        except BaseException as error:
            failure.append(error)
            bound.set()
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert bound.wait(timeout=30), "daemon did not bind in time"
    if failure:
        raise failure[0]
    try:
        yield daemon
    finally:
        daemon.stop()
        thread.join(timeout=30)
        assert not thread.is_alive(), "daemon did not shut down"


def rewriting_sqls(response) -> list[str]:
    return [r.sql() for r in response.rewritings]


def assert_cold_parity(doc: dict, request: RewriteRequest, context: str):
    """A daemon envelope must match a fresh cold planner bit for bit."""
    assert doc["ok"], f"{context}: {doc.get('error')}"
    cold = execute_request(request)
    got = [r["sql"] for r in doc["result"]["rewritings"]]
    assert got == rewriting_sqls(cold), f"{context}: rewritings diverge"
    assert doc["result"]["original_cost"] == cold.original_cost, context


# ----------------------------------------------------------------------
# 1. Mixed hot/cold workload over the socket


def run_mixed_workload(quick: bool = False) -> dict:
    sc = scenario_with_views(DAEMON_SEED)
    db = Database(sc.catalog)
    for name, rows in sc.instance.items():
        db.load(name, rows)
    hot_sql = block_to_sql(sc.query)
    subset_names = [view.name for view in sc.views]
    table = next(
        rel.name
        for view in sc.catalog.views.values()
        for rel in view.block.from_
    )
    width = len(sc.catalog.tables[table].columns)

    rounds = 2 if quick else N_ROUNDS
    hot_per_round = 8 if quick else HOT_PER_ROUND

    latencies: list[float] = []
    updates = 0
    with daemon_on_thread(sc.catalog, database=db) as daemon:
        with ServingClient.connect(
            ("127.0.0.1", daemon.tcp_port)
        ) as client:
            started = time.perf_counter()
            for round_no in range(rounds):
                # Hot: one fingerprint, re-asked over and over.
                for _ in range(hot_per_round):
                    t0 = time.perf_counter()
                    doc = client.rewrite(hot_sql, tenant="dash")
                    latencies.append(time.perf_counter() - t0)
                    assert doc["ok"], doc.get("error")
                # Cold-ish: per-view-subset fingerprints, asked once.
                for name in subset_names:
                    t0 = time.perf_counter()
                    doc = client.rewrite(hot_sql, views=[name])
                    latencies.append(time.perf_counter() - t0)
                    assert doc["ok"], doc.get("error")
                # An update lands mid-stream: affected fingerprints are
                # evicted and the next round's first hits plan cold —
                # that is what keeps the workload genuinely mixed.
                row = [round_no + 100] * width
                update = client.update(table, insert=[row])
                assert update["ok"], update.get("error")
                updates += 1
            elapsed = time.perf_counter() - started

            # Parity after the final update, against a cold planner on
            # the *post-update* catalog — then the daemon goes down.
            final = client.rewrite(hot_sql)
            assert_cold_parity(
                final,
                RewriteRequest(query=sc.query, catalog=sc.catalog),
                "mixed workload (post-update)",
            )

    n = len(latencies)
    ordered = sorted(latencies)
    p99 = ordered[min(n - 1, int(n * 0.99))]
    return {
        "rounds": rounds,
        "requests": n,
        "updates": updates,
        "hot_per_round": hot_per_round,
        "cold_subsets_per_round": len(subset_names),
        "elapsed_seconds": elapsed,
        "sustained_rps": n / elapsed if elapsed > 0 else None,
        "p50_seconds": statistics.median(ordered),
        "p99_seconds": p99,
        "parity": "ok",
    }


# ----------------------------------------------------------------------
# 2. Warm shared-memo path vs cold planning, in process


def hot_fingerprint_requests(count: int) -> list[RewriteRequest]:
    requests = []
    seed = 0
    while len(requests) < count:
        sc = random_scenario(seed)
        seed += 1
        requests.append(
            RewriteRequest(query=sc.query, catalog=sc.catalog)
        )
    return requests


def run_warm_cold_ab(repeats: int = 5, quick: bool = False) -> dict:
    count = 3 if quick else N_HOT_FINGERPRINTS
    timing_repeats = max(2, min(repeats, 3) if quick else repeats)
    requests = hot_fingerprint_requests(count)

    # Publish every fingerprint's memo into a genuinely shared tier —
    # the same segment a sibling worker process would attach to.
    tier = create_memo_tier()
    try:
        seeder = PlannerCache(tier)
        for request in requests:
            _r, key, view_names, export, path = seeder.run(request)
            assert path == COLD
            tier.publish(key, view_names, export)

        def run_cold() -> None:
            # A fresh cache over an empty tier: full planner warm-up.
            for request in requests:
                cache = PlannerCache(LocalMemoTier())
                _r, _k, _v, _e, path = cache.run(request)
                assert path == COLD

        def run_warm() -> None:
            # A fresh cache over the *populated shared* tier: the
            # import_memo warm-start a new worker process gets.
            for request in requests:
                cache = PlannerCache(tier)
                _r, _k, _v, _e, path = cache.run(request)
                assert path == WARM_SHARED

        # Parity first: the warm path must reproduce cold plans exactly.
        for request in requests:
            warm, _k, _v, _e, _p = PlannerCache(tier).run(request)
            cold = execute_request(request)
            assert rewriting_sqls(warm) == rewriting_sqls(cold)
            assert warm.original_cost == cold.original_cost

        cold_seconds = time_best(run_cold, repeats=timing_repeats)
        warm_seconds = time_best(run_warm, repeats=timing_repeats)
    finally:
        tier.close()
        tier.unlink()

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else None
    assert speedup is not None and speedup >= MIN_WARM_SPEEDUP, (
        f"serving regression: warm shared-memo path is {speedup:.2f}x "
        f"cold planning on hot fingerprints (floor {MIN_WARM_SPEEDUP}x)"
    )
    return {
        "fingerprints": count,
        "shared_tier": tier.name is not None,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": speedup,
        "parity": "ok",
    }


# ----------------------------------------------------------------------
# 3. View-update invalidation without a restart


def run_live_invalidation() -> dict:
    sc = scenario_with_views(DAEMON_SEED)
    db = Database(sc.catalog)
    for name, rows in sc.instance.items():
        db.load(name, rows)
    sql = block_to_sql(sc.query)
    table = next(
        rel.name
        for view in sc.catalog.views.values()
        for rel in view.block.from_
    )
    width = len(sc.catalog.tables[table].columns)

    with daemon_on_thread(sc.catalog, database=db) as daemon:
        with ServingClient.connect(
            ("127.0.0.1", daemon.tcp_port)
        ) as client:
            assert client.rewrite(sql)["ok"]  # publish the fingerprint
            epoch_before = client.ping()["result"]["epoch"]

            t0 = time.perf_counter()
            update = client.update(table, insert=[[1] * width])
            update_seconds = time.perf_counter() - t0
            assert update["ok"], update.get("error")
            result = update["result"]
            assert result["epoch"] > result["epoch_before"]
            assert set(result["invalidated_views"])

            # Same daemon, same connection: serving continues and the
            # response matches a cold planner on the fresh statistics.
            epoch_after = client.ping()["result"]["epoch"]
            assert epoch_after > epoch_before
            assert_cold_parity(
                client.rewrite(sql),
                RewriteRequest(query=sc.query, catalog=sc.catalog),
                "live invalidation",
            )
    return {
        "table": table,
        "epoch_before": epoch_before,
        "epoch_after": epoch_after,
        "invalidated_views": sorted(result["invalidated_views"]),
        "update_seconds": update_seconds,
        "restart_required": False,
        "parity": "ok",
    }


# ----------------------------------------------------------------------


def collect_serving_metrics(repeats: int = 5, quick: bool = False) -> dict:
    """Daemon throughput, memo-tier speedup and live invalidation."""
    ab = run_warm_cold_ab(repeats=repeats, quick=quick)
    mixed = run_mixed_workload(quick=quick)
    invalidation = run_live_invalidation()
    return {
        "workload": "mixed-hot-cold-daemon",
        "requests": mixed["requests"],
        "sustained_rps": mixed["sustained_rps"],
        "p99_seconds": mixed["p99_seconds"],
        "mixed": mixed,
        "warm_vs_cold": ab,
        "invalidation": invalidation,
        "warm_speedup": ab["warm_speedup"],
        "parity": "ok",
    }


# ----------------------------------------------------------------------
# pytest entry points (the benchmarks/ suite is also runnable directly)


def test_warm_shared_memo_beats_cold(benchmark):
    requests = hot_fingerprint_requests(3)
    tier = LocalMemoTier()
    seeder = PlannerCache(tier)
    for request in requests:
        _r, key, view_names, export, _p = seeder.run(request)
        tier.publish(key, view_names, export)

    def warm_pass():
        for request in requests:
            cache = PlannerCache(tier)
            response, _k, _v, _e, path = cache.run(request)
            assert path == WARM_SHARED
        return response

    warm = benchmark(warm_pass)
    cold = execute_request(requests[-1])
    assert rewriting_sqls(warm) == rewriting_sqls(cold)


def test_daemon_hot_loop_under_benchmark(benchmark):
    sc = random_scenario(DAEMON_SEED)
    sql = block_to_sql(sc.query)
    with daemon_on_thread(sc.catalog) as daemon:
        with ServingClient.connect(
            ("127.0.0.1", daemon.tcp_port)
        ) as client:
            client.rewrite(sql)  # warm the fingerprint

            def hot_request():
                doc = client.rewrite(sql)
                assert doc["ok"]
                return doc

            doc = benchmark(hot_request)
    assert_cold_parity(
        doc,
        RewriteRequest(query=sc.query, catalog=sc.catalog),
        "hot loop",
    )


def test_mixed_workload_gates():
    metrics = collect_serving_metrics(quick=True)
    assert metrics["warm_speedup"] >= MIN_WARM_SPEEDUP
    assert metrics["invalidation"]["restart_required"] is False
    assert metrics["parity"] == "ok"


if __name__ == "__main__":
    import json

    print(json.dumps(collect_serving_metrics(), indent=2))

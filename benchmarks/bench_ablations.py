"""Experiment E15 — ablations of the design choices DESIGN.md calls out.

A. **Hash-join planner vs naive product** (engine substrate): same core
   table, orders of magnitude apart once inputs stop being tiny.
B. **HAVING→WHERE normalization (Section 3.3)**: usability detection on
   queries whose selective conditions live in HAVING — without the
   pre-processing, the views look "too selective" and every pair is
   rejected.
C. **Count-weighted strategy vs the literal Va construction**: the
   fraction of aggregation-view pairs each strategy can rewrite (the
   Va construction demands aligned groups).
"""

import random

import pytest

from repro import Catalog, parse_query, parse_view, table
from repro.bench import ResultTable, time_best
from repro.core.aggregate import try_rewrite_aggregation
from repro.core.conjunctive import try_rewrite_conjunctive
from repro.core.paper_va import try_rewrite_paper_va
from repro.engine.database import Database
from repro.engine.evaluator import _build_core, _compile_predicate
from repro.engine.planner import build_core
from repro.mappings.enumerate_mappings import enumerate_mappings


def naive_core(block, resolve):
    rows, index = _build_core(block, resolve)
    for atom in block.where:
        predicate = _compile_predicate(atom, index)
        rows = [row for row in rows if predicate(row)]
    return rows


def test_ablation_planner(benchmark):
    catalog = Catalog([table("R", ["A", "B"]), table("S", ["C", "D"])])
    block = parse_query("SELECT A, D FROM R, S WHERE B = C", catalog)
    rng = random.Random(3)
    table_out = ResultTable(
        "E15a: hash-join planner vs naive product (seconds)",
        ["rows_per_side", "planner", "naive", "speedup"],
    )
    for n in (100, 400, 1600):
        db = Database(
            catalog,
            {
                "R": [(rng.randrange(50), rng.randrange(50)) for _ in range(n)],
                "S": [(rng.randrange(50), rng.randrange(50)) for _ in range(n)],
            },
        )

        def resolve(name):
            return db.table(name)

        t_fast = time_best(lambda: build_core(block, resolve), repeats=2)
        t_slow = time_best(lambda: naive_core(block, resolve), repeats=2)
        table_out.add(n, t_fast, t_slow, round(t_slow / t_fast, 1))
    table_out.show()

    db = Database(
        catalog,
        {
            "R": [(rng.randrange(50), rng.randrange(50)) for _ in range(400)],
            "S": [(rng.randrange(50), rng.randrange(50)) for _ in range(400)],
        },
    )
    benchmark(lambda: build_core(block, lambda n: db.table(n)))


def test_ablation_having_motion(benchmark):
    """Queries whose WHERE-able conditions sit in HAVING: with Section 3.3
    every pair is usable, without it none would be (the view's filter
    looks unmatched). We demonstrate by comparing against semantically
    identical queries whose conditions are already in WHERE."""
    catalog = Catalog([table("R", ["G", "H", "V"])])
    pairs = []
    for threshold in (0, 1, 2, 3):
        having_query = parse_query(
            f"SELECT G, SUM(V) FROM R GROUP BY G HAVING G > {threshold}",
            catalog,
        )
        view = parse_view(
            f"CREATE VIEW W{threshold} (G, V2) AS "
            f"SELECT G, V FROM R WHERE G > {threshold}",
            catalog,
        )
        pairs.append((having_query, view))

    usable = 0
    for query, view in pairs:
        for mapping in enumerate_mappings(view.block, query):
            if try_rewrite_conjunctive(query, view, mapping):
                usable += 1
                break
    table_out = ResultTable(
        "E15b: usability with Section 3.3 HAVING motion",
        ["pairs", "usable_with_motion", "usable_without"],
    )
    # Without the motion, Conds(Q) is empty and cannot entail the view's
    # filter: C3 fails for every pair by construction.
    table_out.add(len(pairs), usable, 0)
    table_out.show()
    assert usable == len(pairs)

    query, view = pairs[0]
    mapping = next(enumerate_mappings(view.block, query))
    benchmark(lambda: try_rewrite_conjunctive(query, view, mapping))


def test_ablation_strategy_applicability(benchmark):
    """Weighted strategy vs the literal Va construction across random
    aggregation pairs: the Va path needs group alignment, so it applies
    to strictly fewer pairs; where both apply, both verify."""
    from repro.workloads.random_queries import random_catalog, related_pair

    weighted = 0
    paper_va = 0
    total = 0
    for seed in range(120):
        rng = random.Random(200_000 + seed)
        catalog = random_catalog(rng)
        query, view = related_pair(catalog, rng)
        catalog.add_view(view)
        total += 1
        got_weighted = any(
            try_rewrite_aggregation(query, view, m)
            for m in enumerate_mappings(view.block, query)
        )
        got_va = any(
            try_rewrite_paper_va(query, view, m)
            for m in enumerate_mappings(view.block, query)
        )
        weighted += got_weighted
        paper_va += got_va
        # The Va path must never apply where the weighted one cannot.
        assert not (got_va and not got_weighted), seed

    table_out = ResultTable(
        "E15c: rewriting applicability by strategy (120 random pairs)",
        ["strategy", "pairs_rewritten"],
    )
    table_out.add("count-weighted (default)", weighted)
    table_out.add("literal Va (aligned only)", paper_va)
    table_out.show()
    assert weighted >= paper_va

    rng = random.Random(200_000)
    catalog = random_catalog(rng)
    query, view = related_pair(catalog, rng)
    benchmark(
        lambda: [
            try_rewrite_aggregation(query, view, m)
            for m in enumerate_mappings(view.block, query)
        ]
    )

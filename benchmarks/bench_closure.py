"""Experiment E9 — predicate-closure cost (Section 3.1, footnote 2).

The paper: "the closure of Conds(Q) has size polynomial in the size of
Conds(Q)" and condition checking works "by comparing the closures". We
measure closure construction + full entailed-atom enumeration on chains
of inequality predicates (the worst case for transitive reasoning) and on
equality-heavy conjunctions (union-find dominated).

Shape to observe: entailed-atom count grows quadratically (it is the
transitive closure of a chain); time stays polynomial, milliseconds at
query-sized inputs.
"""

import pytest

from repro.bench import ResultTable, time_best
from repro.blocks.terms import Column, Comparison, Constant, Op
from repro.constraints.closure import Closure


def chain(n: int) -> list[Comparison]:
    """x0 < x1 < ... < xn plus a constant anchor."""
    cols = [Column(f"x{i}") for i in range(n + 1)]
    atoms = [
        Comparison(cols[i], Op.LT, cols[i + 1]) for i in range(n)
    ]
    atoms.append(Comparison(cols[0], Op.GE, Constant(0)))
    return atoms


def equality_clusters(n: int) -> list[Comparison]:
    """n/4 clusters of 4 equal columns plus cross-cluster inequalities."""
    atoms = []
    for c in range(max(1, n // 4)):
        base = Column(f"e{c}_0")
        for j in range(1, 4):
            atoms.append(Comparison(base, Op.EQ, Column(f"e{c}_{j}")))
        if c:
            atoms.append(
                Comparison(Column(f"e{c - 1}_0"), Op.LE, base)
            )
    return atoms


def test_chain_scaling(benchmark):
    table = ResultTable(
        "E9: closure of inequality chains",
        ["atoms", "entailed_atoms", "seconds"],
    )
    for n in (4, 8, 16, 32, 64):
        atoms = chain(n)
        closure = Closure(atoms)
        entailed = len(closure)
        seconds = time_best(lambda: len(Closure(atoms)), repeats=3)
        table.add(len(atoms), entailed, seconds)
    table.show()

    # Quadratic size check: doubling the chain ~quadruples the closure.
    small, large = len(Closure(chain(16))), len(Closure(chain(32)))
    assert 2.5 <= large / small <= 6

    atoms = chain(16)
    benchmark(lambda: len(Closure(atoms)))


def test_equality_scaling(benchmark):
    table = ResultTable(
        "E9: closure of equality clusters",
        ["atoms", "entailed_atoms", "seconds"],
    )
    for n in (8, 16, 32, 64):
        atoms = equality_clusters(n)
        seconds = time_best(lambda: len(Closure(atoms)), repeats=3)
        table.add(len(atoms), len(Closure(atoms)), seconds)
    table.show()

    atoms = equality_clusters(32)
    benchmark(lambda: Closure(atoms).satisfiable)


def test_entailment_query(benchmark):
    """Single entailment queries after construction are near-free."""
    atoms = chain(32)
    closure = Closure(atoms)
    goal = Comparison(Column("x0"), Op.LT, Column("x32"))
    assert closure.entails(goal)
    benchmark(lambda: closure.entails(goal))


def test_residual_computation(benchmark):
    """The full condition-C3 workload at realistic query size."""
    from repro.constraints.residual import find_residual

    conds_q = chain(12)
    view_conds = conds_q[:6]
    allowed = [Column(f"x{i}") for i in range(0, 13, 2)]
    benchmark(lambda: find_residual(conds_q, view_conds, allowed))


# ----------------------------------------------------------------------
# Machine-readable metrics (BENCH_rewriting.json)
# ----------------------------------------------------------------------


def collect_closure_metrics(repeats: int = 5) -> dict:
    """Closure construction cost and the closure-memo payoff."""
    from repro.constraints.closure import (
        clear_closure_cache,
        closure_cache_stats,
        closure_of,
    )

    scaling = []
    for n in (8, 16, 32):
        atoms = chain(n)
        scaling.append(
            {
                "atoms": len(atoms),
                "entailed_atoms": len(Closure(atoms)),
                "seconds": time_best(
                    lambda a=atoms: len(Closure(a)), repeats=repeats
                ),
            }
        )

    # Memo payoff: the same conjunction re-closed, as repeated C2/C3
    # checks do during a multi-view search.
    atoms = chain(16)
    clear_closure_cache()
    t_cold = time_best(lambda: Closure(atoms), repeats=repeats)
    closure_of(atoms)  # prime
    t_memo = time_best(lambda: closure_of(atoms), repeats=repeats)
    stats = closure_cache_stats()
    return {
        "chain_scaling": scaling,
        "construct_seconds": t_cold,
        "memoized_seconds": t_memo,
        "speedup": t_cold / t_memo if t_memo > 0 else None,
        "cache_stats": stats.as_dict(),
    }

"""Columnar-engine benchmarks: row-vs-columnar speedup and parity.

The ``columnar`` workload entry in ``BENCH_rewriting.json`` records, for
each workload size (10k / 100k / 1M rows in a full run), the row-engine
and columnar-engine times for the star and telephony join+aggregate
queries, their speedups, and the result of a randomized three-way
parity sweep (row engine = columnar engine = SQLite, enforced by
:class:`~repro.oracle.CrossChecker` in ``engine="both"`` mode).

Two hard gates, mirroring the parity collectors in the other bench
modules (an :class:`AssertionError` fails ``run_benchmarks.py``):

* every timed query must be multiset-equal across the two engines;
* in a full run the 1M-row join workloads must hit the ISSUE's
  ≥ 10x columnar-vs-row speedup floor.

Timings are warm: the one-time column transposition of each base table
(cached on :class:`~repro.engine.table.Table`) is paid before the best
repeat, matching the load-once-query-many shape the engine serves.
"""

from __future__ import annotations

from repro.bench import ResultTable, speedup, time_best
from repro.oracle.values import rows_multiset_equal
from repro.workloads import star, telephony

#: Schema version of the ``columnar`` workload entry.
VERSION = 1

SIZES_FULL = (10_000, 100_000, 1_000_000)
SIZES_QUICK = (2_000, 20_000)

#: The ISSUE acceptance floor: columnar must be at least this many times
#: faster than the row engine on the 1M-row join workloads.
SPEEDUP_FLOOR = 10.0
FLOOR_ROWS = 1_000_000

PARITY_SEEDS_FULL = 120
PARITY_SEEDS_QUICK = 30


def _bench_query(db, query, repeats: int) -> tuple[float, float]:
    """Best-of-``repeats`` times for both engines, with a parity gate."""
    row_rows = db.execute(query, engine="row").rows
    col_rows = db.execute(query, engine="columnar").rows
    assert rows_multiset_equal(row_rows, col_rows), (
        "row/columnar parity violation on benchmark query "
        f"({len(row_rows)} vs {len(col_rows)} rows)"
    )
    row_s = time_best(lambda: db.execute(query, engine="row"), repeats)
    col_s = time_best(lambda: db.execute(query, engine="columnar"), repeats)
    return row_s, col_s


def _workloads(rows: int):
    """(name, db, query) triples at the given fact-table size."""
    star_wl = star.generate(n_sales=rows, seed=7)
    star_db = star_wl.database()
    tel_wl = telephony.generate(n_calls=rows, seed=7)
    yield (
        "star/category_revenue",
        star_db,
        star_wl.queries["category_revenue"],
    )
    yield (
        "star/store_december",
        star_db,
        star_wl.queries["store_december"],
    )
    yield ("telephony/plan_charges", tel_wl.database(), tel_wl.query)


def _parity_sweep(seeds: int) -> dict:
    """Randomized three-way sweep; asserts zero mismatches."""
    from repro.errors import OracleUnsupported
    from repro.fuzz.generate import fuzz_scenario
    from repro.oracle import CrossChecker

    checker = CrossChecker(max_rewritings=4, engine="both")
    scenarios = 0
    checks = 0
    skipped = 0
    for seed in range(seeds):
        scenario = fuzz_scenario(seed)
        try:
            report = checker.check(scenario)
        except OracleUnsupported:
            skipped += 1
            continue
        assert report.ok, (
            f"three-way parity violation at seed {seed}:\n"
            + report.describe()
        )
        scenarios += 1
        checks += report.checks
    return {
        "seeds": seeds,
        "scenarios": scenarios,
        "checks": checks,
        "skipped": skipped,
    }


def collect_columnar_metrics(quick: bool = False) -> dict:
    """The ``columnar`` workload entry for ``BENCH_rewriting.json``."""
    sizes = SIZES_QUICK if quick else SIZES_FULL
    table_out = ResultTable(
        "columnar vs row engine (warm, best-of-N)",
        ["workload", "rows", "row_s", "columnar_s", "speedup"],
    )
    measurements = []
    floor_checked = 0
    for rows in sizes:
        repeats = 2 if rows >= 100_000 else 4
        for name, db, query in _workloads(rows):
            row_s, col_s = _bench_query(db, query, repeats)
            gain = speedup(row_s, col_s)
            table_out.add(name, rows, row_s, col_s, f"{gain:.1f}x")
            measurements.append(
                {
                    "workload": name,
                    "rows": rows,
                    "row_seconds": row_s,
                    "columnar_seconds": col_s,
                    "speedup": gain,
                }
            )
            if not quick and rows >= FLOOR_ROWS and "/" in name:
                # The floor applies to the join workloads at 1M rows; a
                # pure scan+group query has less row-engine overhead to
                # eliminate and is reported but not gated.
                if name in (
                    "star/category_revenue",
                    "star/store_december",
                    "telephony/plan_charges",
                ):
                    floor_checked += 1
                    assert gain >= SPEEDUP_FLOOR, (
                        f"columnar speedup floor regressed: {name} at "
                        f"{rows} rows is {gain:.2f}x < {SPEEDUP_FLOOR}x"
                    )
    table_out.show()
    if not quick:
        assert floor_checked >= 3, "1M-row floor workloads did not run"

    parity = _parity_sweep(PARITY_SEEDS_QUICK if quick else PARITY_SEEDS_FULL)

    metrics: dict = {
        "version": VERSION,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_rows": FLOOR_ROWS,
        "measurements": measurements,
        "parity_sweep": parity,
    }
    floor_gains = [
        m["speedup"]
        for m in measurements
        if m["rows"] >= FLOOR_ROWS and m["speedup"] is not None
    ]
    if floor_gains:
        metrics["min_speedup_at_floor"] = min(floor_gains)
        metrics["max_speedup_at_floor"] = max(floor_gains)
    return metrics


if __name__ == "__main__":
    import json

    print(json.dumps(collect_columnar_metrics(quick=True), indent=2))

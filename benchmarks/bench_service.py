"""Benchmark — the concurrent batch rewriting service.

Hot-query traffic is the service's reason to exist: a warehouse
dashboard re-asks the same G query shapes over and over, so a batch of
G x M requests collapses into G signature groups whose planner warm-up
(view-signature index + substitution memo) is paid once per group
instead of once per request.

The baseline is per-request serial ``api.rewrite`` — a fresh engine and
cold planner per call, exactly what a caller without the service would
do. Against it we measure the service in steady state (a long-lived
service that has seen the traffic shape before: live planners in serial
mode, memo-store warm starts in thread mode), which is the deployment
the batch layer targets; the cold first submit is recorded separately.

Every configuration's responses are asserted bit-identical to the
baseline before any timing is trusted, and the ``speedup_at_4_workers``
gate (>= 2.5x) makes this file the service's performance-regression
tripwire in ``run_benchmarks.py``.

Note on parallelism: on a single-CPU host (such as the CI container)
the speedup comes from signature-grouping amortization, not from true
concurrency — thread workers add GIL overhead and the process pool pays
fork/pickle costs. ``scaling_efficiency`` records the honest per-worker
numbers either way.
"""

from __future__ import annotations

import time

import pytest

from repro import api
from repro.bench import time_best
from repro.service import BatchRewriteService, RewriteRequest
from repro.workloads.random_queries import random_scenario

#: Distinct query shapes (signature groups) in the hot workload.
N_GROUPS = 8
#: Repeats of each shape per batch — the amortization lever.
N_REPEATS = 12

#: The acceptance gate: steady-state batch throughput at 4 workers must
#: beat the per-request serial baseline by at least this factor.
MIN_SPEEDUP_AT_4 = 2.5

CONFIGS = (
    ("serial", 1),
    ("thread", 1),
    ("thread", 2),
    ("thread", 4),
    ("thread", 8),
    ("process", 2),
)


def hot_requests(groups: int = N_GROUPS, repeats: int = N_REPEATS):
    """G x M requests: every shape repeated M times, interleaved."""
    scenarios = [random_scenario(seed) for seed in range(groups)]
    requests = []
    for _ in range(repeats):
        for scenario in scenarios:
            requests.append(
                RewriteRequest(query=scenario.query, catalog=scenario.catalog)
            )
    return requests


def run_baseline(requests):
    """What callers did before the service: one cold rewrite per request."""
    return [api.rewrite(r.query, r.catalog) for r in requests]


def assert_parity(responses, baseline, context: str) -> None:
    for got, want in zip(responses, baseline):
        assert got.rewritings == want.rewritings, (
            f"{context}: batch results diverge from per-request serial"
        )
        assert got.error is None, f"{context}: {got.error}"


def collect_service_metrics(repeats: int = 5, quick: bool = False) -> dict:
    """Throughput and scaling of the batch service vs the serial baseline."""
    groups = 4 if quick else N_GROUPS
    per_query = 8 if quick else N_REPEATS
    timing_repeats = max(2, min(repeats, 3) if quick else repeats)

    requests = hot_requests(groups, per_query)
    n = len(requests)

    baseline = run_baseline(requests)
    baseline_seconds = time_best(
        lambda: run_baseline(requests), repeats=timing_repeats
    )

    results: dict[str, dict] = {}
    thread_seconds: dict[int, float] = {}
    for mode, workers in CONFIGS:
        service = BatchRewriteService(mode=mode, workers=workers)
        started = time.perf_counter()
        cold = service.submit(requests)
        cold_seconds = time.perf_counter() - started
        assert_parity(cold, baseline, f"{mode}-{workers} (cold)")
        steady_seconds = time_best(
            lambda: service.submit(requests), repeats=timing_repeats
        )
        assert_parity(
            service.submit(requests), baseline, f"{mode}-{workers} (steady)"
        )
        results[f"{mode}-{workers}"] = {
            "mode": mode,
            "workers": workers,
            "cold_seconds": cold_seconds,
            "steady_seconds": steady_seconds,
            "steady_rps": n / steady_seconds if steady_seconds > 0 else None,
            "speedup_vs_baseline": (
                baseline_seconds / steady_seconds
                if steady_seconds > 0
                else None
            ),
        }
        if mode == "thread":
            thread_seconds[workers] = steady_seconds

    t1 = thread_seconds.get(1)
    scaling_efficiency = {
        str(w): round(t1 / (t * w), 3)
        for w, t in thread_seconds.items()
        if t1 is not None and t > 0
    }

    speedup_at_4 = results["thread-4"]["speedup_vs_baseline"]
    assert speedup_at_4 is not None and speedup_at_4 >= MIN_SPEEDUP_AT_4, (
        f"service regression: steady-state throughput at 4 workers is "
        f"{speedup_at_4:.2f}x the serial baseline (floor "
        f"{MIN_SPEEDUP_AT_4}x)"
    )

    return {
        "workload": "hot-queries",
        "groups": groups,
        "repeats_per_query": per_query,
        "requests": n,
        "baseline_seconds": baseline_seconds,
        "baseline_rps": n / baseline_seconds if baseline_seconds > 0 else None,
        "configs": results,
        "speedup_at_4_workers": speedup_at_4,
        "scaling_efficiency": scaling_efficiency,
        "parity": "ok",
    }


# ----------------------------------------------------------------------
# pytest entry points (the benchmarks/ suite is also runnable directly)


@pytest.fixture(scope="module")
def workload():
    requests = hot_requests(4, 6)
    return requests, run_baseline(requests)


def test_steady_state_batch_beats_baseline(workload, benchmark):
    requests, baseline = workload
    service = BatchRewriteService(mode="serial")
    service.submit(requests)  # warm the live planners
    result = benchmark(lambda: service.submit(requests))
    assert_parity(result, baseline, "serial steady")


def test_thread_mode_parity_under_benchmark(workload, benchmark):
    requests, baseline = workload
    service = BatchRewriteService(mode="thread", workers=4)
    service.submit(requests)
    result = benchmark(lambda: service.submit(requests))
    assert_parity(result, baseline, "thread-4 steady")


if __name__ == "__main__":
    import json

    print(json.dumps(collect_service_metrics(), indent=2))

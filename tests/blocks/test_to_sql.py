"""QueryBlock -> SQL rendering: re-parsing yields an isomorphic block."""

import pytest

from repro.blocks.normalize import parse_query, parse_view
from repro.blocks.to_sql import block_to_sql, view_to_sql
from repro.core.canonical import blocks_isomorphic

ROUNDTRIP_QUERIES = [
    "SELECT A FROM R1",
    "SELECT A, B FROM R1 WHERE A = B AND B < 3",
    "SELECT R1.A, SUM(B) FROM R1, R2 WHERE R1.A = C GROUP BY R1.A",
    "SELECT x.A, y.B FROM R1 x, R1 y WHERE x.B = y.A",
    "SELECT DISTINCT A FROM R1",
    "SELECT A, SUM(B) AS s FROM R1 GROUP BY A HAVING SUM(B) > 10 AND A <> 2",
    "SELECT COUNT(B) FROM R1 WHERE A = 'name'",
]


@pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
def test_roundtrip_isomorphic(sql, rs_catalog):
    block = parse_query(sql, rs_catalog)
    rendered = block_to_sql(block)
    again = parse_query(rendered, rs_catalog)
    assert blocks_isomorphic(block, again), rendered


def test_self_join_gets_aliases(rs_catalog):
    block = parse_query(
        "SELECT x.A FROM R1 x, R1 y WHERE x.A = y.B", rs_catalog
    )
    rendered = block_to_sql(block)
    assert "AS" in rendered  # both occurrences need aliases
    again = parse_query(rendered, rs_catalog)
    assert blocks_isomorphic(block, again)


def test_single_occurrence_uses_plain_name(rs_catalog):
    rendered = block_to_sql(parse_query("SELECT A FROM R1", rs_catalog))
    assert "R1.A" in rendered or "SELECT A" in rendered
    assert " AS " not in rendered.split("\n")[1]  # FROM line has no alias


def test_view_to_sql_roundtrip(rs_catalog):
    view = parse_view(
        "CREATE VIEW V (x, y, n) AS "
        "SELECT A, B, COUNT(B) FROM R1 GROUP BY A, B",
        rs_catalog,
    )
    rendered = view_to_sql(view)
    assert rendered.startswith("CREATE VIEW V (x, y, n) AS")
    view2 = parse_view(rendered, rs_catalog)
    assert view2.output_names == view.output_names
    assert blocks_isomorphic(view.block, view2.block)


def test_rewritten_arithmetic_renders(rs_catalog):
    # Rewritings produce SUM(N * E)-style items; these must print and
    # re-parse.
    block = parse_query("SELECT A, SUM(A * B) AS w FROM R1 GROUP BY A", rs_catalog)
    again = parse_query(block_to_sql(block), rs_catalog)
    assert blocks_isomorphic(block, again)

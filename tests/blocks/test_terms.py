"""Unit tests for terms, operators and comparisons."""

import pytest

from repro.blocks.terms import Column, Comparison, Constant, Op


class TestOp:
    @pytest.mark.parametrize(
        "op,flipped",
        [
            (Op.LT, Op.GT),
            (Op.LE, Op.GE),
            (Op.EQ, Op.EQ),
            (Op.GE, Op.LE),
            (Op.GT, Op.LT),
            (Op.NE, Op.NE),
        ],
    )
    def test_flip(self, op, flipped):
        assert op.flipped is flipped
        assert op.flipped.flipped is op

    @pytest.mark.parametrize(
        "op,negated",
        [
            (Op.LT, Op.GE),
            (Op.LE, Op.GT),
            (Op.EQ, Op.NE),
            (Op.GE, Op.LT),
            (Op.GT, Op.LE),
            (Op.NE, Op.EQ),
        ],
    )
    def test_negate(self, op, negated):
        assert op.negated is negated
        assert op.negated.negated is op

    def test_holds_exhaustive(self):
        cases = {
            Op.LT: (1, 2, True),
            Op.LE: (2, 2, True),
            Op.EQ: (2, 2, True),
            Op.GE: (3, 2, True),
            Op.GT: (3, 2, True),
            Op.NE: (1, 2, True),
        }
        for op, (a, b, expected) in cases.items():
            assert op.holds(a, b) is expected
            # flipping arguments and operator preserves truth
            assert op.flipped.holds(b, a) is expected
            # negation inverts truth
            assert op.negated.holds(a, b) is (not expected)

    def test_is_order(self):
        assert Op.LT.is_order and Op.GT.is_order
        assert not Op.EQ.is_order and not Op.NE.is_order


class TestComparison:
    def test_flipped_preserves_meaning(self):
        atom = Comparison(Column("A"), Op.LT, Column("B"))
        assert atom.flipped == Comparison(Column("B"), Op.GT, Column("A"))

    def test_normalized_orientation(self):
        gt = Comparison(Column("A"), Op.GT, Column("B"))
        assert gt.normalized().op is Op.LT
        assert gt.normalized().left == Column("B")

    def test_normalized_symmetric_ops_sorted(self):
        ba = Comparison(Column("B"), Op.EQ, Column("A"))
        ab = Comparison(Column("A"), Op.EQ, Column("B"))
        assert ba.normalized() == ab.normalized()

    def test_normalized_constant_ordering(self):
        atom = Comparison(Constant(5), Op.EQ, Column("A"))
        norm = atom.normalized()
        assert norm.left == Column("A")

    def test_substitute(self):
        atom = Comparison(Column("A"), Op.LE, Column("B"))
        out = atom.substitute({Column("A"): Column("X")})
        assert out == Comparison(Column("X"), Op.LE, Column("B"))

    def test_substitute_leaves_constants(self):
        atom = Comparison(Column("A"), Op.EQ, Constant(3))
        out = atom.substitute({Column("A"): Column("X")})
        assert out.right == Constant(3)


class TestConstant:
    def test_str_quotes_strings(self):
        assert str(Constant("o'neil")) == "'o''neil'"
        assert str(Constant(42)) == "42"

    def test_is_numeric(self):
        assert Constant(1).is_numeric and Constant(1.5).is_numeric
        assert not Constant("x").is_numeric

    def test_equal_int_float_constants_unify(self):
        # 2 == 2.0 in Python; the closure relies on this for node identity.
        assert Constant(2) == Constant(2.0)
        assert hash(Constant(2)) == hash(Constant(2.0))

"""Normalization: SQL text to uniquely named QueryBlocks (Section 2)."""

import pytest

from repro.blocks.exprs import AggFunc, Aggregate
from repro.blocks.normalize import as_block, parse_query, parse_view
from repro.blocks.terms import Column, Constant, Op
from repro.errors import (
    NormalizationError,
    SchemaError,
    UnsupportedSQLError,
)


class TestUniqueNaming:
    def test_every_occurrence_gets_fresh_columns(self, rs_catalog):
        q = parse_query(
            "SELECT x.A FROM R1 x, R1 y WHERE x.A = y.B", rs_catalog
        )
        assert len(q.cols()) == 4  # two occurrences x two columns
        assert q.from_[0].columns != q.from_[1].columns

    def test_same_base_name_distinct_tables(self, rs_catalog):
        q = parse_query("SELECT A, C FROM R1, R2", rs_catalog)
        names = {c.name for c in q.cols()}
        assert len(names) == 4

    def test_base_names_recorded(self, rs_catalog):
        q = parse_query("SELECT A FROM R1", rs_catalog)
        assert q.from_[0].base_names == ("A", "B")


class TestResolution:
    def test_unqualified_unique(self, rs_catalog):
        q = parse_query("SELECT B FROM R1, R2", rs_catalog)
        assert q.select[0].expr == q.from_[0].columns[1]

    def test_qualified_by_table(self, rs_catalog):
        q = parse_query("SELECT R2.D FROM R1, R2", rs_catalog)
        assert q.select[0].expr == q.from_[1].columns[1]

    def test_qualified_by_alias(self, rs_catalog):
        q = parse_query("SELECT y.A FROM R1 x, R1 y", rs_catalog)
        assert q.select[0].expr == q.from_[1].columns[0]

    def test_unknown_column(self, rs_catalog):
        with pytest.raises(SchemaError):
            parse_query("SELECT Z FROM R1", rs_catalog)

    def test_unknown_table(self, rs_catalog):
        with pytest.raises(SchemaError):
            parse_query("SELECT A FROM Nope", rs_catalog)

    def test_unknown_qualifier(self, rs_catalog):
        with pytest.raises(SchemaError):
            parse_query("SELECT z.A FROM R1", rs_catalog)

    def test_ambiguous_column(self, rs_catalog):
        with pytest.raises(NormalizationError):
            parse_query("SELECT A FROM R1 x, R1 y", rs_catalog)

    def test_duplicate_table_without_alias(self, rs_catalog):
        with pytest.raises(NormalizationError):
            parse_query("SELECT A FROM R1, R1", rs_catalog)

    def test_qualifier_wrong_column(self, rs_catalog):
        with pytest.raises(SchemaError):
            parse_query("SELECT R1.D FROM R1, R2", rs_catalog)


class TestExpressions:
    def test_count_star_normalizes_to_first_column(self, rs_catalog):
        q = parse_query("SELECT COUNT(*) FROM R1", rs_catalog)
        agg = q.select[0].expr
        assert isinstance(agg, Aggregate) and agg.func is AggFunc.COUNT
        assert agg.arg == q.from_[0].columns[0]

    def test_constants(self, rs_catalog):
        q = parse_query("SELECT A FROM R1 WHERE B = 'txt' AND A < 3", rs_catalog)
        assert q.where[0].right == Constant("txt")
        assert q.where[1].op is Op.LT

    def test_where_arithmetic_rejected(self, rs_catalog):
        with pytest.raises(UnsupportedSQLError):
            parse_query("SELECT A FROM R1 WHERE A + 1 = B", rs_catalog)

    def test_having_aggregate(self, rs_catalog):
        q = parse_query(
            "SELECT A FROM R1 GROUP BY A HAVING MIN(B) <= 2", rs_catalog
        )
        agg = q.having[0].left
        assert isinstance(agg, Aggregate) and agg.func is AggFunc.MIN

    def test_validation_applied(self, rs_catalog):
        with pytest.raises(NormalizationError):
            parse_query("SELECT B FROM R1 GROUP BY A", rs_catalog)


class TestParseView:
    def test_create_view_with_columns(self, rs_catalog):
        v = parse_view(
            "CREATE VIEW V (x, y) AS SELECT A, B FROM R1", rs_catalog
        )
        assert v.name == "V" and v.output_names == ("x", "y")

    def test_bare_select_needs_name(self, rs_catalog):
        with pytest.raises(NormalizationError):
            parse_view("SELECT A FROM R1", rs_catalog)

    def test_bare_select_with_name(self, rs_catalog):
        v = parse_view("SELECT A, B FROM R1", rs_catalog, name="W")
        assert v.name == "W" and v.output_names == ("A", "B")

    def test_name_overrides_create(self, rs_catalog):
        v = parse_view(
            "CREATE VIEW V AS SELECT A FROM R1", rs_catalog, name="Other"
        )
        assert v.name == "Other"


class TestAsBlock:
    def test_accepts_all_forms(self, rs_catalog):
        from repro.sqlparser.parser import parse_select

        text = "SELECT A FROM R1"
        block = parse_query(text, rs_catalog)
        assert as_block(text, rs_catalog) == block
        assert as_block(parse_select(text), rs_catalog) == block
        assert as_block(block, rs_catalog) is block


class TestViewColumnsInFrom:
    def test_query_over_view(self, rs_catalog):
        v = parse_view(
            "CREATE VIEW V (x, y) AS SELECT A, B FROM R1", rs_catalog
        )
        rs_catalog.add_view(v)
        q = parse_query("SELECT x FROM V WHERE y > 1", rs_catalog)
        assert q.from_[0].name == "V"
        assert q.from_[0].base_names == ("x", "y")

"""View unfolding (Section 7: multi-block to single-block)."""

import random

import pytest

from repro import Catalog, Database, parse_query, parse_view, table, unfold_views
from repro.blocks.unfold import unfold_once


@pytest.fixture
def catalog():
    cat = Catalog([table("R", ["A", "B"]), table("S", ["C", "D"])])
    cat.add_view(
        parse_view(
            "CREATE VIEW V (A, D) AS SELECT A, D FROM R, S WHERE B = C",
            cat,
        )
    )
    cat.add_view(
        parse_view(
            "CREATE VIEW W (A2) AS SELECT A FROM V WHERE D = 1", cat
        )
    )
    cat.add_view(
        parse_view(
            "CREATE VIEW AggV (A, N) AS SELECT A, COUNT(B) FROM R GROUP BY A",
            cat,
        )
    )
    return cat


def assert_unfold_equivalent(catalog, sql, seed=0, trials=30):
    query = parse_query(sql, catalog)
    flat = unfold_views(query, catalog)
    rng = random.Random(seed)
    for _ in range(trials):
        db = Database(
            catalog,
            {
                "R": [
                    (rng.randint(0, 2), rng.randint(0, 2))
                    for _ in range(rng.randint(0, 6))
                ],
                "S": [
                    (rng.randint(0, 2), rng.randint(0, 2))
                    for _ in range(rng.randint(0, 6))
                ],
            },
        )
        left, right = db.execute(query), db.execute(flat)
        assert left.multiset_equal(right), (sql, left.rows, right.rows)
    return query, flat


class TestUnfold:
    def test_base_tables_appear(self, catalog):
        _query, flat = assert_unfold_equivalent(
            catalog, "SELECT A FROM V WHERE D = 2"
        )
        assert {rel.name for rel in flat.from_} == {"R", "S"}
        assert len(flat.where) == 2  # B = C from the view, D = 2 from Q

    def test_aggregation_query_over_view(self, catalog):
        _query, flat = assert_unfold_equivalent(
            catalog, "SELECT A, COUNT(D) FROM V GROUP BY A"
        )
        assert flat.is_aggregation
        assert {rel.name for rel in flat.from_} == {"R", "S"}

    def test_nested_views(self, catalog):
        _query, flat = assert_unfold_equivalent(catalog, "SELECT A2 FROM W")
        assert {rel.name for rel in flat.from_} == {"R", "S"}

    def test_mixed_view_and_table(self, catalog):
        _query, flat = assert_unfold_equivalent(
            catalog, "SELECT V.A, R.B FROM V, R WHERE V.A = R.A"
        )
        names = sorted(rel.name for rel in flat.from_)
        assert names == ["R", "R", "S"]

    def test_self_join_of_view(self, catalog):
        _query, flat = assert_unfold_equivalent(
            catalog, "SELECT x.A FROM V x, V y WHERE x.D = y.A"
        )
        names = sorted(rel.name for rel in flat.from_)
        assert names == ["R", "R", "S", "S"]

    def test_aggregation_view_left_in_place(self, catalog):
        query = parse_query("SELECT A, N FROM AggV", catalog)
        assert unfold_once(query, catalog) is None
        assert unfold_views(query, catalog) == query

    def test_plain_query_untouched(self, catalog):
        query = parse_query("SELECT A FROM R", catalog)
        assert unfold_views(query, catalog) is query

    def test_unfolded_query_validates(self, catalog):
        query = parse_query(
            "SELECT A, SUM(D) FROM V WHERE A > 0 GROUP BY A "
            "HAVING SUM(D) < 9",
            catalog,
        )
        flat = unfold_views(query, catalog)
        flat.validate()
        assert flat.having and flat.group_by


class TestUnfoldThenRewrite:
    def test_reassembled_from_other_view(self, catalog):
        """A query written over V can, after unfolding, be answered from a
        summary view over the same base tables."""
        from repro import RewriteEngine

        summary = parse_view(
            "CREATE VIEW Summary (A, S, N) AS "
            "SELECT R.A, SUM(D), COUNT(D) FROM R, S WHERE B = C GROUP BY R.A",
            catalog,
        )
        catalog.add_view(summary)
        engine = RewriteEngine(catalog)
        sql = "SELECT A, SUM(D) FROM V GROUP BY A"

        without = engine.rewrite(sql)  # V's outputs don't match Summary
        with_unfold = engine.rewrite(sql, unfold=True)
        assert any(
            "Summary" in r.rewriting.view_names for r in with_unfold
        )
        # and the unfolded rewriting is correct on data
        rng = random.Random(3)
        db = Database(
            catalog,
            {
                "R": [(rng.randint(0, 2), rng.randint(0, 2)) for _ in range(8)],
                "S": [(rng.randint(0, 2), rng.randint(0, 2)) for _ in range(8)],
            },
        )
        best = with_unfold.best()
        left = db.execute(parse_query(sql, catalog))
        right = db.execute(best.query, extra_views=best.extra_views())
        assert left.multiset_equal(right)

"""Unit tests for the expression algebra."""

from repro.blocks.exprs import (
    AggFunc,
    Aggregate,
    Arith,
    ArithOp,
    aggregates_in,
    columns_in,
    div,
    has_aggregate,
    is_row_expr,
    mul,
    substitute_expr,
)
from repro.blocks.terms import Column, Constant

A, B, N = Column("A"), Column("B"), Column("N")


class TestTraversal:
    def test_columns_in_nested(self):
        expr = div(Aggregate(AggFunc.SUM, mul(N, A)), Aggregate(AggFunc.SUM, N))
        assert sorted(c.name for c in columns_in(expr)) == ["A", "N", "N"]

    def test_columns_in_constant(self):
        assert list(columns_in(Constant(3))) == []

    def test_aggregates_in(self):
        expr = mul(Aggregate(AggFunc.COUNT, A), Aggregate(AggFunc.MAX, B))
        found = list(aggregates_in(expr))
        assert len(found) == 2
        assert {agg.func for agg in found} == {AggFunc.COUNT, AggFunc.MAX}

    def test_has_aggregate(self):
        assert has_aggregate(Aggregate(AggFunc.MIN, A))
        assert has_aggregate(mul(Constant(2), Aggregate(AggFunc.MIN, A)))
        assert not has_aggregate(mul(A, B))


class TestRowExpr:
    def test_plain_and_arith_are_row_exprs(self):
        assert is_row_expr(A)
        assert is_row_expr(Constant(1))
        assert is_row_expr(mul(A, Constant(2)))

    def test_aggregates_are_not(self):
        assert not is_row_expr(Aggregate(AggFunc.SUM, A))
        assert not is_row_expr(mul(A, Aggregate(AggFunc.SUM, B)))


class TestSubstitute:
    def test_substitute_deep(self):
        expr = div(Aggregate(AggFunc.SUM, mul(N, A)), Aggregate(AggFunc.SUM, N))
        out = substitute_expr(expr, {A: B, N: Column("M")})
        names = sorted(c.name for c in columns_in(out))
        assert names == ["B", "M", "M"]

    def test_substitute_identity(self):
        expr = mul(A, B)
        assert substitute_expr(expr, {}) == expr


class TestArithOp:
    def test_apply(self):
        assert ArithOp.ADD.apply(2, 3) == 5
        assert ArithOp.SUB.apply(2, 3) == -1
        assert ArithOp.MUL.apply(2, 3) == 6
        assert ArithOp.DIV.apply(6, 3) == 2


class TestDuplicateSensitivity:
    def test_paper_classification(self):
        # Section 4: SUM/COUNT/AVG need multiplicities, MIN/MAX do not.
        assert AggFunc.SUM.is_duplicate_sensitive
        assert AggFunc.COUNT.is_duplicate_sensitive
        assert AggFunc.AVG.is_duplicate_sensitive
        assert not AggFunc.MIN.is_duplicate_sensitive
        assert not AggFunc.MAX.is_duplicate_sensitive


class TestRendering:
    def test_str_forms(self):
        assert str(Aggregate(AggFunc.SUM, A)) == "SUM(A)"
        assert str(mul(N, A)) == "(N * A)"
        assert str(Arith(ArithOp.ADD, A, Constant(1))) == "(A + 1)"

"""Nested queries: derived tables in FROM (Section 7 fragment)."""

import random
import sqlite3

import pytest

from repro import Catalog, Database, RewriteEngine, table
from repro.blocks.nested import (
    NestedQuery,
    nested_to_sql,
    parse_nested_query,
)
from repro.errors import NormalizationError, UnsupportedSQLError


@pytest.fixture
def catalog():
    return Catalog([table("R", ["A", "B", "C"]), table("S", ["D", "E"])])


def run_sqlite(sql, r_rows, s_rows):
    conn = sqlite3.connect(":memory:")
    conn.execute("CREATE TABLE R (A INTEGER, B INTEGER, C INTEGER)")
    conn.execute("CREATE TABLE S (D INTEGER, E INTEGER)")
    conn.executemany("INSERT INTO R VALUES (?, ?, ?)", r_rows)
    conn.executemany("INSERT INTO S VALUES (?, ?)", s_rows)
    rows = conn.execute(sql).fetchall()
    conn.close()
    return sorted(tuple(row) for row in rows)


NESTED_QUERIES = [
    # aggregation subquery, grouped again outside
    "SELECT t.A, SUM(t.s) FROM "
    "(SELECT A, B, SUM(C) AS s FROM R GROUP BY A, B) t GROUP BY t.A",
    # conjunctive subquery with an outer join to a base table
    "SELECT t.A, E FROM (SELECT A, B FROM R WHERE C = 1) t, S "
    "WHERE t.B = D",
    # nested nesting
    "SELECT u.A, COUNT(u.s) FROM "
    "(SELECT t.A AS A, t.s AS s FROM "
    "(SELECT A, B, SUM(C) AS s FROM R GROUP BY A, B) t WHERE t.s > 2) u "
    "GROUP BY u.A",
    # subquery plus residual filter outside
    "SELECT t.B FROM (SELECT A, B FROM R) t WHERE t.A = 2",
    # two subqueries joined
    "SELECT x.A, y.m FROM (SELECT A, B FROM R WHERE C = 0) x, "
    "(SELECT A AS A2, MAX(C) AS m FROM R GROUP BY A) y "
    "WHERE x.A = y.A2",
]


class TestParsing:
    def test_locals_collected(self, catalog):
        nested = parse_nested_query(NESTED_QUERIES[0], catalog)
        assert len(nested.local_views) == 1
        assert nested.block.from_[0].name == nested.local_views[0].name

    def test_nested_nesting_ordered(self, catalog):
        nested = parse_nested_query(NESTED_QUERIES[2], catalog)
        assert len(nested.local_views) == 2
        # Inner definition precedes the one that references it.
        first, second = nested.local_views
        assert any(rel.name == first.name for rel in second.block.from_)

    def test_alias_required(self, catalog):
        from repro.errors import SQLSyntaxError

        with pytest.raises(SQLSyntaxError):
            parse_nested_query("SELECT A FROM (SELECT A FROM R)", catalog)

    def test_parse_query_rejects_derived_tables(self, catalog):
        from repro.blocks.normalize import parse_query

        with pytest.raises(UnsupportedSQLError):
            parse_query("SELECT t.A FROM (SELECT A FROM R) t", catalog)

    def test_duplicate_output_names_need_aliases(self, catalog):
        with pytest.raises(NormalizationError):
            parse_nested_query(
                "SELECT t.A FROM (SELECT R.A, S.D AS A FROM R, S) t",
                catalog,
            )


class TestEvaluationAgainstSqlite:
    @pytest.mark.parametrize("sql", NESTED_QUERIES)
    def test_matches_sqlite(self, catalog, sql):
        rng = random.Random(hash(sql) & 0xFFFF)
        for _trial in range(8):
            r_rows = [
                (rng.randint(0, 2), rng.randint(0, 2), rng.randint(0, 3))
                for _ in range(rng.randint(0, 8))
            ]
            s_rows = [
                (rng.randint(0, 2), rng.randint(0, 3))
                for _ in range(rng.randint(0, 5))
            ]
            db = Database(catalog, {"R": r_rows, "S": s_rows})
            ours = sorted(db.execute(sql).rows)
            theirs = run_sqlite(sql, r_rows, s_rows)
            assert ours == theirs, (sql, r_rows, s_rows)

    @pytest.mark.parametrize("sql", NESTED_QUERIES)
    def test_printed_form_matches_too(self, catalog, sql):
        """nested_to_sql output is valid SQL with identical semantics."""
        nested = parse_nested_query(sql, catalog)
        rendered = nested_to_sql(nested)
        rng = random.Random(1)
        r_rows = [
            (rng.randint(0, 2), rng.randint(0, 2), rng.randint(0, 3))
            for _ in range(8)
        ]
        s_rows = [(rng.randint(0, 2), rng.randint(0, 3)) for _ in range(4)]
        assert run_sqlite(rendered, r_rows, s_rows) == run_sqlite(
            sql, r_rows, s_rows
        ), rendered


class TestFlatten:
    def test_conjunctive_local_disappears(self, catalog):
        nested = parse_nested_query(NESTED_QUERIES[1], catalog)
        flat = nested.flatten(catalog)
        assert flat.local_views == ()
        assert {rel.name for rel in flat.block.from_} == {"R", "S"}

    def test_aggregation_local_survives(self, catalog):
        nested = parse_nested_query(NESTED_QUERIES[0], catalog)
        flat = nested.flatten(catalog)
        assert len(flat.local_views) == 1

    def test_flatten_preserves_semantics(self, catalog):
        rng = random.Random(5)
        for sql in NESTED_QUERIES:
            nested = parse_nested_query(sql, catalog)
            flat = nested.flatten(catalog)
            for _trial in range(6):
                db = Database(
                    catalog,
                    {
                        "R": [
                            (rng.randint(0, 2), rng.randint(0, 2), rng.randint(0, 3))
                            for _ in range(6)
                        ],
                        "S": [
                            (rng.randint(0, 2), rng.randint(0, 3))
                            for _ in range(4)
                        ],
                    },
                )
                assert db.execute(nested).multiset_equal(db.execute(flat)), sql


class TestNestedRewriting:
    @pytest.fixture
    def engine(self):
        catalog = Catalog(
            [
                table(
                    "Calls",
                    ["Call_Id", "Plan_Id", "Month", "Year", "Charge"],
                    key=["Call_Id"],
                    row_count=100_000,
                    distinct={"Plan_Id": 8, "Month": 12, "Year": 2},
                ),
            ]
        )
        engine = RewriteEngine(catalog)
        engine.add_view(
            "CREATE VIEW Monthly (Plan_Id, Month, Year, Rev, N) AS "
            "SELECT Plan_Id, Month, Year, SUM(Charge), COUNT(Charge) "
            "FROM Calls GROUP BY Plan_Id, Month, Year",
            row_count=200,
        )
        return engine

    @pytest.fixture
    def db(self, engine):
        rng = random.Random(0)
        rows = [
            (
                i,
                rng.randrange(4),
                rng.randint(1, 12),
                rng.choice([1994, 1995]),
                rng.randint(1, 100),
            )
            for i in range(300)
        ]
        return Database(engine.catalog, {"Calls": rows})

    INNER_SQL = (
        "SELECT t.Plan_Id, SUM(t.Rev) FROM "
        "(SELECT Plan_Id, Month, SUM(Charge) AS Rev FROM Calls "
        "WHERE Year = 1995 GROUP BY Plan_Id, Month) t "
        "GROUP BY t.Plan_Id"
    )

    def test_inner_block_rewritten(self, engine, db):
        result = engine.rewrite_nested(self.INNER_SQL)
        assert result.inner_rewrites
        assert "Monthly" in result.used_views
        assert db.execute(self.INNER_SQL).multiset_equal(result.execute(db))

    def test_flattened_outer_rewritten(self, engine, db):
        sql = (
            "SELECT s.Plan_Id, SUM(s.Charge) FROM "
            "(SELECT Plan_Id, Charge, Year FROM Calls WHERE Year = 1995) s "
            "GROUP BY s.Plan_Id"
        )
        result = engine.rewrite_nested(sql)
        assert result.flattened.local_views == ()
        assert result.outer.best() is not None
        assert db.execute(sql).multiset_equal(result.execute(db))

    def test_no_views_falls_back(self, db):
        engine = RewriteEngine(db.catalog.copy().__class__([
            table("Calls", ["Call_Id", "Plan_Id", "Month", "Year", "Charge"]),
        ]))
        # a fresh engine with no registered views over an identical schema
        db2 = Database(engine.catalog, {"Calls": db.table("Calls").rows})
        result = engine.rewrite_nested(self.INNER_SQL)
        assert not result.inner_rewrites and result.outer.best() is None
        assert db2.execute(self.INNER_SQL).multiset_equal(result.execute(db2))

    def test_same_view_for_two_subqueries(self, engine, db):
        sql = (
            "SELECT a.Plan_Id, a.r, b.r FROM "
            "(SELECT Plan_Id, SUM(Charge) AS r FROM Calls WHERE Year = 1995 "
            "GROUP BY Plan_Id) a, "
            "(SELECT Plan_Id AS p2, SUM(Charge) AS r FROM Calls "
            "WHERE Year = 1994 GROUP BY Plan_Id) b "
            "WHERE a.Plan_Id = b.p2"
        )
        result = engine.rewrite_nested(sql)
        assert len(result.inner_rewrites) == 2
        assert db.execute(sql).multiset_equal(result.execute(db))

"""FreshNames allocation and base-name recovery."""

from repro.blocks.naming import FreshNames, base_of
from repro.blocks.terms import Column


class TestFreshNames:
    def test_sequential_per_base(self):
        namer = FreshNames()
        assert namer.column("A").name == "A$1"
        assert namer.column("A").name == "A$2"
        assert namer.column("B").name == "B$1"

    def test_avoids_taken(self):
        namer = FreshNames(["A$1", "A$2"])
        assert namer.column("A").name == "A$3"

    def test_reserve(self):
        namer = FreshNames()
        namer.reserve(["C$1"])
        assert namer.column("C").name == "C$2"

    def test_columns_batch(self):
        namer = FreshNames()
        cols = namer.columns(["x", "y"])
        assert [c.name for c in cols] == ["x$1", "y$1"]

    def test_no_collisions_ever(self):
        namer = FreshNames()
        names = {namer.column("A").name for _ in range(100)}
        assert len(names) == 100


class TestBaseOf:
    def test_strips_suffix(self):
        assert base_of(Column("Charge$3")) == "Charge"

    def test_plain_name_unchanged(self):
        assert base_of(Column("Charge")) == "Charge"

    def test_dollar_without_digits(self):
        assert base_of(Column("a$b")) == "a$b"

"""QueryBlock accessors and validation rules."""

import pytest

from repro.blocks.exprs import AggFunc, Aggregate, mul
from repro.blocks.query_block import QueryBlock, Relation, SelectItem, ViewDef
from repro.blocks.terms import Column, Comparison, Constant, Op
from repro.errors import NormalizationError

A, B, C, D = Column("A"), Column("B"), Column("C"), Column("D")


def rel(name, *cols, bases=None):
    return Relation(
        name,
        tuple(cols),
        tuple(bases) if bases else tuple(c.name for c in cols),
    )


def simple_aggregation():
    return QueryBlock(
        select=(
            SelectItem(A),
            SelectItem(Aggregate(AggFunc.SUM, B), "total"),
        ),
        from_=(rel("R", A, B), rel("S", C, D)),
        where=(Comparison(A, Op.EQ, C),),
        group_by=(A,),
        having=(Comparison(Aggregate(AggFunc.SUM, B), Op.GT, Constant(5)),),
    )


class TestAccessors:
    def test_paper_notation(self):
        q = simple_aggregation()
        assert q.cols() == frozenset({A, B, C, D})
        assert q.col_sel() == (A,)
        assert q.agg_sel() == frozenset({B})
        assert q.group_by == (A,)
        assert len(q.select_aggregates()) == 1
        assert len(q.having_aggregates()) == 1
        assert len(q.all_aggregates()) == 2

    def test_conjunctive_flag(self):
        q = QueryBlock(select=(SelectItem(A),), from_=(rel("R", A, B),))
        assert q.is_conjunctive and not q.is_aggregation
        assert simple_aggregation().is_aggregation

    def test_output_names(self):
        q = simple_aggregation()
        assert q.output_names() == ("A", "total")

    def test_relation_of(self):
        q = simple_aggregation()
        assert q.relation_of(C).name == "S"
        with pytest.raises(NormalizationError):
            q.relation_of(Column("nope"))

    def test_where_columns(self):
        assert simple_aggregation().where_columns() == frozenset({A, C})


class TestSubstitute:
    def test_substitution_touches_every_clause(self):
        q = simple_aggregation()
        X = Column("X")
        out = q.substitute({A: X})
        assert out.col_sel() == (X,)
        assert out.group_by == (X,)
        assert out.from_[0].columns == (X, B)
        assert out.where[0].left == X

    def test_substitute_preserves_distinct(self):
        q = QueryBlock(
            select=(SelectItem(A),), from_=(rel("R", A, B),), distinct=True
        )
        assert q.substitute({A: Column("X")}).distinct


class TestValidation:
    def test_valid_passes(self):
        simple_aggregation().validate()

    def test_empty_select_rejected(self):
        with pytest.raises(NormalizationError):
            QueryBlock(select=(), from_=(rel("R", A),)).validate()

    def test_empty_from_rejected(self):
        with pytest.raises(NormalizationError):
            QueryBlock(select=(SelectItem(A),), from_=()).validate()

    def test_duplicate_columns_across_tables_rejected(self):
        with pytest.raises(NormalizationError):
            QueryBlock(
                select=(SelectItem(A),),
                from_=(rel("R", A, B), rel("S", A)),
            ).validate()

    def test_unknown_column_rejected(self):
        with pytest.raises(NormalizationError):
            QueryBlock(
                select=(SelectItem(Column("ghost")),),
                from_=(rel("R", A),),
            ).validate()

    def test_ungrouped_select_column_rejected(self):
        with pytest.raises(NormalizationError):
            QueryBlock(
                select=(SelectItem(B), SelectItem(Aggregate(AggFunc.SUM, A))),
                from_=(rel("R", A, B),),
                group_by=(A,),
            ).validate()

    def test_having_without_grouping_rejected(self):
        with pytest.raises(NormalizationError):
            QueryBlock(
                select=(SelectItem(A),),
                from_=(rel("R", A, B),),
                having=(Comparison(A, Op.GT, Constant(1)),),
            ).validate()

    def test_bare_column_with_aggregate_no_groupby_rejected(self):
        with pytest.raises(NormalizationError):
            QueryBlock(
                select=(SelectItem(A), SelectItem(Aggregate(AggFunc.SUM, B))),
                from_=(rel("R", A, B),),
            ).validate()

    def test_nested_aggregate_rejected(self):
        with pytest.raises(NormalizationError):
            QueryBlock(
                select=(
                    SelectItem(
                        Aggregate(AggFunc.SUM, Aggregate(AggFunc.MIN, A))
                    ),
                ),
                from_=(rel("R", A, B),),
            ).validate()

    def test_aggregate_of_product_is_valid(self):
        QueryBlock(
            select=(SelectItem(Aggregate(AggFunc.SUM, mul(A, B)), "s"),),
            from_=(rel("R", A, B),),
        ).validate()

    def test_where_side_must_be_term(self):
        with pytest.raises(NormalizationError):
            QueryBlock(
                select=(SelectItem(A),),
                from_=(rel("R", A, B),),
                where=(Comparison(mul(A, B), Op.EQ, Constant(1)),),
            ).validate()

    def test_duplicate_group_by_rejected(self):
        with pytest.raises(NormalizationError):
            QueryBlock(
                select=(SelectItem(A),),
                from_=(rel("R", A, B),),
                group_by=(A, A),
            ).validate()


class TestRelation:
    def test_base_name_mapping(self):
        r = rel("R", A, B, bases=["x", "y"])
        assert r.base_name_of(A) == "x"
        assert r.column_for("y") == B

    def test_mismatched_arity_rejected(self):
        with pytest.raises(NormalizationError):
            Relation("R", (A, B), ("x",))

    def test_duplicate_base_names_rejected(self):
        with pytest.raises(NormalizationError):
            Relation("R", (A, B), ("x", "x"))


class TestViewDef:
    def test_output_names_default_from_block(self):
        block = QueryBlock(
            select=(SelectItem(A), SelectItem(B, "bee")),
            from_=(rel("R", A, B),),
        )
        view = ViewDef("V", block)
        assert view.output_names == ("A", "bee")

    def test_duplicate_output_names_rejected(self):
        block = QueryBlock(
            select=(SelectItem(A), SelectItem(A)),
            from_=(rel("R", A, B),),
        )
        with pytest.raises(NormalizationError):
            ViewDef("V", block)

    def test_wrong_arity_rejected(self):
        block = QueryBlock(select=(SelectItem(A),), from_=(rel("R", A, B),))
        with pytest.raises(NormalizationError):
            ViewDef("V", block, ("x", "y"))

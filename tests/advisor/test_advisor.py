"""View-selection advisor: candidates, greedy choice, budget handling."""

import pytest

from repro import Catalog, parse_query, table
from repro.advisor import (
    candidate_for,
    generate_candidates,
    merge_candidates,
    recommend_views,
)
from repro.core.multiview import single_view_rewritings


@pytest.fixture
def catalog():
    return Catalog(
        [
            table(
                "Fact",
                ["K", "G", "H", "V"],
                key=["K"],
                row_count=100_000,
                distinct={"G": 10, "H": 50, "V": 1000},
            ),
            table("Dim", ["G", "Name"], key=["G"], row_count=10),
        ]
    )


class TestCandidateGeneration:
    def test_candidate_answers_its_query(self, catalog):
        query = parse_query(
            "SELECT G, SUM(V) FROM Fact WHERE H = 3 GROUP BY G", catalog
        )
        candidate = candidate_for(query)
        assert candidate is not None
        from repro.blocks.query_block import ViewDef

        view = ViewDef("C", candidate, tuple(f"c{i}" for i in range(len(candidate.select))))
        trial = catalog.copy()
        trial.add_view(view)
        assert single_view_rewritings(query, view, trial)

    def test_constant_columns_become_grouping(self, catalog):
        query = parse_query(
            "SELECT G, SUM(V) FROM Fact WHERE H = 3 GROUP BY G", catalog
        )
        candidate = candidate_for(query)
        group_bases = {
            candidate.relation_of(c).base_name_of(c)
            for c in candidate.group_by
        }
        assert group_bases == {"G", "H"}
        # ... but the constant itself must not be baked into the view
        assert not candidate.where

    def test_join_conditions_kept(self, catalog):
        query = parse_query(
            "SELECT Name, SUM(V) FROM Fact, Dim "
            "WHERE Fact.G = Dim.G GROUP BY Name",
            catalog,
        )
        candidate = candidate_for(query)
        assert len(candidate.where) == 1

    def test_count_output_always_present(self, catalog):
        query = parse_query(
            "SELECT G, MIN(V) FROM Fact GROUP BY G", catalog
        )
        candidate = candidate_for(query)
        assert any("COUNT" in str(i.expr) for i in candidate.select)

    def test_avg_carried_as_sum(self, catalog):
        query = parse_query(
            "SELECT G, AVG(V) FROM Fact GROUP BY G", catalog
        )
        candidate = candidate_for(query)
        assert any("SUM" in str(i.expr) for i in candidate.select)

    def test_conjunctive_query_no_candidate(self, catalog):
        query = parse_query("SELECT K, V FROM Fact", catalog)
        assert candidate_for(query) is None

    def test_dedup_and_merge(self, catalog):
        q1 = parse_query("SELECT G, SUM(V) FROM Fact GROUP BY G", catalog)
        q2 = parse_query("SELECT G, SUM(V) FROM Fact GROUP BY G", catalog)
        q3 = parse_query("SELECT H, COUNT(V) FROM Fact GROUP BY H", catalog)
        candidates = generate_candidates([q1, q2, q3])
        names = len(candidates)
        # q1/q2 collapse; q3 is separate; plus one merged (G,H) candidate.
        assert names == 3

    def test_merge_unions_groups_and_aggregates(self, catalog):
        left = candidate_for(
            parse_query("SELECT G, SUM(V) FROM Fact GROUP BY G", catalog)
        )
        right = candidate_for(
            parse_query("SELECT H, MIN(V) FROM Fact GROUP BY H", catalog)
        )
        merged = merge_candidates(left, right)
        assert merged is not None
        assert len(merged.group_by) == 2
        rendered = str(merged)
        assert "SUM" in rendered and "MIN" in rendered


class TestRecommendation:
    WORKLOAD = [
        "SELECT G, SUM(V) FROM Fact GROUP BY G",
        "SELECT G, H, COUNT(V) FROM Fact GROUP BY G, H",
        "SELECT H, AVG(V) FROM Fact GROUP BY H",
    ]

    def test_improves_workload(self, catalog):
        rec = recommend_views(catalog, self.WORKLOAD)
        assert rec.views
        assert rec.workload_cost_after < rec.workload_cost_before
        assert rec.workload_speedup > 10

    def test_reports_per_query(self, catalog):
        rec = recommend_views(catalog, self.WORKLOAD)
        assert len(rec.per_query) == len(self.WORKLOAD)
        assert all(r.view_used for r in rec.per_query)

    def test_budget_respected(self, catalog):
        generous = recommend_views(catalog, self.WORKLOAD)
        tight = recommend_views(
            catalog, self.WORKLOAD, space_budget_rows=60
        )
        assert tight.total_size_rows <= 60
        assert len(tight.views) <= len(generous.views)

    def test_zero_budget_chooses_nothing(self, catalog):
        rec = recommend_views(catalog, self.WORKLOAD, space_budget_rows=0)
        assert rec.views == []
        assert rec.workload_speedup == pytest.approx(1.0)

    def test_max_views_cap(self, catalog):
        rec = recommend_views(catalog, self.WORKLOAD, max_views=1)
        assert len(rec.views) == 1

    def test_unanswerable_queries_unharmed(self, catalog):
        workload = self.WORKLOAD + ["SELECT K, V FROM Fact"]
        rec = recommend_views(catalog, workload)
        detail = rec.per_query[-1]
        assert detail.view_used is None
        assert detail.speedup == pytest.approx(1.0)

    def test_chosen_views_actually_answer_on_data(self, catalog):
        """End to end: materialize the recommendation, run the workload
        through the rewriter, compare answers against direct evaluation."""
        import random

        from repro import Database, RewriteEngine

        rec = recommend_views(catalog, self.WORKLOAD)
        trial = catalog.copy()
        engine = RewriteEngine(trial)
        for view in rec.views:
            engine.add_view(view)
        rng = random.Random(0)
        db = Database(
            trial,
            {
                "Fact": [
                    (i, rng.randint(0, 3), rng.randint(0, 3), rng.randint(0, 9))
                    for i in range(50)
                ],
                "Dim": [(g, f"g{g}") for g in range(4)],
            },
        )
        for sql in self.WORKLOAD:
            best = engine.rewrite(sql).best()
            assert best is not None
            left = db.execute(sql)
            right = db.execute(best.query, extra_views=best.extra_views())
            assert left.multiset_equal(right), sql

    def test_summary_text(self, catalog):
        rec = recommend_views(catalog, self.WORKLOAD)
        text = rec.summary()
        assert "chosen views" in text and "workload cost" in text

"""Shared harness for daemon tests: a background event-loop thread."""

from __future__ import annotations

import asyncio
import contextlib
import threading

import pytest

from repro.engine.database import Database
from repro.serving import RewriteDaemon
from repro.workloads.random_queries import random_scenario


@contextlib.contextmanager
def running_daemon(catalog, *, unix_path=None, **kwargs):
    """Start a RewriteDaemon on a background thread; yields the daemon
    once its sockets are bound. Always shuts it down on exit."""
    daemon = RewriteDaemon(catalog, **kwargs)
    bound = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(
                daemon.start(
                    host="127.0.0.1" if unix_path is None else None,
                    port=0,
                    unix_path=unix_path,
                )
            )
            bound.set()
            loop.run_until_complete(daemon.serve_forever())
        except BaseException as error:  # surface in the test thread
            failure.append(error)
            bound.set()
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert bound.wait(timeout=30), "daemon did not bind in time"
    if failure:
        raise failure[0]
    try:
        yield daemon
    finally:
        daemon.stop()
        thread.join(timeout=30)
        assert not thread.is_alive(), "daemon did not shut down"


@pytest.fixture
def scenario():
    """One rewriting-rich random scenario with a loaded database."""
    sc = random_scenario(7)
    db = Database(sc.catalog)
    for name, rows in sc.instance.items():
        db.load(name, rows)
    return sc, db

"""Admission control: the bounded queue and per-tenant quotas."""

from __future__ import annotations

from repro.obs.budget import SearchBudget
from repro.serving import (
    QUEUE_FULL,
    TENANT_QUOTA,
    AdmissionController,
    TenantQuota,
)


def test_queue_limit_refuses_then_release_frees():
    ctrl = AdmissionController(queue_limit=2)
    assert ctrl.admit("a") is None
    assert ctrl.admit("b") is None
    assert ctrl.depth == 2
    assert ctrl.admit("c") == QUEUE_FULL
    ctrl.release("a")
    assert ctrl.depth == 1
    assert ctrl.admit("c") is None


def test_zero_queue_limit_refuses_everything():
    ctrl = AdmissionController(queue_limit=0)
    assert ctrl.admit() == QUEUE_FULL


def test_tenant_quota_isolated_per_tenant():
    ctrl = AdmissionController(
        queue_limit=10,
        tenant_quotas={"dash": TenantQuota(max_inflight=1)},
    )
    assert ctrl.admit("dash") is None
    assert ctrl.admit("dash") == TENANT_QUOTA
    # Other tenants are unaffected by dash's cap.
    assert ctrl.admit("etl") is None
    ctrl.release("dash")
    assert ctrl.admit("dash") is None


def test_default_quota_applies_to_unnamed_tenants():
    ctrl = AdmissionController(
        queue_limit=10, default_quota=TenantQuota(max_inflight=1)
    )
    assert ctrl.admit() is None
    assert ctrl.admit() == TENANT_QUOTA


def test_budget_cap_tightens_only():
    quota = TenantQuota(deadline_ms_cap=50.0)
    cap = quota.budget_cap()
    assert cap.deadline == 0.05
    looser = SearchBudget(deadline=10.0).merged_with(cap)
    assert looser.deadline == 0.05
    tighter = SearchBudget(deadline=0.001).merged_with(cap)
    assert tighter.deadline == 0.001
    assert TenantQuota().budget_cap() is None

"""The wire protocol: parsing, strategies, serving fingerprints."""

from __future__ import annotations

import json

import pytest

from repro.serving import (
    ProtocolError,
    parse_line,
    register_strategy,
    request_from_wire,
    resolve_strategy,
    serving_group_key,
    strategy_names,
)
from repro.serving.protocol import _STRATEGIES, budget_from_wire
from repro.workloads.random_queries import random_scenario


class TestParseLine:
    def test_bare_string_is_a_rewrite(self):
        obj = parse_line(json.dumps("SELECT 1 FROM T"))
        assert obj["op"] == "rewrite"
        assert obj["sql"] == "SELECT 1 FROM T"

    def test_op_defaults_to_rewrite_with_sql(self):
        assert parse_line('{"sql": "SELECT 1"}')["op"] == "rewrite"
        assert parse_line('{"query": "SELECT 1"}')["op"] == "rewrite"

    def test_explicit_ops_pass_through(self):
        for op in ("ping", "metrics", "shutdown", "update"):
            assert parse_line(json.dumps({"op": op}))["op"] == op

    def test_bad_json_raises(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_line("{nope", line_no=3)

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_line("[1, 2]")

    def test_unknown_op_raises(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_line('{"op": "frobnicate"}')


class TestBudgetFromWire:
    def test_absent_is_none(self):
        assert budget_from_wire({}) is None

    def test_deadline_ms_converts_to_seconds(self):
        budget = budget_from_wire({"deadline_ms": 50, "max_mappings": 7})
        assert budget.deadline == 0.05
        assert budget.max_mappings == 7
        assert budget.max_candidates is None


class TestRequestFromWire:
    def test_full_request(self):
        sc = random_scenario(3)
        request = request_from_wire(
            {
                "op": "rewrite",
                "sql": "SELECT 1 FROM " + sc.views[0].name,
                "id": 42,
                "max_steps": 5,
                "unfold": True,
            },
            sc.catalog,
        )
        assert request.request_id == "42"
        assert request.max_steps == 5
        assert request.unfold is True
        assert request.catalog is sc.catalog
        assert request.views is None

    def test_views_subset_resolved_by_name(self):
        sc = random_scenario(3)
        name = sc.views[0].name
        request = request_from_wire(
            {"op": "rewrite", "sql": "SELECT 1 FROM T", "views": [name]},
            sc.catalog,
        )
        assert [v.name for v in request.views] == [name]

    def test_unknown_view_refused(self):
        sc = random_scenario(3)
        with pytest.raises(ProtocolError):
            request_from_wire(
                {"op": "rewrite", "sql": "SELECT 1", "views": ["Nope"]},
                sc.catalog,
            )

    def test_missing_sql_refused(self):
        sc = random_scenario(3)
        with pytest.raises(ProtocolError, match="non-empty SELECT"):
            request_from_wire({"op": "rewrite"}, sc.catalog)


class TestStrategies:
    def test_default_registered(self):
        assert "default" in strategy_names()
        assert resolve_strategy(None) is resolve_strategy("default")

    def test_engine_strategies_registered(self):
        for name in ("c1c4", "cohen_nutt", "both"):
            assert name in strategy_names()
            assert callable(resolve_strategy(name))

    def test_unknown_lists_known(self):
        with pytest.raises(ProtocolError, match="known: .*default"):
            resolve_strategy("no-such-strategy")

    def test_wire_strategy_rides_in_request(self):
        sc = random_scenario(3)
        request = request_from_wire(
            {"op": "rewrite", "sql": "SELECT 1", "strategy": "both"},
            sc.catalog,
        )
        assert request.strategy == "both"
        # Runner-level names (and anything else) leave the request's
        # own engine strategy at the default.
        request = request_from_wire(
            {"op": "rewrite", "sql": "SELECT 1", "strategy": "default"},
            sc.catalog,
        )
        assert request.strategy == "c1c4"

    def test_register_and_resolve(self):
        def runner(request, **kwargs):
            raise AssertionError("never run")

        register_strategy("experimental", runner)
        try:
            assert resolve_strategy("experimental") is runner
            assert "experimental" in strategy_names()
        finally:
            _STRATEGIES.pop("experimental")


class TestServingGroupKey:
    def _request(self, sc, views=None):
        from repro.service.requests import RewriteRequest

        return RewriteRequest(
            query=sc.query, catalog=sc.catalog, views=views
        )

    def test_stable_for_same_request(self):
        sc = random_scenario(3)
        assert serving_group_key(self._request(sc)) == serving_group_key(
            self._request(sc)
        )

    def test_own_view_row_count_changes_key(self):
        sc = random_scenario(3)
        before = serving_group_key(self._request(sc))
        name = sc.views[0].name
        sc.catalog.set_row_count(name, sc.catalog.row_count(name) + 10)
        assert serving_group_key(self._request(sc)) != before

    def test_other_view_row_count_keeps_subset_key(self):
        # A request pinned to a view subset keeps its fingerprint when an
        # unrelated view's statistics move — that is the whole point of
        # refining the batch-service group key.
        sc = random_scenario(3)
        assert len(sc.views) >= 2
        pinned = (sc.views[0],)
        other = sc.views[1].name
        before = serving_group_key(self._request(sc, views=pinned))
        sc.catalog.set_row_count(other, sc.catalog.row_count(other) + 10)
        assert serving_group_key(self._request(sc, views=pinned)) == before

"""The memo tier: epoch protocol, seqlock framing, capacity, fallback."""

from __future__ import annotations

import pickle

import pytest

from repro.serving.memo import (
    _HEADER,
    _MAGIC,
    LocalMemoTier,
    MemoEntry,
    SharedMemoTier,
    create_memo_tier,
)


def entry_of(tier, key):
    entry = tier.lookup(key)
    assert entry is not None
    return entry


class TestLocalMemoTier:
    def test_publish_lookup_roundtrip(self):
        tier = LocalMemoTier()
        assert tier.epoch() == 0
        assert tier.lookup(("k1",)) is None
        tier.publish(("k1",), ("V0", "V1"), [("m", 1)])
        entry = entry_of(tier, ("k1",))
        assert entry.view_names == ("V0", "V1")
        assert entry.memo == [("m", 1)]
        assert len(tier) == 1

    def test_invalidation_is_exact_and_always_bumps(self):
        tier = LocalMemoTier()
        tier.publish(("a",), ("V0",), [])
        tier.publish(("b",), ("V1",), [])
        tier.publish(("c",), ("V0", "V1"), [])
        evicted = tier.invalidate_views(["V0"])
        assert evicted == 2
        assert tier.lookup(("a",)) is None
        assert tier.lookup(("c",)) is None
        assert tier.lookup(("b",)) is not None
        assert tier.epoch() == 1
        # No matching entries: still a bump (readers must revalidate).
        assert tier.invalidate_views(["V0"]) == 0
        assert tier.epoch() == 2

    def test_capacity_evicts_oldest_first(self):
        blob = list(range(2000))
        one = len(pickle.dumps({("k", 0): MemoEntry(0, ("V",), blob)},
                               pickle.HIGHEST_PROTOCOL))
        tier = LocalMemoTier(capacity=3 * one)
        for i in range(6):
            tier.publish(("k", i), ("V",), blob)
        kept = {k[1] for k in tier.keys()}
        assert len(tier) < 6
        assert 5 in kept  # newest survives
        assert 0 not in kept  # oldest evicted

    def test_name_is_none(self):
        assert LocalMemoTier().name is None


class TestSharedMemoTier:
    def test_reader_sees_writer_state(self):
        writer = SharedMemoTier(capacity=64 * 1024)
        try:
            reader = SharedMemoTier.attach(writer.name)
            assert reader.epoch() == 0
            assert reader.lookup(("k",)) is None
            writer.publish(("k",), ("V0",), [("memo", 1)])
            entry = entry_of(reader, ("k",))
            assert entry.view_names == ("V0",)
            assert entry.memo == [("memo", 1)]
            writer.invalidate_views(["V0"])
            assert reader.epoch() == 1
            assert reader.lookup(("k",)) is None
            reader.close()
        finally:
            writer.close()
            writer.unlink()

    def test_reader_cannot_publish(self):
        writer = SharedMemoTier(capacity=64 * 1024)
        try:
            reader = SharedMemoTier.attach(writer.name)
            with pytest.raises(RuntimeError):
                reader.publish(("k",), ("V0",), [])
            reader.close()
        finally:
            writer.close()
            writer.unlink()

    def test_reader_acts_cold_while_writer_mid_publish(self):
        # Frame an odd generation (publish in progress, never finished):
        # the seqlock reader gives up and reports an empty snapshot
        # rather than returning torn bytes.
        writer = SharedMemoTier(capacity=64 * 1024)
        try:
            writer.publish(("k",), ("V0",), [("memo", 1)])
            reader = SharedMemoTier.attach(writer.name)
            _HEADER.pack_into(
                writer._shm.buf, 0, _MAGIC, 3, writer.epoch(), 0
            )
            assert reader.lookup(("k",)) is None
            reader.close()
        finally:
            writer.close()
            writer.unlink()

    def test_oversized_single_entry_still_frames(self):
        writer = SharedMemoTier(capacity=2048)
        try:
            writer.publish(("big",), ("V0",), list(range(5000)))
            # The oversized entry was dropped rather than overflowing
            # the segment; the tier stays consistent for readers.
            reader = SharedMemoTier.attach(writer.name)
            assert reader.lookup(("big",)) is None
            reader.close()
        finally:
            writer.close()
            writer.unlink()


def test_create_memo_tier_prefers_shared():
    tier = create_memo_tier(capacity=64 * 1024)
    try:
        assert isinstance(tier, (SharedMemoTier, LocalMemoTier))
        tier.publish(("k",), ("V0",), [])
        assert tier.lookup(("k",)) is not None
    finally:
        tier.close()
        tier.unlink()


def test_create_memo_tier_local_fallback():
    tier = create_memo_tier(capacity=64 * 1024, shared=False)
    assert isinstance(tier, LocalMemoTier)
    assert not isinstance(tier, SharedMemoTier)

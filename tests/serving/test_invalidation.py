"""Maintenance-delta invalidation of the shared memo tier, 40 seeds.

The pinned contract: a view update flowing through
:mod:`repro.maintenance` must invalidate *exactly* the affected
fingerprints — entries whose view set intersects the updated views are
evicted, all others survive — and every post-update response must match
a cold planner over the post-update catalog (stale-epoch reads fall
back to cold planning, never to stale rewritings).
"""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.serving import PlannerCache, RewriteDaemon
from repro.serving.memo import LocalMemoTier
from repro.service.executor import execute_request
from repro.service.requests import RewriteRequest
from repro.workloads.random_queries import random_scenario

SEEDS = range(0, 40)


def rewriting_sqls(response):
    return [r.sql() for r in response.rewritings]


def make_daemon(sc):
    db = Database(sc.catalog)
    for name, rows in sc.instance.items():
        db.load(name, rows)
    # A LocalMemoTier keeps the 40-seed sweep free of shared-memory
    # segments; the eviction/epoch logic under test is tier-agnostic
    # (tests/serving/test_memo_tier.py pins the shared implementation).
    return RewriteDaemon(
        sc.catalog, database=db, memo_tier=LocalMemoTier()
    )


def close_daemon(daemon):
    daemon._unsubscribe()
    daemon._pool.shutdown(wait=True)
    daemon.memo.close()
    daemon.memo.unlink()


def run_and_publish(daemon, request):
    response, key, view_names, export, path = daemon._planner_cache.run(
        request
    )
    daemon.memo.publish(key, view_names, export)
    return response, key, path


@pytest.mark.parametrize("seed", SEEDS)
def test_delta_invalidation_is_exact_with_cold_parity(seed):
    sc = random_scenario(seed)
    daemon = make_daemon(sc)
    try:
        # One fingerprint per view subset plus the full-catalog one.
        requests = {
            "all": RewriteRequest(query=sc.query, catalog=sc.catalog)
        }
        for view in sc.views:
            requests[view.name] = RewriteRequest(
                query=sc.query, catalog=sc.catalog, views=(view,)
            )
        keys = {}
        for label, request in requests.items():
            _response, key, _path = run_and_publish(daemon, request)
            keys[label] = key
        published = set(daemon.memo.keys())
        assert set(keys.values()) <= published

        # The update: insert one row into a base table some view reads.
        table = next(
            rel.name
            for view in sc.catalog.views.values()
            for rel in view.block.from_
        )
        width = len(sc.catalog.tables[table].columns)
        epoch_before = daemon.memo.epoch()
        summary = daemon.apply_update(table, inserts=[(1,) * width])
        affected = set(summary["invalidated_views"])
        assert affected == {
            name
            for name, view in sc.catalog.views.items()
            if any(rel.name == table for rel in view.block.from_)
        }
        assert daemon.memo.epoch() > epoch_before

        # Exactness: entries over affected views are gone (by eviction
        # or by key rotation from the refreshed statistics); entries
        # pinned to unaffected views survive untouched.
        survivors = set(daemon.memo.keys())
        for label, key in keys.items():
            touches_affected = label == "all" or label in affected
            if touches_affected:
                assert key not in survivors, (seed, label)
            else:
                assert key in survivors, (seed, label)

        # Parity: every re-run equals a cold planner on the fresh state.
        for label, request in requests.items():
            warm, _key, _path = run_and_publish(daemon, request)
            cold = execute_request(request)
            assert rewriting_sqls(warm) == rewriting_sqls(cold), (
                seed, label,
            )
            assert warm.original_cost == cold.original_cost
    finally:
        close_daemon(daemon)


@pytest.mark.parametrize("seed", range(0, 8))
def test_stale_local_planner_never_served_after_delta(seed):
    # A worker with a locally cached planner must notice the epoch bump
    # (one header read) and revalidate; since the entry is evicted it
    # plans cold rather than serving the pre-delta ranking.
    from repro.serving.worker import WARM_LOCAL

    sc = random_scenario(seed)
    daemon = make_daemon(sc)
    try:
        request = RewriteRequest(query=sc.query, catalog=sc.catalog)
        _r, key, path = run_and_publish(daemon, request)
        _r2, _k2, path2 = run_and_publish(daemon, request)
        assert path2 == WARM_LOCAL

        # A second reader simulating another worker process.
        other = PlannerCache(daemon.memo)
        other.run(request)

        table = next(
            rel.name
            for view in sc.catalog.views.values()
            for rel in view.block.from_
        )
        width = len(sc.catalog.tables[table].columns)
        daemon.apply_update(table, inserts=[(2,) * width])

        for cache in (daemon._planner_cache, other):
            response, _key, _views, _export, path3 = cache.run(request)
            assert path3 != WARM_LOCAL
            cold = execute_request(
                RewriteRequest(query=sc.query, catalog=sc.catalog)
            )
            assert rewriting_sqls(response) == rewriting_sqls(cold)
    finally:
        close_daemon(daemon)

"""PlannerCache: warm paths, epoch revalidation, cold parity."""

from __future__ import annotations

import pytest

from repro.obs.budget import SearchBudget
from repro.serving import PlannerCache, serving_group_key
from repro.serving.memo import LocalMemoTier
from repro.serving.worker import COLD, WARM_LOCAL, WARM_SHARED
from repro.service.executor import execute_request
from repro.service.requests import RewriteRequest
from repro.workloads.random_queries import random_scenario


def request_for(sc, **kwargs):
    return RewriteRequest(query=sc.query, catalog=sc.catalog, **kwargs)


def rewriting_sqls(response):
    return [r.sql() for r in response.rewritings]


def test_cold_then_warm_local():
    sc = random_scenario(7)
    cache = PlannerCache(LocalMemoTier())
    _response, key, view_names, export, path = cache.run(request_for(sc))
    assert path == COLD
    assert key == serving_group_key(request_for(sc))
    assert set(view_names) == set(sc.catalog.views)
    _r2, _k2, _v2, _e2, path2 = cache.run(request_for(sc))
    assert path2 == WARM_LOCAL


def test_epoch_bump_revalidates_through_shared_tier():
    sc = random_scenario(7)
    tier = LocalMemoTier()
    cache = PlannerCache(tier)
    _r, key, view_names, export, _p = cache.run(request_for(sc))
    tier.publish(key, view_names, export)

    # Epoch moved but the entry survives: warm-start from the tier.
    tier.invalidate_views(["NotAView"])
    _r2, _k2, _v2, _e2, path2 = cache.run(request_for(sc))
    assert path2 == WARM_SHARED

    # Entry evicted by invalidation: plan cold, never stale.
    tier.invalidate_views(list(view_names))
    _r3, _k3, _v3, _e3, path3 = cache.run(request_for(sc))
    assert path3 == COLD


@pytest.mark.parametrize("seed", range(0, 20))
def test_warm_responses_match_cold_planner(seed):
    sc = random_scenario(seed)
    tier = LocalMemoTier()
    cache = PlannerCache(tier)
    _r, key, view_names, export, _p = cache.run(request_for(sc))
    tier.publish(key, view_names, export)
    warm, _k, _v, _e, path = cache.run(request_for(sc))
    assert path == WARM_LOCAL
    cold = execute_request(request_for(sc))
    assert rewriting_sqls(warm) == rewriting_sqls(cold)
    assert warm.original_cost == cold.original_cost


def test_view_subset_request_uses_restricted_shared_planner():
    for seed in range(0, 50):
        sc = random_scenario(seed)
        if len(sc.views) >= 2:
            break
    else:
        pytest.skip("no multi-view scenario found")
    pinned = (sc.views[0],)
    request = request_for(sc, views=pinned)
    cache = PlannerCache(LocalMemoTier())
    response, key, view_names, _e, _p = cache.run(request)
    assert view_names == (sc.views[0].name,)
    # Only the pinned view may appear in results.
    for rewriting in response.rewritings:
        assert set(rewriting.view_names) <= {sc.views[0].name}
    # Parity with the explicit-views cold path.
    cold = execute_request(request_for(sc, views=pinned))
    assert rewriting_sqls(response) == rewriting_sqls(cold)
    # Second run is warm: the restricted catalog is cached by key.
    _r2, key2, _v2, _e2, path2 = cache.run(request_for(sc, views=pinned))
    assert key2 == key
    assert path2 == WARM_LOCAL


def test_count_budgeted_requests_stay_deterministic():
    # The executor's determinism rule: count-budgeted requests always
    # plan cold internally, so a warm PlannerCache must not change what
    # they return.
    sc = random_scenario(7)
    budget = SearchBudget(max_mappings=2, max_candidates=1)
    cache = PlannerCache(LocalMemoTier())
    cache.run(request_for(sc))  # warm the planner
    warm, _k, _v, _e, _p = cache.run(request_for(sc, budget=budget))
    cold = execute_request(request_for(sc, budget=budget))
    assert rewriting_sqls(warm) == rewriting_sqls(cold)

"""The daemon end to end: sockets, refusals, updates, metrics frames."""

from __future__ import annotations

import json

import pytest

from repro.blocks.to_sql import block_to_sql
from repro.obs.metrics import MetricsRegistry
from repro.serving import ServingClient, TenantQuota
from repro.serving.memo import LocalMemoTier
from repro.service.executor import execute_request
from repro.service.requests import RewriteRequest

from .conftest import running_daemon


def assert_envelope(doc, kind=None):
    assert doc["schema"] == "repro-api/1"
    assert isinstance(doc["ok"], bool)
    if kind is not None:
        assert doc["kind"] == kind
    assert ("result" in doc) or ("error" in doc)
    if doc["ok"]:
        assert "error" not in doc


def connect(daemon) -> ServingClient:
    return ServingClient.connect(("127.0.0.1", daemon.tcp_port))


def test_rewrite_ping_metrics_shutdown_over_tcp(scenario):
    sc, db = scenario
    sql = block_to_sql(sc.query)
    with running_daemon(sc.catalog, database=db) as daemon:
        with connect(daemon) as client:
            pong = client.ping()
            assert_envelope(pong, "ping")
            assert pong["result"]["pong"] is True
            assert pong["result"]["strategies"] == [
                "both",
                "c1c4",
                "cohen_nutt",
                "default",
            ]

            doc = client.rewrite(sql, id="r1")
            assert_envelope(doc, "rewrite")
            assert doc["id"] == "r1"
            cold = execute_request(
                RewriteRequest(query=sc.query, catalog=sc.catalog)
            )
            assert len(doc["result"]["rewritings"]) == len(cold.rewritings)

            metrics = client.metrics()
            assert_envelope(metrics, "metrics")

            bye = client.shutdown()
            assert_envelope(bye, "shutdown")
            assert bye["result"]["stopping"] is True


def test_unix_domain_socket(scenario, tmp_path):
    sc, db = scenario
    path = str(tmp_path / "repro.sock")
    with running_daemon(sc.catalog, database=db, unix_path=path) as daemon:
        assert ("unix", path) in daemon.addresses
        with ServingClient.connect("unix://" + path) as client:
            doc = client.rewrite(block_to_sql(sc.query))
            assert_envelope(doc, "rewrite")
            assert doc["ok"] is True


def test_pipelined_requests_matched_by_id(scenario):
    sc, db = scenario
    sql = block_to_sql(sc.query)
    with running_daemon(sc.catalog, database=db) as daemon:
        with connect(daemon) as client:
            # Write three requests before reading any response; ids come
            # back matched even if completion order differs.
            payload = b"".join(
                (json.dumps({"op": "rewrite", "sql": sql, "id": f"p{i}"})
                 + "\n").encode()
                for i in range(3)
            )
            client._sock.sendall(payload)
            docs = [client._read_until(f"p{i}") for i in range(3)]
            assert [d["id"] for d in docs] == ["p0", "p1", "p2"]
            assert all(d["ok"] for d in docs)


def test_queue_overload_refuses_in_band(scenario):
    sc, db = scenario
    sql = block_to_sql(sc.query)
    with running_daemon(
        sc.catalog, database=db, queue_limit=0
    ) as daemon:
        with connect(daemon) as client:
            doc = client.rewrite(sql, id="refused")
            # In-band refusal: a successful protocol exchange carrying a
            # degraded response tripped on queue_full — the connection
            # stays open and later ops still work.
            assert_envelope(doc, "rewrite")
            assert doc["ok"] is True
            result = doc["result"]
            assert result["degraded"] is True
            assert result["exhausted"] is True
            assert result["budget"]["tripped"] == ["queue_full"]
            assert result["rewritings"] == []
            assert client.ping()["ok"] is True


def test_tenant_quota_refusal_names_the_reason(scenario):
    sc, db = scenario
    sql = block_to_sql(sc.query)
    with running_daemon(
        sc.catalog,
        database=db,
        tenant_quotas={"noisy": TenantQuota(max_inflight=0)},
    ) as daemon:
        with connect(daemon) as client:
            refused = client.rewrite(sql, tenant="noisy")
            assert refused["result"]["budget"]["tripped"] == [
                "tenant_quota"
            ]
            # Other tenants are unaffected.
            ok = client.rewrite(sql, tenant="quiet")
            assert ok["result"]["degraded"] is False


def test_protocol_errors_are_in_band(scenario):
    sc, db = scenario
    with running_daemon(sc.catalog, database=db) as daemon:
        with connect(daemon) as client:
            doc = client.request({"op": "nonsense"})
            assert doc["ok"] is False
            assert "unknown op" in doc["error"]["message"]
            doc = client.rewrite("SELECT 1", strategy="no-such-strategy")
            assert doc["ok"] is False
            assert "unknown strategy" in doc["error"]["message"]
            # The connection survives both errors.
            assert client.ping()["ok"] is True


def test_update_invalidates_and_keeps_serving(scenario):
    sc, db = scenario
    sql = block_to_sql(sc.query)
    table = next(
        rel.name
        for view in sc.catalog.views.values()
        for rel in view.block.from_
    )
    width = len(sc.catalog.tables[table].columns)
    with running_daemon(sc.catalog, database=db) as daemon:
        with connect(daemon) as client:
            client.rewrite(sql)  # publish a memo entry
            epoch_before = client.ping()["result"]["epoch"]
            entries_before = len(daemon.memo)
            assert entries_before >= 1

            update = client.update(table, insert=[[1] * width])
            assert_envelope(update, "update")
            result = update["result"]
            assert result["inserted"] == 1
            assert result["epoch"] > result["epoch_before"]
            affected = set(result["invalidated_views"])
            assert affected  # some view reads this table

            assert client.ping()["result"]["epoch"] > epoch_before
            # Post-update responses keep flowing without a restart and
            # match a cold planner over the post-update catalog.
            doc = client.rewrite(sql)
            assert doc["ok"] is True
            cold = execute_request(
                RewriteRequest(query=sc.query, catalog=sc.catalog)
            )
            assert [r["sql"] for r in doc["result"]["rewritings"]] == [
                r.sql() for r in cold.rewritings
            ]


def test_update_refreshes_view_statistics(scenario):
    sc, db = scenario
    table = next(
        rel.name
        for view in sc.catalog.views.values()
        for rel in view.block.from_
    )
    width = len(sc.catalog.tables[table].columns)
    with running_daemon(sc.catalog, database=db) as daemon:
        with connect(daemon) as client:
            update = client.update(
                table, insert=[[i + 50] * width for i in range(4)]
            )
            for name in update["result"]["maintained_views"]:
                maintainer = daemon._maintainers[name]
                assert sc.catalog.row_count(name) == len(
                    maintainer.table()
                )


def test_process_workers_share_the_memo_tier(scenario):
    sc, db = scenario
    sql = block_to_sql(sc.query)
    with running_daemon(sc.catalog, database=db, workers=2) as daemon:
        with connect(daemon) as client:
            first = client.rewrite(sql, id="w1")
            second = client.rewrite(sql, id="w2")
            assert first["ok"] and second["ok"]
            assert (
                first["result"]["rewritings"]
                == second["result"]["rewritings"]
            )
            # The master published the workers' memo exports.
            assert len(daemon.memo) >= 1


def test_serving_metrics_recorded(scenario):
    sc, db = scenario
    sql = block_to_sql(sc.query)
    daemon_metrics = MetricsRegistry()
    with running_daemon(
        sc.catalog,
        database=db,
        metrics=daemon_metrics,
        memo_tier=LocalMemoTier(),
    ) as daemon:
        with connect(daemon) as client:
            for i in range(3):
                client.rewrite(sql, tenant="dash", id=f"m{i}")
            client.shutdown()
    families = daemon_metrics.snapshot().families
    requests = {
        tuple(lv): value
        for lv, value in families["repro_serving_requests_total"]["samples"]
    }
    assert requests[("dash", "ok")] == 3
    latency = families["repro_serving_request_seconds"]["samples"]
    assert latency[0][1]["count"] == 3

"""Schema-script loading."""

import pytest

from repro.catalog.load import load_schema
from repro.errors import SchemaError

SCRIPT = """
CREATE TABLE R (a INT PRIMARY KEY, b INT);
CREATE TABLE S (c INT, d INT, UNIQUE (c));
CREATE VIEW V (x, n) AS SELECT a, COUNT(b) FROM R GROUP BY a;
SELECT x FROM V WHERE n > 1;
"""


class TestLoadSchema:
    def test_tables_views_queries(self):
        catalog, queries = load_schema(SCRIPT)
        assert catalog.is_table("R") and catalog.is_table("S")
        assert catalog.is_view("V")
        assert len(queries) == 1
        assert queries[0].from_[0].name == "V"

    def test_keys_carried_over(self):
        catalog, _ = load_schema(SCRIPT)
        assert catalog.table("R").keys == (frozenset({"a"}),)
        assert catalog.table("S").keys == (frozenset({"c"}),)

    def test_views_see_earlier_tables_only(self):
        with pytest.raises(SchemaError):
            load_schema("CREATE VIEW V (x) AS SELECT a FROM R")

    def test_incremental_load_into_existing_catalog(self):
        catalog, _ = load_schema("CREATE TABLE R (a INT);")
        catalog2, _ = load_schema(
            "CREATE TABLE T (z INT); SELECT a FROM R;", catalog
        )
        assert catalog2 is catalog
        assert catalog.is_table("T")

    def test_duplicate_table_rejected(self):
        with pytest.raises(SchemaError):
            load_schema("CREATE TABLE R (a INT); CREATE TABLE R (b INT);")

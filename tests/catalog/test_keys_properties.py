"""Property: Proposition 5.1/5.2 verdicts are sound on real data.

Whenever ``result_is_set`` (or ``core_is_set``) claims a guarantee, no
key-respecting random database may produce duplicates.
"""

import random

import pytest

from repro.catalog.keys import core_is_set, result_is_set
from repro.engine.database import Database
from repro.equivalence import random_instance
from repro.workloads.random_queries import random_block, random_catalog


@pytest.mark.parametrize("seed", range(80))
def test_result_is_set_sound(seed):
    rng = random.Random(20_000 + seed)
    catalog = random_catalog(rng, with_keys=True)
    block = random_block(catalog, rng, max_tables=2, max_atoms=2)
    claims_set = result_is_set(block, catalog)
    if not claims_set:
        return
    for trial in range(15):
        instance = random_instance(
            catalog, rng, max_rows=6, domain=3, respect_keys=True
        )
        db = Database(catalog, instance)
        result = db.execute(block)
        assert result.is_set, (
            f"seed={seed} trial={trial}\nquery: {block}\n"
            f"instance: {instance}\nrows: {result.rows}"
        )


@pytest.mark.parametrize("seed", range(40))
def test_core_is_set_sound(seed):
    rng = random.Random(30_000 + seed)
    catalog = random_catalog(rng, with_keys=True)
    block = random_block(
        catalog, rng, aggregation=False, max_tables=2, max_atoms=0
    )
    if not core_is_set(block, catalog):
        return
    # The raw cross product of set relations is a set: select everything.
    from repro.blocks.query_block import QueryBlock, SelectItem

    full = QueryBlock(
        select=tuple(SelectItem(c) for rel in block.from_ for c in rel.columns),
        from_=block.from_,
    ).validate()
    for _trial in range(10):
        instance = random_instance(
            catalog, rng, max_rows=6, domain=3, respect_keys=True
        )
        result = Database(catalog, instance).execute(full)
        assert result.is_set


@pytest.mark.parametrize("seed", range(40))
def test_view_occurrence_set_claims_sound(seed):
    """Views whose results are claimed sets must materialize as sets."""
    rng = random.Random(40_000 + seed)
    catalog = random_catalog(rng, with_keys=True)
    from repro.workloads.random_queries import random_view

    view = random_view(catalog, rng, "V", max_tables=2)
    catalog.add_view(view)
    if not result_is_set(view.block, catalog):
        return
    for _trial in range(10):
        instance = random_instance(
            catalog, rng, max_rows=6, domain=3, respect_keys=True
        )
        db = Database(catalog, instance)
        assert db.materialize("V").is_set, str(view)

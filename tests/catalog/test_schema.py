"""Catalog and TableSchema metadata."""

import pytest

from repro.blocks.normalize import parse_view
from repro.catalog.fds import fd
from repro.catalog.schema import Catalog, TableSchema, table
from repro.errors import SchemaError


class TestTableSchema:
    def test_constructor_helpers(self):
        t = table("R", ["a", "b"], key=["a"], row_count=5)
        assert t.keys == (frozenset({"a"}),)
        assert t.has_key and t.row_count == 5

    def test_multiple_candidate_keys(self):
        t = table("R", ["a", "b"], key=["a"], keys=[["b"]])
        assert len(t.keys) == 2

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("R", ("a", "a"))

    def test_bad_key_rejected(self):
        with pytest.raises(SchemaError):
            table("R", ["a"], key=["zzz"])

    def test_bad_fd_rejected(self):
        with pytest.raises(SchemaError):
            table("R", ["a"], fds=[fd({"a"}, {"zzz"})])

    def test_all_fds_includes_key_fd(self):
        t = table("R", ["a", "b"], key=["a"])
        deps = t.all_fds()
        assert any(dep.lhs == {"a"} and "b" in dep.rhs for dep in deps)


class TestCatalog:
    def test_resolution(self):
        cat = Catalog([table("R", ["a", "b"])])
        assert cat.is_table("R") and not cat.is_view("R")
        assert cat.columns_of("R") == ("a", "b")

    def test_duplicate_name_rejected(self):
        cat = Catalog([table("R", ["a"])])
        with pytest.raises(SchemaError):
            cat.add_table(table("R", ["x"]))

    def test_view_name_clash_rejected(self):
        cat = Catalog([table("R", ["a", "b"])])
        view = parse_view("CREATE VIEW R AS SELECT a FROM R", cat)
        with pytest.raises(SchemaError):
            cat.add_view(view)

    def test_unknown_names(self):
        cat = Catalog()
        with pytest.raises(SchemaError):
            cat.table("X")
        with pytest.raises(SchemaError):
            cat.view("X")
        with pytest.raises(SchemaError):
            cat.columns_of("X")
        with pytest.raises(SchemaError):
            cat.row_count("X")

    def test_view_columns(self):
        cat = Catalog([table("R", ["a", "b"])])
        view = parse_view(
            "CREATE VIEW V (x, n) AS SELECT a, COUNT(b) FROM R GROUP BY a",
            cat,
        )
        cat.add_view(view, row_count=10)
        assert cat.columns_of("V") == ("x", "n")
        assert cat.row_count("V") == 10

    def test_view_row_count_estimated_when_unset(self):
        cat = Catalog([table("R", ["a", "b"], row_count=1000)])
        view = parse_view(
            "CREATE VIEW V (x, n) AS SELECT a, COUNT(b) FROM R GROUP BY a",
            cat,
        )
        cat.add_view(view)
        assert 1 <= cat.row_count("V") <= 1000

    def test_set_row_count(self):
        cat = Catalog([table("R", ["a", "b"])])
        view = parse_view("CREATE VIEW V (x) AS SELECT a FROM R", cat)
        cat.add_view(view)
        cat.set_row_count("V", 77)
        assert cat.row_count("V") == 77

    def test_copy_is_independent(self):
        cat = Catalog([table("R", ["a", "b"])])
        clone = cat.copy()
        clone.add_table(table("S", ["c"]))
        assert not cat.is_table("S")

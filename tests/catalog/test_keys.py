"""Key inference for query results (Propositions 5.1 and 5.2)."""

import pytest

from repro.blocks.normalize import parse_query, parse_view
from repro.catalog.keys import (
    core_is_set,
    core_key,
    occurrence_key,
    result_is_set,
)
from repro.catalog.schema import Catalog, table


@pytest.fixture
def catalog():
    return Catalog(
        [
            table("K", ["id", "ref", "val"], key=["id"]),
            table("L", ["lid", "w"], key=["lid"]),
            table("M", ["x", "y"]),  # no key: a multiset table
        ]
    )


class TestCoreIsSet:
    def test_all_keyed_tables(self, catalog):
        q = parse_query("SELECT id, lid FROM K, L", catalog)
        assert core_is_set(q, catalog)  # Proposition 5.2

    def test_any_multiset_table_breaks_it(self, catalog):
        q = parse_query("SELECT id, x FROM K, M", catalog)
        assert not core_is_set(q, catalog)


class TestCoreKey:
    def test_cartesian_product_concatenates_keys(self, catalog):
        q = parse_query("SELECT id, lid FROM K, L", catalog)
        key = core_key(q, catalog)
        assert key is not None and len(key) == 2

    def test_foreign_key_join_shrinks_key(self, catalog):
        # K.ref = L.lid is a foreign-key join: K's key suffices.
        q = parse_query(
            "SELECT id, w FROM K, L WHERE ref = lid", catalog
        )
        key = core_key(q, catalog)
        assert key is not None and len(key) == 1
        q_block = q
        id_col = q_block.from_[0].column_for("id")
        assert key == {id_col}

    def test_no_key_without_set_core(self, catalog):
        q = parse_query("SELECT x FROM M", catalog)
        assert core_key(q, catalog) is None


class TestResultIsSet:
    def test_key_retained(self, catalog):
        assert result_is_set(
            parse_query("SELECT id, val FROM K", catalog), catalog
        )

    def test_key_projected_out(self, catalog):
        assert not result_is_set(
            parse_query("SELECT val FROM K", catalog), catalog
        )

    def test_distinct_always_set(self, catalog):
        assert result_is_set(
            parse_query("SELECT DISTINCT x FROM M", catalog), catalog
        )

    def test_fk_join_result(self, catalog):
        assert result_is_set(
            parse_query("SELECT id, w FROM K, L WHERE ref = lid", catalog),
            catalog,
        )

    def test_constant_pin_helps(self, catalog):
        # id = 3 pins the key: at most one row survives; selecting val
        # alone is still a set because {} -> id via the constant.
        q = parse_query("SELECT val FROM K WHERE id = 3", catalog)
        assert result_is_set(q, catalog)

    def test_grouped_query_keyed_by_groups(self, catalog):
        q = parse_query(
            "SELECT x, COUNT(y) FROM M GROUP BY x", catalog
        )
        assert result_is_set(q, catalog)

    def test_grouped_query_dropping_group_column(self, catalog):
        q = parse_query("SELECT COUNT(y) FROM M GROUP BY x", catalog)
        assert not result_is_set(q, catalog)

    def test_global_aggregate_single_row(self, catalog):
        assert result_is_set(
            parse_query("SELECT COUNT(y) FROM M", catalog), catalog
        )


class TestOccurrenceKey:
    def test_base_table(self, catalog):
        q = parse_query("SELECT id FROM K", catalog)
        key = occurrence_key(q.from_[0], catalog)
        assert key == {q.from_[0].column_for("id")}

    def test_keyless_table(self, catalog):
        q = parse_query("SELECT x FROM M", catalog)
        assert occurrence_key(q.from_[0], catalog) is None

    def test_grouped_view_keyed_by_group_outputs(self, catalog):
        view = parse_view(
            "CREATE VIEW V (g, n) AS SELECT x, COUNT(y) FROM M GROUP BY x",
            catalog,
        )
        catalog.add_view(view)
        q = parse_query("SELECT g FROM V", catalog)
        key = occurrence_key(q.from_[0], catalog)
        assert key == {q.from_[0].column_for("g")}

    def test_grouped_view_missing_group_output(self, catalog):
        view = parse_view(
            "CREATE VIEW W (n) AS SELECT COUNT(y) FROM M GROUP BY x",
            catalog,
        )
        catalog.add_view(view)
        q = parse_query("SELECT n FROM W", catalog)
        assert occurrence_key(q.from_[0], catalog) is None

    def test_set_conjunctive_view_all_columns(self, catalog):
        view = parse_view(
            "CREATE VIEW U (i, v) AS SELECT id, val FROM K", catalog
        )
        catalog.add_view(view)
        q = parse_query("SELECT i FROM U", catalog)
        key = occurrence_key(q.from_[0], catalog)
        assert key == frozenset(q.from_[0].columns)

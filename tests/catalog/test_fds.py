"""Functional-dependency machinery."""

from repro.catalog.fds import (
    attribute_closure,
    fd,
    implies_fd,
    is_superkey,
    minimize_key,
)


class TestClosure:
    def test_direct(self):
        fds = [fd({"A"}, {"B"})]
        assert attribute_closure({"A"}, fds) == {"A", "B"}

    def test_transitive(self):
        fds = [fd({"A"}, {"B"}), fd({"B"}, {"C"})]
        assert attribute_closure({"A"}, fds) == {"A", "B", "C"}

    def test_composite_lhs(self):
        fds = [fd({"A", "B"}, {"C"})]
        assert "C" not in attribute_closure({"A"}, fds)
        assert "C" in attribute_closure({"A", "B"}, fds)

    def test_empty_lhs_always_fires(self):
        # Constant columns: {} -> A.
        fds = [fd((), {"A"})]
        assert attribute_closure(set(), fds) == {"A"}

    def test_no_fds(self):
        assert attribute_closure({"A"}, []) == {"A"}


class TestImpliesFd:
    def test_armstrong_transitivity(self):
        fds = [fd({"A"}, {"B"}), fd({"B"}, {"C"})]
        assert implies_fd(fds, fd({"A"}, {"C"}))
        assert not implies_fd(fds, fd({"C"}, {"A"}))


class TestKeys:
    def test_superkey(self):
        all_attrs = {"A", "B", "C"}
        fds = [fd({"A"}, {"B", "C"})]
        assert is_superkey({"A"}, all_attrs, fds)
        assert not is_superkey({"B"}, all_attrs, fds)

    def test_minimize_key(self):
        all_attrs = {"A", "B", "C"}
        fds = [fd({"A"}, {"B", "C"})]
        assert minimize_key({"A", "B"}, all_attrs, fds) == {"A"}

    def test_minimize_key_foreign_key_join(self):
        # R1(k1, fk), R2(k2, x) joined on fk = k2: k1 alone is a key of
        # the join (the paper's foreign-key-join rule).
        all_attrs = {"k1", "fk", "k2", "x"}
        fds = [
            fd({"k1"}, {"fk"}),
            fd({"k2"}, {"x"}),
            fd({"fk"}, {"k2"}),
            fd({"k2"}, {"fk"}),
        ]
        assert minimize_key({"k1", "k2"}, all_attrs, fds) == {"k1"}

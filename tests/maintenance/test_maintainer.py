"""Incremental view maintenance: correctness against full recomputation."""

import random

import pytest

from repro import Catalog, Database, parse_view, table
from repro.errors import UnsupportedSQLError
from repro.maintenance import MaintainedView


@pytest.fixture
def catalog():
    return Catalog(
        [
            table("R", ["A", "B", "V"]),
            table("S", ["C", "W"]),
        ]
    )


def make(catalog, view_sql, r_rows=(), s_rows=()):
    db = Database(catalog, {"R": list(r_rows), "S": list(s_rows)})
    view = parse_view(view_sql, catalog.copy())
    return MaintainedView(view, db), db


SUM_VIEW = (
    "CREATE VIEW V (A, S, N) AS "
    "SELECT A, SUM(V), COUNT(V) FROM R GROUP BY A"
)


class TestBasics:
    def test_initial_state_matches_full_eval(self, catalog):
        mv, _db = make(
            catalog, SUM_VIEW, r_rows=[(1, 0, 10), (1, 0, 5), (2, 0, 7)]
        )
        assert sorted(mv.table().rows) == [(1, 15, 2), (2, 7, 1)]
        assert mv.consistency_check()

    def test_insert_new_group(self, catalog):
        mv, _db = make(catalog, SUM_VIEW, r_rows=[(1, 0, 10)])
        mv.apply("R", inserts=[(3, 0, 4)])
        assert sorted(mv.table().rows) == [(1, 10, 1), (3, 4, 1)]

    def test_insert_existing_group(self, catalog):
        mv, _db = make(catalog, SUM_VIEW, r_rows=[(1, 0, 10)])
        mv.apply("R", inserts=[(1, 0, 2), (1, 0, 3)])
        assert mv.table().rows == [(1, 15, 3)]

    def test_delete_shrinks_group(self, catalog):
        mv, _db = make(
            catalog, SUM_VIEW, r_rows=[(1, 0, 10), (1, 0, 5)]
        )
        mv.apply("R", deletes=[(1, 0, 5)])
        assert mv.table().rows == [(1, 10, 1)]

    def test_delete_removes_group(self, catalog):
        mv, _db = make(catalog, SUM_VIEW, r_rows=[(1, 0, 10), (2, 0, 5)])
        mv.apply("R", deletes=[(2, 0, 5)])
        assert mv.table().rows == [(1, 10, 1)]

    def test_delete_missing_row_rejected(self, catalog):
        mv, _db = make(catalog, SUM_VIEW, r_rows=[(1, 0, 10)])
        with pytest.raises(ValueError):
            mv.apply("R", deletes=[(9, 9, 9)])

    def test_database_kept_in_sync(self, catalog):
        mv, db = make(catalog, SUM_VIEW, r_rows=[(1, 0, 10)])
        mv.apply("R", inserts=[(2, 0, 1)])
        assert len(db.table("R")) == 2

    def test_irrelevant_table_change_ignored(self, catalog):
        mv, _db = make(catalog, SUM_VIEW, r_rows=[(1, 0, 10)])
        before = mv.maintenance_rows
        mv.apply("S", inserts=[(1, 2)])
        assert mv.table().rows == [(1, 10, 1)]
        assert mv.maintenance_rows == before


class TestMinMax:
    VIEW = (
        "CREATE VIEW V (A, Lo, Hi) AS "
        "SELECT A, MIN(V), MAX(V) FROM R GROUP BY A"
    )

    def test_insert_updates_extrema(self, catalog):
        mv, _db = make(catalog, self.VIEW, r_rows=[(1, 0, 5)])
        mv.apply("R", inserts=[(1, 0, 2), (1, 0, 9)])
        assert mv.table().rows == [(1, 2, 9)]

    def test_delete_non_extremal_is_cheap(self, catalog):
        mv, _db = make(
            catalog, self.VIEW, r_rows=[(1, 0, 1), (1, 0, 5), (1, 0, 9)]
        )
        mv.apply("R", deletes=[(1, 0, 5)])
        assert mv.table().rows == [(1, 1, 9)]

    def test_delete_extremum_recomputes(self, catalog):
        mv, _db = make(
            catalog, self.VIEW, r_rows=[(1, 0, 1), (1, 0, 5), (1, 0, 9)]
        )
        mv.apply("R", deletes=[(1, 0, 9)])
        assert mv.table().rows == [(1, 1, 5)]
        mv.apply("R", deletes=[(1, 0, 1)])
        assert mv.table().rows == [(1, 5, 5)]

    def test_duplicate_extremum_survives_one_delete(self, catalog):
        mv, _db = make(
            catalog, self.VIEW, r_rows=[(1, 0, 9), (1, 0, 9), (1, 0, 2)]
        )
        mv.apply("R", deletes=[(1, 0, 9)])
        assert mv.table().rows == [(1, 2, 9)]


class TestJoinsAndSelfJoins:
    JOIN_VIEW = (
        "CREATE VIEW V (A, S) AS "
        "SELECT A, SUM(W) FROM R, S WHERE B = C GROUP BY A"
    )

    def test_join_view_insert_left(self, catalog):
        mv, _db = make(
            catalog,
            self.JOIN_VIEW,
            r_rows=[(1, 7, 0)],
            s_rows=[(7, 100), (7, 10)],
        )
        mv.apply("R", inserts=[(1, 7, 0)])
        assert mv.consistency_check()
        assert mv.table().rows == [(1, 220)]

    def test_join_view_insert_right(self, catalog):
        mv, _db = make(
            catalog,
            self.JOIN_VIEW,
            r_rows=[(1, 7, 0), (2, 8, 0)],
            s_rows=[(7, 100)],
        )
        mv.apply("S", inserts=[(8, 5), (7, 1)])
        assert mv.consistency_check()
        assert sorted(mv.table().rows) == [(1, 101), (2, 5)]

    def test_join_view_delete_right(self, catalog):
        mv, _db = make(
            catalog,
            self.JOIN_VIEW,
            r_rows=[(1, 7, 0)],
            s_rows=[(7, 100), (7, 10)],
        )
        mv.apply("S", deletes=[(7, 10)])
        assert mv.table().rows == [(1, 100)]

    def test_self_join_telescope(self, catalog):
        view_sql = (
            "CREATE VIEW V (A, N) AS "
            "SELECT x.A, COUNT(y.V) FROM R x, R y WHERE x.B = y.B "
            "GROUP BY x.A"
        )
        db = Database(catalog, {"R": [(1, 7, 0), (2, 7, 0)], "S": []})
        view = parse_view(view_sql, catalog.copy())
        mv = MaintainedView(view, db)
        assert mv.consistency_check()
        mv.apply("R", inserts=[(3, 7, 0)])
        assert mv.consistency_check()
        assert sorted(mv.table().rows) == [(1, 3), (2, 3), (3, 3)]
        mv.apply("R", deletes=[(1, 7, 0)])
        assert mv.consistency_check()


class TestConjunctiveViews:
    VIEW = "CREATE VIEW V (A, W) AS SELECT A, W FROM R, S WHERE B = C"

    def test_multiset_counts_maintained(self, catalog):
        mv, _db = make(
            catalog,
            self.VIEW,
            r_rows=[(1, 7, 0), (1, 7, 0)],
            s_rows=[(7, 5)],
        )
        assert mv.table().rows.count((1, 5)) == 2
        mv.apply("S", inserts=[(7, 5)])
        assert mv.table().rows.count((1, 5)) == 4
        mv.apply("R", deletes=[(1, 7, 0)])
        assert mv.table().rows.count((1, 5)) == 2
        assert mv.consistency_check()


class TestGlobalAggregates:
    VIEW = "CREATE VIEW V (N, S) AS SELECT COUNT(V), SUM(V) FROM R"

    def test_empty_input_single_row(self, catalog):
        mv, _db = make(catalog, self.VIEW)
        assert mv.table().rows == [(0, None)]

    def test_roundtrip_to_empty(self, catalog):
        mv, _db = make(catalog, self.VIEW, r_rows=[(1, 0, 5)])
        assert mv.table().rows == [(1, 5)]
        mv.apply("R", deletes=[(1, 0, 5)])
        assert mv.table().rows == [(0, None)]
        assert mv.consistency_check()


class TestHavingViews:
    VIEW = (
        "CREATE VIEW V (A, S) AS "
        "SELECT A, SUM(V) FROM R GROUP BY A HAVING SUM(V) > 10"
    )

    def test_group_crosses_threshold(self, catalog):
        mv, _db = make(catalog, self.VIEW, r_rows=[(1, 0, 6)])
        assert mv.table().rows == []
        mv.apply("R", inserts=[(1, 0, 6)])
        assert mv.table().rows == [(1, 12)]
        mv.apply("R", deletes=[(1, 0, 6)])
        assert mv.table().rows == []
        assert mv.consistency_check()


class TestGuards:
    def test_distinct_view_rejected(self, catalog):
        db = Database(catalog)
        view = parse_view(
            "CREATE VIEW V (A) AS SELECT DISTINCT A FROM R", catalog.copy()
        )
        with pytest.raises(UnsupportedSQLError):
            MaintainedView(view, db)

    def test_view_over_view_rejected(self, catalog):
        base = parse_view("CREATE VIEW W (A) AS SELECT A FROM R", catalog)
        catalog.add_view(base)
        stacked = parse_view("CREATE VIEW V (A) AS SELECT A FROM W", catalog)
        db = Database(catalog)
        with pytest.raises(UnsupportedSQLError):
            MaintainedView(stacked, db)


class TestRandomizedStream:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_update_stream(self, catalog, seed):
        """Property: after any stream of inserts/deletes, the maintained
        table equals a full recomputation."""
        rng = random.Random(seed)
        view_sql = rng.choice(
            [
                SUM_VIEW,
                TestMinMax.VIEW,
                TestJoinsAndSelfJoins.JOIN_VIEW,
                TestConjunctiveViews.VIEW,
                "CREATE VIEW V (A, Av) AS SELECT A, AVG(V) FROM R GROUP BY A",
            ]
        )
        r_rows = [
            (rng.randint(0, 2), rng.randint(0, 2), rng.randint(0, 9))
            for _ in range(rng.randint(0, 6))
        ]
        s_rows = [
            (rng.randint(0, 2), rng.randint(0, 9))
            for _ in range(rng.randint(0, 4))
        ]
        mv, db = make(catalog, view_sql, r_rows=r_rows, s_rows=s_rows)
        for _step in range(12):
            target = rng.choice(["R", "S"])
            current = db.table(target).rows
            if current and rng.random() < 0.45:
                mv.apply(target, deletes=[rng.choice(current)])
            else:
                width = 3 if target == "R" else 2
                mv.apply(
                    target,
                    inserts=[
                        tuple(rng.randint(0, 3) for _ in range(width))
                    ],
                )
            assert mv.consistency_check(), (seed, _step, view_sql)


class TestApplyChange:
    def test_coordinates_shared_database(self, catalog):
        from repro.maintenance import apply_change

        db = Database(catalog, {"R": [(1, 7, 3)], "S": [(7, 10)]})
        views = [
            parse_view(
                "CREATE VIEW V1 (A, S) AS SELECT A, SUM(V) FROM R GROUP BY A",
                catalog.copy(),
            ),
            parse_view(
                "CREATE VIEW V2 (A, N) AS "
                "SELECT x.A, COUNT(y.V) FROM R x, R y WHERE x.B = y.B "
                "GROUP BY x.A",
                catalog.copy(),
            ),
        ]
        maintainers = [MaintainedView(v, db) for v in views]
        apply_change(maintainers, "R", inserts=[(2, 7, 5)])
        apply_change(maintainers, "R", inserts=[(1, 7, 1)])
        apply_change(maintainers, "R", deletes=[(1, 7, 3)])
        for maintainer in maintainers:
            assert maintainer.consistency_check()
        assert len(db.table("R")) == 2

    def test_self_join_view_needs_pre_change_state(self, catalog):
        """The ordering hazard apply_change exists to prevent: a second
        maintainer with a self-join observing after the database changed
        computes wrong deltas."""
        from repro.maintenance import apply_change

        db = Database(catalog, {"R": [(1, 7, 3), (2, 7, 4)], "S": []})
        self_join = parse_view(
            "CREATE VIEW V2 (A, N) AS "
            "SELECT x.A, COUNT(y.V) FROM R x, R y WHERE x.B = y.B "
            "GROUP BY x.A",
            catalog.copy(),
        )
        simple = parse_view(
            "CREATE VIEW V1 (A, S) AS SELECT A, SUM(V) FROM R GROUP BY A",
            catalog.copy(),
        )
        maintainers = [MaintainedView(simple, db), MaintainedView(self_join, db)]

        # The WRONG protocol: first maintainer mutates the db, second
        # observes afterwards.
        maintainers[0].observe("R", inserts=[(3, 7, 9)], update_database=True)
        maintainers[1].observe("R", inserts=[(3, 7, 9)], update_database=False)
        assert not maintainers[1].consistency_check()

        # Rebuild and use the coordinator: all consistent.
        db2 = Database(catalog, {"R": [(1, 7, 3), (2, 7, 4)], "S": []})
        maintainers = [MaintainedView(simple, db2), MaintainedView(self_join, db2)]
        apply_change(maintainers, "R", inserts=[(3, 7, 9)])
        assert all(m.consistency_check() for m in maintainers)

    def test_mixed_databases_rejected(self, catalog):
        from repro.maintenance import apply_change

        db1 = Database(catalog, {"R": [], "S": []})
        db2 = Database(catalog.copy(), {"R": [], "S": []})
        view_sql = "CREATE VIEW V (A, S) AS SELECT A, SUM(V) FROM R GROUP BY A"
        m1 = MaintainedView(parse_view(view_sql, catalog.copy()), db1)
        m2 = MaintainedView(parse_view(view_sql, catalog.copy()), db2)
        with pytest.raises(ValueError):
            apply_change([m1, m2], "R", inserts=[(1, 1, 1)])

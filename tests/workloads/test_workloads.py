"""Workload generators: shape, determinism, and rewritability."""

import random

import pytest

from repro import RewriteEngine, assert_equivalent
from repro.workloads import random_queries, star, telephony


class TestTelephony:
    def test_deterministic(self):
        a = telephony.generate(n_calls=100, seed=5)
        b = telephony.generate(n_calls=100, seed=5)
        assert a.tables == b.tables

    def test_scale_knob(self):
        wl = telephony.generate(n_calls=250)
        assert wl.calls_rows == 250
        assert len(wl.tables["Calling_Plans"]) == 8

    def test_skew_across_plans(self):
        wl = telephony.generate(n_calls=2000, n_plans=6)
        counts = [0] * 6
        for row in wl.tables["Calls"]:
            counts[row[2]] += 1
        assert counts[0] > counts[5]  # plan 0 is the most popular

    def test_view_much_smaller_than_calls(self):
        """The premise of Example 1.1: |V1| << |Calls|."""
        wl = telephony.generate(n_calls=5000)
        db = wl.database()
        view_rows = len(db.materialize("V1"))
        assert view_rows * 10 <= wl.calls_rows

    def test_query_rewritable_and_equivalent(self):
        wl = telephony.generate(n_calls=200, seed=2)
        engine = RewriteEngine(wl.catalog)
        result = engine.rewrite(wl.query)
        assert result.best() is not None
        assert_equivalent(
            wl.catalog, wl.query, result.best(), trials=5, max_rows=25,
            domain=5,
        )

    def test_rewritten_answers_match_on_generated_data(self):
        wl = telephony.generate(n_calls=400, seed=9, threshold=10_000)
        engine = RewriteEngine(wl.catalog)
        rewriting = engine.rewrite(wl.query).best()
        db = wl.database()
        left = db.execute(wl.query)
        right = db.execute(rewriting.query, extra_views=rewriting.extra_views())
        assert left.multiset_equal(right)


class TestStar:
    def test_views_and_queries_parse(self):
        wl = star.generate(n_sales=100)
        assert set(wl.views) == set(star.VIEW_DEFINITIONS)
        assert set(wl.queries) == set(star.QUERIES)

    def test_expected_rewritability_matrix(self):
        wl = star.generate(n_sales=100)
        engine = RewriteEngine(wl.catalog)
        rewritable = {
            name: len(engine.rewrite(q)) > 0
            for name, q in wl.queries.items()
        }
        assert rewritable["yearly_product_revenue"]
        assert rewritable["category_revenue"]
        assert rewritable["store_december"]
        assert rewritable["monthly_volume"]
        assert not rewritable["daily_detail"]

    def test_all_rewritings_equivalent_on_data(self):
        wl = star.generate(n_sales=150)
        engine = RewriteEngine(wl.catalog)
        db = wl.database()
        for name, query in wl.queries.items():
            for ranked in engine.rewrite(query):
                rewriting = ranked.rewriting
                left = db.execute(query)
                right = db.execute(
                    rewriting.query, extra_views=rewriting.extra_views()
                )
                assert left.multiset_equal(right), (name, rewriting.sql())


class TestRandomQueries:
    def test_blocks_are_valid(self):
        rng = random.Random(0)
        catalog = random_queries.random_catalog(rng)
        for _ in range(50):
            block = random_queries.random_block(catalog, rng)
            block.validate()

    def test_views_have_unique_outputs(self):
        rng = random.Random(1)
        catalog = random_queries.random_catalog(rng)
        for i in range(20):
            view = random_queries.random_view(catalog, rng, f"V{i}")
            assert len(set(view.output_names)) == len(view.output_names)

    def test_aggregation_flag_respected(self):
        rng = random.Random(2)
        catalog = random_queries.random_catalog(rng)
        for _ in range(20):
            assert random_queries.random_block(
                catalog, rng, aggregation=True
            ).is_aggregation
            assert random_queries.random_block(
                catalog, rng, aggregation=False
            ).is_conjunctive

    def test_related_pair_is_executable(self):
        rng = random.Random(3)
        catalog = random_queries.random_catalog(rng)
        query, view = random_queries.related_pair(catalog, rng)
        from repro.engine.database import Database
        from repro.equivalence import random_instance

        catalog.add_view(view)
        db = Database(catalog, random_instance(catalog, rng))
        db.execute(query)
        db.materialize("V")

"""Semantic query-result cache."""

import random

import pytest

from repro import Catalog, Database, table
from repro.cache import QueryCache
from repro.errors import SchemaError


@pytest.fixture
def catalog():
    return Catalog(
        [
            table(
                "Calls",
                ["Call_Id", "Plan_Id", "Month", "Year", "Charge"],
                key=["Call_Id"],
            )
        ]
    )


@pytest.fixture
def server(catalog):
    rng = random.Random(4)
    rows = [
        (
            i,
            rng.randrange(4),
            rng.randint(1, 12),
            rng.choice([1994, 1995]),
            rng.randint(1, 100),
        )
        for i in range(300)
    ]
    return Database(catalog, {"Calls": rows})


SUMMARY = (
    "SELECT Plan_Id, Month, Year, SUM(Charge), COUNT(Charge) "
    "FROM Calls GROUP BY Plan_Id, Month, Year"
)


class TestSemanticHits:
    def test_exact_requery_hits(self, catalog, server):
        cache = QueryCache(catalog)
        cache.remember(SUMMARY, server.execute(SUMMARY))
        answer = cache.try_answer(SUMMARY)
        assert answer is not None
        assert answer.multiset_equal(server.execute(SUMMARY))

    def test_coarser_rollup_hits(self, catalog, server):
        """The semantic case: yearly totals from the cached monthly
        summary — no syntactic match."""
        cache = QueryCache(catalog)
        cache.remember(SUMMARY, server.execute(SUMMARY))
        rollup = "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id"
        answer = cache.try_answer(rollup)
        assert answer is not None
        assert answer.multiset_equal(server.execute(rollup))
        assert cache.stats.hits == 1

    def test_residual_filter_hits(self, catalog, server):
        cache = QueryCache(catalog)
        cache.remember(SUMMARY, server.execute(SUMMARY))
        filtered = (
            "SELECT Plan_Id, SUM(Charge) FROM Calls "
            "WHERE Year = 1995 GROUP BY Plan_Id"
        )
        answer = cache.try_answer(filtered)
        assert answer is not None
        assert answer.multiset_equal(server.execute(filtered))

    def test_detail_query_misses(self, catalog, server):
        cache = QueryCache(catalog)
        cache.remember(SUMMARY, server.execute(SUMMARY))
        assert cache.try_answer("SELECT Call_Id, Charge FROM Calls") is None
        assert cache.stats.misses == 1

    def test_conjunctive_cached_result(self, catalog, server):
        cache = QueryCache(catalog)
        base = "SELECT Plan_Id, Year, Charge FROM Calls WHERE Year = 1995"
        cache.remember(base, server.execute(base))
        query = (
            "SELECT Plan_Id, SUM(Charge) FROM Calls "
            "WHERE Year = 1995 GROUP BY Plan_Id"
        )
        answer = cache.try_answer(query)
        assert answer is not None
        assert answer.multiset_equal(server.execute(query))


class TestAnswerFallback:
    def test_miss_then_hit(self, catalog, server):
        cache = QueryCache(catalog)
        query = "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id"
        first, hit1 = cache.answer(query, server)
        second, hit2 = cache.answer(query, server)
        assert not hit1 and hit2
        assert first.multiset_equal(second)

    def test_remember_on_miss_disabled(self, catalog, server):
        cache = QueryCache(catalog)
        query = "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id"
        cache.answer(query, server, remember_on_miss=False)
        assert cache.cached_names == []

    def test_hit_rate(self, catalog, server):
        cache = QueryCache(catalog)
        query = "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id"
        cache.answer(query, server)
        cache.answer(query, server)
        cache.answer(query, server)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)


class TestEviction:
    def test_lru_eviction_under_capacity(self, catalog, server):
        summary_rows = server.execute(SUMMARY)
        # Room for the summary plus one row: adding the 4-row yearly
        # rollup must push the (older) summary out.
        cache = QueryCache(catalog, capacity_rows=len(summary_rows) + 1)
        cache.remember(SUMMARY, summary_rows, name="monthly")
        other = "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id"
        cache.remember(other, server.execute(other), name="yearly")
        assert "monthly" not in cache.cached_names
        assert "yearly" in cache.cached_names
        assert cache.stats.evictions == 1

    def test_forget(self, catalog, server):
        cache = QueryCache(catalog)
        cache.remember(SUMMARY, server.execute(SUMMARY), name="m")
        cache.forget("m")
        assert cache.cached_names == []
        with pytest.raises(SchemaError):
            cache.forget("m")

    def test_touch_updates_lru_order(self, catalog, server):
        cache = QueryCache(catalog, capacity_rows=10_000)
        cache.remember(SUMMARY, server.execute(SUMMARY), name="monthly")
        other = "SELECT Plan_Id, Year, SUM(Charge) FROM Calls GROUP BY Plan_Id, Year"
        cache.remember(other, server.execute(other), name="py")
        # Touch "monthly" through a hit, then shrink capacity: "py"
        # must be the victim.
        assert cache.try_answer(
            "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id"
        ) is not None
        cache.capacity_rows = len(server.execute(SUMMARY)) + 2
        cache.remember(
            "SELECT Year, SUM(Charge) FROM Calls GROUP BY Year",
            server.execute("SELECT Year, SUM(Charge) FROM Calls GROUP BY Year"),
            name="yr",
        )
        assert "monthly" in cache.cached_names or "yr" in cache.cached_names

    def test_base_catalog_untouched(self, catalog, server):
        cache = QueryCache(catalog)
        cache.remember(SUMMARY, server.execute(SUMMARY))
        assert not catalog.views


class TestStatsWindow:
    """Reads are idempotent; resets are explicit (the gauge-exporter
    contract: polled numbers never go backwards behind a reader)."""

    def _worked_cache(self, catalog, server):
        cache = QueryCache(catalog)
        cache.remember(SUMMARY, server.execute(SUMMARY))
        cache.try_answer(
            "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id"
        )
        cache.try_answer("SELECT Call_Id, Charge FROM Calls")
        return cache

    def test_as_dict_is_idempotent(self, catalog, server):
        cache = self._worked_cache(catalog, server)
        first = cache.stats.as_dict()
        second = cache.stats.as_dict()
        assert first == second
        assert first["hits"] == 1 and first["misses"] == 1
        assert cache.stats.hits == 1  # attributes untouched by reads

    def test_reset_stats_zeroes_every_counter(self, catalog, server):
        cache = self._worked_cache(catalog, server)
        cache.reset_stats()
        assert cache.stats.as_dict() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "remembered": 0,
            "budget_exhausted": 0,
            "hit_rate": 0.0,
        }
        # The cached contents survive — only the counting window resets.
        assert cache.cached_names
        assert (
            cache.try_answer(
                "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id"
            )
            is not None
        )
        assert cache.stats.hits == 1

    def test_snapshot_stats_window_is_independent(self, catalog, server):
        cache = self._worked_cache(catalog, server)
        snapshot = cache.snapshot()
        snapshot.find_rewriting(
            "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id"
        )
        assert snapshot.stats.hits == 1
        snapshot.reset_stats()
        assert snapshot.stats.hits == 0
        # The live cache's window is untouched by snapshot resets.
        assert cache.stats.hits == 1


class TestRandomizedCorrectness:
    @pytest.mark.parametrize("seed", range(10))
    def test_every_hit_matches_server(self, catalog, server, seed):
        rng = random.Random(seed)
        cache = QueryCache(catalog)
        cache.remember(SUMMARY, server.execute(SUMMARY))
        group_choices = [
            "Plan_Id",
            "Month",
            "Year",
            "Plan_Id, Year",
            "Month, Year",
        ]
        for _ in range(6):
            groups = rng.choice(group_choices)
            agg = rng.choice(["SUM(Charge)", "COUNT(Charge)", "AVG(Charge)"])
            where = rng.choice(["", " WHERE Year = 1995", " WHERE Month = 6"])
            sql = (
                f"SELECT {groups}, {agg} FROM Calls{where} GROUP BY {groups}"
            )
            answer = cache.try_answer(sql)
            if answer is not None:
                assert answer.multiset_equal(server.execute(sql)), sql

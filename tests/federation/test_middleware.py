"""Federation middleware end-to-end on a live SQLite database.

The full loop the tentpole promises: ingest the catalog from the live
connection, rewrite incoming SQL text with the planner, emit
dialect-correct SQL, execute it on the same connection, and prove the
answer multiset-equal to the original query's.
"""

import json
import sqlite3

import pytest

from repro.cli import main
from repro.federation import FederationSession, SqlRewriter, ingest_catalog
from repro.oracle import rows_multiset_equal

SCHEMA = """
CREATE TABLE sales (id INTEGER PRIMARY KEY, region TEXT, amount INTEGER);
INSERT INTO sales VALUES
  (1,'east',10),(2,'east',20),(3,'west',5),(4,'north',30),(5,'west',7);
CREATE TABLE region_totals (region TEXT, total INTEGER, n INTEGER);
INSERT INTO region_totals
  SELECT region, SUM(amount), COUNT(amount) FROM sales GROUP BY region;
"""

MATERIALIZED = {
    "region_totals": (
        "SELECT region, SUM(amount) AS total, COUNT(amount) AS n "
        "FROM sales GROUP BY region"
    )
}

QUERY = "SELECT region, SUM(amount) AS s FROM sales GROUP BY region"


@pytest.fixture
def connection():
    conn = sqlite3.connect(":memory:")
    conn.executescript(SCHEMA)
    return conn


@pytest.fixture
def session(connection):
    return FederationSession(
        connection, dialect="sqlite", materialized=MATERIALIZED
    )


def test_rewrites_over_materialized_table(session):
    outcome = session.rewrite_sql(QUERY)
    assert outcome.rewritten
    assert outcome.used_views == ("region_totals",)
    assert '"region_totals"' in outcome.sql
    assert "sales" not in outcome.sql


def test_round_trip_multiset_equal(session, connection):
    result = session.execute(QUERY, verify=True)
    assert result.verified is True
    direct = connection.execute(QUERY).fetchall()
    assert rows_multiset_equal(result.rows, [tuple(r) for r in direct])
    assert sorted(result.rows) == [
        ("east", 30), ("north", 30), ("west", 12),
    ]


def test_unrewritable_query_passes_through(session):
    result = session.execute(
        "SELECT id, amount FROM sales WHERE region = 'east'", verify=True
    )
    assert not result.outcome.rewritten
    assert result.verified is True
    assert sorted(result.rows) == [(1, 10), (2, 20)]


def test_aux_views_are_created_and_dropped(connection):
    # Force a rewriting that may need aux CREATE VIEW statements; after
    # execute() no repro-created view may linger on the connection.
    session = FederationSession(
        connection, dialect="sqlite", materialized=MATERIALIZED,
        only_improving=False,
    )
    result = session.execute(QUERY, verify=True)
    assert result.verified is True
    leftover = connection.execute(
        "SELECT name FROM sqlite_master WHERE type = 'view'"
    ).fetchall()
    assert leftover == []


def test_outcome_json_shape(session):
    doc = session.rewrite_sql(QUERY).to_json_dict()
    assert doc["schema"] == "repro-api/1"
    assert doc["kind"] == "sql-rewrite"
    assert doc["rewritten"] is True
    assert doc["used_views"] == ["region_totals"]
    assert doc["cost_rewritten"] < doc["cost_original"]


def test_sql_rewriter_without_connection():
    conn = sqlite3.connect(":memory:")
    conn.executescript(SCHEMA)
    catalog, _report = ingest_catalog(conn, materialized=MATERIALIZED)
    rewriter = SqlRewriter(catalog, dialect="postgres")
    outcome = rewriter.rewrite_sql(QUERY)
    assert outcome.rewritten
    assert outcome.dialect == "postgres"


# ----------------------------------------------------------------------
# CLI paths
# ----------------------------------------------------------------------


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "live.db"
    conn = sqlite3.connect(str(path))
    conn.executescript(SCHEMA)
    conn.commit()
    conn.close()
    return str(path)


def _materialized_flag():
    return ["--materialized", "region_totals=" + MATERIALIZED["region_totals"]]


def test_cli_rewrite_sql_text(db_file, capsys):
    code = main(
        ["rewrite-sql", "--db", db_file, "--sql", QUERY]
        + _materialized_flag()
    )
    out = capsys.readouterr().out
    assert code == 0
    assert '"region_totals"' in out
    assert "rewritten over region_totals" in out


def test_cli_rewrite_sql_execute_verify(db_file, capsys):
    code = main(
        ["rewrite-sql", "--db", db_file, "--sql", QUERY,
         "--execute", "--verify"]
        + _materialized_flag()
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "-- verified: True" in out
    assert "('east', 30)" in out


def test_cli_rewrite_sql_json(db_file, capsys):
    code = main(
        ["rewrite-sql", "--db", db_file, "--sql", QUERY, "--execute",
         "--verify", "--json"]
        + _materialized_flag()
    )
    doc = json.loads(capsys.readouterr().out)
    assert code == 0
    assert doc["kind"] == "sql-rewrite"
    assert doc["ok"] is True
    assert doc["result"]["verified"] is True
    assert sorted(map(tuple, doc["result"]["rows"])) == [
        ["east", 30], ["north", 30], ["west", 12],
    ] or sorted(map(list, doc["result"]["rows"])) == [
        ["east", 30], ["north", 30], ["west", 12],
    ]


def test_cli_rewrite_sql_schema_source(tmp_path, capsys):
    schema = tmp_path / "schema.sql"
    schema.write_text(
        "CREATE TABLE sales (region TEXT, amount INT);\n"
        "CREATE VIEW totals (region, total, n) AS\n"
        "SELECT region, SUM(amount), COUNT(amount) "
        "FROM sales GROUP BY region;\n"
    )
    code = main(
        ["rewrite-sql", "--schema", str(schema), "--sql", QUERY,
         "--dialect", "duckdb", "--json"]
    )
    doc = json.loads(capsys.readouterr().out)
    assert code == 0
    assert doc["kind"] == "sql-rewrite"
    assert doc["result"]["dialect"] == "duckdb"
    assert doc["result"]["rewritten"] is True


def test_cli_rewrite_sql_execute_needs_db(tmp_path, capsys):
    schema = tmp_path / "schema.sql"
    schema.write_text("CREATE TABLE sales (region TEXT, amount INT);")
    code = main(
        ["rewrite-sql", "--schema", str(schema), "--sql", QUERY,
         "--execute"]
    )
    assert code == 2
    assert "--execute/--verify require --db" in capsys.readouterr().err


def test_cli_rewrite_sql_bad_materialized(db_file, capsys):
    code = main(
        ["rewrite-sql", "--db", db_file, "--sql", QUERY,
         "--materialized", "nonsense"]
    )
    assert code == 2
    assert "expected NAME=SELECT" in capsys.readouterr().err


def test_cli_rewrite_sql_unknown_dialect(db_file, capsys):
    code = main(
        ["rewrite-sql", "--db", db_file, "--sql", QUERY,
         "--dialect", "mssql"]
    )
    assert code == 2
    assert "unknown dialect 'mssql'" in capsys.readouterr().err


def test_cli_serve_sql_loop(db_file, capsys, monkeypatch):
    import io

    lines = "\n".join(
        [
            json.dumps({"id": 1, "sql": QUERY, "verify": True,
                        "execute": True}),
            "# a comment",
            json.dumps({"id": 2, "sql": "SELECT broken FROM nowhere"}),
            json.dumps({"id": 3, "sql": QUERY}),
        ]
    )
    monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
    code = main(
        ["serve-sql", "--db", db_file] + _materialized_flag()
    )
    out_lines = capsys.readouterr().out.strip().splitlines()
    assert code == 0
    docs = [json.loads(line) for line in out_lines]
    assert [d["id"] for d in docs] == [1, 2, 3]
    assert docs[0]["verified"] is True
    assert docs[1]["kind"] == "error"
    assert docs[2]["rewritten"] is True


def test_cli_serve_sql_metrics_frames(db_file, capsys, monkeypatch):
    import io

    lines = "\n".join(
        json.dumps({"id": i, "sql": QUERY, "verify": True, "execute": True})
        for i in range(3)
    )
    monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
    # Interval 0.0s < per-request latency: a frame follows every
    # response, plus the closing frame at EOF.
    code = main(
        ["serve-sql", "--db", db_file, "--metrics-interval", "1e-9"]
        + _materialized_flag()
    )
    assert code == 0
    docs = [
        json.loads(line)
        for line in capsys.readouterr().out.strip().splitlines()
    ]
    frames = [d for d in docs if d.get("kind") == "metrics-frame"]
    responses = [d for d in docs if d.get("kind") != "metrics-frame"]
    assert len(responses) == 3
    assert len(frames) == 4  # one per response + the closing frame
    assert [f["seq"] for f in frames] == [1, 2, 3, 4]
    for frame in frames:
        assert frame["schema"] == "repro-metrics/1"
        assert frame["elapsed"] >= 0.0
    families = frames[-1]["metrics"]["families"]
    # Cumulative, not per-window: the closing frame carries the whole
    # session's counters, including federation and service families.
    samples = families["repro_federation_statements_total"]["samples"]
    assert sum(v for _, v in samples) == 3
    assert families["repro_federation_verify_total"]["samples"]
    assert "repro_planner_searches_total" in families


def test_cli_serve_sql_no_frames_by_default(db_file, capsys, monkeypatch):
    import io

    monkeypatch.setattr(
        "sys.stdin", io.StringIO(json.dumps({"id": 1, "sql": QUERY}) + "\n")
    )
    code = main(["serve-sql", "--db", db_file] + _materialized_flag())
    assert code == 0
    docs = [
        json.loads(line)
        for line in capsys.readouterr().out.strip().splitlines()
    ]
    assert all(d.get("kind") != "metrics-frame" for d in docs)

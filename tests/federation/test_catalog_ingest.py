"""Live catalog ingestion from a SQLite connection."""

import sqlite3

import pytest

from repro.federation import ingest_catalog

SCHEMA = """
CREATE TABLE sales (id INTEGER PRIMARY KEY, region TEXT, amount INTEGER);
CREATE TABLE plans (plan_id INTEGER PRIMARY KEY, name TEXT);
CREATE VIEW east_sales AS SELECT id, amount FROM sales WHERE region = 'east';
CREATE VIEW east_ids (i) AS SELECT id FROM east_sales;
"""


@pytest.fixture
def connection():
    conn = sqlite3.connect(":memory:")
    conn.executescript(SCHEMA)
    return conn


def test_tables_and_columns(connection):
    catalog, report = ingest_catalog(connection)
    assert sorted(report.tables) == ["plans", "sales"]
    assert catalog.tables["sales"].columns == ("id", "region", "amount")


def test_primary_keys_ingested(connection):
    catalog, _report = ingest_catalog(connection)
    assert frozenset(["id"]) in catalog.tables["sales"].keys


def test_views_parsed_as_rewriting_candidates(connection):
    catalog, report = ingest_catalog(connection)
    assert "east_sales" in report.views
    assert "east_sales" in catalog.views
    view = catalog.views["east_sales"]
    assert view.output_names == ("id", "amount")


def test_view_on_view_resolves_by_fixpoint(connection):
    # east_ids reads east_sales; ingestion order must not matter.
    catalog, report = ingest_catalog(connection)
    assert "east_ids" in catalog.views
    assert catalog.views["east_ids"].output_names == ("i",)


def test_unsupported_view_is_skipped_with_reason(connection):
    connection.execute(
        "CREATE VIEW fancy AS SELECT id FROM sales "
        "WHERE region = 'east' OR region = 'west'"
    )
    catalog, report = ingest_catalog(connection)
    assert "fancy" not in catalog.views
    skipped = dict(report.skipped)
    assert "fancy" in skipped
    assert skipped["fancy"]  # non-empty reason
    # The rest of the schema still ingested.
    assert "east_sales" in catalog.views


def test_materialized_tables_become_views(connection):
    connection.executescript(
        "CREATE TABLE region_totals (region TEXT, total INT, n INT);"
    )
    catalog, report = ingest_catalog(
        connection,
        materialized={
            "region_totals": (
                "SELECT region, SUM(amount) AS total, "
                "COUNT(amount) AS n FROM sales GROUP BY region"
            )
        },
    )
    assert "region_totals" in report.materialized
    assert "region_totals" not in catalog.tables
    assert catalog.views["region_totals"].output_names == (
        "region", "total", "n",
    )


def test_row_counts_ingested(connection):
    connection.executemany(
        "INSERT INTO sales VALUES (?, ?, ?)",
        [(1, "east", 10), (2, "west", 20), (3, "east", 5)],
    )
    catalog, report = ingest_catalog(connection, row_counts=True)
    assert catalog.tables["sales"].row_count == 3


def test_adversarial_names_ingest(connection):
    connection.execute(
        'CREATE TABLE "select" ("group" INT, "weird ""name""" TEXT)'
    )
    catalog, report = ingest_catalog(connection)
    assert "select" in catalog.tables
    assert catalog.tables["select"].columns == ("group", 'weird "name"')


def test_report_summary_and_json(connection):
    _catalog, report = ingest_catalog(connection)
    assert "2 table(s)" in report.summary()
    doc = report.to_json_dict()
    assert doc["dialect"] == "sqlite"
    assert sorted(doc["tables"]) == ["plans", "sales"]

"""Exception hierarchy behaviour."""

import pytest

from repro.errors import (
    EvaluationError,
    NormalizationError,
    ReproError,
    RewriteError,
    SchemaError,
    SQLSyntaxError,
    UnsupportedSQLError,
)


def test_all_derive_from_repro_error():
    for exc in (
        SQLSyntaxError,
        UnsupportedSQLError,
        SchemaError,
        NormalizationError,
        EvaluationError,
        RewriteError,
    ):
        assert issubclass(exc, ReproError)


def test_syntax_error_carries_position():
    error = SQLSyntaxError("bad token", line=3, column=7)
    assert error.line == 3 and error.column == 7
    assert "line 3" in str(error) and "column 7" in str(error)


def test_syntax_error_without_position():
    error = SQLSyntaxError("bad token")
    assert "line" not in str(error)


def test_single_catch_point():
    with pytest.raises(ReproError):
        raise UnsupportedSQLError("nope")

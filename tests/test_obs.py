"""Unit tests for the observability layer: budgets, tracing, degradation.

The contracts under test (see ``src/repro/obs/``):

* budgets never raise — a tripped limit yields partial-but-sound results
  tagged ``exhausted=True`` with the tripped reasons recorded;
* a zero budget does no work and returns empty-but-sound;
* with tracing disabled, ``span()`` allocates nothing (one shared no-op
  context) and ``RewriteResult.trace`` stays ``None``;
* the span tree mirrors the pipeline's *stages*, not the search's size;
* ``rewrite_iteratively`` honors the budget *between* per-view
  iterations (regression: a spent budget must skip remaining views).
"""

import pytest

from repro import Catalog, parse_query, parse_view, table
from repro.cache import QueryCache
from repro.core.multiview import all_rewritings, rewrite_iteratively
from repro.core.planner import RewritePlanner
from repro.core.rewriter import RewriteEngine
from repro.obs import (
    BudgetMeter,
    RewriteTrace,
    SearchBudget,
    Tracer,
    ensure_meter,
    span,
    tracing,
)
from repro.obs.trace import _NULL_CONTEXT, add_counter, current_tracer


@pytest.fixture
def example_4_1(wide_catalog):
    """The paper's Example 4.1: one aggregation view that answers the query."""
    query = parse_query(
        "SELECT A, SUM(E) FROM R1, R2 WHERE C = F GROUP BY A",
        wide_catalog,
    )
    view = parse_view(
        "CREATE VIEW V (VA, VC, VS) AS "
        "SELECT A, C, SUM(E) FROM R1, R2 WHERE C = F GROUP BY A, C",
        wide_catalog,
    )
    wide_catalog.add_view(view)
    return wide_catalog, query, view


@pytest.fixture
def two_view_catalog(rs_catalog):
    """Example 3.1 with the usable view registered twice — at least two
    candidate rewritings exist, so candidate caps have something to cut."""
    query = parse_query(
        "SELECT A, D FROM R1, R2 WHERE B = C AND D >= 5", rs_catalog
    )
    for name in ("V1", "V2"):
        rs_catalog.add_view(
            parse_view(
                f"CREATE VIEW {name} ({name}A, {name}D) AS "
                "SELECT A, D FROM R1, R2 WHERE B = C",
                rs_catalog,
            )
        )
    return rs_catalog, query


class TestBudgetMeter:
    def test_unlimited_budget_normalizes_to_none(self):
        assert SearchBudget().is_unlimited
        assert SearchBudget.unlimited().is_unlimited
        assert ensure_meter(None) is None
        assert ensure_meter(SearchBudget()) is None

    def test_ensure_meter_passes_running_meters_through(self):
        meter = SearchBudget(max_mappings=3).start()
        assert ensure_meter(meter) is meter
        started = ensure_meter(SearchBudget(max_mappings=3))
        assert isinstance(started, BudgetMeter)

    def test_zero_mapping_budget_counts_nothing(self):
        meter = SearchBudget(max_mappings=0).start()
        assert not meter.charge_mapping()
        assert meter.mappings_enumerated == 0
        assert meter.exhausted
        assert meter.tripped == ("max_mappings",)

    def test_zero_candidate_budget_counts_nothing(self):
        meter = SearchBudget(max_candidates=0).start()
        assert not meter.charge_candidate()
        assert meter.candidates_generated == 0
        assert meter.tripped == ("max_candidates",)

    def test_charges_below_the_limit_succeed(self):
        meter = SearchBudget(max_mappings=2).start()
        assert meter.charge_mapping()
        assert meter.charge_mapping()
        assert not meter.charge_mapping()
        assert meter.mappings_enumerated == 2

    def test_expired_deadline_trips_ok(self):
        meter = SearchBudget(deadline=0.0).start()
        assert not meter.ok()
        assert meter.tripped == ("deadline",)

    def test_generous_deadline_does_not_trip(self):
        meter = SearchBudget(deadline=60.0).start()
        assert meter.ok()
        assert not meter.exhausted

    def test_trip_reasons_recorded_once_in_order(self):
        meter = SearchBudget(max_mappings=0, max_candidates=0).start()
        meter.charge_candidate()
        meter.charge_mapping()
        meter.charge_candidate()
        assert meter.tripped == ("max_candidates", "max_mappings")

    def test_as_dict_snapshot(self):
        meter = SearchBudget(max_mappings=1).start()
        meter.charge_mapping()
        snapshot = meter.as_dict()
        assert snapshot["exhausted"] is False
        assert snapshot["mappings_enumerated"] == 1
        assert snapshot["budget"]["max_mappings"] == 1


class TestTracingDisabled:
    def test_span_returns_the_shared_null_context(self):
        assert current_tracer() is None
        assert span("anything") is _NULL_CONTEXT
        assert span("something_else") is _NULL_CONTEXT

    def test_add_counter_is_a_no_op(self):
        add_counter("nodes", 5)  # must not raise, must not allocate state
        assert current_tracer() is None

    def test_untraced_rewrite_has_no_trace(self, example_4_1):
        catalog, query, _view = example_4_1
        result = RewriteEngine(catalog).rewrite(query)
        assert result.trace is None

    def test_tracing_scope_restores_previous(self):
        outer, inner = Tracer(), Tracer()
        with tracing(outer):
            assert current_tracer() is outer
            with tracing(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None


class TestSpanTree:
    def test_engine_trace_mirrors_pipeline_stages(self, example_4_1):
        catalog, query, _view = example_4_1
        result = RewriteEngine(catalog).rewrite(query, trace=True)
        trace = result.trace
        assert isinstance(trace, RewriteTrace)
        assert trace.root.name == "rewrite"
        assert list(trace.root.children) == [
            "parse", "normalize", "search", "rank",
        ]
        search = trace.root.children["search"]
        for stage in ("signature_probe", "mapping_enumeration", "checks"):
            assert stage in search.children, sorted(search.children)
            assert search.children[stage].count >= 1
        stage_seconds = trace.stage_seconds()
        assert stage_seconds.keys() >= {"parse", "search", "checks"}
        assert all(seconds >= 0.0 for seconds in stage_seconds.values())

    def test_trace_carries_search_counters(self, example_4_1):
        catalog, query, _view = example_4_1
        result = RewriteEngine(catalog).rewrite(query, trace=True)
        counters = result.trace.counters
        assert counters.get("nodes_expanded", 0) >= 1
        assert counters.get("candidates_generated", 0) >= 1

    def test_maximality_stage_is_spanned(self, example_4_1):
        catalog, query, view = example_4_1
        planner = RewritePlanner([view], catalog)
        with tracing(Tracer()) as tracer:
            planner.all_rewritings(query, max_steps=1, include_partial=False)
        assert "maximality" in tracer.finish().children

    def test_spans_merge_by_name_not_by_call(self, example_4_1):
        """Re-running the search must grow counts, not the tree."""
        catalog, query, view = example_4_1
        planner = RewritePlanner([view], catalog)
        with tracing(Tracer()) as tracer:
            planner.all_rewritings(query, max_steps=3)
            first_shape = tracer.root.total_spans()
            first_probes = tracer.root.children["signature_probe"].count
            planner.all_rewritings(query, max_steps=3)
            assert tracer.root.total_spans() == first_shape
            assert (
                tracer.root.children["signature_probe"].count > first_probes
            )

    def test_format_renders_the_tree(self, example_4_1):
        catalog, query, _view = example_4_1
        result = RewriteEngine(catalog).rewrite(
            query, budget=SearchBudget(max_candidates=500), trace=True
        )
        text = result.trace.format()
        assert "rewrite" in text and "ms" in text
        assert "counters:" in text
        assert "budget: exhausted=False" in text


class TestBudgetedSearch:
    def test_expired_deadline_degrades_not_raises(self, example_4_1):
        catalog, query, _view = example_4_1
        result = RewriteEngine(catalog).rewrite(
            query, budget=SearchBudget(deadline=0.0)
        )
        assert result.exhausted is True
        assert "deadline" in result.budget["tripped"]
        assert result.ranked == []
        assert result.best_or_original() == result.query

    def test_zero_budget_is_empty_but_sound(self, example_4_1):
        catalog, query, view = example_4_1
        for use_planner in (True, False):
            meter = SearchBudget(max_mappings=0).start()
            found = all_rewritings(
                query, [view], catalog, use_planner=use_planner, budget=meter
            )
            assert found == []
            assert meter.exhausted

    def test_candidate_cap_returns_a_partial_prefix(self, two_view_catalog):
        catalog, query = two_view_catalog
        views = list(catalog.views.values())
        full = all_rewritings(query, views, catalog)
        assert len(full) >= 2  # otherwise the cap below cuts nothing

        meter = SearchBudget(max_candidates=1).start()
        partial = all_rewritings(
            query,
            views,
            catalog,
            planner=RewritePlanner(views, catalog),
            budget=meter,
        )
        assert len(partial) == 1
        assert meter.exhausted and meter.tripped == ("max_candidates",)
        assert partial[0].sql() in {r.sql() for r in full}

    def test_trace_reports_exhaustion(self, example_4_1):
        catalog, query, _view = example_4_1
        result = RewriteEngine(catalog).rewrite(
            query, budget=SearchBudget(deadline=0.0), trace=True
        )
        assert result.trace.exhausted is True
        assert "exhausted=True" in result.trace.format()

    def test_engine_default_budget_applies(self, example_4_1):
        catalog, query, _view = example_4_1
        engine = RewriteEngine(catalog, budget=SearchBudget(deadline=0.0))
        assert engine.rewrite(query).exhausted is True
        # A per-call budget overrides the engine default.
        assert engine.rewrite(query, budget=SearchBudget()).exhausted is False


class TestQueryCacheBudget:
    def _warm_cache(self, rs_catalog):
        cache = QueryCache(rs_catalog)
        cache.remember(
            "SELECT A, D FROM R1, R2 WHERE B = C", [(1, 7), (2, 9)]
        )
        return cache

    def test_unbudgeted_lookup_hits(self, rs_catalog):
        cache = self._warm_cache(rs_catalog)
        answer = cache.try_answer(
            "SELECT A, D FROM R1, R2 WHERE B = C AND D >= 8"
        )
        assert answer is not None
        assert sorted(answer.rows) == [(2, 9)]
        assert cache.stats.hits == 1

    def test_spent_budget_degrades_to_a_miss(self, rs_catalog):
        cache = self._warm_cache(rs_catalog)
        answer = cache.try_answer(
            "SELECT A, D FROM R1, R2 WHERE B = C AND D >= 8",
            budget=SearchBudget(deadline=0.0),
        )
        assert answer is None
        assert cache.stats.misses == 1
        assert cache.stats.budget_exhausted == 1

    def test_cache_default_budget_applies(self, rs_catalog):
        cache = QueryCache(rs_catalog, budget=SearchBudget(deadline=0.0))
        cache.remember(
            "SELECT A, D FROM R1, R2 WHERE B = C", [(1, 7)]
        )
        assert (
            cache.try_answer("SELECT A, D FROM R1, R2 WHERE B = C AND D >= 5")
            is None
        )
        assert cache.stats.budget_exhausted == 1


class TestMetricsWorkerMerge:
    """The merge discipline the batch service builds on: worker
    registries are born empty, snapshots travel by pickling, and each
    folds into the parent exactly once (``docs/observability.md``)."""

    def _one_search(self, example_4_1, registry):
        from repro.obs.metrics import collecting

        catalog, query, _view = example_4_1
        with collecting(registry):
            RewriteEngine(catalog).rewrite(query)

    def test_chunk_scoped_registries_fold_once(self, example_4_1):
        from repro.obs.metrics import MetricsRegistry

        parent = MetricsRegistry()
        for _ in range(3):  # one born-empty registry per "chunk"
            chunk = MetricsRegistry()
            self._one_search(example_4_1, chunk)
            parent.merge(chunk.snapshot())
        assert (
            parent.snapshot().counter_value("repro_planner_searches_total")
            == 3
        )

    def test_snapshot_pickles_across_process_boundary(self, example_4_1):
        import pickle

        from repro.obs.metrics import MetricsRegistry, MetricsSnapshot

        worker = MetricsRegistry()
        self._one_search(example_4_1, worker)
        wire = pickle.dumps(worker.snapshot().as_dict())
        parent = MetricsRegistry()
        parent.merge(MetricsSnapshot.from_dict(pickle.loads(wire)))
        assert (
            parent.snapshot().counter_value("repro_planner_searches_total")
            == 1
        )

    def test_double_merge_double_counts(self, example_4_1):
        # The contract is *caller-owned*: merging the same snapshot
        # twice does double count — which is why runners merge each
        # worker snapshot exactly once.
        from repro.obs.metrics import MetricsRegistry

        worker = MetricsRegistry()
        self._one_search(example_4_1, worker)
        parent = MetricsRegistry()
        snapshot = worker.snapshot()
        parent.merge(snapshot)
        parent.merge(snapshot)
        assert (
            parent.snapshot().counter_value("repro_planner_searches_total")
            == 2
        )


class TestRewriteIterativelyBudget:
    """Regression: the budget must be honored *between* view iterations."""

    def _church_rosser_setup(self):
        catalog = Catalog(
            [
                table("R", ["A", "B"]),
                table("S", ["C", "D"]),
                table("T", ["E", "F"]),
            ]
        )
        views = []
        for name, base, cols in [
            ("VR", "R", "A, B"),
            ("VS", "S", "C, D"),
            ("VT", "T", "E, F"),
        ]:
            view = parse_view(
                f"CREATE VIEW {name} ({cols}) AS SELECT {cols} FROM {base}",
                catalog,
            )
            catalog.add_view(view)
            views.append(view)
        query = parse_query(
            "SELECT A, COUNT(C) FROM R, S, T WHERE B = C AND D = E "
            "GROUP BY A",
            catalog,
        )
        return catalog, query, views

    def test_spent_budget_skips_remaining_views(self, monkeypatch):
        catalog, query, views = self._church_rosser_setup()
        import repro.core.multiview as multiview

        attempted: list[str] = []
        real = multiview.single_view_rewritings

        def counting(block, view, *args, **kwargs):
            attempted.append(view.name)
            return real(block, view, *args, **kwargs)

        monkeypatch.setattr(multiview, "single_view_rewritings", counting)

        # One mapping fits the budget: VR consumes it, VS trips the limit,
        # and — the regression — VT must never be attempted at all.
        meter = SearchBudget(max_mappings=1).start()
        result = rewrite_iteratively(query, views, catalog, budget=meter)
        assert attempted == ["VR", "VS"]
        assert meter.exhausted and meter.tripped == ("max_mappings",)
        # The partial composition is still a complete, sound rewriting.
        assert result is not None
        assert tuple(result.view_names) == ("VR",)

    def test_unbudgeted_run_attempts_every_view(self, monkeypatch):
        catalog, query, views = self._church_rosser_setup()
        import repro.core.multiview as multiview

        attempted: list[str] = []
        real = multiview.single_view_rewritings

        def counting(block, view, *args, **kwargs):
            attempted.append(view.name)
            return real(block, view, *args, **kwargs)

        monkeypatch.setattr(multiview, "single_view_rewritings", counting)
        result = rewrite_iteratively(query, views, catalog)
        assert attempted == ["VR", "VS", "VT"]
        assert result is not None and len(result.view_names) == 3

    def test_self_join_star_query_respects_budget(self):
        """A crafted self-join star: mapping enumeration is the expensive
        part, and the budget must stop it mid-query, not post-hoc."""
        catalog = Catalog([table("R", ["A", "B"])])
        view = parse_view(
            "CREATE VIEW V (X, Y) AS SELECT A, B FROM R", catalog
        )
        catalog.add_view(view)
        query = parse_query(
            "SELECT R.A, R2.A, R3.A FROM R, R AS R2, R AS R3 "
            "WHERE R.B = R2.B AND R2.B = R3.B",
            catalog,
        )
        meter = SearchBudget(max_mappings=1).start()
        found = all_rewritings(
            query,
            [view],
            catalog,
            planner=RewritePlanner([view], catalog),
            budget=meter,
        )
        assert meter.exhausted
        assert meter.mappings_enumerated == 1
        # Unbudgeted, the same search enumerates a mapping per occurrence.
        unbudgeted = SearchBudget(max_mappings=100).start()
        all_rewritings(
            query,
            [view],
            catalog,
            planner=RewritePlanner([view], catalog),
            budget=unbudgeted,
        )
        assert unbudgeted.mappings_enumerated > 1
        assert {r.sql() for r in found} <= {
            r.sql()
            for r in all_rewritings(query, [view], catalog)
        }

"""Golden corpus for the Cohen–Nutt strategy's coverage gap.

Every case in :mod:`tests.strategies.cases` is a completeness witness:
the C1–C4 search must find *nothing* while the Cohen–Nutt strategy must
succeed, and the produced SQL is pinned under
``tests/strategies/goldens/cohen_nutt.sql``. After an intentional
strategy change, regenerate with ``pytest --update-goldens`` — the diff
is the review artifact.

The goldens are not just pretty: every pinned rewriting is executed by
the engine against deterministic instances (the empty database
included) and must multiset-match the original query's answer.
"""

from pathlib import Path

import pytest

from repro.blocks.to_sql import block_to_sql
from repro.core.multiview import all_rewritings
from repro.engine.database import Database
from repro.strategies import cohen_nutt_rewritings

from .cases import CASES

GOLDEN_PATH = Path(__file__).parent / "goldens" / "cohen_nutt.sql"


def _extras(case):
    return cohen_nutt_rewritings(case.query, [case.view])


def corpus_document() -> str:
    """The whole corpus as one reviewable SQL document."""
    lines = [
        "-- Cohen-Nutt golden corpus: rewritings beyond C1-C4.",
        "-- Regenerate with: pytest tests/strategies --update-goldens",
    ]
    for case in CASES:
        lines.append("")
        lines.append(f"-- case: {case.name}")
        lines.append(f"-- view {case.view.name}: "
                     f"{block_to_sql(case.view.block)!r}")
        lines.append(block_to_sql(case.query) + ";")
        for rewriting in _extras(case):
            lines.append(f"--> [{rewriting.strategy}]")
            lines.append(rewriting.sql() + ";")
    return "\n".join(lines) + "\n"


def test_corpus_matches_golden(request):
    document = corpus_document()
    if request.config.getoption("--update-goldens"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(document)
        return
    assert GOLDEN_PATH.exists(), (
        f"missing golden {GOLDEN_PATH}; run pytest --update-goldens "
        "to create it"
    )
    assert document == GOLDEN_PATH.read_text(), (
        f"Cohen-Nutt corpus drifted from {GOLDEN_PATH}; if the change "
        "is intentional, regenerate with pytest --update-goldens"
    )


def test_every_case_has_unique_name():
    names = [case.name for case in CASES]
    assert len(names) == len(set(names))
    assert len(names) >= 20


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_c1c4_finds_nothing(case):
    found = all_rewritings(
        case.query, [case.view], case.catalog(), use_planner=True
    )
    assert not found, (
        f"{case.name}: C1-C4 now answers this case; it is no longer a "
        f"completeness witness — found {[r.sql() for r in found]}"
    )


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_cohen_nutt_succeeds_and_is_sound(case):
    extras = _extras(case)
    assert extras, f"{case.name}: Cohen-Nutt strategy found no rewriting"
    catalog = case.catalog()
    for instance in case.instances():
        db = Database(catalog, {k: list(v) for k, v in instance.items()})
        baseline = db.execute(case.query)
        for rewriting in extras:
            got = db.execute(
                rewriting.query, extra_views=rewriting.extra_views()
            )
            assert baseline.multiset_equal(got), (
                f"{case.name}: unsound rewriting\n"
                f"rewriting: {rewriting.sql()}\n"
                f"instance: {instance}\n"
                f"original:  {sorted(map(str, baseline.rows))}\n"
                f"rewritten: {sorted(map(str, got.rows))}"
            )


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_engine_union_contains_extras(case):
    """strategy='cohen_nutt' at the engine level returns the union."""
    from repro.core.canonical import canonical_key
    from repro.core.rewriter import RewriteEngine

    engine = RewriteEngine(case.catalog())
    result = engine.rewrite(case.query, strategy="cohen_nutt")
    keys = {canonical_key(r.rewriting.query) for r in result.ranked}
    for rewriting in _extras(case):
        assert canonical_key(rewriting.query) in keys, (
            f"{case.name}: engine union lost {rewriting.sql()}"
        )

"""The Cohen–Nutt golden corpus: hand-built completeness witnesses.

Every case is a (query, view) pair over R(a, b, c) / S(d, e) where the
C1–C4 usability conditions find *no* rewriting but the complete
Cohen–Nutt strategy does — the corpus pins the strategy's coverage gap
closed. The families mirror ``docs/strategies.md``:

* aggregation views carrying a HAVING that is vacuous on every group
  (C1–C4 reject any view with a HAVING outright);
* AVG views — AVG is not decomposable, so the C1–C4 regroup path cannot
  use them even on an exact match;
* scalar aggregate queries answered by whole-query views;
* self-join conjunctive views answering duplicate-insensitive MIN/MAX
  queries through a many-to-one mapping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.blocks.exprs import AggFunc, Aggregate
from repro.blocks.query_block import (
    QueryBlock,
    Relation,
    SelectItem,
    ViewDef,
)
from repro.blocks.terms import Column, Comparison, Constant, Op
from repro.catalog.schema import Catalog, table

TABLES = {"R": ["a", "b", "c"], "S": ["d", "e"]}


def _rel(name: str, suffix: str = "") -> Relation:
    base = TABLES[name]
    return Relation(
        name, tuple(Column(c + suffix) for c in base), tuple(base)
    )


def _cols(*relations: Relation) -> dict[str, Column]:
    return {c.name: c for rel in relations for c in rel.columns}


def _agg(func: AggFunc, column: Column, alias=None) -> SelectItem:
    return SelectItem(Aggregate(func, column), alias=alias)


@dataclass(frozen=True)
class Case:
    name: str
    query: QueryBlock
    view: ViewDef

    def catalog(self) -> Catalog:
        catalog = Catalog(
            [table(n, cols, row_count=10) for n, cols in TABLES.items()]
        )
        catalog.add_view(self.view)
        return catalog

    def instances(self, trials: int = 25):
        """Deterministic small instances, the empty database included."""
        yield {"R": [], "S": []}
        for trial in range(trials):
            rng = random.Random(f"golden:{self.name}:{trial}")
            yield {
                name: [
                    tuple(rng.randint(0, 2) for _ in cols)
                    for _ in range(rng.randint(0, 6))
                ]
                for name, cols in TABLES.items()
            }


_BUILDERS = []


def _case(builder):
    _BUILDERS.append(builder)
    return builder


def _view(block: QueryBlock, prefix: str = "o") -> ViewDef:
    names = tuple(f"{prefix}{i}" for i in range(len(block.select)))
    return ViewDef("V", block.validate(), names)


# ---------------------------------------------------------------------
# Scalar aggregate queries answered by whole-query views


@_case
def scalar_count_join():
    r, s = _rel("R"), _rel("S")
    q = _cols(r, s)
    query = QueryBlock(
        select=(_agg(AggFunc.COUNT, q["b"]),),
        from_=(r, s),
        where=(Comparison(q["c"], Op.EQ, q["d"]),),
    ).validate()
    vr, vs = _rel("R", "v"), _rel("S", "v")
    v = _cols(vr, vs)
    view = _view(
        QueryBlock(
            select=(_agg(AggFunc.COUNT, v["av"], alias="n"),),
            from_=(vr, vs),
            where=(Comparison(v["cv"], Op.EQ, v["dv"]),),
        )
    )
    return query, view


@_case
def avg_residual_over_group():
    # The view carries no WHERE at all; the query's predicate lands as
    # a residual over the view's group output.
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(SelectItem(q["b"]), _agg(AggFunc.AVG, q["a"])),
        from_=(r,),
        where=(Comparison(q["b"], Op.GT, Constant(0)),),
        group_by=(q["b"],),
    ).validate()
    vr = _rel("R", "v")
    v = _cols(vr)
    view = _view(
        QueryBlock(
            select=(
                SelectItem(v["bv"]),
                _agg(AggFunc.AVG, v["av"], alias="m"),
            ),
            from_=(vr,),
            group_by=(v["bv"],),
        )
    )
    return query, view


@_case
def scalar_count_filtered():
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(_agg(AggFunc.COUNT, q["a"]),),
        from_=(r,),
        where=(Comparison(q["b"], Op.GT, Constant(0)),),
    ).validate()
    vr = _rel("R", "v")
    v = _cols(vr)
    view = _view(
        QueryBlock(
            select=(_agg(AggFunc.COUNT, v["cv"], alias="n"),),
            from_=(vr,),
            where=(Comparison(v["bv"], Op.GT, Constant(0)),),
        )
    )
    return query, view


# ---------------------------------------------------------------------
# Vacuous-HAVING views (one per accepted vacuous shape)


def _vacuous_having_case(op: Op, bound: int):
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(SelectItem(q["b"]), _agg(AggFunc.COUNT, q["a"])),
        from_=(r,),
        where=(Comparison(q["c"], Op.GT, Constant(0)),),
        group_by=(q["b"],),
    ).validate()
    vr = _rel("R", "v")
    v = _cols(vr)
    view = _view(
        QueryBlock(
            select=(
                SelectItem(v["bv"]),
                _agg(AggFunc.COUNT, v["av"], alias="n"),
            ),
            from_=(vr,),
            where=(Comparison(v["cv"], Op.GT, Constant(0)),),
            group_by=(v["bv"],),
            having=(
                Comparison(
                    Aggregate(AggFunc.COUNT, v["av"]), op, Constant(bound)
                ),
            ),
        )
    )
    return query, view


@_case
def vacuous_having_gt0():
    return _vacuous_having_case(Op.GT, 0)


@_case
def vacuous_having_ge1():
    return _vacuous_having_case(Op.GE, 1)


@_case
def vacuous_having_ge0():
    return _vacuous_having_case(Op.GE, 0)


@_case
def vacuous_having_ne0():
    return _vacuous_having_case(Op.NE, 0)


@_case
def grouped_sum_vacuous_join():
    r, s = _rel("R"), _rel("S")
    q = _cols(r, s)
    query = QueryBlock(
        select=(SelectItem(q["e"]), _agg(AggFunc.SUM, q["a"])),
        from_=(r, s),
        where=(Comparison(q["c"], Op.EQ, q["d"]),),
        group_by=(q["e"],),
    ).validate()
    vr, vs = _rel("R", "v"), _rel("S", "v")
    v = _cols(vr, vs)
    view = _view(
        QueryBlock(
            select=(
                SelectItem(v["ev"]),
                _agg(AggFunc.SUM, v["av"], alias="s"),
            ),
            from_=(vr, vs),
            where=(Comparison(v["cv"], Op.EQ, v["dv"]),),
            group_by=(v["ev"],),
            having=(
                Comparison(
                    Aggregate(AggFunc.COUNT, v["av"]), Op.GE, Constant(1)
                ),
            ),
        )
    )
    return query, view


@_case
def residual_over_group_output():
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(SelectItem(q["b"]), _agg(AggFunc.SUM, q["a"])),
        from_=(r,),
        where=(
            Comparison(q["c"], Op.GT, Constant(0)),
            Comparison(q["b"], Op.GT, Constant(1)),
        ),
        group_by=(q["b"],),
    ).validate()
    vr = _rel("R", "v")
    v = _cols(vr)
    view = _view(
        QueryBlock(
            select=(
                SelectItem(v["bv"]),
                _agg(AggFunc.SUM, v["av"], alias="s"),
            ),
            from_=(vr,),
            where=(Comparison(v["cv"], Op.GT, Constant(0)),),
            group_by=(v["bv"],),
            having=(
                Comparison(
                    Aggregate(AggFunc.COUNT, v["av"]), Op.GT, Constant(0)
                ),
            ),
        )
    )
    return query, view


@_case
def avg_query_having_translated():
    # The query's own HAVING moves into the rewriting's WHERE, reading
    # the view's AVG output directly.
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(SelectItem(q["b"]), _agg(AggFunc.AVG, q["a"])),
        from_=(r,),
        group_by=(q["b"],),
        having=(
            Comparison(
                Aggregate(AggFunc.AVG, q["a"]), Op.GT, Constant(1)
            ),
        ),
    ).validate()
    vr = _rel("R", "v")
    v = _cols(vr)
    view = _view(
        QueryBlock(
            select=(
                SelectItem(v["bv"]),
                _agg(AggFunc.AVG, v["av"], alias="m"),
            ),
            from_=(vr,),
            group_by=(v["bv"],),
        )
    )
    return query, view


@_case
def multi_aggregate_vacuous():
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(
            SelectItem(q["b"]),
            _agg(AggFunc.COUNT, q["a"]),
            _agg(AggFunc.SUM, q["c"]),
        ),
        from_=(r,),
        group_by=(q["b"],),
    ).validate()
    vr = _rel("R", "v")
    v = _cols(vr)
    view = _view(
        QueryBlock(
            select=(
                SelectItem(v["bv"]),
                _agg(AggFunc.COUNT, v["av"], alias="n"),
                _agg(AggFunc.SUM, v["cv"], alias="s"),
            ),
            from_=(vr,),
            group_by=(v["bv"],),
            having=(
                Comparison(
                    Aggregate(AggFunc.COUNT, v["av"]), Op.GT, Constant(0)
                ),
            ),
        )
    )
    return query, view


@_case
def count_argument_fallback():
    # COUNT(c) answered by a COUNT(a) output: in the NULL-free model
    # every COUNT over a group counts the same rows.
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(SelectItem(q["b"]), _agg(AggFunc.COUNT, q["c"])),
        from_=(r,),
        group_by=(q["b"],),
    ).validate()
    vr = _rel("R", "v")
    v = _cols(vr)
    view = _view(
        QueryBlock(
            select=(
                SelectItem(v["bv"]),
                _agg(AggFunc.COUNT, v["av"], alias="n"),
            ),
            from_=(vr,),
            group_by=(v["bv"],),
            having=(
                Comparison(
                    Aggregate(AggFunc.COUNT, v["av"]), Op.GE, Constant(1)
                ),
            ),
        )
    )
    return query, view


@_case
def group_order_permuted():
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(
            SelectItem(q["b"]),
            SelectItem(q["c"]),
            _agg(AggFunc.COUNT, q["a"]),
        ),
        from_=(r,),
        group_by=(q["b"], q["c"]),
    ).validate()
    vr = _rel("R", "v")
    v = _cols(vr)
    view = _view(
        QueryBlock(
            select=(
                SelectItem(v["cv"]),
                SelectItem(v["bv"]),
                _agg(AggFunc.COUNT, v["av"], alias="n"),
            ),
            from_=(vr,),
            group_by=(v["cv"], v["bv"]),
            having=(
                Comparison(
                    Aggregate(AggFunc.COUNT, v["av"]), Op.GT, Constant(0)
                ),
            ),
        )
    )
    return query, view


# ---------------------------------------------------------------------
# AVG views (not decomposable, so C1-C4 can never regroup them)


@_case
def avg_grouped():
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(SelectItem(q["b"]), _agg(AggFunc.AVG, q["a"])),
        from_=(r,),
        group_by=(q["b"],),
    ).validate()
    vr = _rel("R", "v")
    v = _cols(vr)
    view = _view(
        QueryBlock(
            select=(
                SelectItem(v["bv"]),
                _agg(AggFunc.AVG, v["av"], alias="m"),
            ),
            from_=(vr,),
            group_by=(v["bv"],),
        )
    )
    return query, view


@_case
def avg_scalar():
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(_agg(AggFunc.AVG, q["b"]),), from_=(r,)
    ).validate()
    vr = _rel("R", "v")
    v = _cols(vr)
    view = _view(
        QueryBlock(
            select=(_agg(AggFunc.AVG, v["bv"], alias="m"),), from_=(vr,)
        )
    )
    return query, view


@_case
def avg_join_grouped():
    r, s = _rel("R"), _rel("S")
    q = _cols(r, s)
    query = QueryBlock(
        select=(SelectItem(q["e"]), _agg(AggFunc.AVG, q["a"])),
        from_=(r, s),
        where=(Comparison(q["c"], Op.EQ, q["d"]),),
        group_by=(q["e"],),
    ).validate()
    vr, vs = _rel("R", "v"), _rel("S", "v")
    v = _cols(vr, vs)
    view = _view(
        QueryBlock(
            select=(
                SelectItem(v["ev"]),
                _agg(AggFunc.AVG, v["av"], alias="m"),
            ),
            from_=(vr, vs),
            where=(Comparison(v["cv"], Op.EQ, v["dv"]),),
            group_by=(v["ev"],),
        )
    )
    return query, view


@_case
def avg_closure_equal_group():
    # The query groups by b, the view by c; b = c in both bodies, so
    # the groupings coincide under the condition closure.
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(SelectItem(q["b"]), _agg(AggFunc.AVG, q["a"])),
        from_=(r,),
        where=(Comparison(q["b"], Op.EQ, q["c"]),),
        group_by=(q["b"],),
    ).validate()
    vr = _rel("R", "v")
    v = _cols(vr)
    view = _view(
        QueryBlock(
            select=(
                SelectItem(v["cv"]),
                _agg(AggFunc.AVG, v["av"], alias="m"),
            ),
            from_=(vr,),
            where=(Comparison(v["bv"], Op.EQ, v["cv"]),),
            group_by=(v["cv"],),
        )
    )
    return query, view


# ---------------------------------------------------------------------
# MIN/MAX through self-join conjunctive views (many-to-one mappings)


def _selfjoin_view(name: str, join_col: str, extra=()):
    base = TABLES[name]
    r1 = Relation(
        name, tuple(Column(f"{c}1") for c in base), tuple(base)
    )
    r2 = Relation(
        name, tuple(Column(f"{c}2") for c in base), tuple(base)
    )
    by_name = _cols(r1, r2)
    where = tuple(extra(by_name) if callable(extra) else extra) + (
        Comparison(
            by_name[f"{join_col}1"], Op.EQ, by_name[f"{join_col}2"]
        ),
    )
    return _view(
        QueryBlock(
            select=tuple(SelectItem(c) for c in r1.columns),
            from_=(r1, r2),
            where=where,
        ),
        prefix="x",
    )


@_case
def max_selfjoin_scalar():
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(_agg(AggFunc.MAX, q["a"]),), from_=(r,)
    ).validate()
    return query, _selfjoin_view("R", "c")


@_case
def min_selfjoin_scalar():
    s = _rel("S")
    q = _cols(s)
    query = QueryBlock(
        select=(_agg(AggFunc.MIN, q["e"]),), from_=(s,)
    ).validate()
    return query, _selfjoin_view("S", "d")


@_case
def max_selfjoin_grouped():
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(SelectItem(q["b"]), _agg(AggFunc.MAX, q["a"])),
        from_=(r,),
        group_by=(q["b"],),
    ).validate()
    return query, _selfjoin_view("R", "c")


@_case
def max_selfjoin_filtered():
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(_agg(AggFunc.MAX, q["a"]),),
        from_=(r,),
        where=(Comparison(q["b"], Op.GT, Constant(0)),),
    ).validate()
    view = _selfjoin_view(
        "R",
        "c",
        extra=lambda v: (Comparison(v["b1"], Op.GT, Constant(0)),),
    )
    return query, view


@_case
def min_max_selfjoin_pair():
    r = _rel("R")
    q = _cols(r)
    query = QueryBlock(
        select=(
            _agg(AggFunc.MIN, q["a"]),
            _agg(AggFunc.MAX, q["b"]),
        ),
        from_=(r,),
    ).validate()
    return query, _selfjoin_view("R", "c")


def all_cases() -> list[Case]:
    out = []
    for builder in _BUILDERS:
        query, view = builder()
        out.append(Case(builder.__name__, query, view))
    return out


CASES = all_cases()

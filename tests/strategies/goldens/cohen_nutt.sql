-- Cohen-Nutt golden corpus: rewritings beyond C1-C4.
-- Regenerate with: pytest tests/strategies --update-goldens

-- case: scalar_count_join
-- view V: 'SELECT COUNT(R.a) AS n\nFROM R, S\nWHERE R.c = S.d'
SELECT COUNT(R.b)
FROM R, S
WHERE R.c = S.d;
--> [cohen-nutt-direct]
SELECT V.o0 AS _col0
FROM V;

-- case: avg_residual_over_group
-- view V: 'SELECT R.b, AVG(R.a) AS m\nFROM R\nGROUP BY R.b'
SELECT R.b, AVG(R.a)
FROM R
WHERE R.b > 0
GROUP BY R.b;
--> [cohen-nutt-direct]
SELECT V.o0 AS b, V.o1 AS _col1
FROM V
WHERE 0 < V.o0;

-- case: scalar_count_filtered
-- view V: 'SELECT COUNT(R.c) AS n\nFROM R\nWHERE R.b > 0'
SELECT COUNT(R.a)
FROM R
WHERE R.b > 0;
--> [cohen-nutt-direct]
SELECT V.o0 AS _col0
FROM V;

-- case: vacuous_having_gt0
-- view V: 'SELECT R.b, COUNT(R.a) AS n\nFROM R\nWHERE R.c > 0\nGROUP BY R.b\nHAVING COUNT(R.a) > 0'
SELECT R.b, COUNT(R.a)
FROM R
WHERE R.c > 0
GROUP BY R.b;
--> [cohen-nutt-direct]
SELECT V.o0 AS b, V.o1 AS _col1
FROM V;

-- case: vacuous_having_ge1
-- view V: 'SELECT R.b, COUNT(R.a) AS n\nFROM R\nWHERE R.c > 0\nGROUP BY R.b\nHAVING COUNT(R.a) >= 1'
SELECT R.b, COUNT(R.a)
FROM R
WHERE R.c > 0
GROUP BY R.b;
--> [cohen-nutt-direct]
SELECT V.o0 AS b, V.o1 AS _col1
FROM V;

-- case: vacuous_having_ge0
-- view V: 'SELECT R.b, COUNT(R.a) AS n\nFROM R\nWHERE R.c > 0\nGROUP BY R.b\nHAVING COUNT(R.a) >= 0'
SELECT R.b, COUNT(R.a)
FROM R
WHERE R.c > 0
GROUP BY R.b;
--> [cohen-nutt-direct]
SELECT V.o0 AS b, V.o1 AS _col1
FROM V;

-- case: vacuous_having_ne0
-- view V: 'SELECT R.b, COUNT(R.a) AS n\nFROM R\nWHERE R.c > 0\nGROUP BY R.b\nHAVING COUNT(R.a) <> 0'
SELECT R.b, COUNT(R.a)
FROM R
WHERE R.c > 0
GROUP BY R.b;
--> [cohen-nutt-direct]
SELECT V.o0 AS b, V.o1 AS _col1
FROM V;

-- case: grouped_sum_vacuous_join
-- view V: 'SELECT S.e, SUM(R.a) AS s\nFROM R, S\nWHERE R.c = S.d\nGROUP BY S.e\nHAVING COUNT(R.a) >= 1'
SELECT S.e, SUM(R.a)
FROM R, S
WHERE R.c = S.d
GROUP BY S.e;
--> [cohen-nutt-direct]
SELECT V.o0 AS e, V.o1 AS _col1
FROM V;

-- case: residual_over_group_output
-- view V: 'SELECT R.b, SUM(R.a) AS s\nFROM R\nWHERE R.c > 0\nGROUP BY R.b\nHAVING COUNT(R.a) > 0'
SELECT R.b, SUM(R.a)
FROM R
WHERE R.c > 0 AND R.b > 1
GROUP BY R.b;
--> [cohen-nutt-direct]
SELECT V.o0 AS b, V.o1 AS _col1
FROM V
WHERE 1 < V.o0;

-- case: avg_query_having_translated
-- view V: 'SELECT R.b, AVG(R.a) AS m\nFROM R\nGROUP BY R.b'
SELECT R.b, AVG(R.a)
FROM R
GROUP BY R.b
HAVING AVG(R.a) > 1;
--> [cohen-nutt-direct]
SELECT V.o0 AS b, V.o1 AS _col1
FROM V
WHERE V.o1 > 1;

-- case: multi_aggregate_vacuous
-- view V: 'SELECT R.b, COUNT(R.a) AS n, SUM(R.c) AS s\nFROM R\nGROUP BY R.b\nHAVING COUNT(R.a) > 0'
SELECT R.b, COUNT(R.a), SUM(R.c)
FROM R
GROUP BY R.b;
--> [cohen-nutt-direct]
SELECT V.o0 AS b, V.o1 AS _col1, V.o2 AS _col2
FROM V;

-- case: count_argument_fallback
-- view V: 'SELECT R.b, COUNT(R.a) AS n\nFROM R\nGROUP BY R.b\nHAVING COUNT(R.a) >= 1'
SELECT R.b, COUNT(R.c)
FROM R
GROUP BY R.b;
--> [cohen-nutt-direct]
SELECT V.o0 AS b, V.o1 AS _col1
FROM V;

-- case: group_order_permuted
-- view V: 'SELECT R.c, R.b, COUNT(R.a) AS n\nFROM R\nGROUP BY R.c, R.b\nHAVING COUNT(R.a) > 0'
SELECT R.b, R.c, COUNT(R.a)
FROM R
GROUP BY R.b, R.c;
--> [cohen-nutt-direct]
SELECT V.o1 AS b, V.o0 AS c, V.o2 AS _col2
FROM V;

-- case: avg_grouped
-- view V: 'SELECT R.b, AVG(R.a) AS m\nFROM R\nGROUP BY R.b'
SELECT R.b, AVG(R.a)
FROM R
GROUP BY R.b;
--> [cohen-nutt-direct]
SELECT V.o0 AS b, V.o1 AS _col1
FROM V;

-- case: avg_scalar
-- view V: 'SELECT AVG(R.b) AS m\nFROM R'
SELECT AVG(R.b)
FROM R;
--> [cohen-nutt-direct]
SELECT V.o0 AS _col0
FROM V;

-- case: avg_join_grouped
-- view V: 'SELECT S.e, AVG(R.a) AS m\nFROM R, S\nWHERE R.c = S.d\nGROUP BY S.e'
SELECT S.e, AVG(R.a)
FROM R, S
WHERE R.c = S.d
GROUP BY S.e;
--> [cohen-nutt-direct]
SELECT V.o0 AS e, V.o1 AS _col1
FROM V;

-- case: avg_closure_equal_group
-- view V: 'SELECT R.c, AVG(R.a) AS m\nFROM R\nWHERE R.b = R.c\nGROUP BY R.c'
SELECT R.b, AVG(R.a)
FROM R
WHERE R.b = R.c
GROUP BY R.b;
--> [cohen-nutt-direct]
SELECT V.o0 AS b, V.o1 AS _col1
FROM V;

-- case: max_selfjoin_scalar
-- view V: 'SELECT r_1.a, r_1.b, r_1.c\nFROM R AS r_1, R AS r_2\nWHERE r_1.c = r_2.c'
SELECT MAX(R.a)
FROM R;
--> [cohen-nutt-maxmin]
SELECT MAX(V.x0)
FROM V;

-- case: min_selfjoin_scalar
-- view V: 'SELECT s_1.d, s_1.e\nFROM S AS s_1, S AS s_2\nWHERE s_1.d = s_2.d'
SELECT MIN(S.e)
FROM S;
--> [cohen-nutt-maxmin]
SELECT MIN(V.x1)
FROM V;

-- case: max_selfjoin_grouped
-- view V: 'SELECT r_1.a, r_1.b, r_1.c\nFROM R AS r_1, R AS r_2\nWHERE r_1.c = r_2.c'
SELECT R.b, MAX(R.a)
FROM R
GROUP BY R.b;
--> [cohen-nutt-maxmin]
SELECT V.x1, MAX(V.x0)
FROM V
GROUP BY V.x1;

-- case: max_selfjoin_filtered
-- view V: 'SELECT r_1.a, r_1.b, r_1.c\nFROM R AS r_1, R AS r_2\nWHERE r_1.b > 0 AND r_1.c = r_2.c'
SELECT MAX(R.a)
FROM R
WHERE R.b > 0;
--> [cohen-nutt-maxmin]
SELECT MAX(V.x0)
FROM V;

-- case: min_max_selfjoin_pair
-- view V: 'SELECT r_1.a, r_1.b, r_1.c\nFROM R AS r_1, R AS r_2\nWHERE r_1.c = r_2.c'
SELECT MIN(R.a), MAX(R.b)
FROM R;
--> [cohen-nutt-maxmin]
SELECT MIN(V.x0), MAX(V.x1)
FROM V;

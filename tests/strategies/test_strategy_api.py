"""Strategy selection end to end: names, API, planner memo families.

The golden corpus (:mod:`tests.strategies.test_cohen_nutt_goldens`)
pins *what* the Cohen–Nutt strategy finds; this module pins *how it is
reached* — the ``strategy=`` keyword on :func:`repro.api.rewrite`, the
cross-planner differential oracle's dominance check, and the planner's
per-family strategy memos surviving the serving tier's export/import
round trip.
"""

import pytest

from repro import api
from repro.core.canonical import canonical_key
from repro.core.planner import RewritePlanner
from repro.core.rewriter import RewriteEngine, merge_strategy_extras
from repro.errors import ReproError
from repro.oracle import check_scenario
from repro.strategies import (
    DEFAULT_STRATEGY,
    STRATEGY_NAMES,
    cohen_nutt_rewritings,
    normalize_strategy,
    uses_cohen_nutt,
)
from repro.workloads.random_queries import random_scenario

from .cases import CASES


class TestNames:
    def test_normalize(self):
        assert normalize_strategy(None) == DEFAULT_STRATEGY
        for name in STRATEGY_NAMES:
            assert normalize_strategy(name) == name

    def test_unknown_refused(self):
        with pytest.raises(ReproError, match="unknown strategy"):
            normalize_strategy("no-such-strategy")

    def test_uses_cohen_nutt(self):
        assert not uses_cohen_nutt("c1c4")
        assert uses_cohen_nutt("cohen_nutt")
        assert uses_cohen_nutt("both")


class TestApi:
    def test_rewrite_strategy_uplift(self):
        case = CASES[0]
        catalog = case.catalog()
        base = api.rewrite(case.query, catalog=catalog)
        assert not base.rewritings
        extra = api.rewrite(
            case.query, catalog=catalog, strategy="cohen_nutt"
        )
        assert extra.rewritings

    def test_both_equals_cohen_nutt_result_set(self):
        case = CASES[0]
        catalog = case.catalog()
        left = api.rewrite(case.query, catalog=catalog, strategy="both")
        right = api.rewrite(
            case.query, catalog=catalog, strategy="cohen_nutt"
        )
        assert [r.sql() for r in left.rewritings] == [
            r.sql() for r in right.rewritings
        ]

    def test_unknown_strategy_refused(self):
        case = CASES[0]
        with pytest.raises(ReproError, match="unknown strategy"):
            api.rewrite(
                case.query,
                catalog=case.catalog(),
                strategy="no-such-strategy",
            )


class TestDominance:
    def test_union_contains_c1c4(self):
        """On generic scenarios the union must keep every C1-C4
        rewriting (dominance by construction of the merge)."""
        checked = 0
        for seed in range(40):
            scenario = random_scenario(seed)
            engine = RewriteEngine(scenario.catalog)
            base = engine.rewrite(scenario.query)
            union = engine.rewrite(scenario.query, strategy="cohen_nutt")
            base_keys = {
                canonical_key(r.rewriting.query) for r in base.ranked
            }
            union_keys = {
                canonical_key(r.rewriting.query) for r in union.ranked
            }
            assert base_keys <= union_keys, f"seed={seed}"
            checked += len(base_keys)
        assert checked >= 10, "dominance sweep was vacuous"

    def test_merge_dedups_by_canonical_key(self):
        case = CASES[0]
        extras = cohen_nutt_rewritings(case.query, [case.view])
        merged = merge_strategy_extras(list(extras), extras)
        assert len(merged) == len(extras)

    def test_oracle_flags_dominance_violation(self, monkeypatch):
        """A union that loses C1-C4 rewritings must be caught by the
        cross-planner oracle as a ``dominance`` mismatch."""
        scenario = next(
            sc
            for sc in (random_scenario(seed) for seed in range(60))
            if RewriteEngine(sc.catalog).rewrite(sc.query).ranked
        )
        monkeypatch.setattr(
            "repro.core.rewriter.merge_strategy_extras",
            lambda candidates, extras: [],
        )
        report = check_scenario(scenario, strategy="both")
        assert not report.ok
        assert any(m.context == "dominance" for m in report.mismatches)


class TestMemoFamilies:
    def _planner(self, case):
        return RewritePlanner([case.view], case.catalog())

    def test_strategy_memo_is_per_family(self):
        planner = self._planner(CASES[0])
        a = planner.strategy_memo("cohen_nutt")
        b = planner.strategy_memo("other")
        a[("k",)] = ("v",)
        assert ("k",) not in b
        assert planner.strategy_memo("cohen_nutt") is a

    def test_export_import_round_trip(self):
        planner = self._planner(CASES[0])
        planner.strategy_memo("cohen_nutt")[("k1",)] = ("v1",)
        planner.strategy_memo("cohen_nutt")[("k2",)] = ("v2",)
        exported = planner.export_memos()
        assert (("cohen_nutt", ("k1",), ("v1",))) in exported
        other = self._planner(CASES[0])
        adopted = other.import_memos(exported)
        assert adopted >= 2
        memo = other.strategy_memo("cohen_nutt")
        assert memo[("k1",)] == ("v1",)
        assert memo[("k2",)] == ("v2",)

    def test_import_tolerates_legacy_two_tuples(self):
        """Old wire payloads (substitution memo only) must keep
        importing unchanged next to the new family entries."""
        planner = self._planner(CASES[0])
        legacy = planner.export_memo()
        assert planner.import_memos(list(legacy)) == len(list(legacy))

    def test_search_warms_from_imported_memo(self):
        case = CASES[0]
        planner = self._planner(case)
        first = cohen_nutt_rewritings(
            case.query, [case.view], planner=planner
        )
        assert first
        exported = planner.export_memos()
        warm = self._planner(case)
        warm.import_memos(exported)
        memo = warm.strategy_memo("cohen_nutt")
        assert case.query in memo
        again = cohen_nutt_rewritings(
            case.query, [case.view], planner=warm
        )
        assert [r.sql() for r in again] == [r.sql() for r in first]

"""Every snippet in docs/TUTORIAL.md, executed.

If a tutorial code path drifts from the library, this file fails.
"""

import random

import pytest

from repro import (
    Catalog,
    Database,
    QueryCache,
    RewriteEngine,
    assert_equivalent,
    explain_usability,
    parse_query,
    recommend_views,
    table,
)
from repro.maintenance import MaintainedView, apply_change


@pytest.fixture
def catalog():
    return Catalog(
        [
            table(
                "Orders",
                ["Order_Id", "Cust_Id", "Region", "Month", "Amount"],
                key=["Order_Id"],
                row_count=1_000_000,
                distinct={"Cust_Id": 10_000, "Region": 12, "Month": 12},
            ),
        ]
    )


@pytest.fixture
def engine(catalog):
    eng = RewriteEngine(catalog)
    eng.add_view(
        """
        CREATE VIEW Region_Month (Region, Month, Revenue, N) AS
        SELECT Region, Month, SUM(Amount), COUNT(Amount)
        FROM Orders
        GROUP BY Region, Month
        """,
        row_count=144,
    )
    return eng


@pytest.fixture
def db(catalog):
    rng = random.Random(9)
    rows = [
        (
            i,
            rng.randrange(40),
            rng.randrange(4),
            rng.randint(1, 12),
            rng.randint(1, 500),
        )
        for i in range(500)
    ]
    return Database(catalog, {"Orders": rows})


QUERY = (
    "SELECT Region, SUM(Amount) FROM Orders WHERE Month = 12 "
    "GROUP BY Region"
)


def test_section_3_rewrite(engine):
    result = engine.rewrite(QUERY)
    best = result.best()
    assert best is not None and best.view_names == ("Region_Month",)
    sql = best.sql()
    assert "Region_Month" in sql and "Month = 12" in sql


def test_section_3_variants(engine, catalog, db):
    avg = engine.rewrite(
        "SELECT Region, AVG(Amount) FROM Orders GROUP BY Region"
    )
    assert avg.best() is not None and "/" in avg.best().sql()
    count = engine.rewrite(
        "SELECT Region, COUNT(Amount) FROM Orders GROUP BY Region"
    )
    assert count.best() is not None and "SUM" in count.best().sql()
    per_customer = engine.rewrite(
        "SELECT Cust_Id, SUM(Amount) FROM Orders GROUP BY Cust_Id"
    )
    assert per_customer.best() is None


def test_section_4_explain(engine, catalog):
    query = parse_query(
        "SELECT Cust_Id, SUM(Amount) FROM Orders GROUP BY Cust_Id", catalog
    )
    summary = explain_usability(
        query, catalog.view("Region_Month")
    ).summary()
    assert "not usable" in summary and "C2'" in summary


def test_section_5_verify(engine, catalog):
    result = engine.rewrite(QUERY)
    assert_equivalent(catalog, QUERY, result.best(), trials=15, domain=4)


def test_section_6_answer(engine, db):
    sql = "SELECT Region, SUM(Amount) FROM Orders GROUP BY Region"
    answer = engine.answer(sql, db)
    assert answer.multiset_equal(db.execute(sql))


def test_section_7_maintenance(engine, catalog, db):
    maintainer = MaintainedView(catalog.view("Region_Month"), db)
    apply_change([maintainer], "Orders", inserts=[(10_001, 7, 3, 12, 250)])
    assert maintainer.consistency_check()
    fresh = maintainer.table()
    assert fresh.multiset_equal(db.execute(catalog.view("Region_Month").block))


def test_section_8_advisor(catalog):
    workload = [
        "SELECT Region, SUM(Amount) FROM Orders GROUP BY Region",
        "SELECT Month, COUNT(Amount) FROM Orders GROUP BY Month",
    ]
    rec = recommend_views(catalog, workload, space_budget_rows=10_000)
    assert rec.views and rec.workload_speedup > 1


def test_section_9_cache(catalog, db):
    cache = QueryCache(catalog, capacity_rows=50_000)
    summary_sql = (
        "SELECT Region, Month, SUM(Amount), COUNT(Amount) "
        "FROM Orders GROUP BY Region, Month"
    )
    cache.remember(summary_sql, db.execute(summary_sql))
    hit = cache.try_answer(
        "SELECT Region, SUM(Amount) FROM Orders GROUP BY Region"
    )
    assert hit is not None
    assert hit.multiset_equal(
        db.execute("SELECT Region, SUM(Amount) FROM Orders GROUP BY Region")
    )


def test_section_10_nested(engine, db):
    result = engine.rewrite_nested(
        """
        SELECT t.Region, SUM(t.Rev)
        FROM (SELECT Region, Month, SUM(Amount) AS Rev
              FROM Orders WHERE Month >= 6 GROUP BY Region, Month) t
        GROUP BY t.Region
        """
    )
    assert "Region_Month" in result.used_views
    answer = result.execute(db)
    direct = db.execute(
        "SELECT t.Region, SUM(t.Rev) FROM "
        "(SELECT Region, Month, SUM(Amount) AS Rev FROM Orders "
        "WHERE Month >= 6 GROUP BY Region, Month) t GROUP BY t.Region"
    )
    assert answer.multiset_equal(direct)

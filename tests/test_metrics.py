"""The production metrics layer: registry, exposition, instrumentation.

Contracts under test (see ``docs/observability.md``):

* three metric kinds with labeled families; kind conflicts and negative
  counter increments raise;
* snapshots are picklable dicts that merge without double counting —
  counters and histograms accumulate, gauges last-write-wins;
* ``render_prometheus`` emits conformant text exposition: one
  ``# HELP``/``# TYPE`` pair per family, sorted families, cumulative
  histogram buckets ending at ``+Inf`` with exact ``_sum``/``_count``,
  trailing newline — validated by the parser in this module, which the
  CLI tests also run over real ``repro metrics``/``--metrics-out``
  output;
* instrumentation is free when off: no active registry means no
  families, no children, no observable state anywhere;
* ``timed()`` is the one shared timing helper and resolves string
  targets against the active registry at exit.
"""

import json
import re
import threading

import pytest

from repro import Catalog, Database, api, parse_query, parse_view, table
from repro.cache import QueryCache
from repro.cli import main
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    METRICS_SCHEMA,
    MetricsRegistry,
    MetricsSnapshot,
    collecting,
    current_metrics,
    render_prometheus,
    set_global_metrics,
    timed,
)

# ----------------------------------------------------------------------
# Registry basics
# ----------------------------------------------------------------------


class TestCounters:
    def test_inc_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.counter("c_total").inc(4)
        assert registry.counter("c_total").value == 5

    def test_negative_increment_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_declaration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help text")
        assert registry.counter("c_total") is first


class TestGauges:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistograms:
    def test_exact_count_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds").labels()
        for value in (0.0001, 0.003, 2.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(102.0031)

    def test_bucket_placement_inclusive_upper_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0)).labels()
        hist.observe(1.0)  # on the bound -> first bucket (le is inclusive)
        hist.observe(1.5)
        hist.observe(99.0)  # overflow -> +Inf slot
        assert hist.counts == [1, 1, 1]

    def test_unsorted_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(2.0, 1.0)).labels()

    def test_default_latency_ladder(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds").labels()
        assert hist.bounds == DEFAULT_LATENCY_BUCKETS


class TestLabels:
    def test_positional_and_by_name_agree(self):
        registry = MetricsRegistry()
        family = registry.counter("f_total", "", ("method", "code"))
        family.labels("GET", "200").inc()
        assert family.labels(code="200", method="GET").value == 1

    def test_label_arity_checked(self):
        registry = MetricsRegistry()
        family = registry.counter("f_total", "", ("method",))
        with pytest.raises(ValueError):
            family.labels()
        with pytest.raises(ValueError):
            family.labels("GET", "extra")

    def test_unknown_and_missing_names_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("f_total", "", ("method",))
        with pytest.raises(ValueError):
            family.labels(verb="GET")
        with pytest.raises(ValueError):
            family.labels(method="GET", verb="GET")

    def test_solo_access_on_labeled_family_raises(self):
        registry = MetricsRegistry()
        family = registry.counter("f_total", "", ("method",))
        with pytest.raises(ValueError):
            family.inc()

    def test_unlabeled_family_proxies_solo_child(self):
        registry = MetricsRegistry()
        registry.counter("plain_total").inc(3)
        assert registry.counter("plain_total").labels().value == 3

    def test_non_string_values_coerced(self):
        registry = MetricsRegistry()
        family = registry.counter("f_total", "", ("code",))
        family.labels(404).inc()
        assert family.labels("404").value == 1


class TestThreadSafety:
    def test_concurrent_increments_never_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total").labels()

        def worker():
            for _ in range(5_000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 20_000


# ----------------------------------------------------------------------
# Snapshots: serialize, merge, reset
# ----------------------------------------------------------------------


def _small_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("req_total", "requests", ("outcome",)).labels("ok").inc(3)
    registry.gauge("size_rows").set(42)
    registry.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
    return registry


class TestSnapshot:
    def test_as_dict_is_versioned_and_json_safe(self):
        doc = _small_registry().snapshot().as_dict()
        assert doc["schema"] == METRICS_SCHEMA
        json.dumps(doc)  # picklable and JSON-serializable

    def test_from_dict_round_trip(self):
        doc = _small_registry().snapshot().as_dict()
        snapshot = MetricsSnapshot.from_dict(json.loads(json.dumps(doc)))
        assert snapshot.counter_value("req_total", outcome="ok") == 3

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            MetricsSnapshot.from_dict({"schema": "bogus/9", "families": {}})

    def test_counter_value_absent_is_zero(self):
        snapshot = _small_registry().snapshot()
        assert snapshot.counter_value("nope_total") == 0
        assert snapshot.counter_value("req_total", outcome="error") == 0


class TestMerge:
    def test_counters_add_gauges_take_latest(self):
        parent = _small_registry()
        child = _small_registry()
        child.gauge("size_rows").set(7)
        parent.merge(child)
        snapshot = parent.snapshot()
        assert snapshot.counter_value("req_total", outcome="ok") == 6
        assert snapshot.counter_value("size_rows") == 7

    def test_histograms_add_counts_and_sums(self):
        parent = _small_registry()
        parent.merge(_small_registry().snapshot())
        hist = parent.histogram("lat_seconds").labels()
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.1)
        assert hist.counts[0] == 2

    def test_merge_accepts_plain_dicts(self):
        parent = MetricsRegistry()
        parent.merge(_small_registry().snapshot().as_dict())
        assert parent.snapshot().counter_value("req_total", outcome="ok") == 3

    def test_merge_new_label_values_appended(self):
        parent = _small_registry()
        child = MetricsRegistry()
        child.counter("req_total", "", ("outcome",)).labels("error").inc()
        parent.merge(child)
        snapshot = parent.snapshot()
        assert snapshot.counter_value("req_total", outcome="ok") == 3
        assert snapshot.counter_value("req_total", outcome="error") == 1

    def test_kind_mismatch_raises(self):
        parent = MetricsRegistry()
        parent.counter("x")
        child = MetricsRegistry()
        child.gauge("x").set(1)
        with pytest.raises(ValueError):
            parent.merge(child)

    def test_histogram_bounds_mismatch_raises(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0,)).observe(0.5)
        child = MetricsRegistry()
        child.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            parent.merge(child)

    def test_snapshot_merge_matches_registry_merge(self):
        a = _small_registry().snapshot()
        a.merge(_small_registry().snapshot())
        registry = MetricsRegistry()
        registry.merge(_small_registry())
        registry.merge(_small_registry())
        assert a.as_dict() == registry.snapshot().as_dict()


class TestReset:
    def test_reset_zeroes_but_keeps_families(self):
        registry = _small_registry()
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot.counter_value("req_total", outcome="ok") == 0
        assert snapshot.counter_value("size_rows") == 0
        hist = registry.histogram("lat_seconds").labels()
        assert hist.count == 0 and hist.sum == 0.0
        assert set(snapshot.families) == {
            "req_total", "size_rows", "lat_seconds",
        }


# ----------------------------------------------------------------------
# Prometheus text-format conformance
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>-?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|\+Inf|-Inf|NaN))$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def assert_prometheus_conformant(text: str) -> dict:
    """Parse Prometheus text exposition, asserting the format contract.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)]}}``
    so callers can make content assertions on top. This is the
    conformance gate the acceptance criteria name: the CLI tests run it
    over real ``repro metrics`` and ``--metrics-out`` output.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families: dict = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name = rest.split(" ", 1)[0]
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"type": None, "samples": []}
            current = name
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert parts[2] == current, "TYPE must follow its own HELP"
            assert families[current]["type"] is None, "duplicate TYPE"
            assert parts[3] in ("counter", "gauge", "histogram")
            families[current]["type"] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        sample_name = match.group("name")
        assert current is not None and (
            sample_name == current
            or (
                families[current]["type"] == "histogram"
                and sample_name
                in (current + "_bucket", current + "_sum", current + "_count")
            )
        ), f"sample {sample_name!r} outside its family block"
        labels = {}
        if match.group("labels"):
            for pair in re.split(r",(?=[a-zA-Z_])", match.group("labels")):
                assert _LABEL_RE.match(pair), f"bad label pair: {pair!r}"
                key, _, value = pair.partition("=")
                labels[key] = value[1:-1]
        families[current]["samples"].append(
            (sample_name, labels, match.group("value"))
        )
    assert list(families) == sorted(families), "families must be sorted"
    for name, family in families.items():
        assert family["type"] is not None, f"{name} missing TYPE"
        if family["type"] != "histogram":
            assert family["samples"], f"{name} has no samples"
            continue
        buckets = [s for s in family["samples"] if s[0] == name + "_bucket"]
        counts = [s for s in family["samples"] if s[0] == name + "_count"]
        assert buckets and counts, f"{name} missing buckets or count"
        series: dict = {}
        for _, labels, value in buckets:
            key = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            series.setdefault(key, []).append((labels["le"], float(value)))
        for key, rows in series.items():
            cumulative = [count for _, count in rows]
            assert cumulative == sorted(cumulative), (
                f"{name}: bucket counts must be cumulative"
            )
            assert rows[-1][0] == "+Inf", f"{name}: last bucket must be +Inf"
            total = next(
                float(v) for _, labels, v in counts
                if tuple(sorted(labels.items())) == key
            )
            assert rows[-1][1] == total, (
                f"{name}: +Inf bucket must equal _count"
            )
    return families


class TestPrometheusRendering:
    def test_small_registry_is_conformant(self):
        registry = _small_registry()
        families = assert_prometheus_conformant(registry.render_prometheus())
        assert families["req_total"]["type"] == "counter"
        assert families["lat_seconds"]["type"] == "histogram"

    def test_registry_and_snapshot_render_identically(self):
        registry = _small_registry()
        assert registry.render_prometheus() == render_prometheus(
            registry.snapshot()
        )

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", "", ("q",)).labels(
            'with "quotes" and \\slash\n'
        ).inc()
        text = registry.render_prometheus()
        assert '\\"quotes\\"' in text and "\\\\slash" in text and "\\n" in text
        assert_prometheus_conformant(text)

    def test_help_defaults_to_the_name(self):
        registry = MetricsRegistry()
        registry.counter("bare_total").inc()
        assert "# HELP bare_total bare_total" in registry.render_prometheus()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_integer_values_render_without_exponent(self):
        registry = MetricsRegistry()
        registry.counter("n_total").inc(10_000_000)
        assert "n_total 10000000\n" in registry.render_prometheus()


# ----------------------------------------------------------------------
# Active-registry plumbing and timed()
# ----------------------------------------------------------------------


class TestActiveRegistry:
    def test_off_by_default(self):
        assert current_metrics() is None

    def test_collecting_scopes_and_nests(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with collecting(outer):
            assert current_metrics() is outer
            with collecting(inner):
                assert current_metrics() is inner
            assert current_metrics() is outer
        assert current_metrics() is None

    def test_global_registry_restorable(self):
        registry = MetricsRegistry()
        previous = set_global_metrics(registry)
        try:
            assert previous is None
            assert current_metrics() is registry
        finally:
            set_global_metrics(previous)
        assert current_metrics() is None

    def test_thread_scope_shadows_global(self):
        global_reg, local_reg = MetricsRegistry(), MetricsRegistry()
        previous = set_global_metrics(global_reg)
        try:
            with collecting(local_reg):
                assert current_metrics() is local_reg
            assert current_metrics() is global_reg
        finally:
            set_global_metrics(previous)

    def test_thread_scope_is_per_thread(self):
        registry = MetricsRegistry()
        seen = []

        def probe():
            seen.append(current_metrics())

        with collecting(registry):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen == [None]


class TestTimed:
    def test_measures_elapsed_seconds(self):
        with timed() as t:
            pass
        assert t.seconds >= 0.0

    def test_string_target_resolves_active_registry(self):
        registry = MetricsRegistry()
        with collecting(registry):
            with timed("op_seconds"):
                pass
        assert registry.histogram("op_seconds").labels().count == 1

    def test_string_target_free_when_off(self):
        with timed("op_seconds") as t:
            pass
        assert t.seconds >= 0.0  # and nothing raised, nothing recorded

    def test_object_target_observed_directly(self):
        registry = MetricsRegistry()
        hist = registry.histogram("op_seconds")
        with timed(hist):
            pass
        assert hist.labels().count == 1


# ----------------------------------------------------------------------
# Instrumentation: planner, cache, engines, api
# ----------------------------------------------------------------------


@pytest.fixture
def telephony():
    catalog = Catalog(
        [
            table(
                "Calls",
                ["Call_Id", "Plan_Id", "Month", "Year", "Charge"],
                key=["Call_Id"],
            )
        ]
    )
    catalog.add_view(
        parse_view(
            "CREATE VIEW Monthly (Plan_Id, Month, Year, Revenue) AS "
            "SELECT Plan_Id, Month, Year, SUM(Charge) FROM Calls "
            "GROUP BY Plan_Id, Month, Year",
            catalog,
        )
    )
    return catalog


QUERY = (
    "SELECT Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 "
    "GROUP BY Plan_Id"
)


class TestPlannerInstrumentation:
    def test_search_counters_recorded(self, telephony):
        registry = MetricsRegistry()
        with collecting(registry):
            result = api.rewrite(QUERY, catalog=telephony)
        assert result.rewritings
        snapshot = registry.snapshot()
        assert snapshot.counter_value("repro_planner_searches_total") == 1
        assert snapshot.counter_value("repro_planner_nodes_expanded_total") >= 1
        assert (
            snapshot.counter_value(
                "repro_planner_candidates_total", outcome="kept"
            )
            >= 1
        )
        assert (
            snapshot.counter_value(
                "repro_planner_mappings_total", kind="one_to_one"
            )
            >= 1
        )

    def test_memo_hits_recorded_on_requery(self, telephony):
        from repro.core.planner import RewritePlanner

        planner = RewritePlanner(
            list(telephony.views.values()), telephony
        )
        query = parse_query(QUERY, telephony)
        registry = MetricsRegistry()
        with collecting(registry):
            planner.all_rewritings(query)
            planner.all_rewritings(query)
        snapshot = registry.snapshot()
        assert (
            snapshot.counter_value(
                "repro_planner_memo_total",
                family="substitution",
                outcome="hit",
            )
            >= 1
        )

    def test_nothing_recorded_when_off(self, telephony):
        registry = MetricsRegistry()
        result = api.rewrite(QUERY, catalog=telephony)
        assert result.rewritings
        assert registry.snapshot().families == {}


def _calls_catalog():
    return Catalog(
        [
            table(
                "Calls",
                ["Call_Id", "Plan_Id", "Month", "Year", "Charge"],
                key=["Call_Id"],
            )
        ]
    )


class TestCacheInstrumentation:
    def test_lookups_remember_and_gauges(self):
        cache = QueryCache(_calls_catalog())
        registry = MetricsRegistry()
        with collecting(registry):
            cache.remember(
                "SELECT Plan_Id, Year, SUM(Charge) FROM Calls "
                "GROUP BY Plan_Id, Year",
                [(1, 1995, 10), (2, 1995, 20)],
            )
            hit = cache.try_answer(
                "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id"
            )
            miss = cache.try_answer("SELECT Call_Id, Charge FROM Calls")
        assert hit is not None and miss is None
        snapshot = registry.snapshot()
        assert snapshot.counter_value("repro_cache_remember_total") == 1
        assert (
            snapshot.counter_value("repro_cache_lookups_total", outcome="hit")
            == 1
        )
        assert (
            snapshot.counter_value("repro_cache_lookups_total", outcome="miss")
            == 1
        )
        assert snapshot.counter_value("repro_cache_size_rows") == 2
        assert snapshot.counter_value("repro_cache_entries") == 1

    def test_evictions_counted(self):
        cache = QueryCache(_calls_catalog(), capacity_rows=3)
        registry = MetricsRegistry()
        with collecting(registry):
            cache.remember(
                "SELECT Plan_Id, Year, SUM(Charge) FROM Calls "
                "GROUP BY Plan_Id, Year",
                [(1, 1995, 10), (2, 1995, 20), (3, 1995, 5)],
            )
            cache.remember(
                "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id",
                [(1, 10), (2, 20)],
            )
        assert registry.snapshot().counter_value(
            "repro_cache_evictions_total"
        ) == cache.stats.evictions > 0


class TestEngineInstrumentation:
    def _database(self):
        catalog = Catalog([table("T", ["A", "B"], key=["A"])])
        rows = [(i, i % 3) for i in range(30)]
        return Database(catalog, {"T": rows})

    @pytest.mark.parametrize("engine", ["row", "columnar"])
    def test_rows_scanned_and_grouped(self, engine):
        db = self._database()
        registry = MetricsRegistry()
        with collecting(registry):
            db.execute(
                "SELECT B, COUNT(A) FROM T GROUP BY B", engine=engine
            )
        snapshot = registry.snapshot()
        assert (
            snapshot.counter_value(
                "repro_engine_rows_scanned_total", engine=engine
            )
            == 30
        )
        assert (
            snapshot.counter_value(
                "repro_engine_rows_grouped_total", engine=engine
            )
            == 30
        )
        assert (
            snapshot.counter_value("repro_engine_groups_total", engine=engine)
            == 3
        )


class TestApiFacade:
    def test_collect_metrics_attaches_snapshot(self, telephony):
        result = api.rewrite(QUERY, catalog=telephony, collect_metrics=True)
        assert result.metrics is not None
        snapshot = MetricsSnapshot.from_dict(result.metrics)
        assert snapshot.counter_value("repro_planner_searches_total") == 1

    def test_no_snapshot_by_default(self, telephony):
        assert api.rewrite(QUERY, catalog=telephony).metrics is None


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------

CLI_SCHEMA = """
CREATE TABLE Calls (
  Call_Id INT PRIMARY KEY,
  Plan_Id INT, Month INT, Year INT, Charge INT
);
CREATE VIEW Monthly (Plan_Id, Month, Year, Revenue, N) AS
SELECT Plan_Id, Month, Year, SUM(Charge), COUNT(Charge)
FROM Calls
GROUP BY Plan_Id, Month, Year;
"""


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.sql"
    path.write_text(CLI_SCHEMA)
    return str(path)


class TestCliMetricsCommand:
    def test_emits_conformant_prometheus(self, schema_file, capsys):
        code = main(
            ["metrics", "--schema", schema_file, "--query", QUERY]
        )
        out = capsys.readouterr().out
        assert code == 0
        families = assert_prometheus_conformant(out)
        assert "repro_planner_searches_total" in families

    def test_metrics_out_flag_writes_file(self, schema_file, tmp_path, capsys):
        out_file = tmp_path / "metrics.prom"
        code = main(
            [
                "rewrite",
                "--schema",
                schema_file,
                "--query",
                QUERY,
                "--metrics-out",
                str(out_file),
            ]
        )
        assert code == 0
        families = assert_prometheus_conformant(out_file.read_text())
        assert "repro_planner_searches_total" in families

    def test_metrics_out_written_even_on_failed_rewrite(
        self, schema_file, tmp_path, capsys
    ):
        out_file = tmp_path / "metrics.prom"
        code = main(
            [
                "rewrite",
                "--schema",
                schema_file,
                "--query",
                "SELECT Call_Id, Charge FROM Calls",
                "--metrics-out",
                str(out_file),
            ]
        )
        assert code == 1  # no usable view
        assert_prometheus_conformant(out_file.read_text())

    def test_fuzz_metrics_out_covers_oracle_and_fuzzer(
        self, tmp_path, capsys
    ):
        out_file = tmp_path / "metrics.prom"
        code = main(
            [
                "fuzz",
                "--max-scenarios",
                "2",
                "--seed",
                "7",
                "--metrics-out",
                str(out_file),
            ]
        )
        assert code == 0
        families = assert_prometheus_conformant(out_file.read_text())
        assert "repro_fuzz_scenarios_total" in families
        assert "repro_oracle_scenarios_total" in families

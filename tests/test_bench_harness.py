"""The shared benchmark harness."""

import pytest

from repro.bench.harness import ResultTable, speedup, time_best, time_once


class TestResultTable:
    def test_render_alignment(self):
        table = ResultTable("demo", ["name", "value"])
        table.add("long-row-name", 1)
        table.add("x", 123456)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "123,456" in text
        # Columns align: every data line has the same width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_float_formatting(self):
        table = ResultTable("t", ["v"])
        table.add(0.000012)
        table.add(1234.5678)
        text = table.render()
        assert "1.20e-05" in text
        assert "1,234.568" in text

    def test_wrong_arity_rejected(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_show_prints(self, capsys):
        table = ResultTable("t", ["a"])
        table.add(1)
        table.show()
        assert "== t ==" in capsys.readouterr().out


class TestTiming:
    def test_time_once_positive(self):
        assert time_once(lambda: sum(range(100))) > 0

    def test_time_best_not_more_than_single(self):
        single = time_once(lambda: sum(range(2000)))
        best = time_best(lambda: sum(range(2000)), repeats=5)
        assert best <= single * 5  # sanity, not flaky

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(10.0, 0.0) is None

"""Accounting for the planner-layer memoization caches.

Covers the closure memo, the canonical-key intern table, the residual
memo and the planner's substitution memo — hit/miss/eviction/bypass
bookkeeping and the cache-disable switches — plus two QueryCache
regressions: the LRU touch on ``try_answer`` hits and the incrementally
maintained ``size_rows`` total.
"""

import random

import pytest

from repro import Catalog, Database, parse_query, table
from repro.blocks.terms import Column, Comparison, Constant, Op
from repro.cache import QueryCache
from repro.constraints import closure as closure_mod
from repro.constraints import residual as residual_mod
from repro.constraints.closure import (
    clear_closure_cache,
    closure_cache_disabled,
    closure_cache_stats,
    closure_of,
)
from repro.constraints.residual import (
    clear_residual_cache,
    find_residual,
    residual_cache_stats,
)
from repro.core.canonical import (
    canonical_cache_disabled,
    canonical_cache_stats,
    canonical_key,
    clear_canonical_cache,
)
from repro.core.planner import RewritePlanner, baseline_mode
from repro.workloads import star


def atoms(n, offset=0):
    cols = [Column(f"c{offset + i}") for i in range(n + 1)]
    return [Comparison(cols[i], Op.LT, cols[i + 1]) for i in range(n)]


class TestClosureCache:
    def setup_method(self):
        clear_closure_cache()

    def test_hit_and_miss_accounting(self):
        conj = atoms(3)
        first = closure_of(conj)
        second = closure_of(conj)
        assert first is second  # the memo shares the instance
        stats = closure_cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_order_insensitive_key(self):
        conj = atoms(3)
        closure_of(conj)
        closure_of(list(reversed(conj)))
        stats = closure_cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_disabled_counts_bypasses(self):
        conj = atoms(2)
        with closure_cache_disabled():
            a = closure_of(conj)
            b = closure_of(conj)
        assert a is not b
        stats = closure_cache_stats()
        assert stats.bypasses == 2
        assert stats.hits == stats.misses == 0

    def test_eviction_accounting(self, monkeypatch):
        monkeypatch.setattr(closure_mod, "CLOSURE_CACHE_MAX", 2)
        closure_of(atoms(1, offset=0))
        closure_of(atoms(1, offset=10))
        closure_of(atoms(1, offset=20))  # evicts the oldest
        stats = closure_cache_stats()
        assert stats.evictions == 1
        closure_of(atoms(1, offset=0))  # the evicted key misses again
        assert closure_cache_stats().misses == 4


class TestCanonicalCache:
    def setup_method(self):
        clear_canonical_cache()

    @pytest.fixture
    def catalog(self):
        return Catalog([table("R", ["A", "B"])])

    def test_hit_and_miss_accounting(self, catalog):
        block = parse_query("SELECT A FROM R WHERE B > 1", catalog)
        key1 = canonical_key(block)
        key2 = canonical_key(block)
        assert key1 == key2
        stats = canonical_cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_equal_blocks_share_entry(self, catalog):
        one = parse_query("SELECT A FROM R", catalog)
        two = parse_query("SELECT A FROM R", catalog)
        canonical_key(one)
        canonical_key(two)
        stats = canonical_cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_disabled_counts_bypasses(self, catalog):
        block = parse_query("SELECT A FROM R", catalog)
        with canonical_cache_disabled():
            canonical_key(block)
            canonical_key(block)
        stats = canonical_cache_stats()
        assert stats.bypasses == 2

    def test_cached_key_matches_uncached(self, catalog):
        block = parse_query(
            "SELECT A, SUM(B) FROM R WHERE A > 0 GROUP BY A", catalog
        )
        warm = canonical_key(block)
        with canonical_cache_disabled():
            cold = canonical_key(block)
        assert warm == cold


class TestResidualCache:
    def setup_method(self):
        clear_residual_cache()
        clear_closure_cache()

    def test_hit_accounting_and_copy_semantics(self):
        conds_q = atoms(4) + [Comparison(Column("c0"), Op.GE, Constant(0))]
        view_conds = conds_q[:2]
        allowed = [Column(f"c{i}") for i in range(5)]
        first = find_residual(conds_q, view_conds, allowed)
        second = find_residual(conds_q, view_conds, allowed)
        assert first == second
        assert first is not second  # callers get private lists
        stats = residual_cache_stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)

    def test_disabled_with_closure_switch(self):
        conds_q = atoms(3)
        with closure_cache_disabled():
            find_residual(conds_q, conds_q[:1], [Column("c0")])
        stats = residual_cache_stats()
        assert stats["hits"] == stats["misses"] == 0


class TestPlannerSubstitutionMemo:
    def test_repeat_searches_hit(self):
        wl = star.generate(n_sales=100)
        planner = RewritePlanner(list(wl.views.values()), wl.catalog)
        query = wl.queries["category_revenue"]
        planner.all_rewritings(query, include_partial=False)
        misses_after_first = planner.stats.substitution_misses
        planner.all_rewritings(query, include_partial=False)
        assert planner.stats.substitution_misses == misses_after_first
        assert planner.stats.substitution_hits >= misses_after_first

    def test_baseline_mode_bypasses_memo(self):
        wl = star.generate(n_sales=100)
        planner = RewritePlanner(list(wl.views.values()), wl.catalog)
        query = wl.queries["category_revenue"]
        with baseline_mode():
            planner.all_rewritings(query)
            planner.all_rewritings(query)
        assert planner.stats.substitution_hits == 0
        assert planner.stats.substitution_misses == 0


class TestQueryCacheAccounting:
    @pytest.fixture
    def catalog(self):
        return Catalog(
            [
                table(
                    "Calls",
                    ["Call_Id", "Plan_Id", "Month", "Year", "Charge"],
                    key=["Call_Id"],
                )
            ]
        )

    @pytest.fixture
    def server(self, catalog):
        rng = random.Random(4)
        rows = [
            (
                i,
                rng.randrange(4),
                rng.randint(1, 12),
                rng.choice([1994, 1995]),
                rng.randint(1, 100),
            )
            for i in range(300)
        ]
        return Database(catalog, {"Calls": rows})

    SUMMARY = (
        "SELECT Plan_Id, Month, Year, SUM(Charge), COUNT(Charge) "
        "FROM Calls GROUP BY Plan_Id, Month, Year"
    )
    YEARLY = "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id"

    def test_try_answer_touches_lru_order(self, catalog, server):
        """A hit must move the serving entry to most-recently-used, so a
        later capacity squeeze evicts the untouched entry instead."""
        cache = QueryCache(catalog)
        cache.remember(self.SUMMARY, server.execute(self.SUMMARY), name="monthly")
        cache.remember(self.YEARLY, server.execute(self.YEARLY), name="yearly")
        assert cache.try_answer(self.SUMMARY) is not None  # serves "monthly"
        per_month = "SELECT Month, SUM(Charge) FROM Calls GROUP BY Month"
        pm_rows = server.execute(per_month)
        # Room for monthly + pm but not yearly as well.
        cache.capacity_rows = (
            len(server.execute(self.SUMMARY)) + len(pm_rows)
        )
        cache.remember(per_month, pm_rows, name="pm")
        assert "monthly" in cache.cached_names
        assert "yearly" not in cache.cached_names

    def test_size_rows_running_total(self, catalog, server):
        cache = QueryCache(catalog)

        def expected():
            return sum(
                len(cache._entries[n].table) for n in cache.cached_names
            )

        assert cache.size_rows == 0
        cache.remember(self.SUMMARY, server.execute(self.SUMMARY), name="m")
        assert cache.size_rows == expected()
        cache.remember(self.YEARLY, server.execute(self.YEARLY), name="y")
        assert cache.size_rows == expected()
        # Overwrite: the old rows must be subtracted, not double-counted.
        cache.remember(self.SUMMARY, server.execute(self.SUMMARY), name="m")
        assert cache.size_rows == expected()
        cache.forget("y")
        assert cache.size_rows == expected()

    def test_size_rows_after_eviction(self, catalog, server):
        summary_rows = server.execute(self.SUMMARY)
        cache = QueryCache(catalog, capacity_rows=len(summary_rows) + 1)
        cache.remember(self.SUMMARY, summary_rows, name="m")
        cache.remember(self.YEARLY, server.execute(self.YEARLY), name="y")
        assert cache.cached_names == ["y"]
        assert cache.size_rows == len(cache._entries["y"].table)
        assert cache.stats.evictions == 1

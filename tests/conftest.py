"""Shared fixtures: catalogs and helpers used across the test suite."""

from __future__ import annotations

import pytest

from repro import Catalog, table


def pytest_addoption(parser):
    parser.addoption(
        "--seed",
        type=int,
        default=0,
        help=(
            "base seed for the differential soundness harness; CI "
            "failures print the offending seed so `pytest --seed N` "
            "reproduces them locally"
        ),
    )
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help=(
            "rewrite the dialect conformance golden files under "
            "tests/dialects/goldens/ instead of asserting against them"
        ),
    )


@pytest.fixture
def rs_catalog() -> Catalog:
    """The R1(A,B), R2(C,D) schema of the paper's Example 3.1."""
    return Catalog(
        [
            table("R1", ["A", "B"]),
            table("R2", ["C", "D"]),
        ]
    )


@pytest.fixture
def wide_catalog() -> Catalog:
    """The R1(A,B,C,D), R2(E,F) schema of Examples 4.1-4.4."""
    return Catalog(
        [
            table("R1", ["A", "B", "C", "D"]),
            table("R2", ["E", "F"]),
        ]
    )


@pytest.fixture
def keyed_catalog() -> Catalog:
    """R1(A,B,C) with key A — the schema of Example 5.1."""
    return Catalog([table("R1", ["A", "B", "C"], key=["A"])])


@pytest.fixture
def telephony_catalog() -> Catalog:
    """The Example 1.1 warehouse schema."""
    from repro.workloads.telephony import telephony_catalog as make

    return make()

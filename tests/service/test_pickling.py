"""Pickling: every wire type must cross the process-pool boundary.

The sharpest test here is the cached-hash one: ``QueryBlock`` memoizes
``hash()`` into ``_cached_hash``, and str hashes are salted per process
(PYTHONHASHSEED). A pickled stale hash would silently corrupt every dict
keyed by blocks in a pool worker — most importantly the planner's
substitution memo — so ``__getstate__`` must drop it.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro import api
from repro.cache import CacheSnapshot, CacheStats, QueryCache
from repro.catalog.schema import Catalog, TableSchema
from repro.core.planner import RewritePlanner
from repro.core.result import Rewriting
from repro.core.rewriter import RankedRewriting
from repro.obs.budget import SearchBudget
from repro.service import (
    BatchResult,
    BatchRewriteService,
    RewriteRequest,
    RewriteResponse,
)
from repro.workloads.random_queries import random_scenario


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.fixture(scope="module")
def scenario():
    return random_scenario(5)


class TestCachedHash:
    def test_getstate_drops_cached_hash(self, scenario):
        block = scenario.query
        hash(block)  # populate the memo
        assert "_cached_hash" in block.__dict__
        state = block.__getstate__()
        assert "_cached_hash" not in state

    def test_roundtrip_equal_and_rehashable(self, scenario):
        block = scenario.query
        hash(block)
        clone = roundtrip(block)
        assert "_cached_hash" not in clone.__dict__
        assert clone == block
        assert hash(clone) == hash(block)  # recomputed, same process

    def test_block_keyed_dict_survives_hash_reseeding(self, scenario):
        # The end-to-end property: a dict keyed by blocks, pickled here,
        # must still resolve lookups in an interpreter with a different
        # hash seed. With a stale _cached_hash this fails.
        block = scenario.query
        hash(block)
        payload = pickle.dumps({block: "found"})
        probe = textwrap.dedent(
            """
            import pickle, sys
            table = pickle.loads(sys.stdin.buffer.read())
            [block] = table
            clone = pickle.loads(pickle.dumps(block))
            assert table[clone] == "found", "lookup missed"
            print("ok")
            """
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        result = subprocess.run(
            [sys.executable, "-c", probe],
            input=payload,
            capture_output=True,
            env=env,
            check=False,
        )
        assert result.returncode == 0, result.stderr.decode()
        assert result.stdout.decode().strip() == "ok"


class TestPlannerMemoTransport:
    def test_export_import_roundtrip_through_pickle(self, scenario):
        planner = RewritePlanner(
            list(scenario.views), scenario.catalog, use_set_semantics=True
        )
        from repro.core.multiview import all_rewritings

        all_rewritings(
            scenario.query, list(scenario.views), catalog=scenario.catalog,
            use_set_semantics=True, planner=planner,
        )
        export = planner.export_memo()
        assert export, "search should have populated the memo"
        shipped = roundtrip(export)
        fresh = RewritePlanner(
            list(scenario.views), scenario.catalog, use_set_semantics=True
        )
        adopted = fresh.import_memo(shipped)
        assert adopted == len(export)
        hits_before = fresh.stats.substitution_hits
        all_rewritings(
            scenario.query, list(scenario.views), catalog=scenario.catalog,
            use_set_semantics=True, planner=fresh,
        )
        assert fresh.stats.substitution_hits > hits_before


def public_instances(scenario):
    """One representative instance per public wire dataclass."""
    response = api.rewrite(
        scenario.query, scenario.catalog, budget=SearchBudget(deadline=5.0)
    )
    request = RewriteRequest(
        query=scenario.query,
        catalog=scenario.catalog,
        views=tuple(scenario.views),
        budget=SearchBudget(max_mappings=100),
        request_id="r1",
    )
    batch = BatchRewriteService(mode="serial").submit([request])
    return [
        ("SearchBudget", SearchBudget(deadline=1.0, max_mappings=5)),
        ("QueryBlock", scenario.query),
        ("ViewDef", scenario.views[0]),
        ("TableSchema", next(iter(scenario.catalog.tables.values()))),
        ("Rewriting", response.rewritings[0]),
        ("RankedRewriting", response.ranked[0]),
        ("RewriteRequest", request),
        ("RewriteResponse", response),
        ("BatchResult", batch),
    ]


def test_every_public_dataclass_roundtrips(scenario):
    for name, obj in public_instances(scenario):
        clone = roundtrip(obj)
        assert type(clone) is type(obj), name
        if name in ("BatchResult",):
            assert clone.responses == obj.responses, name
        elif name in ("RewriteRequest",):
            # Catalog has no __eq__; compare the value fingerprint.
            from repro.service.batcher import request_group_key

            assert request_group_key(clone) == request_group_key(obj), name
            assert clone.query == obj.query
        elif name in ("RewriteResponse",):
            assert clone.rewritings == obj.rewritings, name
            assert clone.to_json_dict() == obj.to_json_dict(), name
        else:
            assert clone == obj, name


def test_catalog_roundtrips_by_fingerprint(scenario):
    from repro.service.batcher import catalog_fingerprint

    clone = roundtrip(scenario.catalog)
    assert catalog_fingerprint(clone) == catalog_fingerprint(scenario.catalog)


def test_cache_snapshot_resets_worker_local_state(scenario):
    cache = QueryCache(scenario.catalog)
    cache.remember(scenario.query, [])
    snapshot = cache.snapshot()
    # Warm the snapshot's lazily built planner and counters...
    assert snapshot.find_rewriting(scenario.query) is not None
    assert snapshot.stats.hits == 1
    clone = roundtrip(snapshot)
    # ...and the pickled copy must start clean: each worker reports only
    # its own lookups, and planners never cross process boundaries.
    assert clone.stats.hits == 0
    assert clone._planner is None
    assert clone.find_rewriting(scenario.query) is not None
    assert clone.stats.hits == 1

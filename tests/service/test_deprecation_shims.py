"""The deprecation shims are gone; the facade is the identity-pinned
(and only) module-level entry point.

The removed ``repro.all_rewritings`` / ``repro.rewrite_iteratively``
shims used to be pinned byte-for-byte against the core search over 40
seeds. Those pins now hold directly between :mod:`repro.api` and the
core, so facade refactors keep producing the exact historical results
— discovery order included.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import api
from repro.core.multiview import (
    all_rewritings as core_all_rewritings,
    rewrite_iteratively as core_rewrite_iteratively,
)
from repro.obs.budget import SearchBudget
from repro.workloads.random_queries import random_scenario

SEEDS = range(0, 40)


def test_shims_are_gone():
    assert not hasattr(repro, "all_rewritings")
    assert not hasattr(repro, "rewrite_iteratively")
    assert "all_rewritings" not in repro.__all__
    assert "rewrite_iteratively" not in repro.__all__


@pytest.mark.parametrize("seed", SEEDS)
def test_facade_rewrite_identical_to_core(seed):
    s = random_scenario(seed)
    legacy = core_all_rewritings(s.query, list(s.views), catalog=s.catalog)
    response = api.rewrite(
        s.query,
        catalog=s.catalog,
        views=tuple(s.views),
        use_set_semantics=False,
        max_steps=4,
    )
    assert list(response.rewritings) == legacy


@pytest.mark.parametrize("seed", range(0, 12))
def test_facade_rewrite_identical_under_count_budget(seed):
    s = random_scenario(seed)
    budget = SearchBudget(max_mappings=2, max_candidates=1)
    legacy = core_all_rewritings(
        s.query, list(s.views), catalog=s.catalog, budget=budget
    )
    response = api.rewrite(
        s.query,
        catalog=s.catalog,
        views=tuple(s.views),
        use_set_semantics=False,
        max_steps=4,
        budget=budget,
    )
    assert list(response.rewritings) == legacy


@pytest.mark.parametrize("seed", SEEDS)
def test_facade_rewrite_iterative_identical_to_core(seed):
    s = random_scenario(seed)
    legacy = core_rewrite_iteratively(
        s.query, list(s.views), catalog=s.catalog
    )
    assert (
        api.rewrite_iterative(s.query, list(s.views), catalog=s.catalog)
        == legacy
    )


def test_facade_does_not_warn():
    # The consolidated entry points are first-class: a rewrite through
    # the facade (single and batch) must be DeprecationWarning-free.
    from repro.service import RewriteRequest

    s = random_scenario(5)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        api.rewrite(s.query, s.catalog)
        api.rewrite_batch(
            [RewriteRequest(query=s.query, catalog=s.catalog)],
            mode="serial",
        )
    assert not [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]

"""The deprecated module-level entry points: warn, then behave exactly
as before via the facade."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.core.multiview import (
    all_rewritings as core_all_rewritings,
    rewrite_iteratively as core_rewrite_iteratively,
)
from repro.core.planner import RewritePlanner
from repro.obs.budget import SearchBudget
from repro.workloads.random_queries import random_scenario


def shim_call(func, *args, **kwargs):
    """Call a shim asserting exactly one DeprecationWarning fires."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = func(*args, **kwargs)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, caught
    assert "deprecated" in str(deprecations[0].message)
    return result


SEEDS = range(0, 40)


@pytest.mark.parametrize("seed", SEEDS)
def test_all_rewritings_shim_identical_with_catalog(seed):
    s = random_scenario(seed)
    legacy = core_all_rewritings(
        s.query, list(s.views), catalog=s.catalog
    )
    shimmed = shim_call(
        repro.all_rewritings, s.query, list(s.views), catalog=s.catalog
    )
    assert shimmed == legacy


@pytest.mark.parametrize("seed", SEEDS)
def test_all_rewritings_shim_identical_without_catalog(seed):
    s = random_scenario(seed)
    legacy = core_all_rewritings(s.query, list(s.views))
    shimmed = shim_call(repro.all_rewritings, s.query, list(s.views))
    assert shimmed == legacy


@pytest.mark.parametrize("seed", range(0, 12))
def test_all_rewritings_shim_identical_under_count_budget(seed):
    s = random_scenario(seed)
    budget = SearchBudget(max_mappings=2, max_candidates=1)
    legacy = core_all_rewritings(
        s.query, list(s.views), catalog=s.catalog, budget=budget
    )
    shimmed = shim_call(
        repro.all_rewritings, s.query, list(s.views), catalog=s.catalog,
        budget=budget,
    )
    assert shimmed == legacy


def test_all_rewritings_shim_planner_escape_hatch():
    # use_planner=False and explicit planners route to the core search
    # directly — still warned, still identical.
    s = random_scenario(5)
    legacy = core_all_rewritings(s.query, list(s.views), use_planner=False)
    shimmed = shim_call(
        repro.all_rewritings, s.query, list(s.views), use_planner=False
    )
    assert shimmed == legacy

    planner = RewritePlanner(list(s.views), s.catalog, False)
    legacy = core_all_rewritings(
        s.query, list(s.views), catalog=s.catalog, planner=planner
    )
    shimmed = shim_call(
        repro.all_rewritings, s.query, list(s.views), catalog=s.catalog,
        planner=planner,
    )
    assert shimmed == legacy


@pytest.mark.parametrize("seed", SEEDS)
def test_rewrite_iteratively_shim_identical(seed):
    s = random_scenario(seed)
    legacy = core_rewrite_iteratively(
        s.query, list(s.views), catalog=s.catalog
    )
    shimmed = shim_call(
        repro.rewrite_iteratively, s.query, list(s.views), catalog=s.catalog
    )
    assert shimmed == legacy


def test_shims_have_docstrings_and_stay_in_all():
    # test_public_api checks __all__ resolves; pin the shims explicitly.
    assert "all_rewritings" in repro.__all__
    assert "rewrite_iteratively" in repro.__all__
    assert "deprecated" in repro.all_rewritings.__doc__.lower()
    assert "deprecated" in repro.rewrite_iteratively.__doc__.lower()


def test_internal_modules_do_not_warn():
    # The package's own code must import from repro.core.multiview, not
    # through the shims — a batch through the facade stays warning-free.
    from repro import api
    from repro.service import RewriteRequest

    s = random_scenario(5)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        api.rewrite(s.query, s.catalog)
        api.rewrite_batch(
            [RewriteRequest(query=s.query, catalog=s.catalog)],
            mode="serial",
        )
    assert not [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]

"""The concurrent batch service: grouping, modes, deadlines, warm-up."""

from __future__ import annotations

import pytest

from repro.cache import QueryCache
from repro.obs.budget import SearchBudget
from repro.service import (
    BATCH_DEADLINE,
    BatchDeadline,
    BatchRewriteService,
    RewriteRequest,
    catalog_fingerprint,
    chunk_groups,
    group_requests,
    refused_response,
    request_group_key,
)
from repro.workloads.random_queries import random_scenario


def scenario_request(seed: int, **overrides) -> RewriteRequest:
    scenario = random_scenario(seed)
    defaults = dict(
        query=scenario.query,
        catalog=scenario.catalog,
        views=tuple(scenario.views),
    )
    defaults.update(overrides)
    return RewriteRequest(**defaults)


class TestGrouping:
    def test_equal_but_distinct_catalogs_coalesce(self):
        # Two scenarios from the same seed build equal catalogs that are
        # different objects — the value-based fingerprint must coalesce
        # them (the JSONL deserialization case).
        a, b = random_scenario(5), random_scenario(5)
        assert a.catalog is not b.catalog
        assert catalog_fingerprint(a.catalog) == catalog_fingerprint(b.catalog)
        requests = [
            RewriteRequest(query=a.query, catalog=a.catalog,
                           views=tuple(a.views)),
            RewriteRequest(query=b.query, catalog=b.catalog,
                           views=tuple(b.views)),
        ]
        groups = group_requests(requests)
        assert len(groups) == 1
        assert len(groups[0].members) == 2

    def test_different_view_sets_split(self):
        a, b = random_scenario(5), random_scenario(6)
        requests = [
            RewriteRequest(query=a.query, catalog=a.catalog,
                           views=tuple(a.views)),
            RewriteRequest(query=b.query, catalog=b.catalog,
                           views=tuple(b.views)),
        ]
        assert len(group_requests(requests)) == 2

    def test_semantics_splits_groups(self):
        a = random_scenario(5)
        requests = [
            RewriteRequest(query=a.query, catalog=a.catalog,
                           views=tuple(a.views), use_set_semantics=True),
            RewriteRequest(query=a.query, catalog=a.catalog,
                           views=tuple(a.views), use_set_semantics=False),
        ]
        assert len(group_requests(requests)) == 2

    def test_group_key_is_hashable_and_stable(self):
        request = scenario_request(5)
        assert request_group_key(request) == request_group_key(request)
        {request_group_key(request): 1}  # hashable

    def test_positions_preserved_in_batch_order(self):
        requests = [scenario_request(5), scenario_request(6),
                    scenario_request(5)]
        groups = group_requests(requests)
        positions = sorted(
            p for g in groups for p, _ in g.members
        )
        assert positions == [0, 1, 2]


class TestChunking:
    def test_small_groups_stay_whole(self):
        groups = group_requests([scenario_request(5)] * 3)
        chunks = chunk_groups(groups, workers=8, min_chunk=4)
        assert len(chunks) == 1
        assert len(chunks[0][1]) == 3

    def test_large_group_splits_up_to_workers(self):
        groups = group_requests([scenario_request(5)] * 20)
        chunks = chunk_groups(groups, workers=4, min_chunk=4)
        assert 1 < len(chunks) <= 4
        total = sum(len(members) for _, members in chunks)
        assert total == 20

    def test_never_below_min_chunk(self):
        groups = group_requests([scenario_request(5)] * 10)
        for _, members in chunk_groups(groups, workers=8, min_chunk=4):
            assert len(members) >= 4


class TestModes:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_mode_runs_and_agrees_with_serial(self, mode):
        requests = [scenario_request(seed) for seed in range(8)]
        baseline = BatchRewriteService(mode="serial").submit(requests)
        result = BatchRewriteService(mode=mode, workers=2).submit(requests)
        assert len(result) == len(requests)
        for got, want in zip(result, baseline):
            assert got.rewritings == want.rewritings
            assert got.exhausted == want.exhausted
        assert result.report["mode"] == mode

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            BatchRewriteService(mode="gpu")

    def test_plain_strings_rejected(self):
        with pytest.raises(TypeError):
            BatchRewriteService(mode="serial").submit(["SELECT 1"])

    def test_auto_small_batch_is_serial(self):
        result = BatchRewriteService(mode="auto", workers=4).submit(
            [scenario_request(5)] * 2
        )
        assert result.report["mode"] == "serial"


class TestDeadline:
    def test_spent_deadline_refuses_every_request(self):
        requests = [scenario_request(seed) for seed in range(4)]
        result = BatchRewriteService(mode="serial").submit(
            requests, deadline=0.0
        )
        assert len(result) == 4
        assert result.degraded_count == 4
        assert result.exhausted_count == 4
        for response in result:
            assert BATCH_DEADLINE in response.budget["tripped"]
            assert response.error is None  # degraded, not failed

    def test_generous_deadline_runs_normally(self):
        requests = [scenario_request(seed) for seed in range(4)]
        result = BatchRewriteService(mode="serial").submit(
            requests, deadline=60.0
        )
        assert result.degraded_count == 0

    def test_overlay_tightens_never_loosens(self):
        deadline = BatchDeadline(10.0)
        request = scenario_request(
            5, budget=SearchBudget(deadline=0.001, max_mappings=7)
        )
        overlay = deadline.overlay(request)
        assert overlay.deadline == 0.001  # the tighter of the two
        assert overlay.max_mappings == 7

    def test_overlay_caps_unbudgeted_requests(self):
        deadline = BatchDeadline(10.0)
        overlay = deadline.overlay(scenario_request(5))
        assert overlay.deadline is not None
        assert overlay.deadline <= 10.0

    def test_no_deadline_passes_budget_through(self):
        deadline = BatchDeadline(None)
        budget = SearchBudget(max_candidates=3)
        request = scenario_request(5, budget=budget)
        assert deadline.overlay(request) is budget
        assert not deadline.expired

    def test_refused_response_shape(self):
        response = refused_response(scenario_request(5))
        assert response.degraded and response.exhausted
        assert response.rewritings == ()
        assert response.budget["mappings_enumerated"] == 0


class TestWarmth:
    def test_serial_service_reuses_planner_across_batches(self):
        service = BatchRewriteService(mode="serial")
        requests = [scenario_request(5)] * 3
        service.submit(requests)
        assert len(service._planners) == 1
        planner = next(iter(service._planners.values()))
        hits_before = planner.stats.substitution_hits
        service.submit(requests)
        assert next(iter(service._planners.values())) is planner
        assert planner.stats.substitution_hits > hits_before

    def test_process_mode_stores_memo_for_warm_start(self):
        service = BatchRewriteService(mode="process", workers=2)
        requests = [scenario_request(5)] * 6
        service.submit(requests)
        assert len(service._memo_store) == 1
        result = service.submit(requests)
        assert result.report["memo_entries_imported"] > 0

    def test_warm_results_equal_cold_results(self):
        service = BatchRewriteService(mode="serial")
        requests = [scenario_request(5)] * 2
        cold = service.submit(requests)
        warm = service.submit(requests)
        for a, b in zip(cold, warm):
            assert a.rewritings == b.rewritings

    def test_count_budgets_ignore_group_warmth(self):
        # The determinism rule: a count-budgeted request must report the
        # same trip point alone or after warm-up traffic.
        budget = SearchBudget(max_mappings=2, max_candidates=1)
        alone = BatchRewriteService(mode="serial").submit(
            [scenario_request(5, budget=budget)]
        )
        service = BatchRewriteService(mode="serial")
        service.submit([scenario_request(5)] * 4)  # warm the group planner
        after = service.submit([scenario_request(5, budget=budget)])
        assert alone[0].rewritings == after[0].rewritings
        assert alone[0].exhausted == after[0].exhausted
        assert alone[0].budget == after[0].budget


class TestCacheIntegration:
    def test_cache_hit_marks_response(self):
        scenario = random_scenario(5)
        cache = QueryCache(scenario.catalog)
        cache.remember(scenario.query, [])  # the query's own result
        service = BatchRewriteService(mode="serial", cache=cache)
        result = service.submit(
            [RewriteRequest(query=scenario.query, catalog=scenario.catalog)]
        )
        response = result[0]
        assert response.cache == {"served_from_cache": True}
        assert response.rewritings  # the cached-view rewriting

    def test_cache_miss_is_marked_and_still_searched(self):
        scenario = random_scenario(5)
        cache = QueryCache(scenario.catalog)  # nothing remembered
        service = BatchRewriteService(mode="serial", cache=cache)
        result = service.submit(
            [RewriteRequest(query=scenario.query, catalog=scenario.catalog)]
        )
        baseline = BatchRewriteService(mode="serial").submit(
            [RewriteRequest(query=scenario.query, catalog=scenario.catalog)]
        )
        assert result[0].cache == {"served_from_cache": False}
        assert result[0].rewritings == baseline[0].rewritings

    @pytest.mark.parametrize("mode", ["serial", "process"])
    def test_worker_lookups_merge_into_live_stats(self, mode):
        scenario = random_scenario(5)
        cache = QueryCache(scenario.catalog)
        cache.remember(scenario.query, [])
        service = BatchRewriteService(mode=mode, workers=2, cache=cache)
        before = cache.stats.hits + cache.stats.misses
        service.submit(
            [RewriteRequest(query=scenario.query, catalog=scenario.catalog)]
            * 3
        )
        assert cache.stats.hits + cache.stats.misses >= before + 3


class TestTraceStitching:
    def test_batch_trace_merges_traced_requests(self):
        requests = [scenario_request(seed, trace=True) for seed in (3, 4)]
        result = BatchRewriteService(mode="serial").submit(requests)
        assert result.trace is not None
        assert result.trace.counters["traced_requests"] == 2
        assert result.trace.root.name == "batch"

    def test_untraced_batch_has_no_trace(self):
        result = BatchRewriteService(mode="serial").submit(
            [scenario_request(3)]
        )
        assert result.trace is None


class TestMetricsAcrossModes:
    """No double counting: every mode's worker registries are born empty
    and fold into the parent exactly once (see docs/observability.md)."""

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_parent_registry_counts_each_request_once(self, mode):
        from repro.obs.metrics import MetricsRegistry, collecting

        requests = [scenario_request(seed) for seed in range(4)]
        parent = MetricsRegistry()
        with collecting(parent):
            result = BatchRewriteService(mode=mode, workers=2).submit(
                requests
            )
        snapshot = parent.snapshot()
        assert (
            snapshot.counter_value(
                "repro_service_requests_total", outcome="ok"
            )
            == 4
        )
        assert snapshot.counter_value("repro_planner_searches_total") == 4
        assert (
            snapshot.counter_value(
                "repro_service_batches_total",
                mode=result.report["mode"],
            )
            == 1
        )
        hist = parent.histogram("repro_service_request_seconds").labels()
        assert hist.count == 4

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_batch_snapshot_equals_parent_totals(self, mode):
        from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, \
            collecting

        requests = [scenario_request(seed) for seed in range(3)]
        parent = MetricsRegistry()
        with collecting(parent):
            result = BatchRewriteService(mode=mode, workers=2).submit(
                requests
            )
        # The batch snapshot and the parent registry saw the same merge
        # stream — identical totals proves each worker folded in once.
        assert result.metrics is not None
        batch = MetricsSnapshot.from_dict(result.metrics)
        assert batch.as_dict() == parent.snapshot().as_dict()

    @pytest.mark.parametrize("mode", ["serial", "process"])
    def test_request_scoped_snapshot_and_single_parent_fold(self, mode):
        from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, \
            collecting

        requests = [
            scenario_request(seed, collect_metrics=(seed == 1))
            for seed in range(3)
        ]
        parent = MetricsRegistry()
        with collecting(parent):
            result = BatchRewriteService(mode=mode, workers=2).submit(
                requests
            )
        # Only the opted-in request carries a snapshot, scoped to its
        # own work...
        assert [r.metrics is not None for r in result] == [
            False, True, False,
        ]
        request_view = MetricsSnapshot.from_dict(result[1].metrics)
        assert (
            request_view.counter_value("repro_planner_searches_total") == 1
        )
        # ...and its counts land in the parent exactly once alongside
        # the rest of the batch.
        assert (
            parent.snapshot().counter_value("repro_planner_searches_total")
            == 3
        )

    def test_metrics_off_means_no_snapshots(self):
        result = BatchRewriteService(mode="serial").submit(
            [scenario_request(5)]
        )
        assert result.metrics is None
        assert result[0].metrics is None


class TestRobustness:
    def test_unpicklable_chunk_demotes_to_inprocess(self, monkeypatch):
        # Force every pool submission to fail: the batch must still
        # return complete, correct results via in-process demotion.
        from repro.service import pool as pool_module

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, *args, **kwargs):
                raise RuntimeError("no workers today")

        monkeypatch.setattr(
            pool_module, "ProcessPoolExecutor", ExplodingPool
        )
        requests = [scenario_request(seed) for seed in range(4)]
        baseline = BatchRewriteService(mode="serial").submit(requests)
        result = BatchRewriteService(mode="process", workers=2).submit(
            requests
        )
        assert len(result) == 4
        for got, want in zip(result, baseline):
            assert got.rewritings == want.rewritings

"""The `repro.api` facade: rewrite / rewrite_batch / explain contracts."""

from __future__ import annotations

import math

import pytest

from repro import api
from repro.blocks.normalize import parse_query, parse_view
from repro.errors import ReproError
from repro.obs.budget import SearchBudget
from repro.service.requests import API_SCHEMA, RewriteRequest
from repro.workloads.random_queries import random_scenario


@pytest.fixture
def telephony(telephony_catalog):
    catalog = telephony_catalog
    view = parse_view(
        "CREATE VIEW Yearly (Plan_Id, Year, Total) AS "
        "SELECT Plan_Id, Year, SUM(Charge) FROM Calls "
        "GROUP BY Plan_Id, Year",
        catalog,
    )
    catalog.add_view(view)
    query = (
        "SELECT Plan_Id, SUM(Charge) FROM Calls "
        "WHERE Year = 1995 GROUP BY Plan_Id"
    )
    return catalog, query


class TestRewrite:
    def test_textual_query_is_parsed_and_ranked(self, telephony):
        catalog, query = telephony
        response = api.rewrite(query, catalog)
        assert response.ok
        assert response.rewritings
        assert response.ranked
        assert response.original_cost is not None
        assert "Yearly" in response.best_sql()

    def test_best_is_cheapest(self, telephony):
        catalog, query = telephony
        response = api.rewrite(query, catalog)
        costs = [r.cost for r in response.ranked]
        assert costs == sorted(costs)
        assert response.best() is response.ranked[0].rewriting

    def test_parse_error_raises_inline(self, telephony):
        catalog, _ = telephony
        with pytest.raises(ReproError):
            api.rewrite("SELECT X FROM Nowhere", catalog)

    def test_textual_query_without_catalog_raises(self):
        with pytest.raises(ReproError):
            api.rewrite("SELECT A FROM R1 GROUP BY A")

    def test_bare_queryblock_discovery_order(self):
        scenario = random_scenario(3)
        response = api.rewrite(
            scenario.query, views=tuple(scenario.views),
            use_set_semantics=False,
        )
        # no catalog: no ranking, but discovery order preserved
        assert response.ranked == ()
        from repro.core.multiview import all_rewritings

        direct = all_rewritings(
            scenario.query, list(scenario.views), catalog=None,
            use_set_semantics=False, max_steps=3,
        )
        assert list(response.rewritings) == direct

    def test_budget_reported(self, telephony):
        catalog, query = telephony
        budget = SearchBudget(max_mappings=1, max_candidates=1)
        response = api.rewrite(query, catalog, budget=budget)
        assert response.budget is not None
        assert response.budget["budget"]["max_mappings"] == 1

    def test_live_meter_spans_calls(self, telephony):
        catalog, query = telephony
        meter = SearchBudget(max_mappings=10_000).start()
        api.rewrite(query, catalog, budget=meter)
        first = meter.mappings_enumerated
        assert first > 0
        api.rewrite(query, catalog, budget=meter)
        assert meter.mappings_enumerated > first

    def test_trace_captured(self, telephony):
        catalog, query = telephony
        response = api.rewrite(query, catalog, trace=True)
        assert response.trace is not None
        assert response.trace.root.seconds >= 0

    def test_json_projection_schema(self, telephony):
        catalog, query = telephony
        payload = api.rewrite(query, catalog).to_json_dict()
        assert payload["schema"] == API_SCHEMA
        assert payload["kind"] == "rewrite"
        assert payload["rewritings"][0]["cost"] is not None

    def test_json_cost_is_null_without_catalog(self):
        scenario = random_scenario(3)
        response = api.rewrite(
            scenario.query, views=tuple(scenario.views),
            use_set_semantics=False,
        )
        for entry in response.to_json_dict()["rewritings"]:
            assert entry["cost"] is None


class TestRewriteBatch:
    def test_n_in_n_out_in_order(self, telephony):
        catalog, query = telephony
        requests = [
            RewriteRequest(query=query, catalog=catalog, request_id=str(i))
            for i in range(5)
        ]
        result = api.rewrite_batch(requests, mode="serial")
        assert len(result) == 5
        assert [r.request_id for r in result] == [str(i) for i in range(5)]

    def test_matches_single_rewrite(self, telephony):
        catalog, query = telephony
        single = api.rewrite(query, catalog)
        batch = api.rewrite_batch(
            [RewriteRequest(query=query, catalog=catalog)], mode="serial"
        )
        assert batch[0].rewritings == single.rewritings
        assert batch[0].ranked == single.ranked

    def test_errors_are_captured_not_raised(self, telephony):
        catalog, query = telephony
        requests = [
            RewriteRequest(query=query, catalog=catalog),
            RewriteRequest(query="SELECT X FROM Nowhere", catalog=catalog),
        ]
        result = api.rewrite_batch(requests, mode="serial")
        assert result[0].ok
        assert not result[1].ok
        assert "Nowhere" in result[1].error
        assert result.error_count == 1

    def test_report_counters(self, telephony):
        catalog, query = telephony
        result = api.rewrite_batch(
            [RewriteRequest(query=query, catalog=catalog)] * 4,
            mode="serial",
        )
        report = result.report
        assert report["requests"] == 4
        assert report["groups"] == 1
        assert report["mode"] == "serial"
        assert report["requests_per_second"] is None or (
            report["requests_per_second"] > 0
        )

    def test_json_projection(self, telephony):
        catalog, query = telephony
        result = api.rewrite_batch(
            [RewriteRequest(query=query, catalog=catalog)], mode="serial"
        )
        payload = result.to_json_dict()
        assert payload["schema"] == API_SCHEMA
        assert payload["kind"] == "batch"
        assert len(payload["responses"]) == 1


class TestExplain:
    def test_diagnoses_every_view(self, telephony):
        catalog, query = telephony
        response = api.explain(query, catalog)
        assert len(response.diagnoses) == len(catalog.views)
        assert "Yearly" in response.usable_views
        assert "USABLE" in response.summary()

    def test_single_view_restriction(self, telephony):
        catalog, query = telephony
        response = api.explain(query, catalog, view="Yearly")
        assert len(response.diagnoses) == 1
        assert response.diagnoses[0].view.name == "Yearly"

    def test_json_projection(self, telephony):
        catalog, query = telephony
        payload = api.explain(query, catalog).to_json_dict()
        assert payload["schema"] == API_SCHEMA
        assert payload["kind"] == "explain"
        assert payload["views"][0]["name"]
        assert isinstance(payload["views"][0]["usable"], bool)


class TestRewriteIterative:
    def test_matches_core(self):
        from repro.core.multiview import rewrite_iteratively

        scenario = random_scenario(11)
        facade = api.rewrite_iterative(
            scenario.query, list(scenario.views), catalog=scenario.catalog
        )
        core = rewrite_iteratively(
            scenario.query, list(scenario.views), catalog=scenario.catalog
        )
        assert facade == core

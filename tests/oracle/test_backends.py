"""The backend registry and the N-way CrossChecker configuration."""

import pytest

from repro.catalog.schema import Catalog, table
from repro.errors import OracleUnsupported
from repro.oracle import (
    BACKEND_NAMES,
    CrossChecker,
    available_backends,
    backend_available,
    check_scenario,
    create_backend,
)
from repro.workloads.random_queries import Scenario
from repro.blocks.normalize import parse_query, parse_view


def _scenario():
    catalog = Catalog([table("R1", ["A", "B"])])
    view = parse_view(
        "CREATE VIEW V (a, s, n) AS "
        "SELECT A, SUM(B), COUNT(B) FROM R1 GROUP BY A",
        catalog,
    )
    catalog.add_view(view)
    views = (view,)
    query = parse_query("SELECT A, SUM(B) FROM R1 GROUP BY A", catalog)
    return Scenario(
        seed=0,
        catalog=catalog,
        query=query,
        views=views,
        instance={"R1": [(1, 2), (1, 3), (2, 5)]},
    )


def test_backend_names_registry():
    assert BACKEND_NAMES == ("sqlite", "duckdb")
    assert backend_available("sqlite")
    assert "sqlite" in available_backends()


def test_create_backend_unknown_name():
    with pytest.raises(ValueError, match="unknown oracle backend"):
        create_backend("mysql")


def test_create_backend_missing_driver():
    if backend_available("duckdb"):
        pytest.skip("duckdb installed: the missing-driver path is moot")
    with pytest.raises(OracleUnsupported, match="duckdb"):
        create_backend("duckdb")


def test_checker_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown oracle backend"):
        CrossChecker(backends=("sqlite", "mysql"))


def test_checker_rejects_empty_backends():
    with pytest.raises(ValueError, match="at least one"):
        CrossChecker(backends=())


def test_single_backend_check_passes():
    report = check_scenario(_scenario())
    assert report.ok, report.describe()
    assert report.backends == ("sqlite",)
    assert report.rewritings >= 1


def test_report_describe_names_backends():
    report = check_scenario(_scenario())
    assert "backends: sqlite" in report.describe()


def test_duplicate_backends_run_independently():
    # Listing sqlite twice is a degenerate N-way oracle: two independent
    # sqlite processes must agree with the engine and each other.
    report = check_scenario(_scenario(), backends=("sqlite", "sqlite"))
    assert report.ok, report.describe()
    assert report.backends == ("sqlite", "sqlite")


def test_nway_doubles_per_backend_checks():
    single = check_scenario(_scenario())
    double = check_scenario(_scenario(), backends=("sqlite", "sqlite"))
    # Per-backend checks (views, query, rewriting x2) double; the
    # engine-side rewriting-vs-query check stays single.
    assert double.checks > single.checks


@pytest.mark.skipif(
    not backend_available("duckdb"),
    reason="duckdb driver not installed (CI installs it)",
)
def test_nway_with_duckdb():
    report = check_scenario(
        _scenario(), engine="both", backends=("sqlite", "duckdb")
    )
    assert report.ok, report.describe()
    assert report.backends == ("sqlite", "duckdb")

"""Exact cross-backend value normalization (floats back to rationals)."""

import math
from fractions import Fraction

from repro.oracle import (
    normalize_row,
    normalize_value,
    rows_multiset_equal,
)


class TestNormalizeValue:
    def test_passthrough(self):
        assert normalize_value(None) is None
        assert normalize_value("x") == "x"

    def test_integers_and_bools_become_fractions(self):
        assert normalize_value(3) == Fraction(3)
        assert normalize_value(True) == Fraction(1)
        assert normalize_value(False) == Fraction(0)

    def test_floats_recover_exact_rationals(self):
        # SQLite's AVG of [1, 2] is 1.5; the engine computes Fraction(3, 2).
        assert normalize_value(1.5) == Fraction(3, 2)
        assert normalize_value(2 / 3) == Fraction(2, 3)
        assert normalize_value(1 / 7) == Fraction(1, 7)

    def test_exactness_not_tolerance(self):
        # Two genuinely different aggregate results must stay different.
        assert normalize_value(1 / 3) != normalize_value(0.3334)

    def test_nonfinite_floats_survive(self):
        assert math.isnan(normalize_value(float("nan")))
        assert normalize_value(float("inf")) == float("inf")


class TestRowsMultisetEqual:
    def test_order_insensitive(self):
        assert rows_multiset_equal([(1, 2), (3, 4)], [(3, 4), (1, 2)])

    def test_multiplicity_sensitive(self):
        assert not rows_multiset_equal([(1,), (1,)], [(1,)])

    def test_cross_backend_numeric_encoding(self):
        engine = [(Fraction(3, 2), 2)]
        sqlite = [(1.5, 2)]
        assert rows_multiset_equal(engine, sqlite)

    def test_normalize_row(self):
        assert normalize_row((1, None, 0.5)) == (
            Fraction(1),
            None,
            Fraction(1, 2),
        )

"""The cross-checker: clean scenarios pass, seeded bugs are caught.

The decisive property of a differential oracle is *sensitivity*: it must
flag a wrong backend and a wrong rewriting, not just agree with itself.
Both directions are exercised here — an injected evaluator bug (engine
vs SQLite) and a deliberately wrong rewriting (rewriting vs query on
both backends).
"""

import pytest

from repro import Catalog, parse_query, parse_view, table
from repro.core.result import Rewriting
from repro.fuzz import inject_bug
from repro.obs import SearchBudget
from repro.oracle import CrossChecker, check_scenario
from repro.workloads.random_queries import Scenario, random_scenario


@pytest.fixture
def scenario():
    catalog = Catalog([table("R", ["a", "b"])])
    view = parse_view(
        "CREATE VIEW V (a, s, n) AS "
        "SELECT R.a, SUM(R.b), COUNT(R.b) FROM R GROUP BY R.a",
        catalog,
    )
    catalog.add_view(view)
    query = parse_query(
        "SELECT R.a, SUM(R.b) AS s FROM R GROUP BY R.a", catalog
    )
    instance = {"R": [(1, 10), (1, 20), (2, 30)]}
    return Scenario(
        seed=0, catalog=catalog, query=query, views=[view], instance=instance
    )


def test_clean_scenario_passes(scenario):
    report = check_scenario(scenario)
    assert report.ok, report.describe()
    assert report.rewritings >= 1, "the view is usable; the search must find it"
    # view + query + three comparisons per rewriting.
    assert report.checks >= 2 + 3 * report.rewritings
    assert "ok:" in report.describe()


def test_random_scenarios_pass():
    for seed in range(25):
        report = check_scenario(random_scenario(seed), max_rewritings=4)
        assert report.ok, f"seed={seed}\n" + report.describe()


def test_injected_engine_bug_is_caught(scenario):
    with inject_bug("sum-empty-zero"):
        # Make SUM aggregate an empty-ish group: all-NULL b for a = 3.
        scenario.instance["R"].append((3, None))
        report = check_scenario(scenario)
    assert not report.ok
    assert any(
        m.left_label == "engine" and m.right_label == "sqlite"
        for m in report.mismatches
    ), report.describe()


def test_wrong_rewriting_is_caught_on_both_backends(scenario):
    wrong = Rewriting(
        query=parse_query(
            "SELECT R.a, COUNT(R.b) AS s FROM R GROUP BY R.a",
            scenario.catalog,
        ),
        view_names=("V",),
        strategy="test-wrong",
    )
    report = check_scenario(scenario, rewritings=[wrong])
    contexts = [m.context for m in report.mismatches]
    # Engine and SQLite *agree* with each other on the wrong query, so
    # only the rewriting-vs-query comparisons fire — once per backend.
    assert any("vs query" in c for c in contexts), report.describe()
    labels = {m.left_label for m in report.mismatches}
    assert "sqlite rewriting" in labels and "engine rewriting" in labels


def test_budgeted_search_path(scenario):
    checker = CrossChecker(max_rewritings=2)
    report = checker.check(scenario, budget=SearchBudget(max_candidates=1))
    assert report.ok, report.describe()
    assert report.rewritings <= 2


def test_mismatch_describe_mentions_sql(scenario):
    wrong = Rewriting(
        query=parse_query("SELECT R.a FROM R", scenario.catalog),
        view_names=("V",),
        strategy="test-wrong",
    )
    report = check_scenario(scenario, rewritings=[wrong])
    text = report.describe()
    assert "MISMATCH" in text and "SELECT" in text

"""The SQLite backend: dialect compilation, loading, materialization."""

import pytest

from repro import Catalog, parse_query, parse_view, table
from repro.engine.database import Database
from repro.errors import OracleUnsupported
from repro.oracle import SQLiteBackend, compile_block, rows_multiset_equal
from repro.oracle import backends as backends_mod


@pytest.fixture
def catalog():
    return Catalog([table("R", ["a", "b"]), table("S", ["c", "d"])])


def test_division_compiles_to_real_cast(catalog):
    query = parse_query("SELECT R.a / R.b AS q FROM R", catalog)
    sql = compile_block(query)
    assert "CAST(" in sql and "AS REAL" in sql, sql


def test_identifiers_are_quoted(catalog):
    query = parse_query("SELECT R.a FROM R", catalog)
    sql = compile_block(query)
    assert '"R"' in sql and '"a"' in sql, sql


def test_load_and_execute(catalog):
    query = parse_query(
        "SELECT R.a, COUNT(R.b) AS n FROM R GROUP BY R.a", catalog
    )
    with SQLiteBackend() as backend:
        backend.create_table("R", ["a", "b"])
        backend.load_rows("R", [(1, 10), (1, 20), (2, 30)])
        rows = backend.execute_block(query)
    assert sorted(rows) == [(1, 2), (2, 1)]


def test_materialize_view_is_independent_of_engine(catalog):
    """SQLite evaluates the view body itself; rows must still agree with
    the engine's materialization."""
    view = parse_view(
        "CREATE VIEW V (a, s, n) AS "
        "SELECT R.a, SUM(R.b), COUNT(R.b) FROM R GROUP BY R.a",
        catalog,
    )
    catalog.add_view(view)
    instance = {"R": [(1, 10), (1, 20), (2, None)], "S": []}
    db = Database(catalog, instance)
    with SQLiteBackend() as backend:
        backend.create_table("R", ["a", "b"])
        backend.load_rows("R", instance["R"])
        sqlite_rows = backend.materialize_view(view)
        # Materialized as a *table*: queryable like any base relation.
        assert backend.fetch_table("V") == sqlite_rows
    assert rows_multiset_equal(db.materialize("V").rows, sqlite_rows)


def test_local_view_create_and_drop(catalog):
    view = parse_view(
        "CREATE VIEW W (a2) AS SELECT R.a FROM R WHERE R.b = 1", catalog
    )
    with SQLiteBackend() as backend:
        backend.create_table("R", ["a", "b"])
        backend.load_rows("R", [(7, 1), (8, 2)])
        backend.create_local_view(view)
        assert backend.fetch_table("W") == [(7,)]
        backend.drop_local_views()
        with pytest.raises(Exception):
            backend.fetch_table("W")


def test_old_sqlite_raises_oracle_unsupported(catalog, monkeypatch):
    """skip-with-reason path: a pre-3.9 library cannot create the aux
    views, and the caller must see a typed OracleUnsupported."""
    monkeypatch.setattr(
        backends_mod, "_SQLITE_VIEW_COLUMNS_MIN_VERSION", (999, 0, 0)
    )
    view = parse_view("CREATE VIEW W (a2) AS SELECT R.a FROM R", catalog)
    with SQLiteBackend() as backend:
        backend.create_table("R", ["a", "b"])
        with pytest.raises(OracleUnsupported):
            backend.create_local_view(view)

"""HAVING -> WHERE predicate motion (Section 3.3 normal form).

Every motion rule is additionally checked *semantically*: the normalized
block must be multiset-equivalent to the original on random databases.
"""

import random

import pytest

from repro.blocks.normalize import parse_query
from repro.catalog.schema import Catalog, table
from repro.constraints.having import normalize_having
from repro.engine.database import Database


@pytest.fixture
def catalog():
    return Catalog([table("R", ["G", "H", "V"])])


def assert_same_semantics(catalog, before, after, seed=0, trials=40):
    rng = random.Random(seed)
    for _ in range(trials):
        rows = [
            (rng.randint(0, 2), rng.randint(0, 2), rng.randint(0, 8))
            for _ in range(rng.randint(0, 9))
        ]
        db = Database(catalog, {"R": rows})
        left, right = db.execute(before), db.execute(after)
        assert left.multiset_equal(right), (rows, left.rows, right.rows)


class TestRuleA:
    def test_grouping_column_atom_moves(self, catalog):
        q = parse_query(
            "SELECT G, SUM(V) FROM R GROUP BY G HAVING G > 1", catalog
        )
        n = normalize_having(q)
        assert not n.having
        assert len(n.where) == 1
        assert_same_semantics(catalog, q, n)

    def test_two_grouping_columns(self, catalog):
        q = parse_query(
            "SELECT G, H, SUM(V) FROM R GROUP BY G, H HAVING G = H",
            catalog,
        )
        n = normalize_having(q)
        assert not n.having and len(n.where) == 1
        assert_same_semantics(catalog, q, n)

    def test_aggregate_atom_stays(self, catalog):
        q = parse_query(
            "SELECT G, SUM(V) FROM R GROUP BY G HAVING SUM(V) > 5", catalog
        )
        n = normalize_having(q)
        assert len(n.having) == 1 and not n.where
        assert_same_semantics(catalog, q, n)

    def test_mixed_clause(self, catalog):
        q = parse_query(
            "SELECT G, SUM(V) FROM R GROUP BY G "
            "HAVING G > 0 AND SUM(V) > 5",
            catalog,
        )
        n = normalize_having(q)
        assert len(n.having) == 1 and len(n.where) == 1
        assert_same_semantics(catalog, q, n)


class TestRuleB:
    def test_max_gt_moves(self, catalog):
        q = parse_query(
            "SELECT G, MAX(V) FROM R GROUP BY G HAVING MAX(V) > 3", catalog
        )
        n = normalize_having(q)
        assert not n.having
        assert "V" in str(n.where[0])
        assert_same_semantics(catalog, q, n)

    def test_min_lt_moves(self, catalog):
        q = parse_query(
            "SELECT G, MIN(V) FROM R GROUP BY G HAVING MIN(V) <= 3", catalog
        )
        n = normalize_having(q)
        assert not n.having
        assert_same_semantics(catalog, q, n)

    def test_flipped_orientation_moves(self, catalog):
        q = parse_query(
            "SELECT G, MAX(V) FROM R GROUP BY G HAVING 3 < MAX(V)", catalog
        )
        n = normalize_having(q)
        assert not n.having
        assert_same_semantics(catalog, q, n)

    def test_min_gt_does_not_move(self, catalog):
        # Filtering V > 3 would change MIN over surviving groups.
        q = parse_query(
            "SELECT G, MIN(V) FROM R GROUP BY G HAVING MIN(V) > 3", catalog
        )
        n = normalize_having(q)
        assert len(n.having) == 1 and not n.where
        assert_same_semantics(catalog, q, n)

    def test_blocked_by_other_aggregate(self, catalog):
        # A COUNT elsewhere would see its groups shrink: not movable.
        q = parse_query(
            "SELECT G, MAX(V), COUNT(H) FROM R GROUP BY G "
            "HAVING MAX(V) > 3",
            catalog,
        )
        n = normalize_having(q)
        assert len(n.having) == 1 and not n.where
        assert_same_semantics(catalog, q, n)

    def test_same_aggregate_in_select_ok(self, catalog):
        q = parse_query(
            "SELECT G, MAX(V) FROM R GROUP BY G HAVING MAX(V) >= 4", catalog
        )
        n = normalize_having(q)
        assert not n.having
        assert_same_semantics(catalog, q, n)

    def test_cascading_motion(self, catalog):
        # After the G-atom moves (rule A), MAX(V) is the only aggregate
        # and its atom moves too (rule B) on the second pass.
        q = parse_query(
            "SELECT G, MAX(V) FROM R GROUP BY G "
            "HAVING MAX(V) > 3 AND G > 0",
            catalog,
        )
        n = normalize_having(q)
        assert not n.having and len(n.where) == 2
        assert_same_semantics(catalog, q, n)


class TestGuards:
    def test_no_group_by_never_moves(self, catalog):
        # Without GROUP BY, an empty core still yields one output row, so
        # motion would change semantics.
        q = parse_query("SELECT MAX(V) FROM R HAVING MAX(V) > 3", catalog)
        n = normalize_having(q)
        assert n == q
        assert_same_semantics(catalog, q, n)

    def test_no_having_is_identity(self, catalog):
        q = parse_query("SELECT G, SUM(V) FROM R GROUP BY G", catalog)
        assert normalize_having(q) is q

"""implies / equivalent / minimize over predicate conjunctions."""

from repro.blocks.terms import Column, Comparison, Constant, Op
from repro.constraints.implication import (
    equivalent,
    implies,
    minimize,
    satisfiable,
)

A, B, C = Column("A"), Column("B"), Column("C")


def eq(left, right):
    return Comparison(left, Op.EQ, right)


def lt(left, right):
    return Comparison(left, Op.LT, right)


class TestImplies:
    def test_subset_implied(self):
        premises = [eq(A, B), lt(B, C)]
        assert implies(premises, [eq(A, B)])
        assert implies(premises, [lt(A, C)])

    def test_conjunction_goal(self):
        assert implies([eq(A, B), eq(B, C)], [eq(A, C), eq(B, A)])

    def test_not_implied(self):
        assert not implies([eq(A, B)], [lt(A, C)])

    def test_empty_goal_trivially_implied(self):
        assert implies([lt(A, B)], [])

    def test_unsat_premises_imply_anything(self):
        assert implies([lt(A, A)], [eq(B, C)])


class TestEquivalent:
    def test_paper_example_3_1(self):
        # (A1=C1 & B1=6 & D1=6)  ==  ((A1=C1 & B1=D1) & D1=6)
        a1, b1, c1, d1 = (Column(n) for n in ("A1", "B1", "C1", "D1"))
        left = [eq(a1, c1), eq(b1, Constant(6)), eq(d1, Constant(6))]
        right = [eq(a1, c1), eq(b1, d1), eq(d1, Constant(6))]
        assert equivalent(left, right)

    def test_orientation_irrelevant(self):
        assert equivalent([lt(A, B)], [Comparison(B, Op.GT, A)])

    def test_strictly_stronger_not_equivalent(self):
        assert not equivalent([lt(A, B)], [Comparison(A, Op.LE, B)])

    def test_both_unsat_equivalent(self):
        assert equivalent([lt(A, A)], [lt(B, B)])

    def test_unsat_vs_sat_not_equivalent(self):
        assert not equivalent([lt(A, A)], [lt(A, B)])


class TestSatisfiable:
    def test_basic(self):
        assert satisfiable([lt(A, B)])
        assert not satisfiable([lt(A, B), lt(B, A)])


class TestMinimize:
    def test_drops_implied_atom(self):
        kept = minimize([eq(A, B), eq(B, C), eq(A, C)])
        assert len(kept) == 2
        assert equivalent(kept, [eq(A, B), eq(B, C), eq(A, C)])

    def test_respects_context(self):
        kept = minimize([eq(A, B), lt(B, C)], context=[eq(A, B)])
        assert kept == [lt(B, C)]

    def test_nothing_to_drop(self):
        original = [eq(A, B), lt(B, C)]
        kept = minimize(original)
        assert sorted(map(str, kept)) == sorted(map(str, original))

    def test_deduplicates(self):
        kept = minimize([eq(A, B), eq(A, B)])
        assert len(kept) == 1

    def test_result_equivalent_under_context(self):
        context = [eq(A, B)]
        original = [eq(B, A), lt(A, C), lt(B, C)]
        kept = minimize(original, context=context)
        assert equivalent(context + kept, context + original)

"""Closure unit tests: entailment, satisfiability, bounds (footnote 2)."""

import pytest

from repro.blocks.exprs import AggFunc, Aggregate
from repro.blocks.terms import Column, Comparison, Constant, Op
from repro.constraints.closure import Closure

A, B, C, D = Column("A"), Column("B"), Column("C"), Column("D")


def atoms(*specs):
    """Shorthand: ('A', '<', 'B') or ('A', '=', 3)."""
    out = []
    for left, op, right in specs:
        left_t = Column(left) if isinstance(left, str) else Constant(left)
        right_t = Column(right) if isinstance(right, str) else Constant(right)
        out.append(Comparison(left_t, Op(op), right_t))
    return out


def entails(premises, atom_spec):
    return Closure(atoms(*premises)).entails(atoms(atom_spec)[0])


class TestEquality:
    def test_transitive(self):
        assert entails([("A", "=", "B"), ("B", "=", "C")], ("A", "=", "C"))

    def test_symmetric(self):
        assert entails([("A", "=", "B")], ("B", "=", "A"))

    def test_reflexive(self):
        assert entails([], ("A", "=", "A"))

    def test_not_entailed(self):
        assert not entails([("A", "=", "B")], ("A", "=", "C"))

    def test_le_cycle_becomes_equality(self):
        assert entails([("A", "<=", "B"), ("B", "<=", "A")], ("A", "=", "B"))

    def test_long_le_cycle(self):
        premises = [("A", "<=", "B"), ("B", "<=", "C"), ("C", "<=", "A")]
        assert entails(premises, ("A", "=", "C"))

    def test_equality_with_constant_propagates(self):
        assert entails([("A", "=", 5), ("A", "=", "B")], ("B", "=", 5))


class TestOrder:
    def test_lt_transitive(self):
        assert entails([("A", "<", "B"), ("B", "<", "C")], ("A", "<", "C"))

    def test_le_lt_mix_is_strict(self):
        assert entails([("A", "<=", "B"), ("B", "<", "C")], ("A", "<", "C"))

    def test_le_le_not_strict(self):
        assert not entails([("A", "<=", "B"), ("B", "<=", "C")], ("A", "<", "C"))
        assert entails([("A", "<=", "B"), ("B", "<=", "C")], ("A", "<=", "C"))

    def test_through_equality(self):
        assert entails([("A", "=", "B"), ("B", "<", "C")], ("A", "<", "C"))

    def test_ge_gt_orientations(self):
        assert entails([("A", ">=", "B"), ("B", ">", "C")], ("A", ">", "C"))
        assert entails([("C", "<", "B"), ("B", "<=", "A")], ("A", ">", "C"))

    def test_le_plus_ne_gives_lt(self):
        assert entails([("A", "<=", "B"), ("A", "<>", "B")], ("A", "<", "B"))

    def test_lt_gives_le_and_ne(self):
        assert entails([("A", "<", "B")], ("A", "<=", "B"))
        assert entails([("A", "<", "B")], ("A", "<>", "B"))
        assert entails([("A", "<", "B")], ("B", ">", "A"))


class TestConstants:
    def test_constant_order_bridges_columns(self):
        # A <= 5, 7 <= B entails A < B via 5 < 7.
        assert entails([("A", "<=", 5), ("B", ">=", 7)], ("A", "<", "B"))

    def test_bounds_vs_unmentioned_constant(self):
        assert entails([("A", ">=", 5)], ("A", ">", 3))
        assert entails([("A", ">", 5)], ("A", ">=", 5))
        assert not entails([("A", ">=", 5)], ("A", ">", 7))

    def test_pinned_constant(self):
        assert entails([("A", "=", 5)], ("A", "<", 9))
        assert entails([("A", "=", 5)], ("A", "<>", 4))
        assert not entails([("A", "=", 5)], ("A", "<>", 5))

    def test_ne_from_disjoint_bounds(self):
        assert entails([("A", "<", 3), ("B", ">", 4)], ("A", "<>", "B"))

    def test_constant_constant_direct(self):
        assert entails([], (3, "<", 5))
        assert not entails([], (5, "<", 3))
        cl = Closure([])
        assert cl.entails(Comparison(Constant(3), Op.NE, Constant("x")))

    def test_string_constants_ordered(self):
        cl = Closure(
            [
                Comparison(A, Op.LE, Constant("apple")),
                Comparison(B, Op.GE, Constant("banana")),
            ]
        )
        assert cl.entails(Comparison(A, Op.LT, B))


class TestSatisfiability:
    def test_strict_cycle_unsat(self):
        assert not Closure(atoms(("A", "<", "B"), ("B", "<", "A"))).satisfiable

    def test_strict_self_loop_unsat(self):
        assert not Closure(atoms(("A", "<", "A"))).satisfiable

    def test_le_cycle_sat(self):
        assert Closure(atoms(("A", "<=", "B"), ("B", "<=", "A"))).satisfiable

    def test_two_constants_one_class_unsat(self):
        assert not Closure(atoms(("A", "=", 3), ("A", "=", 4))).satisfiable

    def test_string_vs_int_pin_unsat(self):
        assert not Closure(
            [
                Comparison(A, Op.EQ, Constant(3)),
                Comparison(A, Op.EQ, Constant("three")),
            ]
        ).satisfiable

    def test_ne_within_class_unsat(self):
        assert not Closure(
            atoms(("A", "=", "B"), ("A", "<>", "B"))
        ).satisfiable

    def test_ne_through_equalities_unsat(self):
        assert not Closure(
            atoms(("A", "=", "B"), ("B", "=", "C"), ("A", "<>", "C"))
        ).satisfiable

    def test_constant_contradiction_unsat(self):
        assert not Closure(atoms((5, "<", 3))).satisfiable
        assert not Closure(atoms(("A", ">=", 5), ("A", "<", 4))).satisfiable

    def test_unsat_entails_everything(self):
        cl = Closure(atoms(("A", "<", "A")))
        assert cl.entails(atoms(("C", "=", "D"))[0])

    def test_bounds_squeeze_sat(self):
        # A >= 3 and A <= 3 pins A to 3 (satisfiable).
        cl = Closure(atoms(("A", ">=", 3), ("A", "<=", 3)))
        assert cl.satisfiable
        assert cl.entails(atoms(("A", "=", 3))[0])


class TestOpaqueTerms:
    """HAVING reasoning: aggregates are opaque closure nodes."""

    def test_aggregate_bounds(self):
        s = Aggregate(AggFunc.SUM, A)
        cl = Closure([Comparison(s, Op.GT, Constant(100))])
        assert cl.entails(Comparison(s, Op.GT, Constant(50)))
        assert not cl.entails(Comparison(s, Op.GT, Constant(200)))

    def test_aggregate_identity_matters(self):
        s_a = Aggregate(AggFunc.SUM, A)
        s_b = Aggregate(AggFunc.SUM, B)
        cl = Closure([Comparison(s_a, Op.GT, Constant(100))])
        assert not cl.entails(Comparison(s_b, Op.GT, Constant(50)))

    def test_aggregate_vs_column(self):
        m = Aggregate(AggFunc.MAX, B)
        cl = Closure([Comparison(m, Op.LE, A), Comparison(A, Op.LT, Constant(2))])
        assert cl.entails(Comparison(m, Op.LT, Constant(2)))


class TestQueries:
    def test_equality_class(self):
        cl = Closure(atoms(("A", "=", "B"), ("B", "=", 4)))
        cls = cl.equality_class(A)
        assert B in cls and Constant(4) in cls

    def test_constant_of(self):
        cl = Closure(atoms(("A", "=", "B"), ("B", "=", 4)))
        assert cl.constant_of(A) == Constant(4)
        assert cl.constant_of(C) is None
        assert cl.constant_of(Constant(9)) == Constant(9)

    def test_bounds_api(self):
        cl = Closure(atoms(("A", ">", 2), ("A", "<=", 10)))
        lower, upper = cl.bounds(A)
        assert lower == (2, True)
        assert upper == (10, False)

    def test_entailed_atoms_over_vocabulary(self):
        cl = Closure(atoms(("A", "=", "B"), ("B", "<", "C"), ("C", "<=", 5)))
        got = {str(a.normalized()) for a in cl.entailed_atoms_over([A, C])}
        assert "A < C" in got

    def test_entailed_atoms_skips_weaker_duplicates(self):
        cl = Closure(atoms(("A", "<", "B")))
        rendered = [str(a) for a in cl.entailed_atoms_over([A, B])]
        assert rendered == ["A < B"]  # no extra <=, <> atoms

    def test_len_counts_entailed_atoms(self):
        cl = Closure(atoms(("A", "=", "B")))
        assert len(cl) >= 1


class TestUnknownTerms:
    def test_unseen_column_only_reflexive(self):
        cl = Closure(atoms(("A", "=", "B")))
        Z = Column("Z")
        assert cl.entails(Comparison(Z, Op.EQ, Z))
        assert cl.entails(Comparison(Z, Op.LE, Z))
        assert not cl.entails(Comparison(Z, Op.EQ, A))
        assert not cl.entails(Comparison(Z, Op.LT, Z))

"""Condition C3/C3' residual computation."""

from repro.blocks.terms import Column, Comparison, Constant, Op
from repro.constraints.closure import Closure
from repro.constraints.implication import equivalent
from repro.constraints.residual import (
    atoms_constants,
    express_over,
    find_residual,
    rewrite_conjunction,
)

A1, B1, C1, D1 = (Column(n) for n in ("A1", "B1", "C1", "D1"))


def eq(left, right):
    return Comparison(left, Op.EQ, right)


class TestFindResidual:
    def test_paper_example_3_1(self):
        conds_q = [eq(A1, C1), eq(B1, Constant(6)), eq(D1, Constant(6))]
        view_conds = [eq(A1, C1), eq(B1, D1)]  # already mapped by φ
        residual = find_residual(conds_q, view_conds, [C1, D1])
        assert residual is not None
        assert equivalent(view_conds + residual, conds_q)
        assert [str(a) for a in residual] == ["D1 = 6"]

    def test_view_conditions_not_entailed(self):
        # The view filters B1 = D1, the query does not: view discards
        # tuples the query needs.
        conds_q = [eq(A1, C1)]
        view_conds = [eq(A1, C1), eq(B1, D1)]
        assert find_residual(conds_q, view_conds, [A1, B1, C1, D1]) is None

    def test_inexpressible_over_allowed(self):
        # Query constrains B1, but B1 is projected out of the view and has
        # no equal surviving column.
        conds_q = [eq(B1, Constant(6))]
        view_conds = []
        assert find_residual(conds_q, view_conds, [A1]) is None

    def test_expressible_via_equality(self):
        # B1 is not allowed, but B1 = C1 lets the residual use C1.
        conds_q = [eq(B1, C1), eq(B1, Constant(6))]
        view_conds = [eq(B1, C1)]
        residual = find_residual(conds_q, view_conds, [C1])
        assert residual is not None
        assert equivalent(view_conds + residual, conds_q)

    def test_empty_residual(self):
        conds_q = [eq(A1, C1)]
        residual = find_residual(conds_q, [eq(A1, C1)], [A1, C1])
        assert residual == []

    def test_unsatisfiable_query_returns_none(self):
        conds_q = [
            Comparison(A1, Op.LT, B1),
            Comparison(B1, Op.LT, A1),
        ]
        assert find_residual(conds_q, [], [A1, B1]) is None

    def test_inequality_residual(self):
        conds_q = [eq(A1, C1), Comparison(D1, Op.LT, Constant(9))]
        residual = find_residual(conds_q, [eq(A1, C1)], [C1, D1])
        assert residual is not None
        assert equivalent([eq(A1, C1)] + residual, conds_q)

    def test_residual_minimal(self):
        conds_q = [eq(A1, C1), eq(C1, D1), eq(A1, D1)]
        residual = find_residual(conds_q, [eq(A1, C1)], [A1, C1, D1])
        assert residual is not None
        assert len(residual) == 1  # one equality completes the class


class TestExpressOver:
    def test_substitutes_equal_allowed_column(self):
        closure = Closure([eq(A1, C1), eq(B1, Constant(6))])
        atom = eq(A1, B1)
        out = express_over(atom, closure, frozenset([C1]))
        assert out is not None
        assert out.left == C1 and out.right == Constant(6)

    def test_fails_without_equal_substitute(self):
        closure = Closure([])
        assert express_over(eq(A1, B1), closure, frozenset([C1])) is None

    def test_rewrite_conjunction_all_or_nothing(self):
        closure = Closure([eq(A1, C1)])
        ok = rewrite_conjunction([eq(A1, C1)], closure, frozenset([C1]))
        assert ok is not None
        bad = rewrite_conjunction(
            [eq(A1, C1), eq(B1, D1)], closure, frozenset([C1])
        )
        assert bad is None


class TestAtomsConstants:
    def test_collects_in_order(self):
        got = atoms_constants(
            [eq(A1, Constant(1)), eq(B1, Constant(2)), eq(C1, Constant(1))]
        )
        assert got == [Constant(1), Constant(2)]

"""Property tests: the closure against a brute-force model checker.

For conjunctions over a handful of columns and small integer constants,
we can enumerate *all* assignments over a sufficient domain and decide
satisfiability and entailment exactly. The closure must agree:

* soundness — every atom the closure claims entailed holds in every model;
* refutation-completeness — the closure reports unsatisfiable exactly
  when no model exists (for this language, the classic closure
  construction is complete for satisfiability over a dense domain; using
  a domain with enough room between constants approximates this).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.terms import Column, Comparison, Constant, Op
from repro.constraints.closure import Closure

COLUMNS = [Column(c) for c in "WXYZ"]
# Constants spaced by 2 leave dense room between them in the model domain.
CONSTANTS = [Constant(v) for v in (0, 2, 4)]
# The closure decides over a dense order (SQL values include
# non-integers), so the brute-force model domain must approximate
# density: integers alone call `0 < W < Z < 2` unsatisfiable. The
# entailment-soundness sweeps use integers (any integer model is a real
# model); the satisfiability-agreement sweep uses quarter steps over
# fewer columns to keep enumeration tractable while leaving room for
# every strict chain the atom budget can build.
DOMAIN = list(range(-5, 10))
SAT_COLUMNS = COLUMNS[:3]
DENSE_DOMAIN = [Fraction(i, 4) for i in range(-12, 29)]

terms_strategy = st.sampled_from(COLUMNS + CONSTANTS)
ops_strategy = st.sampled_from(list(Op))


@st.composite
def conjunctions(draw, max_atoms=5):
    n = draw(st.integers(min_value=0, max_value=max_atoms))
    out = []
    for _ in range(n):
        left = draw(terms_strategy)
        right = draw(terms_strategy)
        out.append(Comparison(left, draw(ops_strategy), right))
    return out


def models(atoms, columns=COLUMNS, domain=DOMAIN):
    """Yield every satisfying assignment of ``columns`` over ``domain``."""
    for values in product(domain, repeat=len(columns)):
        assignment = dict(zip(columns, values))

        def value(term):
            return (
                assignment[term] if isinstance(term, Column) else term.value
            )

        if all(a.op.holds(value(a.left), value(a.right)) for a in atoms):
            yield assignment


def brute_force_satisfiable(atoms, columns=COLUMNS, domain=DOMAIN) -> bool:
    return next(models(atoms, columns, domain), None) is not None


sat_terms = st.sampled_from(SAT_COLUMNS + CONSTANTS)


@st.composite
def sat_conjunctions(draw, max_atoms=4):
    n = draw(st.integers(min_value=0, max_value=max_atoms))
    return [
        Comparison(draw(sat_terms), draw(ops_strategy), draw(sat_terms))
        for _ in range(n)
    ]


@settings(max_examples=60, deadline=None)
@given(sat_conjunctions())
def test_satisfiability_agrees_with_brute_force(atoms):
    assert Closure(atoms).satisfiable == brute_force_satisfiable(
        atoms, SAT_COLUMNS, DENSE_DOMAIN
    )


@settings(max_examples=100, deadline=None)
@given(conjunctions(max_atoms=4), terms_strategy, ops_strategy, terms_strategy)
def test_entailment_is_sound(atoms, left, op, right):
    """If the closure entails an atom, every model satisfies it."""
    goal = Comparison(left, op, right)
    closure = Closure(atoms)
    if not closure.satisfiable:
        return  # vacuous entailment
    if not closure.entails(goal):
        return

    def value(assignment, term):
        return assignment[term] if isinstance(term, Column) else term.value

    for assignment in models(atoms):
        assert goal.op.holds(
            value(assignment, goal.left), value(assignment, goal.right)
        ), f"{atoms} claimed to entail {goal}, refuted by {assignment}"


@settings(max_examples=100, deadline=None)
@given(conjunctions(max_atoms=4))
def test_entailed_atoms_over_are_sound(atoms):
    """Every atom of the restricted closure holds in every model."""
    closure = Closure(atoms)
    if not closure.satisfiable:
        return
    entailed = closure.entailed_atoms_over(COLUMNS + CONSTANTS)

    def value(assignment, term):
        return assignment[term] if isinstance(term, Column) else term.value

    for assignment in models(atoms):
        for atom in entailed:
            assert atom.op.holds(
                value(assignment, atom.left), value(assignment, atom.right)
            )


@settings(max_examples=100, deadline=None)
@given(conjunctions(max_atoms=4))
def test_own_atoms_always_entailed(atoms):
    """A conjunction entails each of its own atoms."""
    closure = Closure(atoms)
    for atom in atoms:
        assert closure.entails(atom)
        assert closure.entails(atom.flipped)

"""Difference-constraint reasoning (the paper's '+' extension)."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.terms import Column, Op
from repro.constraints.difference import (
    DiffAtom,
    DifferenceClosure,
    atom,
    implies_difference,
)


class TestEntailment:
    def test_chain_of_offsets(self):
        premises = [atom("x", "<=", "y", 2), atom("y", "<=", "z", 3)]
        assert implies_difference(premises, [atom("x", "<=", "z", 5)])
        assert implies_difference(premises, [atom("x", "<=", "z", 7)])
        assert not implies_difference(premises, [atom("x", "<=", "z", 4)])

    def test_strictness_propagates(self):
        premises = [atom("x", "<", "y"), atom("y", "<=", "z")]
        assert implies_difference(premises, [atom("x", "<", "z")])
        assert not implies_difference(
            [atom("x", "<=", "y"), atom("y", "<=", "z")],
            [atom("x", "<", "z")],
        )

    def test_equality_with_offset(self):
        premises = [atom("x", "=", "y", 5)]
        assert implies_difference(premises, [atom("x", ">=", "y", 5)])
        assert implies_difference(premises, [atom("x", "<=", "y", 5)])
        assert implies_difference(premises, [atom("x", ">", "y", 4)])

    def test_ge_gt_orientation(self):
        premises = [atom("x", ">=", "y", 1), atom("y", ">", "z", 2)]
        assert implies_difference(premises, [atom("x", ">", "z", 3)])

    def test_constant_bounds(self):
        closure = DifferenceClosure(
            [atom("x", "<=", None, 10), atom("x", ">=", None, 3)]
        )
        assert closure.upper_bound(Column("x")) == (10, False)
        assert closure.lower_bound(Column("x")) == (3, False)
        assert closure.entails(atom("x", "<=", None, 12))
        assert not closure.entails(atom("x", "<=", None, 9))

    def test_constants_combine_with_differences(self):
        premises = [atom("x", "<=", None, 4), atom("y", ">=", "x", 0)]
        # y >= x says nothing about y's upper bound...
        assert not implies_difference(premises, [atom("y", "<=", None, 99)])
        # ...but x <= 4 and y <= x + 1 bounds y.
        premises = [atom("x", "<=", None, 4), atom("y", "<=", "x", 1)]
        assert implies_difference(premises, [atom("y", "<=", None, 5)])

    def test_reflexive(self):
        closure = DifferenceClosure([])
        assert closure.entails(atom("x", "<=", "x"))
        assert closure.entails(atom("x", "=", "x"))
        assert not closure.entails(atom("x", "<", "x"))


class TestSatisfiability:
    def test_negative_cycle_unsat(self):
        closure = DifferenceClosure(
            [atom("x", "<=", "y", -1), atom("y", "<=", "x", 0)]
        )
        assert not closure.satisfiable

    def test_zero_cycle_with_strict_unsat(self):
        closure = DifferenceClosure(
            [atom("x", "<", "y"), atom("y", "<=", "x")]
        )
        assert not closure.satisfiable

    def test_zero_cycle_nonstrict_sat(self):
        closure = DifferenceClosure(
            [atom("x", "<=", "y"), atom("y", "<=", "x")]
        )
        assert closure.satisfiable
        assert closure.entails(atom("x", "=", "y"))

    def test_window_contradiction(self):
        closure = DifferenceClosure(
            [atom("x", ">=", None, 5), atom("x", "<", None, 5)]
        )
        assert not closure.satisfiable

    def test_unsat_entails_everything(self):
        closure = DifferenceClosure(
            [atom("x", "<", "x")]
        )
        assert closure.entails(atom("a", "=", "b", 99))

    def test_ne_rejected(self):
        with pytest.raises(ValueError):
            DiffAtom(Column("x"), Op.NE, Column("y"), 0)


COLUMNS = ["p", "q", "r"]
# Wide enough that chains of 4 atoms with offsets in [-3, 3] never push a
# satisfying assignment out of range.
DOMAIN = range(-16, 17)


@st.composite
def diff_conjunctions(draw, max_atoms=4, ops=("<", "<=", "=", ">=", ">")):
    n = draw(st.integers(min_value=0, max_value=max_atoms))
    out = []
    for _ in range(n):
        left = draw(st.sampled_from(COLUMNS))
        use_right = draw(st.booleans())
        right = draw(st.sampled_from(COLUMNS)) if use_right else None
        op = draw(st.sampled_from(list(ops)))
        offset = draw(st.integers(min_value=-3, max_value=3))
        out.append(atom(left, op, right, offset))
    return out


def models(atoms):
    for values in product(DOMAIN, repeat=len(COLUMNS)):
        env = dict(zip(COLUMNS, values))

        def val(col):
            return env[col.name]

        ok = True
        for a in atoms:
            rhs = (val(a.right) if a.right is not None else 0) + a.offset
            if not a.op.holds(val(a.left), rhs):
                ok = False
                break
        if ok:
            yield env


@settings(max_examples=120, deadline=None)
@given(diff_conjunctions(ops=("<=", "=", ">=")))
def test_satisfiability_vs_brute_force(atoms):
    """Non-strict difference systems with integral offsets are exactly
    integer-feasible, so brute force over a wide enough integer domain
    must agree with the DBM closure. (Strict atoms are excluded: the
    closure's dense-order semantics differs from integer semantics —
    ``x < y AND y < x + 1`` is real-satisfiable but integer-infeasible.)
    """
    closure = DifferenceClosure(atoms)
    brute = next(models(atoms), None) is not None
    assert closure.satisfiable == brute


@settings(max_examples=120, deadline=None)
@given(diff_conjunctions(max_atoms=3), diff_conjunctions(max_atoms=1))
def test_entailment_sound(premises, goals):
    closure = DifferenceClosure(premises)
    if not closure.satisfiable or not goals:
        return
    goal = goals[0]
    if not closure.entails(goal):
        return
    for env in models(premises):
        rhs = (env[goal.right.name] if goal.right is not None else 0) + goal.offset
        assert goal.op.holds(env[goal.left.name], rhs), (premises, goal, env)

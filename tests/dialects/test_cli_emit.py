"""The ``repro emit`` command (driven through ``main(argv)``)."""

import json

import pytest

from repro.cli import main

SCHEMA = """
CREATE TABLE sales (region TEXT, amount INT);
CREATE VIEW totals (region, total, n) AS
SELECT region, SUM(amount), COUNT(amount) FROM sales GROUP BY region;
"""

QUERY = "SELECT region, SUM(amount) FROM sales GROUP BY region"


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.sql"
    path.write_text(SCHEMA)
    return str(path)


def test_emit_query_sqlite(schema_file, capsys):
    code = main(
        ["emit", "--dialect", "sqlite", "--schema", schema_file,
         "--query", QUERY]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert '"sales"."region"' in out
    assert out.rstrip().endswith(";")


def test_emit_query_postgres_differs_from_sqlite(schema_file, capsys):
    main(["emit", "--dialect", "postgres", "--schema", schema_file,
          "--query", "SELECT region, SUM(amount) / COUNT(amount) "
          "FROM sales GROUP BY region"])
    pg = capsys.readouterr().out
    main(["emit", "--dialect", "sqlite", "--schema", schema_file,
          "--query", "SELECT region, SUM(amount) / COUNT(amount) "
          "FROM sales GROUP BY region"])
    lite = capsys.readouterr().out
    assert "DOUBLE PRECISION" in pg and "NULLIF" in pg
    assert "AS REAL" in lite and "NULLIF" not in lite


def test_emit_views(schema_file, capsys):
    code = main(
        ["emit", "--dialect", "duckdb", "--schema", schema_file,
         "--query", QUERY, "--views"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert 'CREATE VIEW "totals"' in out


def test_emit_unknown_dialect_exits_2(schema_file, capsys):
    code = main(
        ["emit", "--dialect", "oracle12c", "--schema", schema_file,
         "--query", QUERY]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown dialect 'oracle12c'" in err
    assert "ansi, sqlite, duckdb, postgres" in err


def test_emit_without_schema_or_conformance_exits_2(capsys):
    code = main(["emit", "--dialect", "sqlite"])
    assert code == 2
    assert "nothing to emit" in capsys.readouterr().err


def test_emit_conformance(capsys):
    code = main(["emit", "--dialect", "postgres", "--conformance"])
    out = capsys.readouterr().out
    assert code == 0
    assert "repro-conformance/1 dialect=postgres" in out
    assert "-- case: quoted-identifiers" in out


def test_emit_json(schema_file, capsys):
    code = main(
        ["emit", "--dialect", "sqlite", "--schema", schema_file,
         "--query", QUERY, "--json"]
    )
    doc = json.loads(capsys.readouterr().out)
    assert code == 0
    assert doc["schema"] == "repro-api/1"
    assert doc["kind"] == "emit"
    assert doc["ok"] is True
    assert doc["result"]["dialect"] == "sqlite"
    assert doc["result"]["sql"].startswith("SELECT")


def test_emit_conformance_json(capsys):
    code = main(["emit", "--dialect", "ansi", "--conformance", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert code == 0
    assert doc["kind"] == "conformance"
    assert doc["ok"] is True
    assert "-- case:" in doc["result"]["corpus"]


def test_emit_matches_golden_file(capsys):
    # The CLI and the golden corpus must agree byte for byte.
    from pathlib import Path

    golden = (
        Path(__file__).parent / "goldens" / "duckdb.sql"
    ).read_text()
    code = main(["emit", "--dialect", "duckdb", "--conformance"])
    out = capsys.readouterr().out
    assert code == 0
    assert out.strip() == golden.strip()

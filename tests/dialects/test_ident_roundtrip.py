"""Property: quoted identifiers survive print -> parse in every dialect.

For adversarial relation/column names — embedded double quotes, reserved
keywords, aggregate names, unicode, whitespace, leading digits — the
emitter must quote so that repro's own parser (and, transitively, any
ANSI-compliant backend) reads the same name back.
"""

import random

import pytest

from repro.blocks.normalize import parse_query
from repro.blocks.to_sql import block_to_sql
from repro.catalog.schema import Catalog, table
from repro.dialects import DIALECT_NAMES, get_dialect
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.tokens import TokenType

ADVERSARIAL_NAMES = [
    'weird "name"',
    '"',
    '""',
    "select",
    "group",
    "order",
    "SUM",
    "COUNT",
    "from",
    "table with spaces",
    "café",
    "naïve_col",
    "1starts_with_digit",
    "mixed\tTAB",
    "UPPER lower",
    "semi;colon",
    "paren(s)",
    "star*name",
    "dash-name",
    "dot.name",
]


@pytest.mark.parametrize("name", ADVERSARIAL_NAMES, ids=range(len(ADVERSARIAL_NAMES)))
@pytest.mark.parametrize("dialect_name", DIALECT_NAMES)
def test_ident_quotes_roundtrip_through_lexer(dialect_name, name):
    dialect = get_dialect(dialect_name)
    quoted = dialect.quote_ident(name)
    tokens = tokenize(quoted)
    ident = [t for t in tokens if t.type == TokenType.IDENT]
    assert len(ident) == 1, (name, quoted, tokens)
    assert ident[0].value == name


@pytest.mark.parametrize("dialect_name", DIALECT_NAMES)
def test_adversarial_schema_roundtrips_through_parser(dialect_name):
    # A full query over adversarially named tables/columns: print it in
    # the dialect, parse the printed text against the same catalog, and
    # the result must be the same block shape referencing the same
    # base columns.
    rng = random.Random(7)
    for trial in range(25):
        table_name = rng.choice(ADVERSARIAL_NAMES)
        cols = rng.sample(ADVERSARIAL_NAMES, 3)
        if table_name in cols:
            continue
        catalog = Catalog([table(table_name, cols)])
        quote = get_dialect(dialect_name).quote_ident
        sql = (
            f"SELECT {quote(cols[0])}, {quote(cols[1])} "
            f"FROM {quote(table_name)} WHERE {quote(cols[2])} < 5"
        )
        block = parse_query(sql, catalog)
        printed = block_to_sql(block, dialect=dialect_name)
        again = parse_query(printed, catalog)
        assert [rel.name for rel in again.from_] == [table_name]
        assert [
            rel.base_names for rel in again.from_
        ] == [rel.base_names for rel in block.from_]
        assert len(again.select) == len(block.select)
        for before, after in zip(block.select, again.select):
            rel = block.from_[0]
            rel2 = again.from_[0]
            assert rel.base_name_of(before.expr) == rel2.base_name_of(
                after.expr
            )


def test_unterminated_quoted_identifier_is_syntax_error():
    from repro.errors import SQLSyntaxError

    with pytest.raises(SQLSyntaxError, match="unterminated"):
        tokenize('SELECT "oops FROM R1')

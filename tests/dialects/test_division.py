"""Division semantics: exact values, and x/0 -> NULL on every backend.

The engine divides exactly (Fractions) and defines x/0 as NULL; each
backend's emitted division must reproduce both — SQLite through its
native NULL-on-zero plus a REAL cast, DuckDB and Postgres through an
explicit ``NULLIF`` guard (DuckDB's zero-division behavior is
version-dependent and Postgres raises without it).
"""

import sqlite3

import pytest

from repro.blocks.normalize import parse_query
from repro.blocks.to_sql import block_to_sql
from repro.catalog.schema import Catalog, table
from repro.engine.database import Database
from repro.oracle import backend_available, rows_multiset_equal

CATALOG_TABLES = {"R1": ("A", "B")}
ROWS = [(1, 2), (2, 5), (0, 7), (4, 0)]
QUERY = "SELECT A, B / A AS ratio FROM R1"
AGG_QUERY = "SELECT A, SUM(B) / SUM(A) AS r FROM R1 GROUP BY A"


def _catalog():
    return Catalog([table(n, list(c)) for n, c in CATALOG_TABLES.items()])


def _engine_rows(sql):
    catalog = _catalog()
    db = Database(catalog, {"R1": list(ROWS)})
    return db.execute(parse_query(sql, catalog)).rows


def test_engine_zero_division_is_null():
    rows = dict(_engine_rows(QUERY))
    assert rows[0] is None  # 7 / 0 -> NULL
    assert rows[2] == 2.5


def test_sqlite_division_parity():
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE R1 (A, B)")
    connection.executemany("INSERT INTO R1 VALUES (?, ?)", ROWS)
    for sql in (QUERY, AGG_QUERY):
        emitted = block_to_sql(
            parse_query(sql, _catalog()), dialect="sqlite"
        )
        backend_rows = [
            tuple(r) for r in connection.execute(emitted).fetchall()
        ]
        assert rows_multiset_equal(backend_rows, _engine_rows(sql)), emitted


@pytest.mark.skipif(
    not backend_available("duckdb"),
    reason="duckdb driver not installed (CI installs it)",
)
def test_duckdb_division_parity():
    import duckdb

    connection = duckdb.connect(":memory:")
    connection.execute("CREATE TABLE R1 (A BIGINT, B BIGINT)")
    for row in ROWS:
        connection.execute("INSERT INTO R1 VALUES (?, ?)", list(row))
    for sql in (QUERY, AGG_QUERY):
        emitted = block_to_sql(
            parse_query(sql, _catalog()), dialect="duckdb"
        )
        backend_rows = [
            tuple(r) for r in connection.execute(emitted).fetchall()
        ]
        assert rows_multiset_equal(backend_rows, _engine_rows(sql)), emitted


def test_postgres_division_emission_pinned():
    # No live Postgres in the test environment: pin the emitted shape —
    # the NULLIF guard is what keeps x/0 from raising division_by_zero.
    emitted = block_to_sql(parse_query(QUERY, _catalog()), dialect="postgres")
    assert (
        '(CAST("R1"."B" AS DOUBLE PRECISION) / NULLIF("R1"."A", 0))'
        in emitted
    )


def test_sqlite_integer_division_avoided():
    # Regression: without the REAL cast SQLite truncates 5/2 to 2.
    emitted = block_to_sql(parse_query(QUERY, _catalog()), dialect="sqlite")
    assert 'CAST("R1"."B" AS REAL)' in emitted

"""Unit rules of the dialect registry: quoting, literals, division."""

import pytest

from repro.dialects import (
    ANSI,
    DIALECT_NAMES,
    DIALECTS,
    DUCKDB,
    POSTGRES,
    SQLITE,
    get_dialect,
)
from repro.errors import ReproError


def test_registry_names_resolve():
    for name in DIALECT_NAMES:
        dialect = get_dialect(name)
        assert dialect.name == name
        assert get_dialect(dialect) is dialect  # instances pass through


def test_registry_is_complete():
    assert set(DIALECTS) == set(DIALECT_NAMES)


def test_unknown_dialect_is_repro_error():
    with pytest.raises(ReproError, match="unknown dialect 'mysql'"):
        get_dialect("mysql")


# ----------------------------------------------------------------------
# Identifier quoting
# ----------------------------------------------------------------------


def test_ansi_quotes_only_when_needed():
    assert ANSI.ident("R1") == "R1"
    assert ANSI.ident("total amount") == '"total amount"'
    assert ANSI.ident("select") == '"select"'  # reserved keyword
    assert ANSI.ident("SUM") == '"SUM"'  # aggregate name
    assert ANSI.ident("1x") == '"1x"'  # not a bare identifier


def test_sqlite_always_quotes():
    assert SQLITE.ident("R1") == '"R1"'
    assert DUCKDB.ident("R1") == '"R1"'
    assert POSTGRES.ident("R1") == '"R1"'


@pytest.mark.parametrize("name", DIALECT_NAMES)
def test_embedded_quotes_are_doubled(name):
    dialect = get_dialect(name)
    assert dialect.quote_ident('weird "name"') == '"weird ""name"""'


# ----------------------------------------------------------------------
# Literals
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", DIALECT_NAMES)
def test_null_literal(name):
    assert get_dialect(name).literal(None) == "NULL"


@pytest.mark.parametrize("name", DIALECT_NAMES)
def test_string_literal_escapes_quotes(name):
    assert get_dialect(name).literal("it's") == "'it''s'"


def test_boolean_literals():
    assert ANSI.literal(True) == "TRUE"
    assert POSTGRES.literal(False) == "FALSE"
    # SQLite predates BOOLEAN: integers stand in.
    assert SQLITE.literal(True) == "1"
    assert SQLITE.literal(False) == "0"


# ----------------------------------------------------------------------
# Division semantics (the x/0 -> NULL contract per backend)
# ----------------------------------------------------------------------


def test_sqlite_division_casts_to_real():
    # SQLite returns NULL for x/0 natively; the CAST alone fixes
    # integer division.
    assert SQLITE.division("a", "b") == "(CAST(a AS REAL) / b)"


def test_duckdb_division_guards_zero():
    assert DUCKDB.division("a", "b") == "(CAST(a AS DOUBLE) / NULLIF(b, 0))"


def test_postgres_division_guards_zero():
    # Postgres raises division_by_zero without the NULLIF guard.
    assert (
        POSTGRES.division("a", "b")
        == "(CAST(a AS DOUBLE PRECISION) / NULLIF(b, 0))"
    )


def test_ansi_division_is_plain():
    assert ANSI.division("a", "b") == "(a / b)"


def test_limit_rendering():
    assert SQLITE.limit(3) == "LIMIT 3"
    assert DUCKDB.limit(3) == "LIMIT 3"
    assert POSTGRES.limit(3) == "LIMIT 3"
    assert ANSI.limit(3) == "FETCH FIRST 3 ROWS ONLY"

"""Golden-file conformance: one pinned corpus document per dialect.

``pytest tests/dialects/test_goldens.py --update-goldens`` regenerates
the files under ``tests/dialects/goldens/`` after an intentional emitter
change; the diff *is* the review artifact.

Beyond text pinning, the SQLite document is executed: every case's
emitted SQL runs on a real ``sqlite3`` database loaded with the case's
instance, and the rows must multiset-match the repro engine's own
answer. The DuckDB document gets the same treatment when the driver is
installed (CI installs it; locally the test skips).
"""

import sqlite3
from pathlib import Path

import pytest

from repro.dialects import DIALECT_NAMES
from repro.dialects.conformance import CASES, emit_corpus
from repro.engine.database import Database
from repro.oracle import backend_available, rows_multiset_equal

GOLDEN_DIR = Path(__file__).parent / "goldens"


@pytest.mark.parametrize("name", DIALECT_NAMES)
def test_corpus_matches_golden(name, request):
    document = emit_corpus(name)
    path = GOLDEN_DIR / f"{name}.sql"
    if request.config.getoption("--update-goldens"):
        path.write_text(document + "\n")
        return
    assert path.exists(), (
        f"missing golden {path}; run pytest --update-goldens to create it"
    )
    assert document + "\n" == path.read_text(), (
        f"emitted {name} corpus drifted from {path}; if the change is "
        "intentional, regenerate with pytest --update-goldens"
    )


def test_corpus_is_deterministic():
    assert emit_corpus("sqlite") == emit_corpus("sqlite")


def test_every_case_has_unique_name():
    names = [case.name for case in CASES]
    assert len(names) == len(set(names))


def _engine_rows(case):
    catalog = case.catalog()
    db = Database(catalog, {name: list(rows) for name, rows in case.instance.items()})
    return db.execute(case.query(catalog)).rows


def _run_on_sqlite(case):
    connection = sqlite3.connect(":memory:")
    for name, columns in case.tables.items():
        quoted = ", ".join(
            '"' + c.replace('"', '""') + '"' for c in columns
        )
        tname = '"' + name.replace('"', '""') + '"'
        connection.execute(f"CREATE TABLE {tname} ({quoted})")
        marks = ", ".join("?" for _ in columns)
        connection.executemany(
            f"INSERT INTO {tname} VALUES ({marks})",
            case.instance.get(name, []),
        )
    cursor = connection.execute(case.emit("sqlite"))
    return [tuple(row) for row in cursor.fetchall()]


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_sqlite_golden_executes(case):
    # The golden text is not just pretty: it is *correct* SQL whose
    # answer agrees with the repro engine on the case's instance.
    assert rows_multiset_equal(_run_on_sqlite(case), _engine_rows(case))


@pytest.mark.skipif(
    not backend_available("duckdb"),
    reason="duckdb driver not installed (CI installs it)",
)
@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_duckdb_golden_executes(case):
    import duckdb

    connection = duckdb.connect(":memory:")
    for name, columns in case.tables.items():
        quoted = ", ".join(
            '"' + c.replace('"', '""') + '" VARCHAR' for c in columns
        )
        # Typed loads: infer per-column types from the instance so
        # SUM/AVG stay numeric.
        rows = list(case.instance.get(name, []))
        types = []
        for i, _ in enumerate(columns):
            values = [row[i] for row in rows if row[i] is not None]
            if values and all(isinstance(v, (int, float)) for v in values):
                types.append("DOUBLE" if any(
                    isinstance(v, float) for v in values
                ) else "BIGINT")
            else:
                types.append("VARCHAR")
        quoted = ", ".join(
            '"' + c.replace('"', '""') + f'" {t}'
            for c, t in zip(columns, types)
        )
        tname = '"' + name.replace('"', '""') + '"'
        connection.execute(f"CREATE TABLE {tname} ({quoted})")
        marks = ", ".join("?" for _ in columns)
        for row in rows:
            connection.execute(
                f"INSERT INTO {tname} VALUES ({marks})", list(row)
            )
    rows = connection.execute(case.emit("duckdb")).fetchall()
    assert rows_multiset_equal(
        [tuple(row) for row in rows], _engine_rows(case)
    )

-- repro-conformance/1 dialect=postgres
-- 10 cases; regenerate with: pytest tests/dialects/test_goldens.py --update-goldens

-- case: projection-filter
-- plain projection with a conjunctive filter
SELECT "R1"."A", "R1"."B"
FROM "R1"
WHERE "R1"."A" < 3 AND "R1"."B" >= 1;

-- case: self-join-aliases
-- self-join forcing occurrence aliases
SELECT "r1_1"."A", "r1_2"."B"
FROM "R1" AS "r1_1", "R1" AS "r1_2"
WHERE "r1_1"."B" = "r1_2"."A";

-- case: join-two-tables
-- equi-join of two base tables
SELECT "R1"."A", "R2"."D"
FROM "R1", "R2"
WHERE "R1"."B" = "R2"."C";

-- case: group-sum-count-having
-- GROUP BY with SUM/COUNT and a HAVING filter
SELECT "sales"."region", SUM("sales"."amount") AS "total", COUNT("sales"."amount") AS "n"
FROM "sales"
GROUP BY "sales"."region"
HAVING SUM("sales"."amount") > 10;

-- case: distinct
-- DISTINCT projection (set semantics)
SELECT DISTINCT "R1"."A"
FROM "R1";

-- case: scalar-aggregates
-- scalar COUNT(*) and AVG with no GROUP BY
SELECT COUNT("R1"."A") AS "n", AVG("R1"."B") AS "avg_b"
FROM "R1";

-- case: arithmetic-division
-- row arithmetic incl. division; data has a 0 divisor
SELECT "R1"."A", (CAST("R1"."B" AS DOUBLE PRECISION) / NULLIF("R1"."A", 0)) AS "ratio", (("R1"."A" + "R1"."B") * 2) AS "scaled"
FROM "R1";

-- case: aggregate-division
-- group-level division of aggregates (AVG shape)
SELECT "R1"."A", (CAST(SUM("R1"."B") AS DOUBLE PRECISION) / NULLIF(COUNT("R1"."B"), 0)) AS "mean"
FROM "R1"
GROUP BY "R1"."A";

-- case: quoted-identifiers
-- keyword and embedded-quote identifiers
SELECT "select"."group", "select"."weird ""name"""
FROM "select"
WHERE "select"."order" < 5;

-- case: null-literal
-- programmatic NULL literal in the SELECT list
SELECT "R1"."A", "R1"."B", NULL AS "missing"
FROM "R1";


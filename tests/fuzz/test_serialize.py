"""Replayable JSON repros: serialize → deserialize is faithful."""

import json

import pytest

from repro.blocks.to_sql import block_to_sql, view_to_sql
from repro.core.canonical import canonical_key
from repro.fuzz import fuzz_scenario, scenario_from_json, scenario_to_json
from repro.fuzz.serialize import FUZZ_SCHEMA


@pytest.mark.parametrize("seed", range(40))
def test_roundtrip(seed):
    scenario = fuzz_scenario(seed)
    doc = scenario_to_json(scenario)
    # Through actual JSON text, as the repro files are.
    rebuilt = scenario_from_json(json.loads(json.dumps(doc)))
    assert canonical_key(rebuilt.query) == canonical_key(scenario.query)
    assert [view_to_sql(v) for v in rebuilt.views] == [
        view_to_sql(v) for v in scenario.views
    ]
    assert {
        name: [tuple(r) for r in rows]
        for name, rows in rebuilt.instance.items()
    } == {
        name: [tuple(r) for r in rows]
        for name, rows in scenario.instance.items()
    }


def test_schema_tag_and_extras():
    doc = scenario_to_json(fuzz_scenario(0), profile="baseline", note="x")
    assert doc["schema"] == FUZZ_SCHEMA
    assert doc["profile"] == "baseline"
    assert doc["note"] == "x"


def test_rejects_foreign_documents():
    with pytest.raises(ValueError):
        scenario_from_json({"schema": "something-else/9"})


def test_document_is_human_auditable():
    """The repro stores SQL text, not pickles — a reviewer can read it."""
    doc = scenario_to_json(fuzz_scenario(1))
    assert all(isinstance(v, str) and "SELECT" in v for v in doc["views"])
    assert "SELECT" in doc["query"]
    assert doc["query"] == block_to_sql(fuzz_scenario(1).query)

"""The delta-debugging shrinker, against synthetic failure predicates.

Synthetic predicates make minimality assertions exact: when "fails"
means "table R still has a row with a = 1", the minimum is one row, and
the shrinker must find it regardless of where the row starts out.
"""

from repro import Catalog, parse_query, parse_view, table
from repro.fuzz import shrink_scenario
from repro.workloads.random_queries import Scenario


def make_scenario(rows, n_views=3, where="R.a > 0 AND R.b > 0"):
    catalog = Catalog([table("R", ["a", "b"]), table("S", ["c"])])
    views = []
    for i in range(n_views):
        view = parse_view(
            f"CREATE VIEW V{i} (a, n) AS "
            "SELECT R.a, COUNT(R.b) FROM R GROUP BY R.a",
            catalog,
        )
        catalog.add_view(view)
        views.append(view)
    query = parse_query(
        f"SELECT R.a, SUM(R.b) AS s FROM R WHERE {where} GROUP BY R.a",
        catalog,
    )
    return Scenario(
        seed=0,
        catalog=catalog,
        query=query,
        views=views,
        instance={"R": rows, "S": [(9,)] * 4},
    )


def test_shrinks_rows_to_minimum():
    rows = [(i % 3, i) for i in range(12)] + [(1, 99)]
    scenario = make_scenario(rows)

    def still_fails(candidate):
        return any(r[0] == 1 and r[1] == 99 for r in candidate.instance["R"])

    result = shrink_scenario(scenario, still_fails)
    assert still_fails(result.scenario)
    assert len(result.scenario.instance["R"]) == 1
    assert result.scenario.instance["S"] == []
    assert result.rows_after < result.rows_before
    assert result.iterations > 0


def test_drops_irrelevant_views():
    scenario = make_scenario([(1, 99)])

    def still_fails(candidate):
        return bool(candidate.instance["R"])

    result = shrink_scenario(scenario, still_fails)
    assert result.views_after == 0
    # The shrunk scenario's catalog must match its view list (the repro
    # file is rebuilt from the catalog).
    assert len(result.scenario.catalog.views) == 0


def test_drops_redundant_predicates():
    scenario = make_scenario([(1, 99)], where="R.a > 0 AND R.b > 7")

    def still_fails(candidate):
        return bool(candidate.instance["R"])

    result = shrink_scenario(scenario, still_fails)
    assert result.scenario.query.where == ()


def test_respects_check_cap():
    scenario = make_scenario([(i % 3, i) for i in range(40)])
    calls = {"n": 0}

    def still_fails(candidate):
        calls["n"] += 1
        return bool(candidate.instance["R"])

    result = shrink_scenario(scenario, still_fails, max_checks=5)
    assert result.iterations <= 5
    assert calls["n"] <= 5


def test_crashing_candidates_are_rejected():
    scenario = make_scenario([(1, 99), (2, 5)])

    def still_fails(candidate):
        if len(candidate.instance["R"]) < 2:
            raise RuntimeError("checker crash on this candidate")
        return True

    result = shrink_scenario(scenario, still_fails)
    # The crash is treated as "does not fail", so both rows survive.
    assert len(result.scenario.instance["R"]) == 2

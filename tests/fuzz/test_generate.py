"""Adversarial scenario generation: determinism and profile semantics."""

import itertools

from repro.blocks.to_sql import block_to_sql
from repro.fuzz import PROFILES, fuzz_scenario
from repro.fuzz.generate import iter_scenarios


def _fingerprint(scenario):
    return (
        block_to_sql(scenario.query),
        tuple(v.name for v in scenario.views),
        tuple(
            (name, tuple(map(tuple, rows)))
            for name, rows in sorted(scenario.instance.items())
        ),
    )


def test_deterministic_in_seed():
    """Same seed, same scenario — across independent calls, so a CI
    failure's seed reproduces bit-identically on a laptop."""
    for seed in range(30):
        assert _fingerprint(fuzz_scenario(seed)) == _fingerprint(
            fuzz_scenario(seed)
        ), f"seed={seed} not deterministic"


def test_profiles_rotate_by_seed():
    for seed in range(2 * len(PROFILES)):
        expected = PROFILES[seed % len(PROFILES)]
        scenario = fuzz_scenario(seed)
        if expected == "empty_db":
            assert all(rows == [] for rows in scenario.instance.values())
        elif expected == "empty_table":
            assert any(rows == [] for rows in scenario.instance.values())
        elif expected == "single_row":
            assert all(len(rows) == 1 for rows in scenario.instance.values())
        elif expected == "all_dups":
            for rows in scenario.instance.values():
                assert len(set(rows)) == 1 and len(rows) >= 2
        elif expected == "distinct":
            assert scenario.query.distinct
        elif expected == "scalar_agg":
            assert scenario.query.is_aggregation
            assert not scenario.query.group_by


def test_iter_scenarios_walks_seeds():
    stream = iter_scenarios(base_seed=100)
    scenarios = list(itertools.islice(stream, 5))
    assert [s.seed for s in scenarios] == list(range(100, 105))


def test_scenarios_are_well_formed():
    """Every generated scenario must be evaluable (the fuzz loop relies
    on the checker never being handed an invalid block)."""
    from repro.engine.database import Database

    for seed in range(3 * len(PROFILES)):
        scenario = fuzz_scenario(seed)
        db = Database(scenario.catalog, scenario.instance)
        db.execute(scenario.query)  # must not raise
        for view in scenario.views:
            db.materialize(view.name)

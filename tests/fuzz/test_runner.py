"""The fuzz loop end to end: mutation testing, shrinking, replay.

The acceptance property for the whole oracle subsystem lives here: an
intentionally injected evaluator bug must be *caught* by the loop and
*shrunk* to a tiny repro (≤ 3 rows, ≤ 2 views) that replays.
"""

import json

import pytest

from repro.blocks.exprs import AggFunc
from repro.engine import aggregates
from repro.fuzz import (
    BUG_NAMES,
    FuzzRunner,
    inject_bug,
    replay,
    scenario_from_json,
)
from repro.oracle import check_scenario


def _total_rows(doc):
    return sum(len(rows) for rows in doc["instance"].values())


def test_clean_run_is_clean(tmp_path):
    stats = FuzzRunner(out_dir=tmp_path).run(
        budget_seconds=None, max_scenarios=150
    )
    assert stats.failures == 0, stats.as_dict()
    assert stats.scenarios == 150
    assert stats.rewritings > 0, "a vacuous corpus would prove nothing"
    assert not list(tmp_path.iterdir())


@pytest.mark.parametrize("bug", BUG_NAMES)
def test_injected_bug_caught_and_shrunk(tmp_path, bug):
    """Mutation test: every known-bad evaluator variant is detected and
    the repro is minimized below the acceptance thresholds."""
    out = tmp_path / bug
    with inject_bug(bug):
        stats = FuzzRunner(out_dir=out).run(
            budget_seconds=None, max_scenarios=400, max_failures=1
        )
        assert stats.failures >= 1, f"{bug}: fuzzer missed the injected bug"
        assert stats.shrink_iterations > 0

        doc = json.loads(stats.failure_files[0].read_text())
        assert _total_rows(doc) <= 3, doc
        assert len(doc["views"]) <= 2, doc
        assert doc["mismatches"], doc

        # The persisted repro replays to a failure while the bug is in.
        report = replay(stats.failure_files[0])
        assert not report.ok

    # ... and is clean again once the bug is reverted: the failure was
    # the injected mutation, not the corpus.
    report = replay(stats.failure_files[0])
    assert report.ok, report.describe()


def test_inject_bug_restores_dispatch():
    original = dict(aggregates._DISPATCH)
    with inject_bug("min-as-max"):
        assert aggregates._DISPATCH[AggFunc.MIN] is not original[AggFunc.MIN]
    assert aggregates._DISPATCH == original


def test_inject_unknown_bug_rejected():
    with pytest.raises(ValueError):
        with inject_bug("no-such-bug"):
            pass


def test_tight_budget_scenarios_included(tmp_path):
    """Every 5th seed runs under a tight SearchBudget; partial search
    results must be checked too (they appear in the rewriting count)."""
    stats = FuzzRunner(out_dir=tmp_path).run(
        budget_seconds=None, max_scenarios=50
    )
    assert stats.failures == 0
    assert stats.scenarios == 50


def test_per_profile_breakdown_in_stats(tmp_path):
    """Every scenario lands in exactly one profile bucket, and the JSON
    report carries the structured breakdown."""
    stats = FuzzRunner(out_dir=tmp_path).run(
        budget_seconds=None, max_scenarios=40
    )
    doc = stats.as_dict()
    assert doc["profiles"], "profile breakdown missing from the report"
    for bucket in doc["profiles"].values():
        assert set(bucket) == {"scenarios", "checks", "mismatches", "skipped"}
    accounted = sum(
        b["scenarios"] + b["skipped"] for b in doc["profiles"].values()
    )
    assert accounted == stats.scenarios + stats.skipped == 40
    assert sum(b["checks"] for b in doc["profiles"].values()) == stats.checks


def test_fuzz_metrics_recorded_per_profile(tmp_path):
    from repro.obs.metrics import MetricsRegistry, collecting

    registry = MetricsRegistry()
    with collecting(registry):
        stats = FuzzRunner(out_dir=tmp_path).run(
            budget_seconds=None, max_scenarios=20
        )
    snapshot = registry.snapshot()
    # Label order is (profile, outcome); sum the "checked" outcome
    # across profiles and it must equal the runner's own tally.
    scenario_samples = snapshot.families["repro_fuzz_scenarios_total"][
        "samples"
    ]
    checked = sum(v for labels, v in scenario_samples if labels[1] == "checked")
    assert checked == stats.scenarios
    check_samples = snapshot.families["repro_fuzz_checks_total"]["samples"]
    assert sum(v for _, v in check_samples) == stats.checks


def test_repro_file_records_profile_stats(tmp_path):
    with inject_bug("min-as-max"):
        stats = FuzzRunner(out_dir=tmp_path).run(
            budget_seconds=None, max_scenarios=400, max_failures=1
        )
        assert stats.failures >= 1
        doc = json.loads(stats.failure_files[0].read_text())
    assert doc["schema"] == "repro-fuzz/1"
    assert set(doc["profile_stats"]) == {
        "scenarios", "checks", "mismatches", "skipped",
    }
    assert doc["profile_stats"]["mismatches"] >= 1


def test_repro_strategy_round_trip(tmp_path):
    """A repro written by a --strategy run records the producing
    strategy, and replay honours it by default; documents from before
    the field existed replay under c1c4, the search that wrote them."""
    import json as _json

    from repro.fuzz.generate import fuzz_scenario
    from repro.fuzz.serialize import scenario_to_json

    scenario = fuzz_scenario(0)
    doc = scenario_to_json(scenario, strategy="both")
    assert doc["strategy"] == "both"
    path = tmp_path / "repro.json"
    path.write_text(_json.dumps(doc))
    report = replay(path)
    # The dual search ran: per-strategy counts are populated, and the
    # dominance cross-check contributed a comparison.
    assert set(report.strategy_counts) == {"c1c4", "cohen_nutt"}
    assert report.ok, report.describe()

    # Pre-strategy documents (no field at all) stay on C1-C4.
    del doc["strategy"]
    path.write_text(_json.dumps(doc))
    report = replay(path)
    assert set(report.strategy_counts) == {"c1c4"}

    # An explicit argument overrides the recorded strategy.
    report = replay(path, strategy="both")
    assert set(report.strategy_counts) == {"c1c4", "cohen_nutt"}


def test_runner_records_strategy_in_repro(tmp_path):
    """Failures found by a dual-strategy sweep persist strategy='both'
    so the repro replays through the same cross-planner oracle."""
    import json as _json

    with inject_bug("min-as-max"):
        stats = FuzzRunner(out_dir=tmp_path, strategy="both").run(
            budget_seconds=None, max_scenarios=400, max_failures=1
        )
        assert stats.failures >= 1
    doc = _json.loads(stats.failure_files[0].read_text())
    assert doc["strategy"] == "both"


def test_strategy_tallies_per_profile(tmp_path):
    """Dual-strategy runs tally per-strategy found/missed per profile;
    the complete strategy never scores below C1-C4."""
    stats = FuzzRunner(out_dir=tmp_path, strategy="both").run(
        budget_seconds=None, max_scenarios=60
    )
    assert stats.failures == 0, stats.as_dict()
    tallied = 0
    for bucket in stats.profiles.values():
        found_base = bucket.get("c1c4_found", 0)
        found_union = bucket.get("cohen_nutt_found", 0)
        assert found_union >= found_base, stats.profiles
        tallied += found_base + bucket.get("c1c4_missed", 0)
    assert tallied == stats.scenarios, stats.profiles


SEED_4916_REPRO = {
    "schema": "repro-fuzz/1",
    "seed": 4916,
    "tables": [
        {"name": "T0", "columns": ["c0", "c1"], "keys": [], "row_count": 100},
        {
            "name": "T1",
            "columns": ["c0", "c1", "c2", "c3"],
            "keys": [],
            "row_count": 100,
        },
    ],
    "views": [
        "CREATE VIEW V1 (o0, o1) AS\n"
        "SELECT MAX(T1.c2) AS agg0, COUNT(T1.c3) AS agg1\nFROM T1"
    ],
    "query": "SELECT T0.c1, AVG(T0.c0) AS out\nFROM T1, T0\nGROUP BY T0.c1",
    "instance": {"T0": [[1, 1]], "T1": []},
}


def test_seed_4916_regression():
    """The first real bug the oracle found: a scalar aggregation view
    replacing an empty base table manufactured a group (fixed in
    repro.core.aggregate; see tests/core/test_scalar_view_soundness.py).
    The shrunk repro must stay clean forever."""
    scenario = scenario_from_json(SEED_4916_REPRO)
    report = check_scenario(scenario)
    assert report.ok, report.describe()

"""AVG support (Section 4.4): the SUM/COUNT/AVG triangle."""

import pytest

from repro import (
    assert_equivalent,
    enumerate_mappings,
    parse_query,
    parse_view,
    try_rewrite_aggregation,
    try_rewrite_conjunctive,
)


def rewritings(query, view, fn=try_rewrite_aggregation):
    out = []
    for mapping in enumerate_mappings(view.block, query):
        rewriting = fn(query, view, mapping)
        if rewriting is not None:
            out.append(rewriting)
    return out


class TestAvgInQuery:
    def test_avg_from_sum_and_count(self, wide_catalog):
        query = parse_query(
            "SELECT A, AVG(C) FROM R1 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B, S, N) AS "
            "SELECT A, B, SUM(C), COUNT(C) FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert "/" in found[0].sql()
        assert_equivalent(wide_catalog, query, found[0], trials=40, domain=3)

    def test_avg_from_avg_and_count(self, wide_catalog):
        """AVG over coalesced groups from per-group AVG x COUNT."""
        query = parse_query(
            "SELECT A, AVG(C) FROM R1 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B, Av, N) AS "
            "SELECT A, B, AVG(C), COUNT(C) FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(wide_catalog, query, found[0], trials=40, domain=3)

    def test_avg_of_grouping_column(self, wide_catalog):
        query = parse_query(
            "SELECT A, AVG(B) FROM R1 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B, N) AS "
            "SELECT A, B, COUNT(C) FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(wide_catalog, query, found[0], trials=40, domain=3)

    def test_avg_of_external_column(self, wide_catalog):
        query = parse_query(
            "SELECT A, AVG(E) FROM R1, R2 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, N) AS SELECT A, COUNT(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(wide_catalog, query, found[0], trials=40, domain=3)

    def test_avg_needs_count(self, wide_catalog):
        query = parse_query(
            "SELECT A, AVG(C) FROM R1 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, S) AS SELECT A, SUM(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        assert rewritings(query, view) == []

    def test_avg_conjunctive_view(self, rs_catalog):
        query = parse_query(
            "SELECT A, AVG(B) FROM R1 GROUP BY A", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1", rs_catalog
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_conjunctive)
        assert found
        assert_equivalent(rs_catalog, query, found[0], trials=30, domain=4)


class TestSumFromAvg:
    def test_sum_recovered_from_avg_times_count(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(C) FROM R1 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, Av, N) AS "
            "SELECT A, AVG(C), COUNT(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(wide_catalog, query, found[0], trials=40, domain=3)

    def test_sum_from_avg_without_count_fails(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(C) FROM R1 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, Av) AS SELECT A, AVG(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        assert rewritings(query, view) == []


class TestAvgInHaving:
    def test_having_avg(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(C) FROM R1 GROUP BY A HAVING AVG(C) > 2",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, S, N) AS "
            "SELECT A, SUM(C), COUNT(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(wide_catalog, query, found[0], trials=40, domain=4)

"""Edge cases of the rewriting algorithms, all oracle-verified."""

import pytest

from repro import (
    Catalog,
    assert_equivalent,
    enumerate_mappings,
    parse_query,
    parse_view,
    table,
    try_rewrite_aggregation,
    try_rewrite_conjunctive,
)


def rewritings(query, view, fn):
    out = []
    for mapping in enumerate_mappings(view.block, query):
        rewriting = fn(query, view, mapping)
        if rewriting is not None:
            out.append(rewriting)
    return out


def check(catalog, query, view, fn, expect=True, **oracle):
    found = rewritings(query, view, fn)
    if expect:
        assert found
        oracle.setdefault("trials", 30)
        oracle.setdefault("domain", 3)
        assert_equivalent(catalog, query, found[0], **oracle)
        return found[0]
    assert found == []
    return None


class TestMultipleAggregates:
    def test_all_five_aggregates_at_once(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(C), COUNT(C), MIN(C), MAX(C), AVG(C) "
            "FROM R1 GROUP BY A",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, B, S, Mn, Mx, N) AS "
            "SELECT A, B, SUM(C), MIN(C), MAX(C), COUNT(C) "
            "FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        check(wide_catalog, query, view, try_rewrite_aggregation)

    def test_same_aggregate_repeated_in_select(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(C) AS s1, SUM(C) AS s2 FROM R1 GROUP BY A",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, S) AS SELECT A, SUM(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        check(wide_catalog, query, view, try_rewrite_aggregation)

    def test_multiple_count_columns_in_view(self, wide_catalog):
        query = parse_query(
            "SELECT A, COUNT(B) FROM R1 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, N1, N2) AS "
            "SELECT A, COUNT(B), COUNT(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        check(wide_catalog, query, view, try_rewrite_aggregation)


class TestConstantsAndOperators:
    def test_string_constant_residual(self):
        catalog = Catalog([table("T", ["name", "city", "amount"])])
        query = parse_query(
            "SELECT name, SUM(amount) FROM T WHERE city = 'NYC' "
            "GROUP BY name",
            catalog,
        )
        view = parse_view(
            "CREATE VIEW V (name, city, total, n) AS "
            "SELECT name, city, SUM(amount), COUNT(amount) "
            "FROM T GROUP BY name, city",
            catalog,
        )
        catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_aggregation)
        assert found
        assert "'NYC'" in found[0].sql()

    def test_ne_predicate_residual(self, rs_catalog):
        query = parse_query(
            "SELECT A, SUM(B) FROM R1 WHERE A <> 2 GROUP BY A", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1", rs_catalog
        )
        rs_catalog.add_view(view)
        check(rs_catalog, query, view, try_rewrite_conjunctive, domain=4)

    def test_range_predicates_split_across_view_and_residual(self, rs_catalog):
        query = parse_query(
            "SELECT A FROM R1 WHERE B >= 1 AND B <= 3 AND A < B",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1 WHERE A < B",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        check(rs_catalog, query, view, try_rewrite_conjunctive, domain=5)

    def test_strictly_weaker_view_range_ok(self, rs_catalog):
        # View keeps B > 0; query wants B > 2 (implies the view's filter).
        query = parse_query(
            "SELECT A FROM R1 WHERE B > 2", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1 WHERE B > 0",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        check(rs_catalog, query, view, try_rewrite_conjunctive, domain=5)

    def test_strictly_stronger_view_range_rejected(self, rs_catalog):
        query = parse_query("SELECT A FROM R1 WHERE B > 0", rs_catalog)
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1 WHERE B > 2",
            rs_catalog,
        )
        check(
            rs_catalog, query, view, try_rewrite_conjunctive, expect=False
        )


class TestSelfJoins:
    def test_aggregation_view_on_one_occurrence(self, rs_catalog):
        query = parse_query(
            "SELECT x.A, COUNT(y.B) FROM R1 x, R1 y GROUP BY x.A",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, N) AS SELECT A, COUNT(B) FROM R1 GROUP BY A",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_aggregation)
        # Two mappings (x or y); each must be sound.
        assert len(found) >= 1
        for rewriting in found:
            assert_equivalent(
                rs_catalog, query, rewriting, trials=30, domain=3
            )

    def test_view_self_join_into_query_self_join(self, rs_catalog):
        query = parse_query(
            "SELECT x.A, SUM(y.B) FROM R1 x, R1 y WHERE x.B = y.A "
            "GROUP BY x.A",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A1, B2) AS "
            "SELECT x.A, y.B FROM R1 x, R1 y WHERE x.B = y.A",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        check(rs_catalog, query, view, try_rewrite_conjunctive)


class TestGroupingEdges:
    def test_grouping_by_closure_equal_columns(self, rs_catalog):
        # A = B, grouped by both: the view only outputs A.
        query = parse_query(
            "SELECT A, B, COUNT(B) FROM R1 WHERE A = B GROUP BY A, B",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, N) AS "
            "SELECT A, COUNT(B) FROM R1 WHERE A = B GROUP BY A",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        check(rs_catalog, query, view, try_rewrite_aggregation)

    def test_view_grouped_by_everything(self, wide_catalog):
        # Every group has COUNT >= 1; the rewriting must still weight.
        query = parse_query(
            "SELECT A, COUNT(B) FROM R1 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B, C, D, N) AS "
            "SELECT A, B, C, D, COUNT(A) FROM R1 GROUP BY A, B, C, D",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        check(wide_catalog, query, view, try_rewrite_aggregation, domain=2)

    def test_having_only_aggregate(self, rs_catalog):
        # The aggregate appears only in HAVING, never in SELECT.
        query = parse_query(
            "SELECT A FROM R1 GROUP BY A HAVING SUM(B) > 3", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, S) AS SELECT A, SUM(B) FROM R1 GROUP BY A",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        check(rs_catalog, query, view, try_rewrite_aggregation, domain=4)


class TestPartialCoverage:
    def test_view_covers_one_of_three_tables(self):
        catalog = Catalog(
            [
                table("R", ["A", "B"]),
                table("S", ["C", "D"]),
                table("T", ["E", "F"]),
            ]
        )
        query = parse_query(
            "SELECT A, SUM(E) FROM R, S, T WHERE B = C AND D = E "
            "GROUP BY A",
            catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, B, N) AS "
            "SELECT A, B, COUNT(A) FROM R GROUP BY A, B",
            catalog,
        )
        catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_aggregation)
        assert found
        names = sorted(rel.name for rel in found[0].query.from_)
        assert names == ["S", "T", "V"]
        assert_equivalent(catalog, query, found[0], trials=25, domain=2)

    def test_two_aggregation_views_sequentially(self):
        """An aggregation view, then a conjunctive view on the remainder."""
        from repro.core.multiview import all_rewritings

        catalog = Catalog(
            [table("R", ["A", "B"]), table("S", ["C", "D"])]
        )
        agg_view = parse_view(
            "CREATE VIEW VA (A, N) AS SELECT A, COUNT(B) FROM R GROUP BY A",
            catalog,
        )
        conj_view = parse_view(
            "CREATE VIEW VC (C, D) AS SELECT C, D FROM S", catalog
        )
        catalog.add_view(agg_view)
        catalog.add_view(conj_view)
        query = parse_query(
            "SELECT A, COUNT(D) FROM R, S GROUP BY A", catalog
        )
        found = all_rewritings(query, [agg_view, conj_view], catalog)
        both = [r for r in found if len(r.view_names) == 2]
        assert both
        assert_equivalent(catalog, query, both[0], trials=25, domain=3)

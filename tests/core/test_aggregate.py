"""Section 4 conditions C2'-C4' and steps S1'-S5', case by case."""

import pytest

from repro import (
    assert_equivalent,
    enumerate_mappings,
    parse_query,
    parse_view,
    try_rewrite_aggregation,
)


def rewritings(query, view, **kwargs):
    out = []
    for mapping in enumerate_mappings(view.block, query):
        rewriting = try_rewrite_aggregation(query, view, mapping, **kwargs)
        if rewriting is not None:
            out.append(rewriting)
    return out


def check(catalog, query, view, expect_usable, **oracle):
    found = rewritings(query, view)
    if expect_usable:
        assert found, "expected a rewriting"
        oracle.setdefault("trials", 30)
        oracle.setdefault("domain", 3)
        assert_equivalent(catalog, query, found[0], **oracle)
        return found[0]
    assert found == [], found and found[0].sql()
    return None


class TestConditionC2Prime:
    def test_grouping_column_must_be_colsel(self, wide_catalog):
        # B is a grouping column of Q, covered by the view, but only
        # aggregated there.
        query = parse_query(
            "SELECT B, COUNT(A) FROM R1 GROUP BY B", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, S, N) AS "
            "SELECT A, SUM(B), COUNT(B) FROM R1 GROUP BY A",
            wide_catalog,
        )
        check(wide_catalog, query, view, expect_usable=False)

    def test_grouping_column_via_equality(self, wide_catalog):
        # Q groups on D; Conds(Q) implies D = A and the view outputs A.
        query = parse_query(
            "SELECT D, COUNT(B) FROM R1 WHERE A = D GROUP BY D",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, N) AS "
            "SELECT A, COUNT(B) FROM R1 WHERE A = D GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        check(wide_catalog, query, view, expect_usable=True)


class TestConditionC3Prime:
    def test_constraint_on_aggregated_column(self, wide_catalog):
        # Example 4.4's principle with a constant: B is aggregated in V,
        # and Q constrains B.
        query = parse_query(
            "SELECT A, SUM(B) FROM R1 WHERE B = 2 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, S, N) AS "
            "SELECT A, SUM(B), COUNT(B) FROM R1 GROUP BY A",
            wide_catalog,
        )
        check(wide_catalog, query, view, expect_usable=False)

    def test_constraint_already_in_view(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(B) FROM R1 WHERE B = 2 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, S, N) AS "
            "SELECT A, SUM(B), COUNT(B) FROM R1 WHERE B = 2 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        check(wide_catalog, query, view, expect_usable=True)

    def test_residual_on_grouping_output(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(B) FROM R1 WHERE C <= 1 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, C, S) AS "
            "SELECT A, C, SUM(B) FROM R1 GROUP BY A, C",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        rewriting = check(wide_catalog, query, view, expect_usable=True)
        assert any("1" in str(a) for a in rewriting.query.where)


class TestConditionC4Prime:
    @pytest.fixture
    def full_view(self, wide_catalog):
        view = parse_view(
            "CREATE VIEW V (A, B, S, Mn, Mx, N) AS "
            "SELECT A, B, SUM(C), MIN(C), MAX(C), COUNT(C) "
            "FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        return view

    def test_sum_from_sum_output(self, wide_catalog, full_view):
        query = parse_query(
            "SELECT A, SUM(C) FROM R1 GROUP BY A", wide_catalog
        )
        rewriting = check(wide_catalog, query, full_view, expect_usable=True)
        assert "SUM" in str(rewriting.query.select[1].expr)

    def test_min_from_min_output(self, wide_catalog, full_view):
        query = parse_query(
            "SELECT A, MIN(C) FROM R1 GROUP BY A", wide_catalog
        )
        check(wide_catalog, query, full_view, expect_usable=True)

    def test_max_from_max_output(self, wide_catalog, full_view):
        query = parse_query(
            "SELECT A, MAX(C) FROM R1 GROUP BY A", wide_catalog
        )
        check(wide_catalog, query, full_view, expect_usable=True)

    def test_count_from_count_output(self, wide_catalog, full_view):
        query = parse_query(
            "SELECT A, COUNT(D) FROM R1 GROUP BY A", wide_catalog
        )
        check(wide_catalog, query, full_view, expect_usable=True)

    def test_min_of_grouping_column(self, wide_catalog, full_view):
        # MIN(B) where B is a grouping output of the view.
        query = parse_query(
            "SELECT A, MIN(B) FROM R1 GROUP BY A", wide_catalog
        )
        check(wide_catalog, query, full_view, expect_usable=True)

    def test_sum_of_grouping_column_weighted(self, wide_catalog, full_view):
        # SUM(B): B is constant per view group, so SUM = sum of N * B.
        query = parse_query(
            "SELECT A, SUM(B) FROM R1 GROUP BY A", wide_catalog
        )
        rewriting = check(wide_catalog, query, full_view, expect_usable=True)
        assert "*" in rewriting.sql()

    def test_min_of_unavailable_column(self, wide_catalog, full_view):
        # D is neither an output nor equal to one.
        query = parse_query(
            "SELECT A, MIN(D) FROM R1 GROUP BY A", wide_catalog
        )
        check(wide_catalog, query, full_view, expect_usable=False)

    def test_wrong_aggregate_kind(self, wide_catalog):
        # View has MIN(C); query wants MAX(C): unusable.
        view = parse_view(
            "CREATE VIEW V (A, Mn) AS SELECT A, MIN(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        query = parse_query(
            "SELECT A, MAX(C) FROM R1 GROUP BY A", wide_catalog
        )
        check(wide_catalog, query, view, expect_usable=False)

    def test_count_requires_count_output(self, wide_catalog):
        view = parse_view(
            "CREATE VIEW V (A, S) AS SELECT A, SUM(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        query = parse_query(
            "SELECT A, COUNT(C) FROM R1 GROUP BY A", wide_catalog
        )
        check(wide_catalog, query, view, expect_usable=False)


class TestExternalColumns:
    """C4' part 2: aggregates over non-image tables."""

    @pytest.fixture
    def grouped_view(self, wide_catalog):
        view = parse_view(
            "CREATE VIEW V (A, N) AS SELECT A, COUNT(B) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        return view

    def test_sum_weighted_by_count(self, wide_catalog, grouped_view):
        query = parse_query(
            "SELECT A, SUM(E) FROM R1, R2 GROUP BY A", wide_catalog
        )
        rewriting = check(
            wide_catalog, query, grouped_view, expect_usable=True
        )
        assert "*" in rewriting.sql()

    def test_count_becomes_sum_n(self, wide_catalog, grouped_view):
        query = parse_query(
            "SELECT A, COUNT(E) FROM R1, R2 GROUP BY A", wide_catalog
        )
        check(wide_catalog, query, grouped_view, expect_usable=True)

    def test_min_max_untouched(self, wide_catalog, grouped_view):
        for agg in ("MIN", "MAX"):
            query = parse_query(
                f"SELECT A, {agg}(E) FROM R1, R2 GROUP BY A", wide_catalog
            )
            check(wide_catalog, query, grouped_view, expect_usable=True)

    def test_join_with_external_table(self, wide_catalog):
        view = parse_view(
            "CREATE VIEW V (A, C, N) AS "
            "SELECT A, C, COUNT(B) FROM R1 GROUP BY A, C",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        query = parse_query(
            "SELECT A, SUM(E) FROM R1, R2 WHERE C = F GROUP BY A",
            wide_catalog,
        )
        check(wide_catalog, query, view, expect_usable=True, domain=2)

    def test_no_count_blocks_external_sum(self, wide_catalog):
        view = parse_view(
            "CREATE VIEW V (A, S) AS SELECT A, SUM(B) FROM R1 GROUP BY A",
            wide_catalog,
        )
        query = parse_query(
            "SELECT A, SUM(E) FROM R1, R2 GROUP BY A", wide_catalog
        )
        check(wide_catalog, query, view, expect_usable=False)


class TestGroupAlignment:
    def test_coalescing_many_to_fewer_groups(self, wide_catalog):
        view = parse_view(
            "CREATE VIEW V (A, B, C, S, N) AS "
            "SELECT A, B, C, SUM(D), COUNT(D) FROM R1 GROUP BY A, B, C",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        query = parse_query(
            "SELECT A, SUM(D), COUNT(D) FROM R1 GROUP BY A", wide_catalog
        )
        check(wide_catalog, query, view, expect_usable=True)

    def test_finer_query_groups_blocked(self, wide_catalog):
        # Q groups by (A, B); V only by A: the detail is gone.
        view = parse_view(
            "CREATE VIEW V (A, S, N) AS "
            "SELECT A, SUM(D), COUNT(D) FROM R1 GROUP BY A",
            wide_catalog,
        )
        query = parse_query(
            "SELECT A, B, SUM(D) FROM R1 GROUP BY A, B", wide_catalog
        )
        check(wide_catalog, query, view, expect_usable=False)

    def test_identical_groups(self, wide_catalog):
        view = parse_view(
            "CREATE VIEW V (A, S) AS SELECT A, SUM(D) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        query = parse_query(
            "SELECT A, SUM(D) FROM R1 GROUP BY A", wide_catalog
        )
        check(wide_catalog, query, view, expect_usable=True)

    def test_global_aggregate_from_grouped_view(self, wide_catalog):
        # Q has no GROUP BY at all: coalesce everything.
        view = parse_view(
            "CREATE VIEW V (A, S, N) AS "
            "SELECT A, SUM(D), COUNT(D) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        query = parse_query("SELECT SUM(D) FROM R1", wide_catalog)
        check(wide_catalog, query, view, expect_usable=True)


class TestEmptyGroupEdgeCases:
    def test_global_aggregate_empty_table(self, wide_catalog):
        """No GROUP BY: both Q and Q' must emit their single row even on
        an empty database (the view is then empty too)."""
        view = parse_view(
            "CREATE VIEW V (A, N) AS SELECT A, COUNT(D) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        query = parse_query("SELECT COUNT(D) FROM R1", wide_catalog)
        found = rewritings(query, view)
        if found:
            from repro.engine.database import Database

            db = Database(wide_catalog, {"R1": [], "R2": []})
            left = db.execute(query)
            right = db.execute(
                found[0].query, extra_views=found[0].extra_views()
            )
            assert left.multiset_equal(right), (left.rows, right.rows)

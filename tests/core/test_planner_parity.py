"""Planner/naive parity: the indexed search returns the same rewritings.

The :class:`~repro.core.planner.RewritePlanner` promises the *same result
set* as the naive breadth-first search — signature pruning only skips
views that could not contribute a mapping, and the memoization caches are
semantically transparent. These tests pin that promise on the paper's
examples, the generated workloads, and randomized query/view pairs, for
both ``include_partial`` modes.
"""

import itertools
import random

import pytest

from repro import Catalog, parse_query, parse_view, table
from repro.core.canonical import canonical_key
from repro.core.multiview import (
    all_rewritings,
    all_rewritings_naive,
    rewrite_iteratively,
)
from repro.core.planner import RewritePlanner, ViewSignature, baseline_mode
from repro.workloads import star, telephony
from repro.workloads.random_queries import (
    random_catalog,
    random_view,
    related_pair,
)


def keys_of(rewritings):
    return sorted(canonical_key(r.query) for r in rewritings)


def assert_parity(
    query, views, catalog, use_set_semantics=False, max_steps=3
):
    """Both search paths, both maximality modes, same canonical sets."""
    planner = RewritePlanner(views, catalog, use_set_semantics)
    for include_partial in (True, False):
        naive = all_rewritings_naive(
            query,
            views,
            catalog,
            use_set_semantics=use_set_semantics,
            max_steps=max_steps,
            include_partial=include_partial,
        )
        planned = planner.all_rewritings(
            query, max_steps=max_steps, include_partial=include_partial
        )
        assert keys_of(naive) == keys_of(planned), (
            f"parity violation (include_partial={include_partial}) "
            f"for {query}"
        )


class TestPaperExamples:
    def test_example_3_1(self, rs_catalog):
        query = parse_query(
            "SELECT A, D FROM R1, R2 WHERE B = C AND D >= 5", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (VA, VD) AS "
            "SELECT A, D FROM R1, R2 WHERE B = C",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        assert_parity(query, [view], rs_catalog)

    def test_example_4_1(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(E) FROM R1, R2 WHERE C = F GROUP BY A",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (VA, VC, VS) AS "
            "SELECT A, C, SUM(E) FROM R1, R2 WHERE C = F GROUP BY A, C",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        assert_parity(query, [view], wide_catalog)

    def test_telephony_example_1_1(self):
        wl = telephony.generate(n_calls=200)
        assert_parity(wl.query, [wl.view], wl.catalog)


class TestWorkloads:
    def test_star_all_queries(self):
        wl = star.generate(n_sales=200)
        views = list(wl.views.values())
        for query in wl.queries.values():
            assert_parity(query, views, wl.catalog)

    def test_star_set_semantics(self):
        wl = star.generate(n_sales=200)
        views = list(wl.views.values())
        for query in wl.queries.values():
            assert_parity(query, views, wl.catalog, use_set_semantics=True)

    def test_star_under_baseline_mode(self):
        """Parity must hold with every cache disabled, too."""
        wl = star.generate(n_sales=200)
        views = list(wl.views.values())
        with baseline_mode():
            for query in wl.queries.values():
                assert_parity(query, views, wl.catalog)

    def test_dispatch_equivalence(self):
        """all_rewritings(use_planner=True/False) agree end to end."""
        wl = star.generate(n_sales=200)
        views = list(wl.views.values())
        for query in wl.queries.values():
            fast = all_rewritings(
                query, views, wl.catalog, use_planner=True
            )
            slow = all_rewritings(
                query, views, wl.catalog, use_planner=False
            )
            assert keys_of(fast) == keys_of(slow)


class TestRandomized:
    @pytest.mark.parametrize("seed", range(12))
    def test_related_pairs(self, seed):
        rng = random.Random(seed)
        catalog = random_catalog(rng)
        query, view = related_pair(catalog, rng)
        catalog.add_view(view)
        assert_parity(query, [view], catalog)

    @pytest.mark.parametrize("seed", range(6))
    def test_multiple_random_views(self, seed):
        rng = random.Random(1000 + seed)
        catalog = random_catalog(rng)
        query, view = related_pair(catalog, rng)
        views = [view]
        for i in range(2):
            extra = random_view(catalog, rng, f"W{i}")
            views.append(extra)
        for v in views:
            catalog.add_view(v)
        assert_parity(query, views, catalog)


class TestChurchRosser:
    def test_order_independence_through_planner(self):
        """Theorem 3.2(2): any incorporation order, one canonical result —
        and the planner-backed iterative path agrees with it."""
        catalog = Catalog(
            [
                table("R", ["A", "B"]),
                table("S", ["C", "D"]),
                table("T", ["E", "F"]),
            ]
        )
        views = []
        for name, base, cols in [
            ("VR", "R", "A, B"),
            ("VS", "S", "C, D"),
            ("VT", "T", "E, F"),
        ]:
            view = parse_view(
                f"CREATE VIEW {name} ({cols}) AS SELECT {cols} FROM {base}",
                catalog,
            )
            catalog.add_view(view)
            views.append(view)
        query = parse_query(
            "SELECT A, COUNT(C) FROM R, S, T WHERE B = C AND D = E "
            "GROUP BY A",
            catalog,
        )
        keys = set()
        for order in itertools.permutations(views):
            result = rewrite_iteratively(query, list(order), catalog)
            keys.add(canonical_key(result.query))
        assert len(keys) == 1

        planner = RewritePlanner(views, catalog)
        full = [
            r
            for r in planner.all_rewritings(query, include_partial=False)
            if len(r.query.from_) == 3
        ]
        assert keys == {canonical_key(r.query) for r in full}


class TestViewSignature:
    def _view(self, catalog, sql):
        return parse_view(sql, catalog)

    def test_multiset_containment_one_to_one(self):
        catalog = Catalog([table("R", ["A", "B"])])
        view = self._view(
            catalog,
            "CREATE VIEW V (X, Y) AS SELECT R.A, R2.A AS Y "
            "FROM R, R AS R2 WHERE R.B = R2.B",
        )
        signature = ViewSignature.of(view)
        single = parse_query("SELECT A, B FROM R", catalog)
        double = parse_query(
            "SELECT R.A, R2.B FROM R, R AS R2", catalog
        )
        from repro.core.planner import _from_counts

        # The self-join view needs two R occurrences under 1-1 mappings,
        # but a single occurrence suffices for many-to-1 (set semantics).
        assert not signature.admits(_from_counts(single), False)
        assert signature.admits(_from_counts(double), False)
        assert signature.admits(_from_counts(single), True)

    def test_missing_relation_always_rejected(self):
        catalog = Catalog([table("R", ["A", "B"]), table("S", ["C", "D"])])
        view = self._view(
            catalog, "CREATE VIEW V (X) AS SELECT C FROM S"
        )
        signature = ViewSignature.of(view)
        from repro.core.planner import _from_counts

        query = parse_query("SELECT A FROM R", catalog)
        assert not signature.admits(_from_counts(query), False)
        assert not signature.admits(_from_counts(query), True)

    def test_pruned_views_cannot_rewrite(self):
        """The prune is sound: a signature-rejected view yields nothing."""
        rng = random.Random(3)
        catalog = random_catalog(rng)
        query, view = related_pair(catalog, rng)
        catalog.add_view(view)
        planner = RewritePlanner([view], catalog)
        from repro.core.multiview import single_view_rewritings

        if not planner.candidate_views(query):
            assert single_view_rewritings(query, view, catalog) == []

"""Regression: GROUP-BY-less aggregation views and empty base tables.

Found by the SQLite cross-oracle (fuzz seed 4916, persisted shape in
``tests/fuzz/test_runner.py``). A scalar aggregation view — one with
aggregates but no GROUP BY — emits exactly one row even when its base
relations are empty (SQL'92), while the query core it replaces would be
empty. Substituting such a view therefore *manufactures* groups:

    V1(o0, o1) = SELECT MAX(T1.c2), COUNT(T1.c3) FROM T1      -- 1 row always
    Q  = SELECT T0.c1, AVG(T0.c0) FROM T1, T0 GROUP BY T0.c1  -- 0 rows, T1 = {}
    Q' = SELECT T0.c1, SUM(V1.o1*T0.c0)/SUM(V1.o1) FROM V1, T0 GROUP BY T0.c1

Q' returns a row per T0 group; Q returns none. The only sound regime is
a scalar view covering the *whole* query FROM with the query itself
GROUP-BY-less — then both sides emit exactly one row whose aggregates
agree (COUNT is refused separately: SUM(N) over the empty core would be
NULL where COUNT is 0).
"""

import pytest

from repro import (
    assert_equivalent,
    enumerate_mappings,
    parse_query,
    parse_view,
    try_rewrite_aggregation,
)
from repro.catalog.load import load_schema
from repro.core.multiview import all_rewritings
from repro.core.paper_va import try_rewrite_paper_va
from repro.engine.database import Database

SCHEMA = """
CREATE TABLE T0 (c0, c1);
CREATE TABLE T1 (c0, c1, c2, c3);
"""

SCALAR_VIEW = (
    "CREATE VIEW V1 (o0, o1) AS "
    "SELECT MAX(T1.c2) AS agg0, COUNT(T1.c3) AS agg1 FROM T1"
)


@pytest.fixture
def catalog():
    catalog, _ = load_schema(SCHEMA)
    return catalog


def attempts(query, view, rewrite=try_rewrite_aggregation):
    return [
        r
        for m in enumerate_mappings(view.block, query)
        for r in [rewrite(query, view, m)]
        if r is not None
    ]


def test_scalar_view_rejected_for_grouped_query(catalog):
    """The fuzz seed 4916 shape: grouped query, scalar view, empty base."""
    view = parse_view(SCALAR_VIEW, catalog)
    catalog.add_view(view)
    query = parse_query(
        "SELECT T0.c1, AVG(T0.c0) AS out FROM T1, T0 GROUP BY T0.c1",
        catalog,
    )
    assert attempts(query, view) == []
    assert all_rewritings(query, [view], catalog) == []

    # Document the semantics the guard protects: the query itself has no
    # groups over the empty T1, while V1 still materializes one row.
    db = Database(catalog, {"T0": [(1, 1)], "T1": []})
    assert db.execute(query).rows == []
    assert db.materialize("V1").rows == [(None, 0)]


def test_scalar_view_rejected_with_external_tables(catalog):
    """Even a GROUP-BY-less query is unsound when other tables remain:
    SUM(N * T0.c0) over the phantom row gives 0 where the query gives
    NULL (empty core)."""
    view = parse_view(SCALAR_VIEW, catalog)
    query = parse_query(
        "SELECT SUM(T0.c0) AS out FROM T1, T0", catalog
    )
    assert attempts(query, view) == []


def test_scalar_view_sound_regime_still_rewrites(catalog):
    """Full coverage + scalar query: both sides emit exactly one row."""
    view = parse_view(
        "CREATE VIEW V2 (s, n) AS "
        "SELECT SUM(T1.c2) AS s, COUNT(T1.c2) AS n FROM T1",
        catalog,
    )
    catalog.add_view(view)
    query = parse_query("SELECT SUM(T1.c2) AS out FROM T1", catalog)
    found = attempts(query, view)
    assert found, "the sound scalar-over-scalar regime must survive"
    assert_equivalent(catalog, query, found[0], trials=30, domain=3)

    # The edge the guard exists for: empty base table, on both sides one
    # row with a NULL sum.
    db = Database(catalog, {"T0": [], "T1": []})
    db.materialize("V2")
    rewriting = found[0]
    assert db.execute(query).rows == [(None,)]
    assert (
        db.execute(rewriting.query, extra_views=rewriting.extra_views()).rows
        == [(None,)]
    )


def test_paper_va_rejects_scalar_view(catalog):
    """The literal S4'/S5' construction has the same hole; same guard."""
    view = parse_view(
        "CREATE VIEW V3 (s, n) AS "
        "SELECT SUM(T1.c2) AS s, COUNT(T1.c2) AS n FROM T1",
        catalog,
    )
    query = parse_query(
        "SELECT T0.c1, SUM(T0.c0) AS out FROM T1, T0 GROUP BY T0.c1",
        catalog,
    )
    assert attempts(query, view, rewrite=try_rewrite_paper_va) == []

"""Section 5.2: many-to-1 rewritings under set semantics."""

import pytest

from repro import (
    Catalog,
    assert_equivalent,
    enumerate_mappings,
    parse_query,
    parse_view,
    table,
    try_rewrite_set_semantics,
)
from repro.core.canonical import blocks_isomorphic


def rewritings(query, view, catalog):
    out = []
    for mapping in enumerate_mappings(view.block, query, many_to_one=True):
        rewriting = try_rewrite_set_semantics(query, view, mapping, catalog)
        if rewriting is not None:
            out.append(rewriting)
    return out


class TestExample51:
    @pytest.fixture
    def setup(self, keyed_catalog):
        query = parse_query(
            "SELECT A FROM R1 WHERE B = C", keyed_catalog
        )
        view = parse_view(
            "CREATE VIEW V1 (A2, A3) AS "
            "SELECT x.A, y.A FROM R1 x, R1 y WHERE x.B = y.C",
            keyed_catalog,
        )
        keyed_catalog.add_view(view)
        return keyed_catalog, query, view

    def test_rewriting_matches_paper(self, setup):
        catalog, query, view = setup
        found = rewritings(query, view, catalog)
        assert found
        expected = parse_query(
            "SELECT A2 FROM V1 WHERE A2 = A3", catalog
        )
        assert any(
            blocks_isomorphic(r.query, expected) for r in found
        ), [r.sql() for r in found]

    def test_equivalence_with_keys(self, setup):
        catalog, query, view = setup
        for rewriting in rewritings(query, view, catalog):
            assert_equivalent(
                catalog, query, rewriting, trials=50, domain=3,
                respect_keys=True,
            )

    def test_unusable_without_key(self):
        """The paper: absent key information, V is not usable."""
        catalog = Catalog([table("R1", ["A", "B", "C"])])  # no key
        query = parse_query("SELECT A FROM R1 WHERE B = C", catalog)
        view = parse_view(
            "CREATE VIEW V1 (A2, A3) AS "
            "SELECT x.A, y.A FROM R1 x, R1 y WHERE x.B = y.C",
            catalog,
        )
        assert rewritings(query, view, catalog) == []


class TestKeyCoverage:
    def test_collapse_without_key_outputs_refused(self, keyed_catalog):
        """Selecting non-key columns cannot force the two range variables
        onto the same tuple: collapsing would be unsound."""
        query = parse_query("SELECT B FROM R1 WHERE B = C", keyed_catalog)
        view = parse_view(
            "CREATE VIEW V (B2, C3) AS "
            "SELECT x.B, y.C FROM R1 x, R1 y WHERE x.B = y.C",
            keyed_catalog,
        )
        found = [
            r
            for r in rewritings(query, view, keyed_catalog)
            if not r.query.from_[0].name == "R1"
        ]
        assert found == []

    def test_collapse_with_internal_key_equality(self, keyed_catalog):
        """The view itself equates the keys: no output equality needed."""
        query = parse_query("SELECT A FROM R1 WHERE B = C", keyed_catalog)
        view = parse_view(
            "CREATE VIEW V (A2) AS "
            "SELECT x.A FROM R1 x, R1 y WHERE x.A = y.A AND x.B = y.C",
            keyed_catalog,
        )
        keyed_catalog.add_view(view)
        found = rewritings(query, view, keyed_catalog)
        assert found
        for rewriting in found:
            assert_equivalent(
                keyed_catalog, query, rewriting, trials=50, domain=3
            )


class TestSetGuards:
    def test_multiset_query_refused(self, keyed_catalog):
        # Selecting B only: the query result can have duplicates, so the
        # set-semantics relaxation must not fire (result not a set).
        query = parse_query("SELECT B FROM R1", keyed_catalog)
        view = parse_view(
            "CREATE VIEW V (B2) AS SELECT x.B FROM R1 x, R1 y",
            keyed_catalog,
        )
        assert rewritings(query, view, keyed_catalog) == []

    def test_distinct_makes_it_usable(self, keyed_catalog):
        query = parse_query("SELECT DISTINCT B FROM R1", keyed_catalog)
        view = parse_view(
            "CREATE VIEW V (B2, B3) AS "
            "SELECT DISTINCT x.B, y.B FROM R1 x, R1 y WHERE x.A = y.A",
            keyed_catalog,
        )
        keyed_catalog.add_view(view)
        found = rewritings(query, view, keyed_catalog)
        assert found
        for rewriting in found:
            counter = None
            from repro import check_equivalent

            counter = check_equivalent(
                keyed_catalog,
                query,
                rewriting,
                trials=50,
                domain=3,
                compare="set",
            )
            assert counter is None, str(counter)

    def test_rewriting_is_multiset_equivalent_not_just_set(self, keyed_catalog):
        """Section 5's rewritings stay multiset-equivalent because both
        sides are sets; the engine oracle checks the strong notion."""
        query = parse_query("SELECT A FROM R1 WHERE B = C", keyed_catalog)
        view = parse_view(
            "CREATE VIEW V1 (A2, A3) AS "
            "SELECT x.A, y.A FROM R1 x, R1 y WHERE x.B = y.C",
            keyed_catalog,
        )
        keyed_catalog.add_view(view)
        for rewriting in rewritings(query, view, keyed_catalog):
            assert_equivalent(
                keyed_catalog, query, rewriting, trials=50, domain=3,
                compare="multiset",
            )

"""Rewriting with HAVING clauses in the query and/or the view
(Sections 3.3 and 4.3)."""

import pytest

from repro import (
    assert_equivalent,
    enumerate_mappings,
    parse_query,
    parse_view,
    try_rewrite_aggregation,
    try_rewrite_conjunctive,
)


def rewritings(query, view, fn):
    out = []
    for mapping in enumerate_mappings(view.block, query):
        rewriting = fn(query, view, mapping)
        if rewriting is not None:
            out.append(rewriting)
    return out


class TestQueryHavingConjunctiveView:
    def test_having_kept_in_rewriting(self, rs_catalog):
        query = parse_query(
            "SELECT A, SUM(B) FROM R1 GROUP BY A HAVING SUM(B) > 5",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1", rs_catalog
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_conjunctive)
        assert found
        assert found[0].query.having
        assert_equivalent(rs_catalog, query, found[0], trials=30, domain=4)

    def test_having_strengthens_where_for_usability(self, rs_catalog):
        """Pre-processing moves A > 2 into WHERE, which then matches the
        view's condition; without Section 3.3 the view looks too
        selective."""
        query = parse_query(
            "SELECT A, SUM(B) FROM R1 GROUP BY A HAVING A > 2", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1 WHERE A > 2",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_conjunctive)
        assert found
        assert_equivalent(rs_catalog, query, found[0], trials=40, domain=5)

    def test_max_having_strengthens_where(self, rs_catalog):
        query = parse_query(
            "SELECT A, MAX(B) FROM R1 GROUP BY A HAVING MAX(B) > 3",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1 WHERE B > 3",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_conjunctive)
        assert found
        assert_equivalent(rs_catalog, query, found[0], trials=40, domain=6)

    def test_having_count_aggregate_not_in_select(self, rs_catalog):
        # C4 extension: aggregation columns appearing only in HAVING.
        query = parse_query(
            "SELECT A FROM R1 GROUP BY A HAVING COUNT(B) >= 2", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A) AS SELECT A FROM R1", rs_catalog
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_conjunctive)
        assert found
        assert_equivalent(rs_catalog, query, found[0], trials=30, domain=3)

    def test_having_sum_needs_column_copy(self, rs_catalog):
        query = parse_query(
            "SELECT A FROM R1 GROUP BY A HAVING SUM(B) > 4", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A) AS SELECT A FROM R1", rs_catalog
        )
        assert rewritings(query, view, try_rewrite_conjunctive) == []


class TestQueryHavingAggregationView:
    def test_having_aggregate_rewritten(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(C) FROM R1 GROUP BY A HAVING COUNT(B) > 1",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, S, N) AS "
            "SELECT A, SUM(C), COUNT(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_aggregation)
        assert found
        assert_equivalent(wide_catalog, query, found[0], trials=40, domain=3)

    def test_having_with_coalescing(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(C) FROM R1 GROUP BY A HAVING SUM(C) > 6",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, B, S) AS "
            "SELECT A, B, SUM(C) FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_aggregation)
        assert found
        assert_equivalent(wide_catalog, query, found[0], trials=40, domain=3)


class TestViewHaving:
    def test_aligned_view_having_entailed(self, wide_catalog):
        """Same groups, query HAVING at least as strict: usable."""
        query = parse_query(
            "SELECT A, SUM(C) FROM R1 GROUP BY A HAVING SUM(C) > 10",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, S) AS "
            "SELECT A, SUM(C) FROM R1 GROUP BY A HAVING SUM(C) > 5",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_aggregation)
        assert found
        assert_equivalent(
            wide_catalog, query, found[0], trials=40, domain=4, max_rows=10
        )

    def test_view_having_not_entailed(self, wide_catalog):
        """The view's HAVING eliminates groups the query still needs."""
        query = parse_query(
            "SELECT A, SUM(C) FROM R1 GROUP BY A HAVING SUM(C) > 2",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, S) AS "
            "SELECT A, SUM(C) FROM R1 GROUP BY A HAVING SUM(C) > 5",
            wide_catalog,
        )
        assert rewritings(query, view, try_rewrite_aggregation) == []

    def test_view_having_with_coalescing_blocked(self, wide_catalog):
        """Coalescing over a filtered view loses eliminated subgroups."""
        query = parse_query(
            "SELECT A, SUM(C) FROM R1 GROUP BY A HAVING SUM(C) > 5",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, B, S) AS "
            "SELECT A, B, SUM(C) FROM R1 GROUP BY A, B HAVING SUM(C) > 5",
            wide_catalog,
        )
        assert rewritings(query, view, try_rewrite_aggregation) == []

    def test_view_having_with_extra_tables_blocked(self, wide_catalog):
        """Joining other tables rescales aggregates; entailment between
        the two HAVING clauses cannot be trusted."""
        query = parse_query(
            "SELECT A, E, SUM(C) FROM R1, R2 GROUP BY A, E "
            "HAVING SUM(C) > 5",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, S, N) AS "
            "SELECT A, SUM(C), COUNT(C) FROM R1 GROUP BY A "
            "HAVING SUM(C) > 5",
            wide_catalog,
        )
        assert rewritings(query, view, try_rewrite_aggregation) == []

    def test_view_having_moved_to_where_still_usable(self, wide_catalog):
        """A view HAVING over its grouping columns normalizes into WHERE
        (Section 3.3 pre-processing of the view) and is then handled by
        the ordinary C3' residual check."""
        query = parse_query(
            "SELECT A, SUM(C) FROM R1 WHERE A > 1 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, S) AS "
            "SELECT A, SUM(C) FROM R1 GROUP BY A HAVING A > 1",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_aggregation)
        assert found
        assert_equivalent(wide_catalog, query, found[0], trials=40, domain=4)

"""The usability explainer: reasons must name the actual obstruction."""

import pytest

from repro import parse_query, parse_view
from repro.core.explain import explain_usability
from repro.core.multiview import single_view_rewritings


def check_agreement(query, view, catalog):
    """The explainer's verdict must agree with the rewriter's."""
    diagnosis = explain_usability(query, view)
    found = single_view_rewritings(query, view, catalog)
    assert diagnosis.usable == bool(found), diagnosis.summary()
    return diagnosis


class TestConjunctiveDiagnoses:
    def test_c2_projection_failure_names_column(self, rs_catalog):
        query = parse_query("SELECT A, B FROM R1", rs_catalog)
        view = parse_view("CREATE VIEW V (A) AS SELECT A FROM R1", rs_catalog)
        diagnosis = check_agreement(query, view, rs_catalog)
        failure = diagnosis.mappings[0].first_failure()
        assert failure.condition == "C2"
        assert "R1.B" in failure.detail

    def test_c3_selectivity_failure(self, rs_catalog):
        query = parse_query("SELECT A FROM R1", rs_catalog)
        view = parse_view(
            "CREATE VIEW V (A) AS SELECT A FROM R1 WHERE A = B", rs_catalog
        )
        diagnosis = check_agreement(query, view, rs_catalog)
        failure = diagnosis.mappings[0].first_failure()
        assert failure.condition == "C3"
        assert "more selective" in failure.detail

    def test_c3_residual_failure(self, rs_catalog):
        query = parse_query("SELECT A FROM R1 WHERE B = 3", rs_catalog)
        view = parse_view("CREATE VIEW V (A) AS SELECT A FROM R1", rs_catalog)
        diagnosis = check_agreement(query, view, rs_catalog)
        failure = diagnosis.mappings[0].first_failure()
        assert failure.condition == "C3"
        assert "projects out" in failure.detail

    def test_c4_failure(self, rs_catalog):
        query = parse_query(
            "SELECT A, SUM(B) FROM R1 GROUP BY A", rs_catalog
        )
        view = parse_view("CREATE VIEW V (A) AS SELECT A FROM R1", rs_catalog)
        diagnosis = check_agreement(query, view, rs_catalog)
        conditions = {
            r.condition for m in diagnosis.mappings for r in m.reports if not r.ok
        }
        assert "C4" in conditions

    def test_c1_failure_reported(self, rs_catalog):
        query = parse_query("SELECT A FROM R1", rs_catalog)
        view = parse_view("CREATE VIEW V (C) AS SELECT C FROM R2", rs_catalog)
        diagnosis = check_agreement(query, view, rs_catalog)
        assert not diagnosis.mappings
        assert "C1" in diagnosis.summary()


class TestAggregationDiagnoses:
    def test_example_4_4(self, wide_catalog):
        query = parse_query(
            "SELECT A, E, SUM(B) FROM R1, R2 WHERE B = F GROUP BY A, E",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, E, F, S) AS "
            "SELECT A, E, F, SUM(B) FROM R1, R2 GROUP BY A, E, F",
            wide_catalog,
        )
        diagnosis = check_agreement(query, view, wide_catalog)
        failure = diagnosis.mappings[0].first_failure()
        assert failure.condition == "C3'"

    def test_missing_count_output(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(E) FROM R1, R2 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B, S) AS "
            "SELECT A, B, SUM(C) FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        diagnosis = check_agreement(query, view, wide_catalog)
        failure = diagnosis.mappings[0].first_failure()
        assert failure.condition == "C4'"
        assert "COUNT" in failure.detail

    def test_coarse_view_groups(self, wide_catalog):
        query = parse_query(
            "SELECT A, B, SUM(D) FROM R1 GROUP BY A, B", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, S, N) AS "
            "SELECT A, SUM(D), COUNT(D) FROM R1 GROUP BY A",
            wide_catalog,
        )
        diagnosis = check_agreement(query, view, wide_catalog)
        failure = diagnosis.mappings[0].first_failure()
        assert failure.condition == "C2'"
        assert "R1.B" in failure.detail

    def test_view_having_blocked(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(C) FROM R1 GROUP BY A HAVING SUM(C) > 2",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, S) AS "
            "SELECT A, SUM(C) FROM R1 GROUP BY A HAVING SUM(C) > 5",
            wide_catalog,
        )
        diagnosis = check_agreement(query, view, wide_catalog)
        conditions = {
            r.condition
            for m in diagnosis.mappings
            for r in m.reports
            if not r.ok
        }
        assert "4.3" in conditions

    def test_section_4_5_scope(self, wide_catalog):
        query = parse_query("SELECT A, B FROM R1", wide_catalog)
        view = parse_view(
            "CREATE VIEW V (A, B, N) AS "
            "SELECT A, B, COUNT(C) FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        diagnosis = explain_usability(query, view)
        assert not diagnosis.usable
        assert "4.5" in diagnosis.scope_failure


class TestPositiveDiagnoses:
    def test_usable_view_all_pass(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(E) FROM R1, R2 GROUP BY A", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B, S, N) AS "
            "SELECT A, B, SUM(C), COUNT(C) FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        diagnosis = check_agreement(query, view, wide_catalog)
        assert diagnosis.usable
        assert "USABLE" in diagnosis.summary()


class TestAgreementSweep:
    @pytest.mark.parametrize("seed", range(60))
    def test_explainer_agrees_with_rewriter(self, seed):
        """Property: the explainer's verdict always matches whether the
        rewriter actually produces a rewriting."""
        import random

        from repro.workloads.random_queries import (
            random_catalog,
            related_pair,
        )

        rng = random.Random(90_000 + seed)
        catalog = random_catalog(rng)
        query, view = related_pair(catalog, rng)
        catalog.add_view(view)
        check_agreement(query, view, catalog)


class TestSetSemanticsHint:
    def test_many_to_one_hint(self, keyed_catalog):
        # Example 5.1's shape: the view self-joins R1, the query has one
        # occurrence, so no 1-1 mapping exists — but many-to-1 does.
        query = parse_query("SELECT A FROM R1 WHERE B = C", keyed_catalog)
        view = parse_view(
            "CREATE VIEW V1 (A2, A3) AS "
            "SELECT x.A, y.A FROM R1 x, R1 y WHERE x.B = y.C",
            keyed_catalog,
        )
        diagnosis = explain_usability(query, view)
        assert diagnosis.many_to_one_possible
        assert "Section 5.2" in diagnosis.summary()

    def test_no_hint_when_tables_absent(self, rs_catalog):
        query = parse_query("SELECT A FROM R1", rs_catalog)
        view = parse_view("CREATE VIEW V (C) AS SELECT C FROM R2", rs_catalog)
        diagnosis = explain_usability(query, view)
        assert not diagnosis.many_to_one_possible
        assert "Section 5.2" not in diagnosis.summary()

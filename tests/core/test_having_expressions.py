"""HAVING clauses beyond AGG-vs-constant: aggregate-to-aggregate and
arithmetic comparisons, through evaluation and rewriting."""

import pytest

from repro import (
    assert_equivalent,
    enumerate_mappings,
    parse_query,
    parse_view,
    try_rewrite_aggregation,
    try_rewrite_conjunctive,
)
from repro.engine.database import Database


def rewritings(query, view, fn):
    out = []
    for mapping in enumerate_mappings(view.block, query):
        rewriting = fn(query, view, mapping)
        if rewriting is not None:
            out.append(rewriting)
    return out


class TestEvaluation:
    def test_aggregate_vs_aggregate(self, rs_catalog):
        db = Database(
            rs_catalog,
            {"R1": [(1, 10), (1, 20), (2, 1), (2, 1), (2, 1)], "R2": []},
        )
        result = db.execute(
            "SELECT A FROM R1 GROUP BY A HAVING SUM(B) > COUNT(B)"
        )
        assert sorted(result.rows) == [(1,)]  # 30 > 2 but 3 == 3 fails

    def test_arithmetic_over_aggregates(self, rs_catalog):
        db = Database(
            rs_catalog,
            {"R1": [(1, 10), (1, 20), (2, 4)], "R2": []},
        )
        result = db.execute(
            "SELECT A FROM R1 GROUP BY A HAVING SUM(B) / COUNT(B) >= 10"
        )
        assert result.rows == [(1,)]

    def test_aggregate_vs_grouping_column(self, rs_catalog):
        db = Database(
            rs_catalog,
            {"R1": [(5, 3), (5, 4), (2, 9)], "R2": []},
        )
        result = db.execute(
            "SELECT A FROM R1 GROUP BY A HAVING MAX(B) < A"
        )
        assert result.rows == [(5,)]


class TestRewriting:
    def test_agg_vs_agg_conjunctive_view(self, rs_catalog):
        query = parse_query(
            "SELECT A FROM R1 GROUP BY A HAVING SUM(B) > COUNT(B)",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1", rs_catalog
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_conjunctive)
        assert found
        assert_equivalent(rs_catalog, query, found[0], trials=30, domain=4)

    def test_agg_vs_agg_aggregation_view(self, wide_catalog):
        query = parse_query(
            "SELECT A FROM R1 GROUP BY A HAVING SUM(C) > COUNT(C)",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, S, N) AS "
            "SELECT A, SUM(C), COUNT(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_aggregation)
        assert found
        assert_equivalent(wide_catalog, query, found[0], trials=30, domain=4)

    def test_agg_vs_grouping_column_rewrite(self, wide_catalog):
        query = parse_query(
            "SELECT A, MAX(C) FROM R1 GROUP BY A HAVING MAX(C) < A",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, B, Mx) AS "
            "SELECT A, B, MAX(C) FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_aggregation)
        assert found
        assert_equivalent(wide_catalog, query, found[0], trials=30, domain=4)

    def test_having_avg_comparison_rewritten(self, wide_catalog):
        query = parse_query(
            "SELECT A FROM R1 GROUP BY A HAVING AVG(C) >= 2 AND COUNT(C) > 1",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, S, N) AS "
            "SELECT A, SUM(C), COUNT(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view, try_rewrite_aggregation)
        assert found
        assert_equivalent(wide_catalog, query, found[0], trials=30, domain=4)

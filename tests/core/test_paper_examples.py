"""Every worked example in the paper, reproduced end to end.

Each test (a) finds the rewriting via the public machinery, (b) checks it
is structurally the paper's Q' where the paper gives one, and (c) verifies
multiset-equivalence on random databases through the engine oracle.
"""

import pytest

from repro import (
    Catalog,
    assert_equivalent,
    enumerate_mappings,
    parse_query,
    parse_view,
    table,
    try_rewrite_aggregation,
    try_rewrite_conjunctive,
)
from repro.core.canonical import blocks_isomorphic


def find_rewriting(query, view, fn):
    for mapping in enumerate_mappings(view.block, query):
        rewriting = fn(query, view, mapping)
        if rewriting is not None:
            return rewriting
    return None


class TestExample11:
    """Example 1.1: the telephony motivating example."""

    @pytest.fixture
    def setup(self):
        catalog = Catalog(
            [
                table("Calling_Plans", ["Plan_Id", "Plan_Name"], key=["Plan_Id"]),
                table(
                    "Calls",
                    ["Call_Id", "Cust_Id", "Plan_Id", "Day", "Month", "Year", "Charge"],
                    key=["Call_Id"],
                ),
            ]
        )
        query = parse_query(
            """
            SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge)
            FROM Calls, Calling_Plans
            WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995
            GROUP BY Calling_Plans.Plan_Id, Plan_Name
            HAVING SUM(Charge) < 1000000
            """,
            catalog,
        )
        view = parse_view(
            """
            CREATE VIEW V1 (Plan_Id, Plan_Name, Month, Year, Monthly_Earnings) AS
            SELECT Calls.Plan_Id, Plan_Name, Month, Year, SUM(Charge)
            FROM Calls, Calling_Plans
            WHERE Calls.Plan_Id = Calling_Plans.Plan_Id
            GROUP BY Calls.Plan_Id, Plan_Name, Month, Year
            """,
            catalog,
        )
        catalog.add_view(view)
        return catalog, query, view

    def test_rewriting_matches_paper(self, setup):
        catalog, query, view = setup
        rewriting = find_rewriting(query, view, try_rewrite_aggregation)
        assert rewriting is not None
        expected = parse_query(
            """
            SELECT Plan_Id, Plan_Name, SUM(Monthly_Earnings)
            FROM V1
            WHERE Year = 1995
            GROUP BY Plan_Id, Plan_Name
            HAVING SUM(Monthly_Earnings) < 1000000
            """,
            catalog,
        )
        assert blocks_isomorphic(rewriting.query, expected), rewriting.sql()

    def test_equivalence(self, setup):
        catalog, query, view = setup
        rewriting = find_rewriting(query, view, try_rewrite_aggregation)
        assert_equivalent(
            catalog, query, rewriting, trials=25, max_rows=20, domain=4
        )

    def test_strict_c4_reading_rejects(self, setup):
        """The literal transcription of C4' 1(b) rejects the paper's own
        motivating example (DESIGN.md fidelity note 2)."""
        catalog, query, view = setup
        for mapping in enumerate_mappings(view.block, query):
            assert (
                try_rewrite_aggregation(
                    query, view, mapping, conditions="strict"
                )
                is None
            )


class TestExample31:
    """Example 3.1: conjunctive view in an aggregation query."""

    @pytest.fixture
    def setup(self, rs_catalog):
        query = parse_query(
            "SELECT R1.A, SUM(B) FROM R1, R2 "
            "WHERE R1.A = C AND B = 6 AND D = 6 GROUP BY R1.A",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW V1 (C, D) AS "
            "SELECT C, D FROM R1, R2 WHERE A = C AND B = D",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        return rs_catalog, query, view

    def test_rewriting_matches_paper(self, setup):
        catalog, query, view = setup
        rewriting = find_rewriting(query, view, try_rewrite_conjunctive)
        assert rewriting is not None
        expected = parse_query(
            "SELECT C, SUM(D) FROM V1 WHERE D = 6 GROUP BY C", catalog
        )
        assert blocks_isomorphic(rewriting.query, expected), rewriting.sql()

    def test_equivalence(self, setup):
        catalog, query, view = setup
        rewriting = find_rewriting(query, view, try_rewrite_conjunctive)
        assert_equivalent(catalog, query, rewriting, trials=40, domain=7)


class TestExample41:
    """Example 4.1: coalescing subgroups (COUNT from subgroup counts)."""

    @pytest.fixture
    def setup(self, wide_catalog):
        query = parse_query(
            "SELECT A, E, COUNT(B) FROM R1, R2 "
            "WHERE C = F AND B = D GROUP BY A, E",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V1 (A, C, N) AS "
            "SELECT A, C, COUNT(D) FROM R1 WHERE B = D GROUP BY A, C",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        return wide_catalog, query, view

    def test_rewriting_matches_paper(self, setup):
        catalog, query, view = setup
        rewriting = find_rewriting(query, view, try_rewrite_aggregation)
        assert rewriting is not None
        expected = parse_query(
            "SELECT A, E, SUM(N) FROM V1, R2 WHERE C = F GROUP BY A, E",
            catalog,
        )
        assert blocks_isomorphic(rewriting.query, expected), rewriting.sql()

    def test_equivalence(self, setup):
        catalog, query, view = setup
        rewriting = find_rewriting(query, view, try_rewrite_aggregation)
        assert_equivalent(catalog, query, rewriting, trials=40, domain=3)

    def test_example_4_3_condition_trace(self, setup):
        """Example 4.3 re-examines 4.1: the mapping is unique and total."""
        _catalog, query, view = setup
        mappings = list(enumerate_mappings(view.block, query))
        assert len(mappings) == 1
        assert len(mappings[0].column_map) == 4  # A2,B2,C2,D2 all mapped


class TestExample42:
    """Example 4.2: recovery of lost multiplicities."""

    @pytest.fixture
    def setup(self, wide_catalog):
        query = parse_query(
            "SELECT A, SUM(E) FROM R1, R2 GROUP BY A", wide_catalog
        )
        return wide_catalog, query

    def test_view_without_count_unusable(self, setup):
        catalog, query = setup
        v1 = parse_view(
            "CREATE VIEW V1 (A, B, S) AS "
            "SELECT A, B, SUM(C) FROM R1 GROUP BY A, B",
            catalog,
        )
        assert find_rewriting(query, v1, try_rewrite_aggregation) is None

    def test_view_with_count_usable(self, setup):
        catalog, query = setup
        v2 = parse_view(
            "CREATE VIEW V2 (A, B, S, N) AS "
            "SELECT A, B, SUM(C), COUNT(C) FROM R1 GROUP BY A, B",
            catalog,
        )
        catalog.add_view(v2)
        rewriting = find_rewriting(query, v2, try_rewrite_aggregation)
        assert rewriting is not None
        # The default strategy weights by the count column.
        assert "N" in rewriting.sql() and "SUM" in rewriting.sql()
        assert_equivalent(catalog, query, rewriting, trials=40, domain=3)


class TestExample44:
    """Example 4.4: constraining φ(AggSel(V)) makes the view unusable."""

    def test_unusable_with_where(self, wide_catalog):
        query = parse_query(
            "SELECT A, E, SUM(B) FROM R1, R2 WHERE B = F GROUP BY A, E",
            wide_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, E, F, S) AS "
            "SELECT A, E, F, SUM(B) FROM R1, R2 GROUP BY A, E, F",
            wide_catalog,
        )
        assert find_rewriting(query, view, try_rewrite_aggregation) is None

    def test_usable_without_where(self, wide_catalog):
        """The paper: "in the absence of the WHERE clause in Q, V could be
        used to evaluate Q"."""
        query = parse_query(
            "SELECT A, E, SUM(B) FROM R1, R2 GROUP BY A, E", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, E, F, S) AS "
            "SELECT A, E, F, SUM(B) FROM R1, R2 GROUP BY A, E, F",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        rewriting = find_rewriting(query, view, try_rewrite_aggregation)
        assert rewriting is not None
        assert_equivalent(wide_catalog, query, rewriting, trials=40, domain=3)


class TestExample45:
    """Section 4.5: aggregation views cannot answer conjunctive queries."""

    def test_no_rewriting(self):
        catalog = Catalog([table("R1", ["A", "B", "C"])])
        query = parse_query("SELECT A, B FROM R1", catalog)
        view = parse_view(
            "CREATE VIEW V1 (A, B, N) AS "
            "SELECT A, B, COUNT(C) FROM R1 GROUP BY A, B",
            catalog,
        )
        assert find_rewriting(query, view, try_rewrite_aggregation) is None

    def test_multiplicities_really_lost(self):
        """Demonstrate the semantic obstruction: two databases that agree
        on the view but give different query answers would be needed...
        here we just confirm V collapses duplicates the query must keep."""
        catalog = Catalog([table("R1", ["A", "B", "C"])])
        from repro.engine.database import Database

        view = parse_view(
            "CREATE VIEW V1 (A, B, N) AS "
            "SELECT A, B, COUNT(C) FROM R1 GROUP BY A, B",
            catalog,
        )
        catalog.add_view(view)
        db = Database(catalog, {"R1": [(1, 2, 0), (1, 2, 0)]})
        assert len(db.execute("SELECT A, B FROM R1")) == 2
        assert len(db.materialize("V1")) == 1

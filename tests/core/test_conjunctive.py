"""Section 3 conditions C1-C4, tested condition by condition."""

import pytest

from repro import (
    assert_equivalent,
    enumerate_mappings,
    parse_query,
    parse_view,
    try_rewrite_conjunctive,
)


def rewritings(query, view):
    out = []
    for mapping in enumerate_mappings(view.block, query):
        rewriting = try_rewrite_conjunctive(query, view, mapping)
        if rewriting is not None:
            out.append(rewriting)
    return out


class TestConditionC1:
    def test_view_table_absent_from_query(self, rs_catalog):
        query = parse_query("SELECT A FROM R1", rs_catalog)
        view = parse_view(
            "CREATE VIEW V (C) AS SELECT C FROM R2", rs_catalog
        )
        assert rewritings(query, view) == []

    def test_view_larger_than_query(self, rs_catalog):
        query = parse_query("SELECT A FROM R1", rs_catalog)
        view = parse_view(
            "CREATE VIEW V (A1, A2) AS SELECT x.A, y.A FROM R1 x, R1 y",
            rs_catalog,
        )
        assert rewritings(query, view) == []


class TestConditionC2:
    def test_needed_column_projected_out(self, rs_catalog):
        query = parse_query("SELECT A, B FROM R1", rs_catalog)
        view = parse_view("CREATE VIEW V (A) AS SELECT A FROM R1", rs_catalog)
        assert rewritings(query, view) == []

    def test_equal_copy_suffices(self, rs_catalog):
        # B is projected out, but Conds(Q) implies A = B... via the view's
        # own condition enforced in Q too.
        query = parse_query(
            "SELECT A, B FROM R1 WHERE A = B", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A) AS SELECT A FROM R1 WHERE A = B", rs_catalog
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(rs_catalog, query, found[0], trials=30)

    def test_grouping_column_needed(self, rs_catalog):
        query = parse_query(
            "SELECT COUNT(A) FROM R1 GROUP BY B", rs_catalog
        )
        view = parse_view("CREATE VIEW V (A) AS SELECT A FROM R1", rs_catalog)
        assert rewritings(query, view) == []


class TestConditionC3:
    def test_view_too_selective(self, rs_catalog):
        # The view discards rows with A <> B that the query needs.
        query = parse_query("SELECT A FROM R1", rs_catalog)
        view = parse_view(
            "CREATE VIEW V (A) AS SELECT A FROM R1 WHERE A = B", rs_catalog
        )
        assert rewritings(query, view) == []

    def test_residual_on_projected_column_fails(self, rs_catalog):
        # Query constrains B; the view projects B out with no equal copy.
        query = parse_query("SELECT A FROM R1 WHERE B = 3", rs_catalog)
        view = parse_view("CREATE VIEW V (A) AS SELECT A FROM R1", rs_catalog)
        assert rewritings(query, view) == []

    def test_residual_kept_on_surviving_column(self, rs_catalog):
        query = parse_query("SELECT A FROM R1 WHERE B = 3", rs_catalog)
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1", rs_catalog
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert any("3" in str(a) for a in found[0].query.where)
        assert_equivalent(rs_catalog, query, found[0], trials=30)

    def test_inequality_predicates(self, rs_catalog):
        query = parse_query(
            "SELECT A FROM R1 WHERE A < B AND B <= 5", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1 WHERE A < B",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(rs_catalog, query, found[0], trials=40, domain=7)

    def test_view_condition_equivalent_formulation(self, rs_catalog):
        # Conds(Q) restates the view's condition redundantly; the residual
        # must reconstruct the rest over surviving columns.
        query = parse_query(
            "SELECT A FROM R1, R2 WHERE A = C AND A = 2 AND C = 2",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, D) AS SELECT A, D FROM R1, R2 WHERE A = C",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(rs_catalog, query, found[0], trials=40)

    def test_condition_on_projected_join_column_fails(self, rs_catalog):
        # A = C is required by Q but C is projected out of a view that
        # only enforces A = D: no residual can express it.
        query = parse_query(
            "SELECT A FROM R1, R2 WHERE A = C AND C = D AND A = 2",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW W (A, D) AS SELECT A, D FROM R1, R2 WHERE A = D",
            rs_catalog,
        )
        assert rewritings(query, view) == []


class TestConditionC4:
    def test_aggregated_column_needs_copy(self, rs_catalog):
        query = parse_query(
            "SELECT A, SUM(B) FROM R1 GROUP BY A", rs_catalog
        )
        view = parse_view("CREATE VIEW V (A) AS SELECT A FROM R1", rs_catalog)
        assert rewritings(query, view) == []

    def test_count_needs_no_copy(self, rs_catalog):
        # Step S4: COUNT(B) becomes COUNT of any surviving column.
        query = parse_query(
            "SELECT A, COUNT(B) FROM R1 GROUP BY A", rs_catalog
        )
        view = parse_view("CREATE VIEW V (A) AS SELECT A FROM R1", rs_catalog)
        rs_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(rs_catalog, query, found[0], trials=30)

    def test_min_max_sum_avg_with_copy(self, rs_catalog):
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1", rs_catalog
        )
        rs_catalog.add_view(view)
        for agg in ("MIN", "MAX", "SUM", "AVG"):
            query = parse_query(
                f"SELECT A, {agg}(B) FROM R1 GROUP BY A", rs_catalog
            )
            found = rewritings(query, view)
            assert found, agg
            assert_equivalent(rs_catalog, query, found[0], trials=25)

    def test_equal_copy_through_conditions(self, rs_catalog):
        # SUM(B) where B = D and the view outputs D (the paper's 3.1 trick).
        query = parse_query(
            "SELECT A, SUM(B) FROM R1, R2 WHERE B = D GROUP BY A",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A, D) AS SELECT A, D FROM R1, R2 WHERE B = D",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(rs_catalog, query, found[0], trials=40, domain=3)


class TestMultisetSubtleties:
    def test_view_must_preserve_multiplicity(self, rs_catalog):
        # DISTINCT in the view collapses duplicates: unusable for a
        # multiset query. (Our conditions treat the view's result as
        # multiset-defined; a DISTINCT view fails equivalence.)
        query = parse_query("SELECT A FROM R1", rs_catalog)
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT DISTINCT A, B FROM R1",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view)
        if found:  # if accepted, it must actually be equivalent
            from repro import check_equivalent

            assert (
                check_equivalent(rs_catalog, query, found[0], trials=40)
                is None
            )

    def test_whole_query_replacement(self, rs_catalog):
        query = parse_query(
            "SELECT A, B, C, D FROM R1, R2 WHERE A = C", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B, C, D) AS "
            "SELECT A, B, C, D FROM R1, R2 WHERE A = C",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert len(found[0].query.from_) == 1
        assert_equivalent(rs_catalog, query, found[0], trials=30)

    def test_conjunctive_query_conjunctive_view(self, rs_catalog):
        # The Section 3 conditions also cover plain conjunctive queries.
        query = parse_query(
            "SELECT A, D FROM R1, R2 WHERE B = C", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, D) AS SELECT A, D FROM R1, R2 WHERE B = C",
            rs_catalog,
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(rs_catalog, query, found[0], trials=30)

    def test_partial_replacement_keeps_other_tables(self, rs_catalog):
        query = parse_query(
            "SELECT A, C FROM R1, R2 WHERE B = 2", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A) AS SELECT A FROM R1 WHERE B = 2", rs_catalog
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        names = [r.name for r in found[0].query.from_]
        assert "V" in names and "R2" in names
        assert_equivalent(rs_catalog, query, found[0], trials=30)


class TestSelfJoins:
    def test_multiple_mappings_all_equivalent(self, rs_catalog):
        query = parse_query(
            "SELECT x.A FROM R1 x, R1 y WHERE x.B = 1 AND y.B = 1",
            rs_catalog,
        )
        view = parse_view(
            "CREATE VIEW V (A) AS SELECT A FROM R1 WHERE B = 1", rs_catalog
        )
        rs_catalog.add_view(view)
        found = rewritings(query, view)
        assert len(found) >= 1
        for rewriting in found:
            assert_equivalent(rs_catalog, query, rewriting, trials=30)

"""The RewriteEngine facade and the cost model."""

import pytest

from repro import Catalog, RewriteEngine, parse_query, table
from repro.core.cost import estimate_cost, estimate_result_rows, estimate_rows


@pytest.fixture
def engine():
    catalog = Catalog(
        [
            table("Fact", ["K", "G", "V"], key=["K"], row_count=100_000),
            table("Dim", ["G", "Name"], key=["G"], row_count=100),
        ]
    )
    eng = RewriteEngine(catalog)
    eng.add_view(
        "CREATE VIEW Summary (G, Total, N) AS "
        "SELECT G, SUM(V), COUNT(V) FROM Fact GROUP BY G",
        row_count=100,
    )
    return eng


class TestRewriteEngine:
    def test_finds_and_ranks(self, engine):
        result = engine.rewrite(
            "SELECT G, SUM(V) FROM Fact GROUP BY G"
        )
        assert len(result) >= 1
        best = result.best()
        assert best is not None and best.view_names == ("Summary",)

    def test_view_cheaper_than_original(self, engine):
        result = engine.rewrite("SELECT G, SUM(V) FROM Fact GROUP BY G")
        assert result.ranked[0].cost < result.original_cost
        chosen = result.best_or_original()
        assert chosen is result.ranked[0].rewriting.query

    def test_original_kept_when_no_view_usable(self, engine):
        result = engine.rewrite("SELECT K, V FROM Fact")
        assert result.best() is None
        assert result.best_or_original() is result.query

    def test_rewrite_with_specific_view(self, engine):
        view = engine.catalog.view("Summary")
        found = engine.rewrite_with(
            "SELECT G, COUNT(V) FROM Fact GROUP BY G", view
        )
        assert found

    def test_add_view_by_sql_and_name(self, engine):
        engine.add_view(
            "SELECT G, MIN(V) FROM Fact GROUP BY G", name="Mins"
        )
        assert engine.catalog.is_view("Mins")

    def test_views_property(self, engine):
        assert {v.name for v in engine.views} == {"Summary"}

    def test_query_validated(self, engine):
        from repro.errors import NormalizationError

        with pytest.raises(NormalizationError):
            engine.rewrite("SELECT V FROM Fact GROUP BY G")

    def test_rewriting_sql_is_executable(self, engine):
        from repro.engine.database import Database

        result = engine.rewrite("SELECT G, SUM(V) FROM Fact GROUP BY G")
        rewriting = result.best()
        db = Database(
            engine.catalog,
            {"Fact": [(1, 0, 10), (2, 0, 20), (3, 1, 5)], "Dim": []},
        )
        out = db.execute(rewriting.query, extra_views=rewriting.extra_views())
        assert sorted(out.rows) == [(0, 30), (1, 5)]


class TestCostModel:
    def test_rows_scale_with_tables(self, engine):
        catalog = engine.catalog
        q_small = parse_query("SELECT G, Name FROM Dim", catalog)
        q_large = parse_query("SELECT K FROM Fact", catalog)
        assert estimate_rows(q_small, catalog) < estimate_rows(
            q_large, catalog
        )

    def test_predicates_reduce_estimate(self, engine):
        catalog = engine.catalog
        q_all = parse_query("SELECT K FROM Fact", catalog)
        q_filtered = parse_query("SELECT K FROM Fact WHERE G = 1", catalog)
        assert estimate_rows(q_filtered, catalog) < estimate_rows(
            q_all, catalog
        )

    def test_grouping_condenses_result(self, engine):
        catalog = engine.catalog
        q = parse_query("SELECT G, SUM(V) FROM Fact GROUP BY G", catalog)
        assert estimate_result_rows(q, catalog) < estimate_rows(q, catalog)

    def test_aux_views_add_cost(self, engine):
        catalog = engine.catalog
        q = parse_query("SELECT G, Total FROM Summary", catalog)
        from repro.blocks.normalize import parse_view

        aux = parse_view(
            "CREATE VIEW Extra (G2, T2) AS SELECT G, Total FROM Summary",
            catalog.copy(),
        )
        assert estimate_cost(q, catalog, [aux]) > estimate_cost(q, catalog)

    def test_floor_at_one(self, engine):
        catalog = engine.catalog
        q = parse_query(
            "SELECT G, Name FROM Dim WHERE G = 1 AND Name = 'x' "
            "AND G = 1 AND Name = 'x'",
            catalog,
        )
        assert estimate_rows(q, catalog) >= 1.0


class TestAnswer:
    def test_answer_uses_cheapest_plan(self, engine):
        from repro.engine.database import Database

        db = Database(
            engine.catalog,
            {"Fact": [(1, 0, 10), (2, 0, 20), (3, 1, 5)], "Dim": []},
        )
        out = engine.answer("SELECT G, SUM(V) FROM Fact GROUP BY G", db)
        assert sorted(out.rows) == [(0, 30), (1, 5)]

    def test_answer_falls_back_to_direct(self, engine):
        from repro.engine.database import Database

        db = Database(engine.catalog, {"Fact": [(1, 0, 10)], "Dim": []})
        out = engine.answer("SELECT K, V FROM Fact", db)
        assert out.rows == [(1, 10)]

    def test_answer_matches_direct_evaluation(self, engine):
        import random

        from repro.engine.database import Database

        rng = random.Random(0)
        db = Database(
            engine.catalog,
            {
                "Fact": [
                    (i, rng.randint(0, 3), rng.randint(0, 9))
                    for i in range(40)
                ],
                "Dim": [(g, f"d{g}") for g in range(4)],
            },
        )
        sql = "SELECT G, COUNT(V) FROM Fact GROUP BY G"
        assert engine.answer(sql, db).multiset_equal(db.execute(sql))

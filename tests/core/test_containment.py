"""Containment and multiset equivalence of conjunctive queries.

Executable version of the paper's Section 6 contrast with [LMSS95]
(set semantics) and [CV93] (multiset equivalence = isomorphism).
"""

import random

import pytest

from repro import Catalog, Database, parse_query, table
from repro.core.containment import (
    contained_in,
    multiset_equivalent,
    set_equivalent,
)
from repro.errors import UnsupportedSQLError


@pytest.fixture
def catalog():
    return Catalog([table("R", ["A", "B"]), table("S", ["C", "D"])])


class TestContainment:
    def test_extra_condition_contained(self, catalog):
        tight = parse_query("SELECT A FROM R WHERE A = 1 AND B = 2", catalog)
        loose = parse_query("SELECT A FROM R WHERE A = 1", catalog)
        assert contained_in(tight, loose)
        assert not contained_in(loose, tight)

    def test_extra_join_contained(self, catalog):
        joined = parse_query(
            "SELECT x.A FROM R x, R y WHERE x.A = y.A AND x.B = 1", catalog
        )
        single = parse_query("SELECT A FROM R WHERE B = 1", catalog)
        # The join can only shrink-or-keep the *set* of A values.
        assert contained_in(joined, single)

    def test_self_join_collapse(self, catalog):
        doubled = parse_query("SELECT x.A FROM R x, R y", catalog)
        single = parse_query("SELECT A FROM R", catalog)
        # Folding y onto x witnesses both directions (sets only!).
        assert set_equivalent(doubled, single)

    def test_incomparable(self, catalog):
        q1 = parse_query("SELECT A FROM R WHERE B = 1", catalog)
        q2 = parse_query("SELECT A FROM R WHERE B = 2", catalog)
        assert not contained_in(q1, q2)
        assert not contained_in(q2, q1)

    def test_different_arity_not_contained(self, catalog):
        q1 = parse_query("SELECT A FROM R", catalog)
        q2 = parse_query("SELECT A, B FROM R", catalog)
        assert not contained_in(q1, q2)

    def test_aggregation_rejected(self, catalog):
        q = parse_query("SELECT A, COUNT(B) FROM R GROUP BY A", catalog)
        plain = parse_query("SELECT A FROM R", catalog)
        with pytest.raises(UnsupportedSQLError):
            contained_in(q, plain)


class TestSetVsMultisetGap:
    """The paper's Section 6 point, demonstrated on data."""

    def test_set_equivalent_but_not_multiset(self, catalog):
        doubled = parse_query("SELECT x.A FROM R x, R y", catalog)
        single = parse_query("SELECT A FROM R", catalog)
        assert set_equivalent(doubled, single)
        assert not multiset_equivalent(doubled, single)

        # And the engine confirms both verdicts.
        db = Database(catalog, {"R": [(1, 0), (2, 0)], "S": []})
        left, right = db.execute(doubled), db.execute(single)
        assert left.set_equal(right)
        assert not left.multiset_equal(right)

    def test_isomorphic_queries_multiset_equivalent(self, catalog):
        q1 = parse_query(
            "SELECT x.A FROM R x, S WHERE x.B = C AND D = 3", catalog
        )
        q2 = parse_query(
            "SELECT r.A FROM S, R r WHERE D = 3 AND C = r.B", catalog
        )
        assert multiset_equivalent(q1, q2)

    def test_equivalent_conditions_different_syntax(self, catalog):
        q1 = parse_query(
            "SELECT A FROM R WHERE A = B AND B = 3", catalog
        )
        q2 = parse_query(
            "SELECT A FROM R WHERE A = 3 AND B = 3", catalog
        )
        assert multiset_equivalent(q1, q2)

    def test_stronger_conditions_not_multiset_equivalent(self, catalog):
        q1 = parse_query("SELECT A FROM R WHERE B = 1", catalog)
        q2 = parse_query("SELECT A FROM R", catalog)
        assert not multiset_equivalent(q1, q2)


class TestOracleAgreement:
    @pytest.mark.parametrize("seed", range(40))
    def test_containment_verdicts_sound(self, catalog, seed):
        """If containment (or multiset equivalence) is claimed, no random
        database may refute it."""
        from repro.workloads.random_queries import random_block

        rng = random.Random(7_000 + seed)
        q1 = random_block(catalog, rng, aggregation=False, max_tables=2)
        q2 = random_block(catalog, rng, aggregation=False, max_tables=2)
        try:
            claim_12 = contained_in(q1, q2)
            claim_21 = contained_in(q2, q1)
            claim_ms = multiset_equivalent(q1, q2)
        except UnsupportedSQLError:
            return
        for trial in range(20):
            db = Database(
                catalog,
                {
                    "R": [
                        (rng.randint(0, 2), rng.randint(0, 2))
                        for _ in range(rng.randint(0, 5))
                    ],
                    "S": [
                        (rng.randint(0, 2), rng.randint(0, 2))
                        for _ in range(rng.randint(0, 5))
                    ],
                },
            )
            left, right = db.execute(q1), db.execute(q2)
            if claim_12:
                assert set(left.rows) <= set(right.rows), (q1, q2)
            if claim_21:
                assert set(right.rows) <= set(left.rows), (q1, q2)
            if claim_ms:
                assert left.multiset_equal(right), (q1, q2)

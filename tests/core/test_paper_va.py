"""The literal S4'/S5' auxiliary-view construction (DESIGN.md note 1).

Two regimes:

* aligned (``Groups(Q) ⊇ φ(Groups(V))``): the construction is sound and
  our implementation verifies against the oracle;
* unaligned: the tech report's own Example 4.2 over-counts — reproduced
  here as a concrete demonstration, on the paper's own query/view pair.
"""

import pytest

from repro import (
    assert_equivalent,
    check_equivalent,
    enumerate_mappings,
    parse_query,
    parse_view,
    try_rewrite_paper_va,
)
from repro.engine.database import Database


def rewritings(query, view, **kwargs):
    out = []
    for mapping in enumerate_mappings(view.block, query):
        rewriting = try_rewrite_paper_va(query, view, mapping, **kwargs)
        if rewriting is not None:
            out.append(rewriting)
    return out


@pytest.fixture
def example_42(wide_catalog):
    query = parse_query(
        "SELECT A, SUM(E) FROM R1, R2 GROUP BY A", wide_catalog
    )
    view = parse_view(
        "CREATE VIEW V2 (A, B, S, N) AS "
        "SELECT A, B, SUM(C), COUNT(C) FROM R1 GROUP BY A, B",
        wide_catalog,
    )
    wide_catalog.add_view(view)
    return wide_catalog, query, view


class TestAlignedRegime:
    def test_s5_count_scaling(self, wide_catalog):
        """Q groups by everything V groups by: Cnt_Va scaling is exact."""
        query = parse_query(
            "SELECT A, B, SUM(E) FROM R1, R2 GROUP BY A, B", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V2 (A, B, S, N) AS "
            "SELECT A, B, SUM(C), COUNT(C) FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        rewriting = found[0]
        assert rewriting.aux_views, "the Va auxiliary view must appear"
        assert "Va" in rewriting.sql()
        assert_equivalent(
            wide_catalog, query, rewriting, trials=40, domain=3
        )

    def test_s4_sum_of_grouping_column(self, wide_catalog):
        query = parse_query(
            "SELECT A, B, SUM(B) FROM R1 GROUP BY A, B", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V2 (A, B, N) AS "
            "SELECT A, B, COUNT(C) FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert_equivalent(
            wide_catalog, query, found[0], trials=40, domain=3
        )

    def test_direct_sum_needs_no_va(self, wide_catalog):
        query = parse_query(
            "SELECT A, B, SUM(C) FROM R1 GROUP BY A, B", wide_catalog
        )
        view = parse_view(
            "CREATE VIEW V2 (A, B, S, N) AS "
            "SELECT A, B, SUM(C), COUNT(C) FROM R1 GROUP BY A, B",
            wide_catalog,
        )
        wide_catalog.add_view(view)
        found = rewritings(query, view)
        assert found
        assert not found[0].aux_views
        assert_equivalent(wide_catalog, query, found[0], trials=30, domain=3)


class TestUnalignedRegime:
    def test_alignment_gate_refuses(self, example_42):
        _catalog, query, view = example_42
        assert rewritings(query, view) == []

    def test_paper_literal_overcounts_on_its_own_example(self, example_42):
        """Example 4.2 as printed: keeping φ(V) in FROM and scaling by
        Cnt_Va multiplies by the number of V-groups per Q-group."""
        catalog, query, view = example_42
        found = rewritings(query, view, check_alignment=False)
        assert found
        rewriting = found[0]
        # Two subgroups (a,b1), (a,b2) of group a; one R2 row.
        db = Database(
            catalog,
            {
                "R1": [(0, 0, 1, 0), (0, 1, 1, 0)],
                "R2": [(5, 0)],
            },
        )
        original = db.execute(query)
        literal = db.execute(
            rewriting.query, extra_views=rewriting.extra_views()
        )
        assert original.rows == [(0, 5 + 5)]
        # The literal construction doubles the answer (k = 2 subgroups).
        assert literal.rows == [(0, 20)]

    def test_oracle_also_catches_it(self, example_42):
        catalog, query, view = example_42
        found = rewritings(query, view, check_alignment=False)
        counterexample = check_equivalent(
            catalog, query, found[0], trials=60, domain=3
        )
        assert counterexample is not None


class TestScope:
    def test_conjunctive_view_rejected(self, rs_catalog):
        query = parse_query(
            "SELECT A, SUM(B) FROM R1 GROUP BY A", rs_catalog
        )
        view = parse_view(
            "CREATE VIEW V (A, B) AS SELECT A, B FROM R1", rs_catalog
        )
        assert rewritings(query, view) == []

    def test_no_group_by_rejected(self, wide_catalog):
        query = parse_query("SELECT SUM(E) FROM R1, R2", wide_catalog)
        view = parse_view(
            "CREATE VIEW V (A, N) AS SELECT A, COUNT(C) FROM R1 GROUP BY A",
            wide_catalog,
        )
        assert rewritings(query, view) == []

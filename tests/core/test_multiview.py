"""Multiple uses of views: Theorem 3.2 (soundness, Church-Rosser,
completeness for equality predicates)."""

import itertools

import pytest

from repro import (
    Catalog,
    assert_equivalent,
    parse_query,
    parse_view,
    table,
)
from repro.core.canonical import blocks_isomorphic, canonical_key
from repro.core.multiview import (
    all_rewritings,
    rewrite_iteratively,
    single_view_rewritings,
)


@pytest.fixture
def three_table_catalog():
    return Catalog(
        [
            table("R", ["A", "B"]),
            table("S", ["C", "D"]),
            table("T", ["E", "F"]),
        ]
    )


@pytest.fixture
def two_views(three_table_catalog):
    catalog = three_table_catalog
    v_r = parse_view(
        "CREATE VIEW VR (A, B) AS SELECT A, B FROM R WHERE A > 0",
        catalog,
    )
    v_s = parse_view("CREATE VIEW VS (C, D) AS SELECT C, D FROM S", catalog)
    catalog.add_view(v_r)
    catalog.add_view(v_s)
    return catalog, v_r, v_s


class TestIterativeSoundness:
    def test_each_step_multiset_equivalent(self, two_views):
        catalog, v_r, v_s = two_views
        query = parse_query(
            "SELECT A, SUM(D) FROM R, S, T WHERE A > 0 AND B = C "
            "GROUP BY A",
            catalog,
        )
        first = single_view_rewritings(query, v_r, catalog)
        assert first
        assert_equivalent(catalog, query, first[0], trials=25, domain=3)

        second = single_view_rewritings(first[0].query, v_s, catalog)
        assert second
        assert_equivalent(
            catalog, query, second[0].query, trials=25, domain=3
        )

    def test_views_treated_as_tables_after_use(self, two_views):
        catalog, v_r, v_s = two_views
        query = parse_query(
            "SELECT A, SUM(D) FROM R, S WHERE A > 0 GROUP BY A", catalog
        )
        combined = rewrite_iteratively(query, [v_r, v_s], catalog)
        assert combined is not None
        names = {rel.name for rel in combined.query.from_}
        assert names == {"VR", "VS"}
        assert combined.view_names == ("VR", "VS")
        assert_equivalent(catalog, query, combined, trials=25, domain=3)


class TestChurchRosser:
    def test_order_independence(self, two_views):
        """Theorem 3.2(2): any order of view incorporation gives the same
        rewriting, up to renaming."""
        catalog, v_r, v_s = two_views
        query = parse_query(
            "SELECT A, SUM(D) FROM R, S WHERE A > 0 GROUP BY A", catalog
        )
        keys = set()
        for order in itertools.permutations([v_r, v_s]):
            result = rewrite_iteratively(query, list(order), catalog)
            assert result is not None
            keys.add(canonical_key(result.query))
        assert len(keys) == 1

    def test_three_views_any_order(self, three_table_catalog):
        catalog = three_table_catalog
        views = []
        for name, base, cols in [
            ("VR", "R", "A, B"),
            ("VS", "S", "C, D"),
            ("VT", "T", "E, F"),
        ]:
            view = parse_view(
                f"CREATE VIEW {name} ({cols}) AS SELECT {cols} FROM {base}",
                catalog,
            )
            catalog.add_view(view)
            views.append(view)
        query = parse_query(
            "SELECT A, E, COUNT(C) FROM R, S, T WHERE B = C AND D = E "
            "GROUP BY A, E",
            catalog,
        )
        keys = set()
        for order in itertools.permutations(views):
            result = rewrite_iteratively(query, list(order), catalog)
            assert result is not None
            keys.add(canonical_key(result.query))
        assert len(keys) == 1


class TestAllRewritings:
    def test_enumerates_single_and_double(self, two_views):
        catalog, v_r, v_s = two_views
        query = parse_query(
            "SELECT A, SUM(D) FROM R, S WHERE A > 0 GROUP BY A", catalog
        )
        found = all_rewritings(query, [v_r, v_s], catalog)
        # VR alone, VS alone, and both (in either order, deduplicated).
        assert len(found) == 3
        for rewriting in found:
            assert_equivalent(catalog, query, rewriting, trials=20, domain=3)

    def test_maximal_only(self, two_views):
        catalog, v_r, v_s = two_views
        query = parse_query(
            "SELECT A, SUM(D) FROM R, S WHERE A > 0 GROUP BY A", catalog
        )
        maximal = all_rewritings(
            query, [v_r, v_s], catalog, include_partial=False
        )
        assert len(maximal) == 1
        assert set(maximal[0].view_names) == {"VR", "VS"}

    def test_same_view_twice_on_self_join(self, three_table_catalog):
        catalog = three_table_catalog
        view = parse_view(
            "CREATE VIEW VR (A, B) AS SELECT A, B FROM R WHERE B = 1",
            catalog,
        )
        catalog.add_view(view)
        query = parse_query(
            "SELECT x.A, y.A FROM R x, R y WHERE x.B = 1 AND y.B = 1",
            catalog,
        )
        found = all_rewritings(query, [view], catalog)
        double = [r for r in found if len(r.view_names) == 2]
        assert double
        for rewriting in double:
            assert {rel.name for rel in rewriting.query.from_} == {"VR"}
            assert_equivalent(catalog, query, rewriting, trials=25, domain=3)

    def test_completeness_equality_case(self, three_table_catalog):
        """Theorem 3.2(3) in a checkable form: an obviously-usable view is
        found through the iterative procedure (no rewriting is reachable
        only by simultaneous substitution)."""
        catalog = three_table_catalog
        v1 = parse_view(
            "CREATE VIEW V1 (A, C) AS SELECT A, C FROM R, S WHERE B = C",
            catalog,
        )
        v2 = parse_view(
            "CREATE VIEW V2 (E) AS SELECT E FROM T WHERE E = F", catalog
        )
        catalog.add_view(v1)
        catalog.add_view(v2)
        query = parse_query(
            "SELECT A, COUNT(E) FROM R, S, T "
            "WHERE B = C AND E = F GROUP BY A",
            catalog,
        )
        found = all_rewritings(query, [v1, v2], catalog)
        both = [r for r in found if set(r.view_names) == {"V1", "V2"}]
        assert both
        assert_equivalent(catalog, query, both[0], trials=25, domain=3)


class TestCanonical:
    def test_isomorphic_under_renaming(self, three_table_catalog):
        catalog = three_table_catalog
        q1 = parse_query("SELECT A FROM R WHERE B = 1", catalog)
        q2 = parse_query("SELECT r.A FROM R r WHERE r.B = 1", catalog)
        assert blocks_isomorphic(q1, q2)

    def test_from_order_irrelevant(self, three_table_catalog):
        catalog = three_table_catalog
        q1 = parse_query("SELECT A FROM R, S WHERE B = C", catalog)
        q2 = parse_query("SELECT A FROM S, R WHERE B = C", catalog)
        assert blocks_isomorphic(q1, q2)

    def test_where_order_irrelevant(self, three_table_catalog):
        catalog = three_table_catalog
        q1 = parse_query("SELECT A FROM R WHERE A = 1 AND B = 2", catalog)
        q2 = parse_query("SELECT A FROM R WHERE B = 2 AND A = 1", catalog)
        assert blocks_isomorphic(q1, q2)

    def test_different_conditions_distinguished(self, three_table_catalog):
        catalog = three_table_catalog
        q1 = parse_query("SELECT A FROM R WHERE B = 1", catalog)
        q2 = parse_query("SELECT A FROM R WHERE B = 2", catalog)
        assert not blocks_isomorphic(q1, q2)

    def test_select_order_matters(self, three_table_catalog):
        catalog = three_table_catalog
        q1 = parse_query("SELECT A, B FROM R", catalog)
        q2 = parse_query("SELECT B, A FROM R", catalog)
        assert not blocks_isomorphic(q1, q2)

    def test_self_join_symmetry(self, three_table_catalog):
        catalog = three_table_catalog
        q1 = parse_query(
            "SELECT x.A FROM R x, R y WHERE x.B = y.A", catalog
        )
        q2 = parse_query(
            "SELECT y.A FROM R x, R y WHERE y.B = x.A", catalog
        )
        assert blocks_isomorphic(q1, q2)

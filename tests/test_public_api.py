"""The public API surface: __all__ is accurate and importable."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.advisor",
    "repro.bench",
    "repro.blocks",
    "repro.cache",
    "repro.catalog",
    "repro.cli",
    "repro.constraints",
    "repro.core",
    "repro.engine",
    "repro.equivalence",
    "repro.maintenance",
    "repro.mappings",
    "repro.sqlparser",
    "repro.workloads",
]


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackages_import(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"


def test_version():
    assert repro.__version__


def test_key_workflow_symbols_present():
    # The symbols the README quickstart and tutorial rely on.
    for name in [
        "Catalog",
        "table",
        "RewriteEngine",
        "Database",
        "parse_query",
        "parse_view",
        "parse_nested_query",
        "assert_equivalent",
        "explain_usability",
        "recommend_views",
        "MaintainedView",
        "QueryCache",
        "unfold_views",
    ]:
        assert hasattr(repro, name), name


def test_public_items_have_docstrings():
    undocumented = [
        name
        for name in repro.__all__
        if not (getattr(repro, name).__doc__ or "").strip()
        and not isinstance(getattr(repro, name), str)
    ]
    assert not undocumented, undocumented

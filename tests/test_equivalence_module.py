"""The equivalence oracle itself: instances, counterexamples, timing."""

import random

import pytest

from repro import Catalog, table
from repro.equivalence import (
    Counterexample,
    assert_equivalent,
    check_equivalent,
    materialized_speedup,
    random_instance,
)


@pytest.fixture
def catalog():
    return Catalog(
        [
            table("K", ["id", "v"], key=["id"]),
            table("M", ["x", "y"]),
        ]
    )


class TestRandomInstance:
    def test_respects_keys(self, catalog):
        rng = random.Random(0)
        for _ in range(30):
            instance = random_instance(catalog, rng, respect_keys=True)
            ids = [row[0] for row in instance["K"]]
            assert len(ids) == len(set(ids))

    def test_can_violate_keys_when_asked(self, catalog):
        rng = random.Random(0)
        seen_duplicate = False
        for _ in range(60):
            instance = random_instance(
                catalog, rng, respect_keys=False, max_rows=8, domain=2
            )
            ids = [row[0] for row in instance["K"]]
            if len(ids) != len(set(ids)):
                seen_duplicate = True
                break
        assert seen_duplicate

    def test_domain_and_size_bounds(self, catalog):
        rng = random.Random(1)
        instance = random_instance(catalog, rng, max_rows=3, domain=2)
        for rows in instance.values():
            assert len(rows) <= 3
            assert all(0 <= v < 2 for row in rows for v in row)


class TestCheckEquivalent:
    def test_detects_inequivalence(self, catalog):
        counterexample = check_equivalent(
            catalog,
            "SELECT x FROM M",
            "SELECT DISTINCT x FROM M",
            trials=40,
        )
        assert counterexample is not None
        assert isinstance(counterexample, Counterexample)
        text = str(counterexample)
        assert "left result" in text and "M" in text

    def test_set_comparison_mode(self, catalog):
        counterexample = check_equivalent(
            catalog,
            "SELECT x FROM M",
            "SELECT DISTINCT x FROM M",
            trials=40,
            compare="set",
        )
        assert counterexample is None

    def test_deterministic_given_seed(self, catalog):
        kwargs = dict(trials=20, seed=7)
        first = check_equivalent(
            catalog, "SELECT x FROM M", "SELECT y FROM M", **kwargs
        )
        second = check_equivalent(
            catalog, "SELECT x FROM M", "SELECT y FROM M", **kwargs
        )
        assert (first is None) == (second is None)
        if first is not None:
            assert first.tables == second.tables

    def test_assert_raises_with_counterexample(self, catalog):
        with pytest.raises(AssertionError) as excinfo:
            assert_equivalent(
                catalog,
                "SELECT x FROM M",
                "SELECT DISTINCT x FROM M",
                trials=40,
            )
        assert "counterexample" in str(excinfo.value)

    def test_equivalent_queries_pass(self, catalog):
        assert_equivalent(
            catalog,
            "SELECT x, y FROM M WHERE x = 1",
            "SELECT x, y FROM M WHERE 1 = x",
            trials=20,
        )


class TestMaterializedSpeedup:
    def test_returns_positive_timings(self):
        from repro import RewriteEngine
        from repro.workloads import telephony

        wl = telephony.generate(n_calls=400, seed=5)
        engine = RewriteEngine(wl.catalog)
        rewriting = engine.rewrite(wl.query).best()
        original, rewritten = materialized_speedup(
            wl.catalog, wl.tables, wl.query, rewriting
        )
        assert original > 0 and rewritten > 0

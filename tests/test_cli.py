"""CLI behaviour (driven through ``main(argv)``, no subprocesses)."""

import pytest

from repro.cli import main

SCHEMA = """
CREATE TABLE Plans (Plan_Id INT PRIMARY KEY, Plan_Name TEXT);
CREATE TABLE Calls (
  Call_Id INT PRIMARY KEY,
  Plan_Id INT, Month INT, Year INT, Charge INT
);
CREATE VIEW Monthly (Plan_Id, Month, Year, Revenue, N) AS
SELECT Plan_Id, Month, Year, SUM(Charge), COUNT(Charge)
FROM Calls
GROUP BY Plan_Id, Month, Year;
"""

QUERY = (
    "SELECT Calls.Plan_Id, SUM(Charge) FROM Calls "
    "WHERE Year = 1995 GROUP BY Calls.Plan_Id"
)


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.sql"
    path.write_text(SCHEMA)
    return str(path)


class TestRewrite:
    def test_success(self, schema_file, capsys):
        code = main(["rewrite", "--schema", schema_file, "--query", QUERY])
        out = capsys.readouterr().out
        assert code == 0
        assert "Monthly" in out and "rewriting 1" in out

    def test_query_from_script(self, tmp_path, capsys):
        path = tmp_path / "schema.sql"
        path.write_text(SCHEMA + QUERY + ";")
        code = main(["rewrite", "--schema", str(path)])
        assert code == 0
        assert "Monthly" in capsys.readouterr().out

    def test_no_view_usable(self, schema_file, capsys):
        code = main(
            [
                "rewrite",
                "--schema",
                schema_file,
                "--query",
                "SELECT Call_Id, Charge FROM Calls",
            ]
        )
        assert code == 1
        assert "no usable view" in capsys.readouterr().out

    def test_failure_with_explain(self, schema_file, capsys):
        code = main(
            [
                "rewrite",
                "--schema",
                schema_file,
                "--explain",
                "--query",
                "SELECT Call_Id, Charge FROM Calls",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "not usable" in out

    def test_missing_query(self, schema_file, capsys):
        code = main(["rewrite", "--schema", schema_file])
        assert code == 2
        assert "no query" in capsys.readouterr().err

    def test_missing_schema_file(self, capsys):
        code = main(
            ["rewrite", "--schema", "/nonexistent.sql", "--query", QUERY]
        )
        assert code == 2

    def test_bad_sql_reported(self, schema_file, capsys):
        code = main(
            ["rewrite", "--schema", schema_file, "--query", "SELECT FROM"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestExplain:
    def test_reports_conditions(self, schema_file, capsys):
        code = main(
            [
                "explain",
                "--schema",
                schema_file,
                "--query",
                QUERY,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "USABLE" in out

    def test_restrict_to_view(self, schema_file, capsys):
        code = main(
            [
                "explain",
                "--schema",
                schema_file,
                "--view",
                "Monthly",
                "--query",
                QUERY,
            ]
        )
        assert code == 0
        assert "Monthly" in capsys.readouterr().out


class TestCheck:
    def test_equivalent(self, schema_file, capsys):
        code = main(
            [
                "check",
                "--schema",
                schema_file,
                "--left",
                "SELECT Plan_Id FROM Plans",
                "--right",
                "SELECT DISTINCT Plan_Id FROM Plans",
                "--trials",
                "10",
            ]
        )
        assert code == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_not_equivalent(self, schema_file, capsys):
        code = main(
            [
                "check",
                "--schema",
                schema_file,
                "--left",
                "SELECT Month FROM Calls",
                "--right",
                "SELECT DISTINCT Month FROM Calls",
                "--trials",
                "30",
            ]
        )
        assert code == 1
        assert "NOT EQUIVALENT" in capsys.readouterr().out


class TestAdvise:
    def test_advises_from_workload_file(self, schema_file, tmp_path, capsys):
        workload = tmp_path / "workload.sql"
        workload.write_text(
            QUERY + ";\n"
            "SELECT Month, COUNT(Charge) FROM Calls GROUP BY Month;\n"
        )
        code = main(
            [
                "advise",
                "--schema",
                schema_file,
                "--workload",
                str(workload),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen views" in out and "CREATE VIEW" in out

    def test_empty_workload_errors(self, schema_file, capsys):
        code = main(["advise", "--schema", schema_file])
        assert code == 2


class TestFuzz:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--max-scenarios",
                "40",
                "--seed",
                "7",
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        assert code == 0
        assert "0 failures" in capsys.readouterr().out
        assert not (tmp_path / "out").exists()

    def test_injected_bug_caught_and_replayable(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main(
            [
                "fuzz",
                "--inject-bug",
                "min-as-max",
                "--max-scenarios",
                "400",
                "--max-failures",
                "1",
                "--out-dir",
                str(out_dir),
            ]
        )
        assert code == 1
        repros = sorted(out_dir.glob("*.json"))
        assert len(repros) == 1
        capsys.readouterr()

        # The repro passes on the healthy engine...
        assert main(["fuzz", "--replay", str(repros[0])]) == 0
        assert capsys.readouterr().out.startswith("ok:")
        # ...and still fails with the same bug injected at replay time.
        assert (
            main(
                [
                    "fuzz",
                    "--replay",
                    str(repros[0]),
                    "--inject-bug",
                    "min-as-max",
                ]
            )
            == 1
        )
        assert "MISMATCH" in capsys.readouterr().out

    def test_json_stats_document(self, tmp_path, capsys):
        import json as jsonlib

        code = main(
            [
                "fuzz",
                "--max-scenarios",
                "25",
                "--seed",
                "3",
                "--json",
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        assert code == 0
        doc = jsonlib.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-api/1"
        assert doc["kind"] == "fuzz-stats"
        assert doc["ok"] is True
        assert doc["result"]["base_seed"] == 3
        assert doc["result"]["scenarios"] == 25
        assert doc["result"]["failures"] == 0

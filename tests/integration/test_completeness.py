"""Completeness (Theorems 3.1 / 3.2(3)) via plant-and-recover.

For conjunctive views and equality-only predicates the paper proves the
conditions *complete*: whenever a rewriting exists, C1-C4 hold and the
procedure finds it. We test the operational consequence: plant a
rewriting by construction — write a query Q0 *over* the view, unfold it
into base tables to get Q — and demand that the rewriter, given only Q
and V, finds some rewriting (which the oracle then verifies).
"""

import random

import pytest

from repro.blocks.exprs import AggFunc, Aggregate
from repro.blocks.naming import FreshNames
from repro.blocks.query_block import QueryBlock, Relation, SelectItem, ViewDef
from repro.blocks.terms import Column, Comparison, Constant, Op
from repro.blocks.unfold import unfold_views
from repro.catalog.schema import Catalog, table
from repro.core.multiview import single_view_rewritings
from repro.equivalence import check_equivalent


def _plant(rng: random.Random):
    """Build (catalog, Q, V) where Q is the unfolding of a query over V."""
    catalog = Catalog(
        [
            table("R", ["a", "b", "c"]),
            table("S", ["d", "e"]),
        ]
    )

    # A conjunctive view over R (and sometimes S), equality predicates only.
    namer = FreshNames()
    v_rels = [Relation("R", namer.columns(["a", "b", "c"]), ("a", "b", "c"))]
    if rng.random() < 0.5:
        v_rels.append(Relation("S", namer.columns(["d", "e"]), ("d", "e")))
    v_cols = [c for rel in v_rels for c in rel.columns]
    v_where = []
    if rng.random() < 0.6:
        left, right = rng.sample(v_cols, 2)
        v_where.append(Comparison(left, Op.EQ, right))
    n_out = rng.randint(2, min(4, len(v_cols)))
    v_select = rng.sample(v_cols, n_out)
    view_block = QueryBlock(
        select=tuple(SelectItem(c) for c in v_select),
        from_=tuple(v_rels),
        where=tuple(v_where),
    ).validate()
    view = ViewDef("V", view_block, tuple(f"o{i}" for i in range(n_out)))
    catalog.add_view(view)

    # A query over the view (+ maybe another base table), again with
    # equality predicates only. Aggregates draw from the view's outputs.
    q_namer = FreshNames()
    q_rels = [
        Relation("V", q_namer.columns(view.output_names), view.output_names)
    ]
    if rng.random() < 0.5:
        q_rels.append(Relation("S", q_namer.columns(["d", "e"]), ("d", "e")))
    q_cols = [c for rel in q_rels for c in rel.columns]
    q_where = []
    if rng.random() < 0.6:
        column = rng.choice(q_cols)
        q_where.append(Comparison(column, Op.EQ, Constant(rng.randint(0, 2))))
    if len(q_rels) > 1 and rng.random() < 0.6:
        q_where.append(
            Comparison(
                rng.choice(q_rels[0].columns),
                Op.EQ,
                rng.choice(q_rels[1].columns),
            )
        )

    if rng.random() < 0.5:  # aggregation query
        group = rng.sample(q_cols, rng.randint(1, 2))
        agg = Aggregate(
            rng.choice([AggFunc.SUM, AggFunc.COUNT, AggFunc.MIN, AggFunc.MAX]),
            rng.choice(q_cols),
        )
        q0 = QueryBlock(
            select=tuple(SelectItem(c) for c in group)
            + (SelectItem(agg, "out"),),
            from_=tuple(q_rels),
            where=tuple(q_where),
            group_by=tuple(group),
        )
    else:
        q0 = QueryBlock(
            select=tuple(
                SelectItem(c)
                for c in rng.sample(q_cols, rng.randint(1, len(q_cols)))
            ),
            from_=tuple(q_rels),
            where=tuple(q_where),
        )
    q0 = q0.validate()
    query = unfold_views(q0, catalog)
    assert all(rel.name != "V" for rel in query.from_)
    return catalog, query, view


@pytest.mark.parametrize("seed", range(120))
def test_planted_rewriting_is_recovered(seed):
    rng = random.Random(123_000 + seed)
    catalog, query, view = _plant(rng)
    found = single_view_rewritings(query, view, catalog)
    assert found, (
        f"completeness violation (seed {seed}): a rewriting exists by "
        f"construction but none was found\nquery: {query}\nview: {view}"
    )
    for rewriting in found:
        counterexample = check_equivalent(
            catalog, query, rewriting, trials=15, seed=seed, domain=3,
            max_rows=5, respect_keys=False,
        )
        assert counterexample is None, (
            f"seed {seed}\n{rewriting.sql()}\n{counterexample}"
        )


def _plant_two_views(rng: random.Random):
    """Q built over TWO conjunctive views; both must be recoverable."""
    catalog = Catalog(
        [
            table("R", ["a", "b"]),
            table("S", ["d", "e"]),
        ]
    )
    views = []
    for name, base, cols in (("V1", "R", ["a", "b"]), ("V2", "S", ["d", "e"])):
        namer = FreshNames()
        rel = Relation(base, namer.columns(cols), tuple(cols))
        where = []
        if rng.random() < 0.5:
            where.append(
                Comparison(rel.columns[1], Op.EQ, Constant(rng.randint(0, 2)))
            )
        block = QueryBlock(
            select=tuple(SelectItem(c) for c in rel.columns),
            from_=(rel,),
            where=tuple(where),
        ).validate()
        view = ViewDef(name, block, tuple(f"{name}_{c}" for c in cols))
        catalog.add_view(view)
        views.append(view)

    q_namer = FreshNames()
    q_rels = [
        Relation(v.name, q_namer.columns(v.output_names), v.output_names)
        for v in views
    ]
    q_cols = [c for rel in q_rels for c in rel.columns]
    q_where = [
        Comparison(q_rels[0].columns[1], Op.EQ, q_rels[1].columns[0])
    ]
    if rng.random() < 0.5:
        group = [q_rels[0].columns[0]]
        q0 = QueryBlock(
            select=(
                SelectItem(group[0]),
                SelectItem(
                    Aggregate(AggFunc.COUNT, rng.choice(q_cols)), "n"
                ),
            ),
            from_=tuple(q_rels),
            where=tuple(q_where),
            group_by=tuple(group),
        )
    else:
        q0 = QueryBlock(
            select=tuple(SelectItem(c) for c in q_cols[:2]),
            from_=tuple(q_rels),
            where=tuple(q_where),
        )
    q0 = q0.validate()
    query = unfold_views(q0, catalog)
    assert {rel.name for rel in query.from_} == {"R", "S"}
    return catalog, query, views


@pytest.mark.parametrize("seed", range(60))
def test_planted_multi_view_rewriting_recovered(seed):
    """Theorem 3.2(3): the iterative procedure reaches the planted
    two-view rewriting."""
    from repro.core.multiview import all_rewritings

    rng = random.Random(456_000 + seed)
    catalog, query, views = _plant_two_views(rng)
    found = all_rewritings(query, views, catalog)
    both = [r for r in found if set(r.view_names) == {"V1", "V2"}]
    assert both, (
        f"seed={seed}: the planted two-view rewriting was not recovered"
    )
    counterexample = check_equivalent(
        catalog, query, both[0], trials=15, seed=seed, domain=3, max_rows=5,
        respect_keys=False,
    )
    assert counterexample is None, f"seed={seed}\n{counterexample}"

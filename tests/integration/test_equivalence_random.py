"""The soundness property behind Theorems 3.1 and 4.1, tested at scale.

Strategy: draw random schemas, queries and views; whenever any rewriting
path claims usability, the rewriting must be multiset-equivalent to the
original query on random databases. A single counterexample here means a
soundness bug in the conditions or the rewriting steps.

The test also keeps a usefulness counter: across the seed range, a healthy
number of (query, view) pairs must actually produce rewritings, so the
property is not vacuously true.
"""

import random

import pytest

from repro.core.multiview import single_view_rewritings
from repro.equivalence import check_equivalent
from repro.workloads.random_queries import (
    random_block,
    random_catalog,
    random_view,
)

FOUND_COUNTER = {"pairs": 0, "rewritings": 0}


def _try_seed(seed: int, aggregation_view: bool) -> int:
    rng = random.Random(seed)
    catalog = random_catalog(rng)
    query = random_block(catalog, rng, max_tables=2)
    view = random_view(
        catalog, rng, "V", aggregation=aggregation_view, max_tables=2
    )
    catalog.add_view(view)
    rewritings = single_view_rewritings(query, view, catalog)
    FOUND_COUNTER["pairs"] += 1
    FOUND_COUNTER["rewritings"] += len(rewritings)
    for rewriting in rewritings:
        counterexample = check_equivalent(
            catalog,
            query,
            rewriting,
            trials=25,
            seed=seed,
            max_rows=6,
            domain=3,
            respect_keys=False,
        )
        assert counterexample is None, (
            f"seed={seed}\nquery: {query}\nview: {view}\n"
            f"rewriting: {rewriting.sql()}\n{counterexample}"
        )
    return len(rewritings)


@pytest.mark.parametrize("seed", range(120))
def test_conjunctive_views_sound(seed):
    _try_seed(seed, aggregation_view=False)


@pytest.mark.parametrize("seed", range(120, 240))
def test_aggregation_views_sound(seed):
    _try_seed(seed, aggregation_view=True)


@pytest.mark.parametrize("seed", range(200))
def test_related_pairs_sound(seed):
    """Correlated pairs: the view is built to plausibly answer the query,
    so this sweep exercises the *positive* paths heavily."""
    from repro.workloads.random_queries import related_pair

    rng = random.Random(50_000 + seed)
    catalog = random_catalog(rng)
    query, view = related_pair(catalog, rng)
    catalog.add_view(view)
    rewritings = single_view_rewritings(query, view, catalog)
    FOUND_COUNTER["pairs"] += 1
    FOUND_COUNTER["rewritings"] += len(rewritings)
    for rewriting in rewritings:
        counterexample = check_equivalent(
            catalog,
            query,
            rewriting,
            trials=25,
            seed=seed,
            max_rows=6,
            domain=3,
            respect_keys=False,
        )
        assert counterexample is None, (
            f"seed={seed}\nquery: {query}\nview: {view}\n"
            f"rewriting: {rewriting.sql()}\n{counterexample}"
        )


def test_property_not_vacuous():
    """Runs last in this module: the sweeps above must have exercised a
    meaningful number of actual rewritings."""
    assert FOUND_COUNTER["rewritings"] >= 60, FOUND_COUNTER


class TestSetSemanticsRandom:
    @pytest.mark.parametrize("seed", range(40))
    def test_many_to_one_sound(self, seed):
        rng = random.Random(10_000 + seed)
        catalog = random_catalog(rng, with_keys=True)
        query = random_block(
            catalog, rng, aggregation=False, max_tables=2
        )
        view = random_view(
            catalog, rng, "V", aggregation=False, max_tables=2
        )
        catalog.add_view(view)
        rewritings = single_view_rewritings(
            query, view, catalog, use_set_semantics=True
        )
        for rewriting in rewritings:
            counterexample = check_equivalent(
                catalog,
                query,
                rewriting,
                trials=25,
                seed=seed,
                max_rows=6,
                domain=3,
                respect_keys=True,
            )
            assert counterexample is None, (
                f"seed={seed}\nquery: {query}\nview: {view}\n"
                f"rewriting: {rewriting.sql()}\n{counterexample}"
            )

"""Batch-parity differential harness for the concurrent service.

The batch service's core promise is that concurrency is *invisible in
the results*: ``rewrite_batch`` over N seeded scenarios must return, for
every request, exactly what a per-request serial ``api.rewrite`` call
returns — including under tight per-request **count** budgets, whose
trip points are pinned batch-independent by the executor's cold-planner
rule — across the serial, threaded and process execution modes.

Deadline budgets are inherently timing-dependent, so for those the
harness asserts the weaker (but still differential) contract: every
response is a sound subset of the unbudgeted result set, in every mode.

The base seed shifts from the command line, like the soundness harness::

    PYTHONPATH=src python -m pytest tests/integration/test_batch_parity.py --seed 5000
"""

import pytest

from repro import api
from repro.core.canonical import canonical_key
from repro.obs import SearchBudget
from repro.service import BatchRewriteService, RewriteRequest
from repro.workloads.random_queries import random_scenario

#: Scenarios per sweep; matches the soundness harness's acceptance floor.
N_SCENARIOS = 240

#: Deterministic (count-limited) budgets: bit-identical across modes.
COUNT_BUDGETS = (
    None,
    SearchBudget(max_mappings=2),
    SearchBudget(max_candidates=1),
    SearchBudget(max_mappings=2, max_candidates=1),
)

MODES = ("serial", "thread", "process")

PARITY_COUNTER = {"responses": 0, "budget_trips": 0}


def _base_seed(config) -> int:
    return config.getoption("--seed")


def _requests(base: int, count: int, budget=None) -> list[RewriteRequest]:
    out = []
    for seed in range(base, base + count):
        scenario = random_scenario(seed)
        out.append(
            RewriteRequest(
                query=scenario.query,
                catalog=scenario.catalog,
                budget=budget,
                use_set_semantics=True,
                request_id=str(seed),
            )
        )
    return out


def _assert_equal_responses(got, want, context: str) -> None:
    assert got.request_id == want.request_id, context
    assert got.error == want.error, (
        f"{context} seed={got.request_id}: error mismatch "
        f"({got.error!r} vs {want.error!r})"
    )
    assert got.rewritings == want.rewritings, (
        f"{context} seed={got.request_id}: result sets diverge\n"
        f"batch:  {[r.sql() for r in got.rewritings]}\n"
        f"serial: {[r.sql() for r in want.rewritings]}"
    )
    assert got.exhausted == want.exhausted, (
        f"{context} seed={got.request_id}: exhausted flag diverges"
    )
    if got.budget is not None or want.budget is not None:
        assert got.budget == want.budget, (
            f"{context} seed={got.request_id}: budget accounting diverges\n"
            f"batch:  {got.budget}\nserial: {want.budget}"
        )


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize(
    "budget",
    COUNT_BUDGETS,
    ids=["unbudgeted", "max_mappings", "max_candidates", "both_counts"],
)
def test_batch_equals_per_request_serial(request, mode, budget):
    """Bit-identical batch results, per mode, per count budget."""
    base = _base_seed(request.config)
    count = N_SCENARIOS if budget is None else N_SCENARIOS // 4
    requests = _requests(base, count, budget=budget)

    want = [api.rewrite(
        r.query,
        r.catalog,
        budget=r.budget,
        request_id=r.request_id,
    ) for r in requests]

    service = BatchRewriteService(mode=mode, workers=2)
    got = service.submit(requests)
    assert len(got) == len(requests)
    context = f"mode={mode}"
    for got_response, want_response in zip(got, want):
        _assert_equal_responses(got_response, want_response, context)
        PARITY_COUNTER["responses"] += 1
        if got_response.exhausted:
            PARITY_COUNTER["budget_trips"] += 1


@pytest.mark.parametrize("mode", MODES)
def test_warm_batches_keep_parity(request, mode):
    """Re-submitting on a warm service must not change any result.

    The second submit hits live planners (serial) or imported memos
    (thread/process); memoization is pure, so results must be identical.
    """
    base = _base_seed(request.config)
    requests = _requests(base, 24)
    service = BatchRewriteService(mode=mode, workers=2)
    cold = service.submit(requests)
    warm = service.submit(requests)
    for got_response, want_response in zip(warm, cold):
        _assert_equal_responses(
            got_response, want_response, f"warm mode={mode}"
        )


@pytest.mark.parametrize("mode", MODES)
def test_deadline_budgets_stay_sound_subsets(request, mode):
    """Deadline trips are timing-dependent: require a sound subset."""
    base = _base_seed(request.config)
    scenarios = [random_scenario(s) for s in range(base, base + 40)]
    full = {
        scenario.seed: {
            canonical_key(r.query)
            for r in api.rewrite(
                scenario.query, scenario.catalog
            ).rewritings
        }
        for scenario in scenarios
    }
    requests = [
        RewriteRequest(
            query=scenario.query,
            catalog=scenario.catalog,
            budget=SearchBudget(deadline=5e-4),
            request_id=str(scenario.seed),
        )
        for scenario in scenarios
    ]
    got = BatchRewriteService(mode=mode, workers=2).submit(requests)
    for response in got:
        keys = {canonical_key(r.query) for r in response.rewritings}
        assert keys <= full[int(response.request_id)], (
            f"mode={mode} seed={response.request_id}: deadline-budgeted "
            f"batch invented a rewriting the full search never produced"
        )


def test_parity_harness_not_vacuous():
    """Runs last: the sweeps above must have covered real work."""
    assert PARITY_COUNTER["responses"] >= 3 * N_SCENARIOS, PARITY_COUNTER
    assert PARITY_COUNTER["budget_trips"] >= 20, PARITY_COUNTER

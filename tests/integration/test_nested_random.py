"""Random nested queries: rewrite_nested is always answer-preserving."""

import random

import pytest

from repro import Catalog, Database, RewriteEngine, table
from repro.blocks.exprs import AggFunc, Aggregate
from repro.blocks.naming import FreshNames
from repro.blocks.nested import NestedQuery
from repro.blocks.query_block import QueryBlock, Relation, SelectItem, ViewDef
from repro.blocks.terms import Comparison, Constant, Op
from repro.equivalence import random_instance


def _catalog():
    return Catalog(
        [
            table(
                "F",
                ["k", "g", "h", "v"],
                key=["k"],
                row_count=10_000,
                distinct={"g": 5, "h": 5, "v": 50},
            ),
        ]
    )


def _random_nested(catalog, rng: random.Random) -> NestedQuery:
    """An outer aggregation over a random inner aggregation of F."""
    namer = FreshNames()
    inner_rel = Relation("F", namer.columns(["k", "g", "h", "v"]), ("k", "g", "h", "v"))
    k, g, h, v = inner_rel.columns
    inner_groups = rng.sample([g, h], rng.randint(1, 2))
    inner_where = []
    if rng.random() < 0.5:
        inner_where.append(
            Comparison(rng.choice([g, h]), Op.LE, Constant(rng.randint(0, 4)))
        )
    inner_agg = Aggregate(rng.choice([AggFunc.SUM, AggFunc.COUNT]), v)
    inner = QueryBlock(
        select=tuple(SelectItem(c) for c in inner_groups)
        + (SelectItem(inner_agg, "m"),),
        from_=(inner_rel,),
        where=tuple(inner_where),
        group_by=tuple(inner_groups),
    ).validate()
    view = ViewDef(
        "_sub_1",
        inner,
        tuple(f"c{i}" for i in range(len(inner_groups))) + ("m",),
    )

    outer_namer = FreshNames()
    outer_rel = Relation(
        "_sub_1", outer_namer.columns(view.output_names), view.output_names
    )
    group_col = outer_rel.columns[0]
    m_col = outer_rel.columns[-1]
    outer_agg = Aggregate(
        rng.choice([AggFunc.SUM, AggFunc.MIN, AggFunc.MAX, AggFunc.COUNT]),
        m_col,
    )
    outer = QueryBlock(
        select=(SelectItem(group_col), SelectItem(outer_agg, "out")),
        from_=(outer_rel,),
        group_by=(group_col,),
    ).validate()
    return NestedQuery(block=outer, local_views=(view,))


@pytest.mark.parametrize("seed", range(50))
def test_rewrite_nested_preserves_answers(seed):
    rng = random.Random(300_000 + seed)
    catalog = _catalog()
    engine = RewriteEngine(catalog)
    engine.add_view(
        "CREATE VIEW Cube (g, h, s, n) AS "
        "SELECT g, h, SUM(v), COUNT(v) FROM F GROUP BY g, h",
        row_count=25,
    )
    nested = _random_nested(catalog, rng)
    result = engine.rewrite_nested(nested)
    for _trial in range(10):
        instance = random_instance(
            catalog, rng, max_rows=8, domain=5, respect_keys=True
        )
        db = Database(catalog, instance)
        direct = db.execute(nested)
        via = result.execute(db)
        assert direct.multiset_equal(via), (
            f"seed={seed}\nnested: {nested.block}\n"
            f"locals: {[str(v) for v in nested.local_views]}\n"
            f"used: {result.used_views}"
        )


def test_inner_rewrites_actually_fire():
    """The sweep must exercise the inner-rewrite path, not just fall back."""
    fired = 0
    for seed in range(50):
        rng = random.Random(300_000 + seed)
        catalog = _catalog()
        engine = RewriteEngine(catalog)
        engine.add_view(
            "CREATE VIEW Cube (g, h, s, n) AS "
            "SELECT g, h, SUM(v), COUNT(v) FROM F GROUP BY g, h",
            row_count=25,
        )
        nested = _random_nested(catalog, rng)
        result = engine.rewrite_nested(nested)
        fired += bool(result.inner_rewrites)
    assert fired >= 10, fired

"""Differential soundness harness for the full rewrite search.

Where ``test_equivalence_random`` checks single-view substitutions, this
module pins down the *search*: for seeded (query, views, database)
triples, every rewriting returned by ``all_rewritings`` — planner or
naive, unbudgeted or under a tight :class:`SearchBudget` — must be
multiset-equivalent to the original query on the scenario's concrete
instance. Evaluation goes through the engine
(:func:`repro.engine.evaluator.evaluate_block` via ``Database.execute``),
so a disagreement is an end-to-end soundness bug, not a modelling one.

The base seed is shiftable from the command line::

    PYTHONPATH=src python -m pytest tests/integration/test_differential_soundness.py --seed 5000

so CI failures reproduce locally and nightly runs can walk fresh seed
ranges without code changes. Every assertion message leads with the seed.
"""

import pytest

from repro.core.canonical import canonical_key
from repro.core.multiview import all_rewritings
from repro.core.planner import RewritePlanner
from repro.engine.database import Database
from repro.errors import OracleUnsupported
from repro.obs import SearchBudget
from repro.oracle import check_scenario
from repro.workloads.random_queries import random_scenario

#: Seeded triples per sweep (the acceptance floor is 200+).
N_SCENARIOS = 240

#: Tight budgets for the degraded-mode sweep. Both routinely trip on the
#: richer scenarios; partial results must still all be sound.
TIGHT_BUDGETS = (
    SearchBudget(max_mappings=2),
    SearchBudget(max_candidates=1),
    SearchBudget(deadline=5e-4),
)

FOUND_COUNTER = {
    "scenarios": 0,
    "rewritings": 0,
    "budget_trips": 0,
    "oracle_checks": 0,
    "oracle_rewritings": 0,
    "cohen_nutt_checks": 0,
    "cohen_nutt_extras": 0,
}


def pytest_generate_tests(metafunc):
    if "diff_seed" in metafunc.fixturenames:
        base = metafunc.config.getoption("--seed")
        metafunc.parametrize("diff_seed", range(base, base + N_SCENARIOS))


def _assert_sound(scenario, db, baseline, rewriting, context: str) -> None:
    rewritten = db.execute(rewriting.query, extra_views=rewriting.extra_views())
    assert baseline.multiset_equal(rewritten), (
        f"seed={scenario.seed} ({context})\n"
        f"query: {scenario.query}\n"
        f"views: {[v.name for v in scenario.views]}\n"
        f"rewriting: {rewriting.sql()}\n"
        f"instance: {scenario.instance}\n"
        f"original rows:  {sorted(map(str, baseline.rows))}\n"
        f"rewritten rows: {sorted(map(str, rewritten.rows))}"
    )


def test_planner_naive_parity_and_soundness(diff_seed):
    """Planner and naive searches agree, and every rewriting is sound."""
    scenario = random_scenario(diff_seed)
    db = Database(scenario.catalog, scenario.instance)
    baseline = db.execute(scenario.query)

    planned = all_rewritings(
        scenario.query, scenario.views, scenario.catalog, use_planner=True
    )
    naive = all_rewritings(
        scenario.query, scenario.views, scenario.catalog, use_planner=False
    )
    assert [canonical_key(r.query) for r in planned] == [
        canonical_key(r.query) for r in naive
    ], f"seed={diff_seed}: planner/naive result sets diverge"

    FOUND_COUNTER["scenarios"] += 1
    FOUND_COUNTER["rewritings"] += len(planned)
    for rewriting in planned:
        _assert_sound(scenario, db, baseline, rewriting, "planner, unbudgeted")


def test_budgeted_search_stays_sound(diff_seed):
    """Budget-truncated searches return a sound subset of the full set."""
    scenario = random_scenario(diff_seed)
    db = Database(scenario.catalog, scenario.instance)
    baseline = db.execute(scenario.query)
    full_keys = {
        canonical_key(r.query)
        for r in all_rewritings(
            scenario.query, scenario.views, scenario.catalog, use_planner=True
        )
    }

    for budget in TIGHT_BUDGETS:
        for use_planner in (True, False):
            # Fresh planner per run: a warm substitution memo would make
            # the search free and the budget could never trip.
            planner = (
                RewritePlanner(scenario.views, scenario.catalog)
                if use_planner
                else None
            )
            meter = budget.start()
            partial = all_rewritings(
                scenario.query,
                scenario.views,
                scenario.catalog,
                use_planner=use_planner,
                planner=planner,
                budget=meter,
            )
            context = (
                f"budget={budget.as_dict()}, planner={use_planner}, "
                f"tripped={meter.tripped}"
            )
            if meter.exhausted:
                FOUND_COUNTER["budget_trips"] += 1
            partial_keys = [canonical_key(r.query) for r in partial]
            assert set(partial_keys) <= full_keys, (
                f"seed={diff_seed} ({context}): budgeted search invented a "
                f"rewriting the full search never produced"
            )
            for rewriting in partial:
                _assert_sound(scenario, db, baseline, rewriting, context)


def test_sqlite_cross_oracle(diff_seed):
    """The same seeds through the *independent* backend: SQLite
    materializes every view, runs the query and every rewriting itself,
    and each rewriting must equal the query on SQLite alone. A bug
    shared by the engine's evaluator and the rewriter is invisible to
    the engine-only sweeps above; it is not invisible here."""
    scenario = random_scenario(diff_seed)
    try:
        report = check_scenario(scenario)
    except OracleUnsupported as reason:
        pytest.skip(f"sqlite backend cannot run this scenario: {reason}")
    FOUND_COUNTER["oracle_checks"] += report.checks
    FOUND_COUNTER["oracle_rewritings"] += report.rewritings
    assert report.ok, f"seed={diff_seed}\n{report.describe()}"


def test_cohen_nutt_soundness_and_dominance(diff_seed):
    """The same seeds through the cross-planner differential oracle:
    the Cohen–Nutt union must be sound on the independent backend, and
    every C1–C4 rewriting must appear in the union (dominance — the
    complete strategy never loses a rewriting the incomplete one has).
    Both properties are Mismatch kinds inside ``report.ok``."""
    scenario = random_scenario(diff_seed)
    try:
        report = check_scenario(scenario, strategy="both")
    except OracleUnsupported as reason:
        pytest.skip(f"sqlite backend cannot run this scenario: {reason}")
    assert report.ok, f"seed={diff_seed}\n{report.describe()}"
    base = report.strategy_counts["c1c4"]
    union = report.strategy_counts["cohen_nutt"]
    assert union >= base, (
        f"seed={diff_seed}: dominance violated in counts "
        f"({base} c1c4 vs {union} cohen_nutt)"
    )
    FOUND_COUNTER["cohen_nutt_checks"] += report.checks
    FOUND_COUNTER["cohen_nutt_extras"] += union - base


def test_harness_not_vacuous():
    """Runs last in this module: the sweeps above must have produced a
    healthy number of rewritings and actually tripped some budgets."""
    assert FOUND_COUNTER["scenarios"] >= N_SCENARIOS, FOUND_COUNTER
    assert FOUND_COUNTER["rewritings"] >= 80, FOUND_COUNTER
    assert FOUND_COUNTER["budget_trips"] >= 20, FOUND_COUNTER
    assert FOUND_COUNTER["oracle_checks"] >= 3 * N_SCENARIOS, FOUND_COUNTER
    assert FOUND_COUNTER["oracle_rewritings"] >= 80, FOUND_COUNTER
    assert FOUND_COUNTER["cohen_nutt_checks"] >= 3 * N_SCENARIOS, (
        FOUND_COUNTER
    )

"""Structural property tests: unfolding, canonicalization, printing.

These complement the equivalence sweep with invariants of the block
machinery itself.
"""

import random

import pytest

from repro.blocks.normalize import parse_query
from repro.blocks.to_sql import block_to_sql
from repro.blocks.unfold import unfold_views
from repro.core.canonical import blocks_isomorphic, canonical_key
from repro.engine.database import Database
from repro.equivalence import random_instance
from repro.workloads.random_queries import (
    random_block,
    random_catalog,
    random_view,
)


@pytest.mark.parametrize("seed", range(60))
def test_unfold_preserves_semantics(seed):
    """Property: unfolding conjunctive views never changes the answer."""
    rng = random.Random(60_000 + seed)
    catalog = random_catalog(rng)
    view = random_view(catalog, rng, "V", aggregation=False, max_tables=2)
    catalog.add_view(view)

    # A query over the view (plus maybe a base table).
    for _attempt in range(50):
        block = random_block(catalog, rng, max_tables=2, max_atoms=2)
        if any(rel.name == "V" for rel in block.from_):
            break
    else:
        return  # the generator never picked the view; nothing to test
    flat = unfold_views(block, catalog)
    assert all(rel.name != "V" for rel in flat.from_)
    for _trial in range(12):
        instance = random_instance(catalog, rng, max_rows=5, domain=3)
        db = Database(catalog, instance)
        left, right = db.execute(block), db.execute(flat)
        assert left.multiset_equal(right), (block, flat)


@pytest.mark.parametrize("seed", range(60))
def test_canonical_key_invariant_under_renaming(seed):
    """Property: substituting fresh column names preserves canonical_key."""
    from repro.blocks.naming import FreshNames, base_of

    rng = random.Random(70_000 + seed)
    catalog = random_catalog(rng)
    block = random_block(catalog, rng, max_tables=3)
    namer = FreshNames()
    renaming = {
        col: namer.column("z" + base_of(col)) for col in block.cols()
    }
    renamed = block.substitute(renaming)
    assert canonical_key(block) == canonical_key(renamed)
    assert blocks_isomorphic(block, renamed)


@pytest.mark.parametrize("seed", range(60))
def test_canonical_key_invariant_under_from_reorder(seed):
    rng = random.Random(80_000 + seed)
    catalog = random_catalog(rng)
    block = random_block(catalog, rng, max_tables=3)
    order = list(range(len(block.from_)))
    rng.shuffle(order)
    reordered = block.with_(
        from_=tuple(block.from_[i] for i in order)
    )
    assert canonical_key(block) == canonical_key(reordered)


@pytest.mark.parametrize("seed", range(60))
def test_sql_roundtrip_is_isomorphic(seed):
    """Property: printing any block as SQL and re-parsing yields an
    isomorphic block (no information is lost by the printer)."""
    rng = random.Random(90_000 + seed)
    catalog = random_catalog(rng)
    block = random_block(catalog, rng, max_tables=3)
    rendered = block_to_sql(block)
    again = parse_query(rendered, catalog)
    assert blocks_isomorphic(block, again), rendered


@pytest.mark.parametrize("seed", range(40))
def test_roundtrip_preserves_semantics(seed):
    """Property: the re-parsed block also evaluates identically."""
    rng = random.Random(95_000 + seed)
    catalog = random_catalog(rng)
    block = random_block(catalog, rng, max_tables=2)
    again = parse_query(block_to_sql(block), catalog)
    for _trial in range(10):
        instance = random_instance(catalog, rng, max_rows=5, domain=3)
        db = Database(catalog, instance)
        assert db.execute(block).multiset_equal(db.execute(again))

"""CREATE TABLE parsing and script parsing."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlparser.ast import CreateTableStmt, CreateViewStmt, SelectStmt
from repro.sqlparser.parser import parse_script, parse_statement


class TestCreateTable:
    def test_basic(self):
        stmt = parse_statement("CREATE TABLE R (a INT, b TEXT)")
        assert isinstance(stmt, CreateTableStmt)
        assert stmt.columns == ("a", "b")
        assert stmt.column_types == ("INT", "TEXT")
        assert stmt.primary_key == ()

    def test_inline_primary_key(self):
        stmt = parse_statement("CREATE TABLE R (a INT PRIMARY KEY, b INT)")
        assert stmt.primary_key == ("a",)

    def test_table_level_primary_key(self):
        stmt = parse_statement(
            "CREATE TABLE R (a INT, b INT, PRIMARY KEY (a, b))"
        )
        assert stmt.primary_key == ("a", "b")

    def test_unique_constraints(self):
        stmt = parse_statement(
            "CREATE TABLE R (a INT UNIQUE, b INT, UNIQUE (a, b))"
        )
        assert stmt.uniques == (("a",), ("a", "b"))

    def test_typeless_columns(self):
        stmt = parse_statement("CREATE TABLE R (a, b)")
        assert stmt.column_types == ("", "")

    def test_parameterized_and_multiword_types(self):
        stmt = parse_statement(
            "CREATE TABLE R (a VARCHAR(30), b DOUBLE PRECISION)"
        )
        assert stmt.column_types == ("VARCHAR(30)", "DOUBLE PRECISION")

    def test_duplicate_primary_key_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement(
                "CREATE TABLE R (a INT PRIMARY KEY, PRIMARY KEY (a))"
            )

    def test_roundtrips_through_str(self):
        stmt = parse_statement(
            "CREATE TABLE R (a INT PRIMARY KEY, b TEXT, UNIQUE (b))"
        )
        again = parse_statement(str(stmt))
        assert again == stmt


class TestParseScript:
    def test_mixed_statements(self):
        script = """
            CREATE TABLE R (a INT, b INT);
            CREATE VIEW V (x) AS SELECT a FROM R;
            SELECT x FROM V;
        """
        statements = parse_script(script)
        assert [type(s) for s in statements] == [
            CreateTableStmt,
            CreateViewStmt,
            SelectStmt,
        ]

    def test_trailing_semicolon_optional(self):
        assert len(parse_script("SELECT a FROM R")) == 1
        assert len(parse_script("SELECT a FROM R;")) == 1

    def test_empty_script(self):
        assert parse_script("") == []
        assert parse_script("  -- just a comment\n") == []

    def test_missing_semicolon_between_statements(self):
        with pytest.raises(SQLSyntaxError):
            parse_script("SELECT a FROM R SELECT b FROM R")

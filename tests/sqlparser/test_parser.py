"""Parser unit tests: statement shapes, precedence, unsupported features."""

import pytest

from repro.errors import SQLSyntaxError, UnsupportedSQLError
from repro.sqlparser.ast import (
    BinOp,
    ColumnRef,
    CreateViewStmt,
    FuncCall,
    Literal,
    SelectStmt,
    Star,
)
from repro.sqlparser.parser import parse_select, parse_statement


class TestSelectShape:
    def test_minimal(self):
        stmt = parse_select("SELECT a FROM t")
        assert stmt.items[0].expr == ColumnRef("a")
        assert stmt.from_tables[0].name == "t"
        assert not stmt.where and not stmt.group_by and not stmt.having
        assert not stmt.distinct

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_multiple_items_and_tables(self):
        stmt = parse_select("SELECT a, b, c FROM t, u, v")
        assert len(stmt.items) == 3
        assert [t.name for t in stmt.from_tables] == ["t", "u", "v"]

    def test_table_alias_with_and_without_as(self):
        stmt = parse_select("SELECT a FROM t AS x, u y")
        assert stmt.from_tables[0].alias == "x"
        assert stmt.from_tables[1].alias == "y"

    def test_select_alias(self):
        stmt = parse_select("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_qualified_columns(self):
        stmt = parse_select("SELECT t.a FROM t WHERE t.a = u.b")
        assert stmt.items[0].expr == ColumnRef("a", qualifier="t")
        assert stmt.where[0].right == ColumnRef("b", qualifier="u")

    def test_trailing_semicolon(self):
        parse_select("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a FROM t nonsense extra")


class TestClauses:
    def test_where_conjunction(self):
        stmt = parse_select("SELECT a FROM t WHERE a = 1 AND b < 2 AND c <> d")
        assert [a.op for a in stmt.where] == ["=", "<", "<>"]

    def test_group_by_two_words(self):
        stmt = parse_select("SELECT a FROM t GROUP BY a, b")
        assert [c.name for c in stmt.group_by] == ["a", "b"]

    def test_groupby_one_word(self):
        # The paper typesets GROUPBY as one token.
        stmt = parse_select("SELECT a FROM t GROUPBY a")
        assert [c.name for c in stmt.group_by] == ["a"]

    def test_having(self):
        stmt = parse_select(
            "SELECT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) >= 10 AND a > 0"
        )
        assert len(stmt.having) == 2
        assert isinstance(stmt.having[0].left, FuncCall)


class TestExpressions:
    def test_aggregates(self):
        stmt = parse_select("SELECT MIN(a), max(b), Sum(c), COUNT(d), AVG(e) FROM t")
        names = [item.expr.name for item in stmt.items]
        assert names == ["MIN", "MAX", "SUM", "COUNT", "AVG"]

    def test_count_star(self):
        stmt = parse_select("SELECT COUNT(*) FROM t")
        assert isinstance(stmt.items[0].expr.arg, Star)

    def test_arithmetic_precedence(self):
        stmt = parse_select("SELECT a + b * c FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_parentheses_override(self):
        stmt = parse_select("SELECT (a + b) * c FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "*" and expr.left.op == "+"

    def test_negative_literal(self):
        stmt = parse_select("SELECT a FROM t WHERE a > -5")
        assert stmt.where[0].right == Literal(-5)

    def test_string_literal(self):
        stmt = parse_select("SELECT a FROM t WHERE b = 'x''y'")
        assert stmt.where[0].right == Literal("x'y")

    def test_aggregate_of_product(self):
        stmt = parse_select("SELECT SUM(n * e) FROM t")
        agg = stmt.items[0].expr
        assert isinstance(agg, FuncCall) and isinstance(agg.arg, BinOp)


class TestCreateView:
    def test_with_columns(self):
        stmt = parse_statement(
            "CREATE VIEW v (x, y) AS SELECT a, b FROM t"
        )
        assert isinstance(stmt, CreateViewStmt)
        assert stmt.name == "v" and stmt.columns == ("x", "y")
        assert isinstance(stmt.select, SelectStmt)

    def test_without_columns(self):
        stmt = parse_statement("CREATE VIEW v AS SELECT a FROM t")
        assert stmt.columns == ()


class TestUnsupported:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t WHERE a = 1 OR b = 2",
            "SELECT a FROM t WHERE NOT a = 1",
            "SELECT a FROM t WHERE a IN (1, 2)",
            "SELECT a FROM t JOIN u ON a = b",
            "SELECT a FROM t UNION SELECT b FROM u",
            "SELECT a FROM t ORDER BY a",
            "SELECT a FROM t LIMIT 5",
        ],
    )
    def test_rejected_with_explanation(self, sql):
        with pytest.raises(UnsupportedSQLError):
            parse_select(sql)

    def test_unknown_function(self):
        with pytest.raises(UnsupportedSQLError):
            parse_select("SELECT UPPER(a) FROM t")

    def test_missing_comparison(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a FROM t WHERE a")

"""Property: ``parse(print(q))`` round-trips for fuzz-generated blocks.

The fuzz repro format (:mod:`repro.fuzz.serialize`) stores queries and
views as SQL *text* and re-parses them on replay. That is only a
faithful persistence format if printing then parsing yields a
structurally equal block — equal up to the global renaming and FROM
order that :func:`repro.core.canonical.canonical_key` quotients away.
This module pins that property over the adversarial fuzz corpus itself
(every profile: empty databases, DISTINCT, scalar aggregation, boundary
constants, ...), including the queries produced *by the rewriter*.
"""

import pytest

from repro.blocks.normalize import parse_query, parse_view
from repro.blocks.to_sql import block_to_sql, view_to_sql
from repro.core.canonical import canonical_key
from repro.core.multiview import all_rewritings
from repro.fuzz import fuzz_scenario

N_SEEDS = 120


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_query_roundtrip(seed):
    scenario = fuzz_scenario(seed)
    sql = block_to_sql(scenario.query)
    reparsed = parse_query(sql, scenario.catalog)
    assert canonical_key(reparsed) == canonical_key(scenario.query), (
        f"seed={seed}: parse(print(q)) changed the query\n{sql}"
    )


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_view_roundtrip(seed):
    scenario = fuzz_scenario(seed)
    for view in scenario.views:
        sql = view_to_sql(view)
        reparsed = parse_view(sql, scenario.catalog)
        assert reparsed.output_names == view.output_names, (
            f"seed={seed}: output names drifted\n{sql}"
        )
        assert canonical_key(reparsed.block) == canonical_key(view.block), (
            f"seed={seed}: parse(print(v)) changed view {view.name}\n{sql}"
        )


@pytest.mark.parametrize("seed", range(0, N_SEEDS * 4, 4))
def test_rewriting_roundtrip(seed):
    """Rewriter output (weighted sums, AVG quotients, Va joins) is the
    hard case: it exercises arithmetic-over-aggregate printing that
    hand-written queries rarely do."""
    scenario = fuzz_scenario(seed)
    rewritings = all_rewritings(
        scenario.query, scenario.views, scenario.catalog, use_planner=True
    )
    for rewriting in rewritings:
        catalog = scenario.catalog
        for aux in rewriting.aux_views:
            # Va views read the base view; register them so the reparse
            # can resolve their names.
            if aux.name not in catalog.views:
                catalog.add_view(aux)
        sql = block_to_sql(rewriting.query)
        reparsed = parse_query(sql, catalog)
        assert canonical_key(reparsed) == canonical_key(rewriting.query), (
            f"seed={seed}: parse(print(q')) changed the rewriting\n{sql}"
        )

"""Printer tests: parse(print(ast)) round-trips, including random trees."""

import random

import pytest

from repro.sqlparser.ast import (
    BinOp,
    ColumnRef,
    FuncCall,
    Literal,
    SelectItemSyntax,
    SelectStmt,
    SqlComparison,
    TableRef,
)
from repro.sqlparser.parser import parse_select
from repro.sqlparser.printer import print_select

EXAMPLES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b FROM t, u",
    "SELECT t.a AS x FROM t AS t1, t t2 WHERE t1.a = t2.b",
    "SELECT a, SUM(b) FROM t WHERE a < 5 AND b >= 2 GROUP BY a HAVING SUM(b) > 10",
    "SELECT COUNT(c), MIN(d) FROM t WHERE c <> 'x''y'",
    "SELECT (n * e) FROM t",
    "SELECT SUM(n * e), AVG(q) FROM t GROUP BY k HAVING k = 3",
]


@pytest.mark.parametrize("sql", EXAMPLES)
def test_roundtrip_examples(sql):
    first = parse_select(sql)
    printed = print_select(first)
    second = parse_select(printed)
    assert first == second, printed


def _random_expr(rng: random.Random, depth: int, allow_agg: bool):
    choice = rng.random()
    if depth <= 0 or choice < 0.4:
        if rng.random() < 0.5:
            return ColumnRef(
                rng.choice("abcd"),
                qualifier=rng.choice([None, "t", "u"]),
            )
        return Literal(rng.choice([0, 1, 7, 2.5, "str'val"]))
    if allow_agg and choice < 0.6:
        return FuncCall(
            rng.choice(["MIN", "MAX", "SUM", "COUNT", "AVG"]),
            _random_expr(rng, depth - 1, allow_agg=False),
        )
    return BinOp(
        rng.choice("+-*/"),
        _random_expr(rng, depth - 1, allow_agg),
        _random_expr(rng, depth - 1, allow_agg),
    )


def _random_select(rng: random.Random) -> SelectStmt:
    items = tuple(
        SelectItemSyntax(
            _random_expr(rng, 2, allow_agg=True),
            alias=rng.choice([None, f"x{i}"]),
        )
        for i in range(rng.randint(1, 3))
    )
    tables = tuple(
        TableRef(name, alias)
        for name, alias in [("t", None), ("u", "u1")][: rng.randint(1, 2)]
    )
    where = tuple(
        SqlComparison(
            _random_expr(rng, 1, allow_agg=False),
            rng.choice(["<", "<=", "=", ">=", ">", "<>"]),
            _random_expr(rng, 1, allow_agg=False),
        )
        for _ in range(rng.randint(0, 2))
    )
    group_by = tuple(
        ColumnRef(c) for c in rng.sample("abcd", rng.randint(0, 2))
    )
    having = ()
    if group_by and rng.random() < 0.5:
        having = (
            SqlComparison(
                FuncCall("SUM", ColumnRef("a")), ">", Literal(3)
            ),
        )
    return SelectStmt(
        items=items,
        from_tables=tables,
        where=where,
        group_by=group_by,
        having=having,
        distinct=rng.random() < 0.3,
    )


@pytest.mark.parametrize("seed", range(60))
def test_roundtrip_random_trees(seed):
    """Property: any tree the AST can express survives print -> parse."""
    rng = random.Random(seed)
    stmt = _random_select(rng)
    assert parse_select(print_select(stmt)) == stmt

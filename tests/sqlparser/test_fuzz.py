"""Parser robustness: arbitrary input never escapes the ReproError
hierarchy, and valid inputs never crash downstream normalization."""

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Catalog, table
from repro.blocks.nested import parse_nested_query
from repro.errors import ReproError
from repro.sqlparser.parser import parse_script, parse_statement


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=120))
def test_arbitrary_text_never_crashes(text):
    try:
        parse_statement(text)
    except ReproError:
        pass  # the only acceptable failure mode


@settings(max_examples=200, deadline=None)
@given(
    st.text(
        alphabet=string.ascii_letters + string.digits + " ,().*<>=';-+/",
        max_size=120,
    )
)
def test_sql_shaped_text_never_crashes(text):
    try:
        parse_script(text)
    except ReproError:
        pass


TOKENS = [
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AND", "AS",
    "DISTINCT", "SUM", "COUNT", "(", ")", ",", "*", "=", "<", "a", "b",
    "t", "R", "1", "2", "'x'", ".", ";",
]


@pytest.mark.parametrize("seed", range(150))
def test_token_soup_never_crashes(seed):
    """Grammar-adjacent gibberish: keyword/token sequences."""
    rng = random.Random(seed)
    text = " ".join(rng.choices(TOKENS, k=rng.randint(1, 30)))
    try:
        parse_statement(text)
    except ReproError:
        pass


@pytest.mark.parametrize("seed", range(80))
def test_valid_parse_then_normalize_never_crashes(seed):
    """Whatever parses must either normalize or raise a ReproError."""
    rng = random.Random(10_000 + seed)
    catalog = Catalog([table("R", ["a", "b"]), table("S", ["c"])])
    text = " ".join(rng.choices(TOKENS, k=rng.randint(3, 25)))
    try:
        parse_nested_query(text, catalog)
    except ReproError:
        pass

"""Lexer unit tests."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.tokens import TokenType


def kinds(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Select SELECT")
        assert all(t.value == "SELECT" for t in tokens[:-1])
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        assert values("Plan_Id calls xYz") == ["Plan_Id", "calls", "xYz"]

    def test_eof_always_appended(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("a b")[-1].type is TokenType.EOF

    def test_punctuation(self):
        assert kinds("( ) , . ; *")[:-1] == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.DOT,
            TokenType.SEMI,
            TokenType.STAR,
        ]


class TestNumbers:
    def test_integer(self):
        assert values("42") == [42]
        assert isinstance(values("42")[0], int)

    def test_float(self):
        assert values("3.25") == [3.25]
        assert isinstance(values("3.25")[0], float)

    def test_leading_dot_float(self):
        assert values(".5") == [0.5]

    def test_qualified_name_not_float(self):
        # "t1.A" must lex as IDENT DOT IDENT, not a malformed number.
        assert kinds("t1.A")[:-1] == [
            TokenType.IDENT,
            TokenType.DOT,
            TokenType.IDENT,
        ]

    def test_number_then_dot_then_ident(self):
        assert kinds("1.x")[:-1] == [
            TokenType.NUMBER,
            TokenType.DOT,
            TokenType.IDENT,
        ]


class TestStrings:
    def test_simple_string(self):
        assert values("'hello'") == ["hello"]

    def test_escaped_quote(self):
        assert values("'it''s'") == ["it's"]

    def test_empty_string(self):
        assert values("''") == [""]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")


class TestOperators:
    def test_comparison_operators(self):
        assert values("< <= = >= > <>") == ["<", "<=", "=", ">=", ">", "<>"]

    def test_bang_equals_normalized(self):
        assert values("a != b") == ["a", "<>", "b"]

    def test_arithmetic(self):
        assert values("+ - /") == ["+", "-", "/"]

    def test_lone_bang_rejected(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("a ! b")


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert values("a -- comment here\n b") == ["a", "b"]

    def test_newlines_tracked(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_column_positions(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            tokenize("a @ b")
        assert "@" in str(excinfo.value)

    def test_error_carries_position(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            tokenize("abc\n  @")
        assert excinfo.value.line == 2

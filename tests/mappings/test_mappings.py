"""Column-mapping enumeration and application (Definition 2.1)."""

import pytest

from repro.blocks.normalize import parse_query, parse_view
from repro.blocks.terms import Column, Comparison, Op
from repro.catalog.schema import Catalog, table
from repro.mappings.column_mapping import ColumnMapping
from repro.mappings.enumerate_mappings import count_mappings, enumerate_mappings


@pytest.fixture
def catalog():
    return Catalog([table("R", ["A", "B"]), table("S", ["C", "D"])])


class TestEnumeration:
    def test_single_match(self, catalog):
        v = parse_view("CREATE VIEW V AS SELECT A FROM R", catalog)
        q = parse_query("SELECT A FROM R, S", catalog)
        mappings = list(enumerate_mappings(v.block, q))
        assert len(mappings) == 1
        assert mappings[0].is_one_to_one

    def test_no_matching_table(self, catalog):
        v = parse_view("CREATE VIEW V AS SELECT C FROM S", catalog)
        q = parse_query("SELECT A FROM R", catalog)
        assert count_mappings(v.block, q) == 0

    def test_self_join_fanout(self, catalog):
        v = parse_view(
            "CREATE VIEW V AS SELECT x.A FROM R x, R y", catalog
        )
        q = parse_query("SELECT p.A FROM R p, R q, R r", catalog)
        # 3 choices for first occurrence, 2 remaining for second: 6.
        assert count_mappings(v.block, q) == 6

    def test_many_to_one_fanout(self, catalog):
        v = parse_view(
            "CREATE VIEW V AS SELECT x.A FROM R x, R y", catalog
        )
        q = parse_query("SELECT p.A FROM R p, R q", catalog)
        assert count_mappings(v.block, q) == 2  # 1-1 only
        assert count_mappings(v.block, q, many_to_one=True) == 4

    def test_one_to_one_required_by_default(self, catalog):
        v = parse_view(
            "CREATE VIEW V AS SELECT x.A FROM R x, R y", catalog
        )
        q = parse_query("SELECT A FROM R", catalog)
        assert count_mappings(v.block, q) == 0
        many = list(enumerate_mappings(v.block, q, many_to_one=True))
        assert len(many) == 1 and not many[0].is_one_to_one

    def test_mixed_tables(self, catalog):
        v = parse_view(
            "CREATE VIEW V AS SELECT A, C FROM R, S", catalog
        )
        q = parse_query("SELECT x.A FROM R x, R y, S", catalog)
        assert count_mappings(v.block, q) == 2

    def test_deterministic_order(self, catalog):
        v = parse_view("CREATE VIEW V AS SELECT x.A FROM R x, R y", catalog)
        q = parse_query("SELECT p.A FROM R p, R q", catalog)
        first = [m.table_pairs for m in enumerate_mappings(v.block, q)]
        second = [m.table_pairs for m in enumerate_mappings(v.block, q)]
        assert first == second


class TestApplication:
    def make(self, catalog):
        v = parse_view(
            "CREATE VIEW V AS SELECT A FROM R WHERE A = B", catalog
        )
        q = parse_query("SELECT A FROM R, S WHERE A = C", catalog)
        mapping = next(enumerate_mappings(v.block, q))
        return v, q, mapping

    def test_column_map_positional(self, catalog):
        v, q, mapping = self.make(catalog)
        v_a, v_b = v.block.from_[0].columns
        q_a, q_b = q.from_[0].columns
        assert mapping.apply(v_a) == q_a
        assert mapping.apply(v_b) == q_b

    def test_image_columns(self, catalog):
        v, q, mapping = self.make(catalog)
        assert mapping.image_columns == frozenset(q.from_[0].columns)

    def test_apply_atom(self, catalog):
        v, q, mapping = self.make(catalog)
        atom = v.block.where[0]
        image = mapping.apply_atom(atom)
        q_a, q_b = q.from_[0].columns
        assert image == Comparison(q_a, Op.EQ, q_b)

    def test_preimages_and_inverse(self, catalog):
        v, q, mapping = self.make(catalog)
        q_a = q.from_[0].columns[0]
        v_a = v.block.from_[0].columns[0]
        assert mapping.preimages(q_a) == (v_a,)
        assert mapping.inverse_map[q_a] == v_a

    def test_image_relations(self, catalog):
        v, q, mapping = self.make(catalog)
        rels = mapping.image_relations()
        assert [r.name for r in rels] == ["R"]

    def test_describe_mentions_columns(self, catalog):
        v, q, mapping = self.make(catalog)
        text = mapping.describe()
        assert "->" in text

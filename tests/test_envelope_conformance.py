"""Every ``--json`` command and every daemon response speaks the same
``repro-api/1`` envelope: top-level ``schema`` / ``kind`` / ``ok`` and
exactly one of ``result`` or ``error``, serialized by the single
:func:`repro.api.to_envelope`."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.cli import main
from repro.errors import ReproError

SCHEMA_SQL = """
CREATE TABLE Calls (Call_Id, Plan_Id, Year, Charge);
CREATE VIEW Yearly (Plan_Id, Year, Total) AS
SELECT Plan_Id, Year, SUM(Charge) FROM Calls GROUP BY Plan_Id, Year;
"""

QUERY = (
    "SELECT Plan_Id, SUM(Charge) FROM Calls "
    "WHERE Year = 1995 GROUP BY Plan_Id"
)


def assert_envelope(doc, kind=None):
    """The conformance contract every JSON output must satisfy."""
    assert doc["schema"] == "repro-api/1"
    assert isinstance(doc["kind"], str) and doc["kind"]
    assert isinstance(doc["ok"], bool)
    assert "result" in doc or "error" in doc
    if doc["ok"]:
        assert "error" not in doc
    else:
        assert isinstance(doc["error"].get("message", ""), str)
    if "result" in doc:
        # The envelope owns the version tag; payloads never re-nest it.
        assert "schema" not in doc["result"]
        assert "kind" not in doc["result"]
    if kind is not None:
        assert doc["kind"] == kind
    return doc


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.sql"
    path.write_text(SCHEMA_SQL)
    return str(path)


def run_json(capsys, argv):
    code = main(argv)
    return code, capsys.readouterr()


class TestCliEnvelopes:
    def test_rewrite(self, schema_file, capsys):
        code, out = run_json(
            capsys,
            ["rewrite", "--schema", schema_file, "--query", QUERY,
             "--json"],
        )
        doc = assert_envelope(json.loads(out.out), "rewrite")
        assert code == 0
        assert doc["ok"] is True
        assert doc["result"]["rewritings"]

    def test_explain(self, schema_file, capsys):
        code, out = run_json(
            capsys,
            ["explain", "--schema", schema_file, "--query", QUERY,
             "--json"],
        )
        doc = assert_envelope(json.loads(out.out), "explain")
        assert code == 0
        assert doc["result"]["views"]

    def test_batch_lines_and_report(self, schema_file, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"id": "q1", "query": QUERY}) + "\n"
            + json.dumps({"id": "q2", "query": "SELECT Plan_Id, "
                          "SUM(Charge) FROM Calls GROUP BY Plan_Id"})
            + "\n"
        )
        code, out = run_json(
            capsys, ["batch", "--schema", schema_file, str(requests)]
        )
        assert code == 0
        lines = [json.loads(l) for l in out.out.splitlines() if l]
        assert [d["id"] for d in lines] == ["q1", "q2"]
        for doc in lines:
            assert_envelope(doc, "rewrite")
        report = assert_envelope(json.loads(out.err), "batch-report")
        assert report["result"]["batch"]["requests"] == 2

    def test_emit(self, schema_file, capsys):
        code, out = run_json(
            capsys,
            ["emit", "--schema", schema_file, "--query", QUERY,
             "--dialect", "postgres", "--json"],
        )
        doc = assert_envelope(json.loads(out.out), "emit")
        assert code == 0
        assert doc["result"]["dialect"] == "postgres"

    def test_emit_conformance(self, capsys):
        code, out = run_json(
            capsys, ["emit", "--conformance", "--dialect", "sqlite",
                     "--json"]
        )
        doc = assert_envelope(json.loads(out.out), "conformance")
        assert code == 0
        assert "-- case:" in doc["result"]["corpus"]

    def test_rewrite_sql(self, schema_file, capsys):
        code, out = run_json(
            capsys,
            ["rewrite-sql", "--schema", schema_file, "--sql", QUERY,
             "--json"],
        )
        doc = assert_envelope(json.loads(out.out), "sql-rewrite")
        assert code == 0
        assert "rewritten" in doc["result"]

    def test_fuzz(self, tmp_path, capsys):
        code, out = run_json(
            capsys,
            ["fuzz", "--max-scenarios", "5", "--seed", "1", "--json",
             "--out-dir", str(tmp_path / "out")],
        )
        doc = assert_envelope(json.loads(out.out), "fuzz-stats")
        assert code == 0
        assert doc["result"]["scenarios"] == 5


class TestServeEnvelopes:
    def test_daemon_responses_conform(self):
        from repro.workloads.random_queries import random_scenario
        from repro.blocks.to_sql import block_to_sql
        from repro.serving import ServingClient
        from tests.serving.conftest import running_daemon

        sc = random_scenario(7)
        sql = block_to_sql(sc.query)
        with running_daemon(sc.catalog) as daemon:
            with ServingClient.connect(
                ("127.0.0.1", daemon.tcp_port)
            ) as client:
                assert_envelope(client.ping(), "ping")
                assert_envelope(client.rewrite(sql), "rewrite")
                assert_envelope(client.metrics(), "metrics")
                bad = client.request({"op": "bogus"})
                assert_envelope(bad, "error")
                assert bad["ok"] is False
                assert_envelope(client.shutdown(), "shutdown")


class TestToEnvelope:
    def test_dict_payload(self):
        doc = api.to_envelope({"x": 1}, kind="thing", request_id="a")
        assert doc == {
            "schema": "repro-api/1", "kind": "thing", "ok": True,
            "id": "a", "result": {"x": 1},
        }

    def test_inner_kind_hoisted_and_schema_dropped(self):
        doc = api.to_envelope(
            {"schema": "repro-api/1", "kind": "inner", "x": 1}
        )
        assert doc["kind"] == "inner"
        assert doc["result"] == {"x": 1}

    def test_inner_error_marks_not_ok(self):
        doc = api.to_envelope({"kind": "rewrite", "error": "boom"})
        assert doc["ok"] is False
        assert doc["error"] == {"message": "boom"}

    def test_error_only(self):
        doc = api.to_envelope(error=ReproError("nope"), kind="error")
        assert doc["ok"] is False
        assert "result" not in doc
        assert doc["error"]["message"] == "nope"

    def test_request_id_from_payload(self):
        doc = api.to_envelope({"request_id": "r7", "x": 1})
        assert doc["id"] == "r7"

    def test_object_with_to_json_dict(self):
        response = api.rewrite(QUERY, _catalog())
        doc = api.to_envelope(response)
        assert_envelope(doc, "rewrite")


def _catalog():
    from repro.catalog.load import load_schema

    return load_schema(SCHEMA_SQL)[0]

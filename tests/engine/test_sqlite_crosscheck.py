"""Cross-check the multiset engine against SQLite (an independent SQL).

Every query is run both through our evaluator and through sqlite3 on the
same data; result multisets must agree. This validates the engine that the
equivalence oracle itself relies on. AVG is excluded (SQLite computes
floats; our engine is exact) and division likewise — integer-only
aggregates keep the comparison exact.
"""

import random
import sqlite3

import pytest

from repro.blocks.normalize import parse_query
from repro.blocks.to_sql import block_to_sql
from repro.catalog.schema import Catalog, table
from repro.engine.database import Database

QUERIES = [
    "SELECT A FROM R",
    "SELECT A, B FROM R WHERE A < B",
    "SELECT DISTINCT A FROM R",
    "SELECT A, C FROM R, S WHERE A = C",
    "SELECT x.A, y.B FROM R x, R y WHERE x.B = y.A",
    "SELECT A, SUM(B) FROM R GROUP BY A",
    "SELECT A, COUNT(B), MIN(B), MAX(B) FROM R GROUP BY A",
    "SELECT SUM(B) FROM R",
    "SELECT COUNT(B) FROM R WHERE A <> 1",
    "SELECT A, SUM(B) FROM R GROUP BY A HAVING SUM(B) > 5",
    "SELECT A, SUM(B) FROM R GROUP BY A HAVING COUNT(B) >= 2 AND A > 0",
    "SELECT R.A, SUM(D) FROM R, S WHERE R.A = S.C GROUP BY R.A",
    "SELECT A, SUM(A * B) FROM R GROUP BY A",
    "SELECT C, COUNT(D) FROM R, S WHERE B <= D GROUP BY C",
]


@pytest.fixture(scope="module")
def catalog():
    return Catalog([table("R", ["A", "B"]), table("S", ["C", "D"])])


def run_sqlite(sql, r_rows, s_rows):
    conn = sqlite3.connect(":memory:")
    conn.execute("CREATE TABLE R (A INTEGER, B INTEGER)")
    conn.execute("CREATE TABLE S (C INTEGER, D INTEGER)")
    conn.executemany("INSERT INTO R VALUES (?, ?)", r_rows)
    conn.executemany("INSERT INTO S VALUES (?, ?)", s_rows)
    rows = conn.execute(sql).fetchall()
    conn.close()
    return sorted(tuple(row) for row in rows)


@pytest.mark.parametrize("sql", QUERIES)
def test_engine_matches_sqlite(sql, catalog):
    rng = random.Random(hash(sql) & 0xFFFF)
    block = parse_query(sql, catalog)
    rendered = block_to_sql(block)  # printed SQL must also be valid SQLite
    for _trial in range(15):
        r_rows = [
            (rng.randint(0, 3), rng.randint(0, 5))
            for _ in range(rng.randint(0, 10))
        ]
        s_rows = [
            (rng.randint(0, 3), rng.randint(0, 5))
            for _ in range(rng.randint(0, 6))
        ]
        ours = Database(catalog, {"R": r_rows, "S": s_rows}).execute(block)
        theirs = run_sqlite(rendered, r_rows, s_rows)
        assert sorted(ours.rows) == theirs, (
            f"{rendered}\nR={r_rows}\nS={s_rows}\n"
            f"ours={sorted(ours.rows)}\nsqlite={theirs}"
        )


def test_empty_input_no_group_by(catalog):
    """The single-row-on-empty rule matches SQLite."""
    block = parse_query("SELECT COUNT(B), SUM(B) FROM R", catalog)
    ours = Database(catalog, {"R": [], "S": []}).execute(block)
    theirs = run_sqlite(block_to_sql(block), [], [])
    assert sorted(ours.rows) == theirs == [(0, None)]

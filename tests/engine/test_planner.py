"""Join planner: semantics identical to the naive product, much faster."""

import random
import time

import pytest

from repro.blocks.normalize import parse_query
from repro.catalog.schema import Catalog, table
from repro.engine.database import Database
from repro.engine.evaluator import _build_core, _compile_predicate
from repro.engine.planner import build_core
from repro.engine.table import Table


@pytest.fixture
def catalog():
    return Catalog(
        [
            table("R", ["A", "B"]),
            table("S", ["C", "D"]),
            table("T", ["E", "F"]),
        ]
    )


def naive_core(block, resolve):
    rows, index = _build_core(block, resolve)
    for atom in block.where:
        predicate = _compile_predicate(atom, index)
        rows = [row for row in rows if predicate(row)]
    return rows, index


def assert_same_core(catalog, sql, data, seed=0):
    block = parse_query(sql, catalog)
    db = Database(catalog, data)

    def resolve(name):
        return db.table(name)

    fast_rows, fast_index = build_core(block, resolve)
    slow_rows, slow_index = naive_core(block, resolve)
    assert fast_index == slow_index
    assert sorted(fast_rows) == sorted(slow_rows), sql
    return fast_rows


def random_data(rng, sizes=(6, 6, 6)):
    return {
        "R": [(rng.randint(0, 2), rng.randint(0, 2)) for _ in range(sizes[0])],
        "S": [(rng.randint(0, 2), rng.randint(0, 2)) for _ in range(sizes[1])],
        "T": [(rng.randint(0, 2), rng.randint(0, 2)) for _ in range(sizes[2])],
    }


QUERIES = [
    "SELECT A FROM R",
    "SELECT A FROM R WHERE A = 1",
    "SELECT A, C FROM R, S WHERE B = C",
    "SELECT A, C FROM R, S WHERE B = C AND A <> D",
    "SELECT A, E FROM R, S, T WHERE B = C AND D = E",
    "SELECT A, E FROM R, S, T WHERE B = C AND D = E AND A = F",  # cycle
    "SELECT A, C FROM R, S",  # pure cross product
    "SELECT A, C FROM R, S WHERE B < D",  # non-equi join
    "SELECT x.A, y.A FROM R x, R y WHERE x.B = y.B",  # self equi-join
    "SELECT A FROM R, S, T WHERE A = 1 AND C = 2 AND E = F",
]


class TestEquivalenceToNaive:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_naive(self, catalog, sql):
        rng = random.Random(hash(sql) & 0xFFF)
        for _ in range(10):
            assert_same_core(catalog, sql, random_data(rng))

    def test_empty_relations(self, catalog):
        assert_same_core(
            catalog,
            "SELECT A, C FROM R, S WHERE B = C",
            {"R": [], "S": [(1, 2)], "T": []},
        )
        assert_same_core(
            catalog,
            "SELECT A, C FROM R, S",
            {"R": [(1, 2)], "S": [], "T": []},
        )

    def test_constant_only_false_predicate(self, catalog):
        block = parse_query("SELECT A FROM R WHERE 1 = 2", catalog)
        db = Database(catalog, {"R": [(1, 2)], "S": [], "T": []})
        rows, _index = build_core(block, lambda n: db.table(n))
        assert rows == []

    def test_constant_only_true_predicate(self, catalog):
        block = parse_query("SELECT A FROM R WHERE 2 = 2", catalog)
        db = Database(catalog, {"R": [(1, 2)], "S": [], "T": []})
        rows, _index = build_core(block, lambda n: db.table(n))
        assert len(rows) == 1

    def test_duplicates_preserved(self, catalog):
        rows = assert_same_core(
            catalog,
            "SELECT A, C FROM R, S WHERE B = C",
            {"R": [(1, 5), (1, 5)], "S": [(5, 0), (5, 0)], "T": []},
        )
        assert len(rows) == 4  # 2 x 2 multiset join

    @pytest.mark.parametrize("seed", range(25))
    def test_random_sweep(self, catalog, seed):
        rng = random.Random(seed)
        from repro.workloads.random_queries import random_block

        block = random_block(
            catalog, rng, aggregation=False, max_tables=3, max_atoms=4
        )
        db = Database(catalog, random_data(rng))

        def resolve(name):
            return db.table(name)

        fast_rows, _ = build_core(block, resolve)
        slow_rows, _ = naive_core(block, resolve)
        assert sorted(fast_rows) == sorted(slow_rows), str(block)


class TestPerformance:
    def test_hash_join_beats_product(self, catalog):
        """At 2k x 2k rows, the nested product (4M tuples) would take
        seconds; the hash join must stay well under half a second."""
        rng = random.Random(1)
        data = {
            "R": [(rng.randrange(500), rng.randrange(500)) for _ in range(2000)],
            "S": [(rng.randrange(500), rng.randrange(500)) for _ in range(2000)],
            "T": [],
        }
        block = parse_query("SELECT A, D FROM R, S WHERE B = C", catalog)
        db = Database(catalog, data)
        start = time.perf_counter()
        rows, _ = build_core(block, lambda n: db.table(n))
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5, elapsed
        assert rows  # joins actually matched

    def test_local_predicate_pushdown(self, catalog):
        """Selective scans shrink the join input: a selective constant
        filter must keep the join fast even with a weak join key."""
        rng = random.Random(2)
        data = {
            "R": [(rng.randrange(4), rng.randrange(4)) for _ in range(3000)],
            "S": [(rng.randrange(4), 999) for _ in range(3000)],
            "T": [],
        }
        data["S"][0] = (data["S"][0][0], 5)
        block = parse_query(
            "SELECT A FROM R, S WHERE B = C AND D = 5", catalog
        )
        db = Database(catalog, data)
        start = time.perf_counter()
        build_core(block, lambda n: db.table(n))
        elapsed = time.perf_counter() - start
        assert elapsed < 0.3, elapsed

"""Single-block evaluation under SQL multiset semantics."""

from fractions import Fraction

import pytest

from repro.blocks.normalize import parse_query
from repro.catalog.schema import Catalog, table
from repro.engine.database import Database
from repro.errors import EvaluationError, SchemaError


@pytest.fixture
def catalog():
    return Catalog(
        [
            table("R", ["A", "B"]),
            table("S", ["C", "D"]),
        ]
    )


def db(catalog, r_rows, s_rows=()):
    return Database(catalog, {"R": r_rows, "S": s_rows})


class TestProjection:
    def test_projection_keeps_duplicates(self, catalog):
        d = db(catalog, [(1, 10), (1, 20)])
        result = d.execute("SELECT A FROM R")
        assert result.rows == [(1,), (1,)]

    def test_distinct_removes_duplicates(self, catalog):
        d = db(catalog, [(1, 10), (1, 20)])
        assert d.execute("SELECT DISTINCT A FROM R").rows == [(1,)]

    def test_column_order_follows_select(self, catalog):
        d = db(catalog, [(1, 10)])
        assert d.execute("SELECT B, A FROM R").rows == [(10, 1)]


class TestJoins:
    def test_cross_product_multiplicities(self, catalog):
        d = db(catalog, [(1, 0), (1, 0)], [(1, 5), (1, 5), (1, 5)])
        result = d.execute("SELECT A, C FROM R, S")
        assert len(result) == 6  # 2 x 3

    def test_equijoin(self, catalog):
        d = db(catalog, [(1, 0), (2, 0)], [(1, 5), (3, 6)])
        result = d.execute("SELECT A, D FROM R, S WHERE A = C")
        assert result.rows == [(1, 5)]

    def test_self_join(self, catalog):
        d = db(catalog, [(1, 2), (2, 3)])
        result = d.execute(
            "SELECT x.A, y.B FROM R x, R y WHERE x.B = y.A"
        )
        assert result.rows == [(1, 3)]

    def test_empty_table_empties_product(self, catalog):
        d = db(catalog, [(1, 2)], [])
        assert d.execute("SELECT A FROM R, S").rows == []


class TestWhere:
    def test_inequalities(self, catalog):
        d = db(catalog, [(1, 5), (2, 7), (3, 9)])
        assert d.execute("SELECT A FROM R WHERE B > 5 AND B <= 9").rows == [
            (2,),
            (3,),
        ]

    def test_ne(self, catalog):
        d = db(catalog, [(1, 5), (2, 5)])
        assert d.execute("SELECT A FROM R WHERE A <> 2").rows == [(1,)]

    def test_string_comparison(self, catalog):
        d = db(catalog, [("x", 1), ("y", 2)])
        assert d.execute("SELECT B FROM R WHERE A = 'y'").rows == [(2,)]


class TestGrouping:
    def test_group_sums(self, catalog):
        d = db(catalog, [(1, 10), (1, 20), (2, 5)])
        result = d.execute("SELECT A, SUM(B) FROM R GROUP BY A")
        assert sorted(result.rows) == [(1, 30), (2, 5)]

    def test_group_by_ungrouped_groups_vanish(self, catalog):
        d = db(catalog, [])
        assert d.execute("SELECT A, COUNT(B) FROM R GROUP BY A").rows == []

    def test_no_group_by_single_row_on_empty(self, catalog):
        d = db(catalog, [])
        result = d.execute("SELECT COUNT(B), SUM(B) FROM R")
        assert result.rows == [(0, None)]

    def test_grouping_respects_multiplicity(self, catalog):
        d = db(catalog, [(1, 10), (1, 10)])
        result = d.execute("SELECT A, COUNT(B), SUM(B) FROM R GROUP BY A")
        assert result.rows == [(1, 2, 20)]

    def test_group_key_not_selected(self, catalog):
        # Legal SQL: group by A but select only the aggregate.
        d = db(catalog, [(1, 10), (2, 20)])
        result = d.execute("SELECT SUM(B) FROM R GROUP BY A")
        assert sorted(result.rows) == [(10,), (20,)]

    def test_avg_is_exact(self, catalog):
        d = db(catalog, [(1, 1), (1, 2)])
        result = d.execute("SELECT AVG(B) FROM R")
        assert result.rows == [(Fraction(3, 2),)]


class TestHaving:
    def test_having_filters_groups(self, catalog):
        d = db(catalog, [(1, 10), (1, 20), (2, 5)])
        result = d.execute(
            "SELECT A, SUM(B) FROM R GROUP BY A HAVING SUM(B) > 10"
        )
        assert result.rows == [(1, 30)]

    def test_having_on_grouping_column(self, catalog):
        d = db(catalog, [(1, 10), (2, 5)])
        result = d.execute(
            "SELECT A, SUM(B) FROM R GROUP BY A HAVING A >= 2"
        )
        assert result.rows == [(2, 5)]

    def test_having_aggregate_not_in_select(self, catalog):
        d = db(catalog, [(1, 10), (1, 20), (2, 5)])
        result = d.execute(
            "SELECT A FROM R GROUP BY A HAVING COUNT(B) = 2"
        )
        assert result.rows == [(1,)]


class TestExpressions:
    def test_sum_of_product(self, catalog):
        d = db(catalog, [(2, 10), (3, 10)])
        result = d.execute("SELECT SUM(A * B) FROM R")
        assert result.rows == [(50,)]

    def test_scalar_arith_in_select(self, catalog):
        d = db(catalog, [(2, 10)])
        result = d.execute("SELECT A + B FROM R")
        assert result.rows == [(12,)]

    def test_group_level_arithmetic(self, catalog):
        d = db(catalog, [(1, 10), (1, 20)])
        result = d.execute(
            "SELECT A, SUM(B) / COUNT(B) FROM R GROUP BY A"
        )
        assert result.rows == [(1, Fraction(15))]

    def test_int_division_exact(self, catalog):
        d = db(catalog, [(1, 3)])
        result = d.execute("SELECT B / 2 FROM R")
        assert result.rows == [(Fraction(3, 2),)]


class TestErrors:
    def test_wrong_data_arity(self, catalog):
        with pytest.raises((EvaluationError, SchemaError)):
            Database(catalog, {"R": [(1,)]})

    def test_incomparable_types(self, catalog):
        d = db(catalog, [(1, "x")])
        with pytest.raises(EvaluationError):
            d.execute("SELECT A FROM R WHERE B > 3")

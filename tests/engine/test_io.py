"""CSV persistence for tables and databases."""

import pytest

from repro import Catalog, Database, table
from repro.engine.io import (
    load_database,
    read_table_csv,
    save_database,
    write_table_csv,
)
from repro.engine.table import Table
from repro.errors import SchemaError


@pytest.fixture
def catalog():
    return Catalog(
        [
            table("R", ["a", "b"]),
            table("S", ["c"]),
        ]
    )


class TestTableRoundtrip:
    def test_types_inferred(self, tmp_path):
        path = tmp_path / "t.csv"
        original = Table(("a", "b", "c"), [(1, 2.5, "x"), (-3, 0.0, "y z")])
        write_table_csv(str(path), original)
        loaded = read_table_csv(str(path))
        assert loaded.columns == original.columns
        assert loaded.rows == original.rows
        assert isinstance(loaded.rows[0][0], int)
        assert isinstance(loaded.rows[0][1], float)
        assert isinstance(loaded.rows[0][2], str)

    def test_header_mismatch(self, tmp_path):
        path = tmp_path / "t.csv"
        write_table_csv(str(path), Table(("x", "y"), [(1, 2)]))
        with pytest.raises(SchemaError):
            read_table_csv(str(path), expected_columns=("a", "b"))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_table_csv(str(path))

    def test_empty_table_roundtrip(self, tmp_path):
        path = tmp_path / "t.csv"
        write_table_csv(str(path), Table(("a",), []))
        loaded = read_table_csv(str(path))
        assert loaded.columns == ("a",) and loaded.rows == []


class TestDatabaseRoundtrip:
    def test_save_and_load(self, catalog, tmp_path):
        db = Database(catalog, {"R": [(1, 2), (3, 4)], "S": [("x",)]})
        save_database(db, str(tmp_path / "data"))
        loaded = load_database(catalog, str(tmp_path / "data"))
        assert loaded.table("R").rows == [(1, 2), (3, 4)]
        assert loaded.table("S").rows == [("x",)]

    def test_missing_file_means_empty_table(self, catalog, tmp_path):
        directory = tmp_path / "data"
        directory.mkdir()
        write_table_csv(str(directory / "R.csv"), Table(("a", "b"), [(1, 2)]))
        db = load_database(catalog, str(directory))
        assert db.table("S").rows == []

    def test_unknown_file_rejected(self, catalog, tmp_path):
        directory = tmp_path / "data"
        directory.mkdir()
        write_table_csv(str(directory / "Ghost.csv"), Table(("z",), []))
        with pytest.raises(SchemaError):
            load_database(catalog, str(directory))

    def test_row_counts_updated_for_costing(self, catalog, tmp_path):
        directory = tmp_path / "data"
        directory.mkdir()
        write_table_csv(
            str(directory / "R.csv"),
            Table(("a", "b"), [(i, i) for i in range(50)]),
        )
        load_database(catalog, str(directory))
        assert catalog.table("R").row_count == 50


class TestCliQuery:
    def test_query_over_csv(self, catalog, tmp_path, capsys):
        from repro.cli import main

        schema = tmp_path / "schema.sql"
        schema.write_text(
            "CREATE TABLE R (a INT, b INT);\n"
            "CREATE VIEW V (a, s) AS SELECT a, SUM(b) FROM R GROUP BY a;\n"
        )
        data = tmp_path / "data"
        data.mkdir()
        write_table_csv(
            str(data / "R.csv"),
            Table(("a", "b"), [(1, 10), (1, 20), (2, 5)]),
        )
        code = main(
            [
                "query",
                "--schema",
                str(schema),
                "--data",
                str(data),
                "--query",
                "SELECT a, SUM(b) FROM R GROUP BY a",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "30" in out and "2 rows" in out

    def test_query_uses_views_when_cheaper(self, tmp_path, capsys):
        from repro.cli import main

        schema = tmp_path / "schema.sql"
        schema.write_text(
            "CREATE TABLE R (a INT, b INT);\n"
            "CREATE VIEW V (a, s, n) AS "
            "SELECT a, SUM(b), COUNT(b) FROM R GROUP BY a;\n"
        )
        data = tmp_path / "data"
        data.mkdir()
        write_table_csv(
            str(data / "R.csv"),
            Table(("a", "b"), [(i % 3, i) for i in range(200)]),
        )
        code = main(
            [
                "query",
                "--schema",
                str(schema),
                "--data",
                str(data),
                "--use-views",
                "--query",
                "SELECT a, SUM(b) FROM R GROUP BY a",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rewritten over V" in out

"""Aggregate function semantics, including SQL empty-group rules."""

from fractions import Fraction

from repro.blocks.exprs import AggFunc
from repro.engine.aggregates import apply_aggregate


class TestNonEmpty:
    def test_all_functions(self):
        values = [3, 1, 2, 2]
        assert apply_aggregate(AggFunc.MIN, values) == 1
        assert apply_aggregate(AggFunc.MAX, values) == 3
        assert apply_aggregate(AggFunc.SUM, values) == 8
        assert apply_aggregate(AggFunc.COUNT, values) == 4
        assert apply_aggregate(AggFunc.AVG, values) == 2

    def test_avg_exact_fraction(self):
        avg = apply_aggregate(AggFunc.AVG, [1, 2])
        assert avg == Fraction(3, 2)
        assert isinstance(avg, Fraction)

    def test_avg_floats(self):
        assert apply_aggregate(AggFunc.AVG, [1.0, 2.0]) == 1.5

    def test_sum_duplicates_counted(self):
        # Multiset semantics: duplicates contribute.
        assert apply_aggregate(AggFunc.SUM, [5, 5]) == 10

    def test_strings_min_max(self):
        assert apply_aggregate(AggFunc.MIN, ["b", "a"]) == "a"
        assert apply_aggregate(AggFunc.MAX, ["b", "a"]) == "b"


class TestEmptyGroup:
    """SQL: over an empty group COUNT is 0, the rest are NULL."""

    def test_count_zero(self):
        assert apply_aggregate(AggFunc.COUNT, []) == 0

    def test_others_null(self):
        for func in (AggFunc.MIN, AggFunc.MAX, AggFunc.SUM, AggFunc.AVG):
            assert apply_aggregate(func, []) is None


class TestCountNulls:
    def test_count_skips_none(self):
        assert apply_aggregate(AggFunc.COUNT, [1, None, 2]) == 2

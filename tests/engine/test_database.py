"""Database: data loading, view materialization, local views."""

import pytest

from repro.blocks.normalize import parse_view
from repro.catalog.schema import Catalog, table
from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import SchemaError


@pytest.fixture
def catalog():
    return Catalog([table("R", ["A", "B"])])


class TestLoading:
    def test_load_rows(self, catalog):
        db = Database(catalog, {"R": [(1, 2)]})
        assert db.table("R").rows == [(1, 2)]

    def test_load_table_object(self, catalog):
        db = Database(catalog)
        db.load("R", Table(("A", "B"), [(1, 2)]))
        assert len(db.table("R")) == 1

    def test_load_wrong_header_rejected(self, catalog):
        db = Database(catalog)
        with pytest.raises(SchemaError):
            db.load("R", Table(("X", "Y"), [(1, 2)]))

    def test_unknown_table_rejected(self, catalog):
        db = Database(catalog)
        with pytest.raises(SchemaError):
            db.load("Nope", [(1,)])

    def test_unloaded_table_is_empty(self, catalog):
        db = Database(catalog)
        assert db.table("R").rows == []


class TestViews:
    def test_materialize(self, catalog):
        view = parse_view(
            "CREATE VIEW V (A, N) AS SELECT A, COUNT(B) FROM R GROUP BY A",
            catalog,
        )
        catalog.add_view(view)
        db = Database(catalog, {"R": [(1, 2), (1, 3)]})
        v = db.materialize("V")
        assert v.columns == ("A", "N")
        assert v.rows == [(1, 2)]

    def test_materialization_cached_and_invalidated(self, catalog):
        view = parse_view(
            "CREATE VIEW V (A, N) AS SELECT A, COUNT(B) FROM R GROUP BY A",
            catalog,
        )
        catalog.add_view(view)
        db = Database(catalog, {"R": [(1, 2)]})
        first = db.materialize("V")
        assert db.materialize("V") is first  # cached
        db.load("R", [(1, 2), (2, 3)])
        assert len(db.materialize("V")) == 2  # cache invalidated on load

    def test_query_over_view(self, catalog):
        view = parse_view(
            "CREATE VIEW V (A, N) AS SELECT A, COUNT(B) FROM R GROUP BY A",
            catalog,
        )
        catalog.add_view(view)
        db = Database(catalog, {"R": [(1, 2), (1, 3), (2, 9)]})
        result = db.execute("SELECT A FROM V WHERE N >= 2")
        assert result.rows == [(1,)]

    def test_extra_views_visible_only_per_call(self, catalog):
        local = parse_view(
            "CREATE VIEW Tmp (A, N) AS SELECT A, COUNT(B) FROM R GROUP BY A",
            catalog,
        )
        db = Database(catalog, {"R": [(1, 2), (1, 3)]})
        # Build the query against a catalog copy that knows Tmp.
        query_catalog = catalog.copy()
        query_catalog.add_view(local)
        from repro.blocks.normalize import parse_query

        q = parse_query("SELECT N FROM Tmp", query_catalog)
        result = db.execute(q, extra_views={"Tmp": local})
        assert result.rows == [(2,)]
        with pytest.raises(SchemaError):
            db.execute(q)  # not registered globally

    def test_view_row_count_recorded(self, catalog):
        view = parse_view(
            "CREATE VIEW V (A, N) AS SELECT A, COUNT(B) FROM R GROUP BY A",
            catalog,
        )
        catalog.add_view(view)
        db = Database(catalog, {"R": [(1, 2), (2, 3)]})
        db.materialize("V")
        assert catalog.row_count("V") == 2

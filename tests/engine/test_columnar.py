"""The columnar engine: batches, kernels, and row-engine parity.

The row engine is the parity oracle for the vectorized executor (see
``docs/engine.md``): every query must produce the same *multiset* of
rows under ``engine="row"`` and ``engine="columnar"``. These tests pin
that contract at three levels — Batch/kernel units, hand-picked
workload queries, and a randomized sweep that additionally pulls in
SQLite as an independent third backend.
"""

from fractions import Fraction

import pytest

from repro.blocks.exprs import Arith, ArithOp
from repro.blocks.normalize import parse_query
from repro.blocks.terms import Column, Comparison, Constant, Op
from repro.catalog.schema import Catalog, table
from repro.engine import COLUMNAR_AUTO_THRESHOLD, Database, Table
from repro.engine.columnar import (
    Batch,
    compile_filter_kernel,
    compile_value_kernel,
    evaluate_block_columnar,
)
from repro.errors import EvaluationError
from repro.oracle.values import rows_multiset_equal

A, B, C, D = Column("A"), Column("B"), Column("C"), Column("D")


@pytest.fixture
def catalog():
    return Catalog([table("R", ["A", "B"]), table("S", ["C", "D"])])


def assert_engine_parity(db, sql):
    """Both engines agree (multiset) on ``sql``; returns the rows."""
    row = db.execute(sql, engine="row").rows
    col = db.execute(sql, engine="columnar").rows
    assert rows_multiset_equal(row, col), (
        f"engine disagreement on {sql!r}:\n  row={sorted(map(str, row))}"
        f"\n  columnar={sorted(map(str, col))}"
    )
    return col


# ----------------------------------------------------------------------
# Batch
# ----------------------------------------------------------------------


class TestBatch:
    def test_identity_column_is_not_copied(self):
        data = [1, 2, 3]
        batch = Batch.from_columns({A: data}, 3)
        assert batch.column(A) is data

    def test_select_composes_positions(self):
        batch = Batch.from_columns({A: [10, 20, 30, 40]}, 4)
        sub = batch.select([0, 2]).select([1])
        assert sub.length == 1
        assert sub.column(A) == [30]

    def test_gather_is_cached(self):
        batch = Batch.from_columns({A: [1, 2, 3]}, 3).select([2, 0])
        first = batch.column(A)
        assert first == [3, 1]
        assert batch.column(A) is first

    def test_join_pairs_rows(self):
        left = Batch.from_columns({A: [1, 2]}, 2)
        right = Batch.from_columns({C: [5, 6]}, 2)
        joined = left.join(right, [0, 1, 1], [1, 0, 1])
        assert joined.rows([A, C]) == [(1, 6), (2, 5), (2, 6)]

    def test_cross_product(self):
        left = Batch.from_columns({A: [1, 2]}, 2)
        right = Batch.from_columns({C: [5, 6]}, 2)
        assert sorted(left.cross(right).rows([A, C])) == [
            (1, 5), (1, 6), (2, 5), (2, 6),
        ]

    def test_empty_binds_all_columns(self):
        batch = Batch.empty([[A, B], [C]])
        assert batch.length == 0
        assert batch.column(A) == []
        assert batch.column(C) == []

    def test_unbound_column_raises(self):
        batch = Batch.from_columns({A: [1]}, 1)
        with pytest.raises(EvaluationError, match="unbound column"):
            batch.column(C)


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------


class TestValueKernels:
    def batch(self, a, b):
        return Batch.from_columns({A: a, B: b}, len(a))

    def test_arith_propagates_null(self):
        kernel = compile_value_kernel(Arith(ArithOp.ADD, A, B))
        assert kernel(self.batch([1, None, 3], [10, 20, None])) == [
            11, None, None,
        ]

    def test_division_by_zero_is_null(self):
        kernel = compile_value_kernel(Arith(ArithOp.DIV, A, B))
        assert kernel(self.batch([6, 6, None], [0, 3, 3])) == [
            None, Fraction(2), None,
        ]

    def test_int_division_is_exact(self):
        kernel = compile_value_kernel(Arith(ArithOp.DIV, A, B))
        assert kernel(self.batch([1], [3])) == [Fraction(1, 3)]

    def test_constant_broadcasts(self):
        kernel = compile_value_kernel(Constant(7))
        assert kernel(self.batch([1, 2], [0, 0])) == [7, 7]


class TestFilterKernels:
    def batch(self, a, b=None):
        cols = {A: a}
        if b is not None:
            cols[B] = b
        return Batch.from_columns(cols, len(a))

    def test_null_never_passes_any_comparison(self):
        batch = self.batch([None, 1, None, 2])
        for op in (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GE, Op.GT):
            keep = compile_filter_kernel(Comparison(A, op, Constant(1)))(
                batch
            )
            assert None not in [batch.column(A)[i] for i in keep], op

    def test_constant_on_the_left_is_flipped(self):
        batch = self.batch([1, 5, 3])
        keep = compile_filter_kernel(Comparison(Constant(3), Op.LT, A))(
            batch
        )
        assert keep == [1]

    def test_column_vs_column_null_guard(self):
        batch = self.batch([1, None, 2], [1, 1, None])
        keep = compile_filter_kernel(Comparison(A, Op.EQ, B))(batch)
        assert keep == [0]

    def test_constant_vs_constant_decided_once(self):
        batch = self.batch([1, 2])
        true_k = compile_filter_kernel(
            Comparison(Constant(1), Op.LT, Constant(2))
        )
        false_k = compile_filter_kernel(
            Comparison(Constant(2), Op.LT, Constant(1))
        )
        assert true_k(batch) == [0, 1]
        assert false_k(batch) == []

    def test_incomparable_types_raise_like_row_engine(self):
        batch = self.batch([1, "x"])
        kernel = compile_filter_kernel(Comparison(A, Op.LT, Constant(5)))
        with pytest.raises(EvaluationError, match="cannot compare"):
            kernel(batch)


# ----------------------------------------------------------------------
# Executor parity with the row engine
# ----------------------------------------------------------------------


class TestExecutorParity:
    def db(self, catalog, r_rows, s_rows=()):
        return Database(catalog, {"R": r_rows, "S": s_rows})

    def test_projection_and_distinct(self, catalog):
        db = self.db(catalog, [(1, 10), (1, 20), (1, 10)])
        assert assert_engine_parity(db, "SELECT A FROM R") == [
            (1,), (1,), (1,),
        ]
        assert assert_engine_parity(db, "SELECT DISTINCT A FROM R") == [
            (1,),
        ]

    def test_equijoin_multiplicities(self, catalog):
        db = self.db(
            catalog, [(1, 0), (1, 0), (2, 0)], [(1, 5), (1, 6), (3, 7)]
        )
        rows = assert_engine_parity(
            db, "SELECT A, D FROM R, S WHERE A = C"
        )
        assert sorted(rows) == [(1, 5), (1, 5), (1, 6), (1, 6)]

    def test_self_join(self, catalog):
        db = self.db(catalog, [(1, 2), (2, 3)])
        rows = assert_engine_parity(
            db, "SELECT x.A, y.B FROM R x, R y WHERE x.B = y.A"
        )
        assert rows == [(1, 3)]

    def test_deferred_cross_relation_inequality(self, catalog):
        # A non-equi predicate across relations cannot be pushed down or
        # hashed: it must run as a deferred filter after the join.
        db = self.db(catalog, [(1, 0), (5, 0)], [(3, 0), (4, 0)])
        rows = assert_engine_parity(db, "SELECT A, C FROM R, S WHERE A < C")
        assert sorted(rows) == [(1, 3), (1, 4)]

    def test_constant_false_where_skips_scan(self, catalog):
        db = self.db(catalog, [(1, 2)])
        assert assert_engine_parity(db, "SELECT A FROM R WHERE 1 = 2") == []

    def test_scalar_aggregate_over_empty_input(self, catalog):
        db = self.db(catalog, [])
        rows = assert_engine_parity(
            db, "SELECT SUM(A) AS s, COUNT(A) AS n FROM R"
        )
        assert rows == [(None, 0)]

    def test_grouped_aggregation_with_having(self, catalog):
        db = self.db(catalog, [(1, 10), (1, 20), (2, 5), (3, 1)])
        rows = assert_engine_parity(
            db,
            "SELECT A, SUM(B) AS s FROM R GROUP BY A HAVING SUM(B) > 4",
        )
        assert sorted(rows) == [(1, 30), (2, 5)]

    def test_group_expression_arithmetic(self, catalog):
        db = self.db(catalog, [(1, 10), (1, 20)])
        rows = assert_engine_parity(
            db, "SELECT A, SUM(B) / COUNT(B) AS avg FROM R GROUP BY A"
        )
        assert rows == [(1, 15)]

    def test_cross_product_no_join_edge(self, catalog):
        db = self.db(catalog, [(1, 0), (2, 0)], [(5, 0)])
        rows = assert_engine_parity(db, "SELECT A, C FROM R, S")
        assert sorted(rows) == [(1, 5), (2, 5)]

    def test_multi_column_join_key(self, catalog):
        db = self.db(
            catalog,
            [(1, 5), (1, 6), (2, 5)],
            [(1, 5), (2, 5), (2, 6)],
        )
        rows = assert_engine_parity(
            db, "SELECT A, B FROM R, S WHERE A = C AND B = D"
        )
        assert sorted(rows) == [(1, 5), (2, 5)]

    def test_query_local_views(self, catalog):
        db = self.db(catalog, [(1, 10), (2, 20)])
        rows = assert_engine_parity(
            db,
            "SELECT V.x FROM (SELECT A AS x FROM R WHERE A > 1) AS V",
        )
        assert rows == [(2,)]


class TestWorkloadParity:
    def test_star_workload_queries(self):
        from repro.workloads.star import QUERIES, generate

        db = generate(n_sales=5000, seed=7).database()
        for sql in QUERIES.values():
            assert_engine_parity(db, sql)

    def test_telephony_workload_query(self):
        from repro.workloads.telephony import generate

        workload = generate(n_calls=5000, seed=7)
        db = workload.database()
        row = db.execute(workload.query, engine="row").rows
        col = db.execute(workload.query, engine="columnar").rows
        assert rows_multiset_equal(row, col)


class TestRandomizedThreeWayParity:
    def test_sweep_row_columnar_sqlite(self):
        # Every scenario runs on the row engine, the columnar engine and
        # SQLite; CrossChecker(engine="both") enforces pairwise multiset
        # agreement. (CI and bench_columnar.py run wider sweeps.)
        from repro.errors import OracleUnsupported
        from repro.fuzz.generate import fuzz_scenario
        from repro.oracle import CrossChecker

        checker = CrossChecker(max_rewritings=4, engine="both")
        checked = 0
        for seed in range(60):
            scenario = fuzz_scenario(seed)
            try:
                report = checker.check(scenario)
            except OracleUnsupported:
                continue
            assert report.ok, report.describe()
            checked += 1
        assert checked >= 40


# ----------------------------------------------------------------------
# The engine= mode switch
# ----------------------------------------------------------------------


class TestEngineSwitch:
    def test_unknown_engine_rejected(self, catalog):
        db = Database(catalog, {"R": [(1, 2)]})
        with pytest.raises(EvaluationError, match="unknown engine"):
            db.execute("SELECT A FROM R", engine="gpu")

    def test_database_default_engine(self, catalog):
        db = Database(catalog, {"R": [(1, 2)]}, engine="columnar")
        assert db.execute("SELECT A FROM R").rows == [(1,)]

    def test_auto_uses_columnar_above_threshold(self, catalog, monkeypatch):
        # The evaluator imports the columnar entry point lazily from the
        # package namespace, so patch it there.
        calls = []
        import repro.engine.columnar as columnar

        real = columnar.evaluate_block_columnar

        def spy(block, resolve):
            calls.append(block)
            return real(block, resolve)

        monkeypatch.setattr(columnar, "evaluate_block_columnar", spy)

        small = Database(catalog, {"R": [(1, 2)]})
        small.execute("SELECT A FROM R", engine="auto")
        assert not calls

        big_rows = [(i, i) for i in range(COLUMNAR_AUTO_THRESHOLD)]
        big = Database(catalog, {"R": big_rows})
        result = big.execute("SELECT A FROM R WHERE A < 3", engine="auto")
        assert calls
        assert sorted(result.rows) == [(0,), (1,), (2,)]


# ----------------------------------------------------------------------
# Table columnar support (as_columns / from_rows / multiset_equal)
# ----------------------------------------------------------------------


class TestTableColumnar:
    def test_as_columns_transposes_and_caches(self):
        t = Table(("A", "B"), [(1, 10), (2, 20)])
        cols = t.as_columns()
        assert cols == [[1, 2], [10, 20]]
        assert t.as_columns() is cols

    def test_invalidate_columns_drops_cache(self):
        t = Table(("A",), [(1,)])
        first = t.as_columns()
        t.rows.append((2,))
        t.invalidate_columns()
        assert t.as_columns() == [[1, 2]]
        assert t.as_columns() is not first

    def test_empty_table_columns(self):
        t = Table(("A", "B"), [])
        assert t.as_columns() == [[], []]

    def test_from_rows_adopts_without_copy(self):
        rows = [(1,), (2,)]
        t = Table.from_rows(("A",), rows)
        assert t.rows is rows
        assert t.columns == ("A",)

    def test_multiset_equal_single_pass(self):
        t = Table(("A",), [(1,), (2,), (2,)])
        assert t.multiset_equal(Table(("A",), [(2,), (1,), (2,)]))
        assert not t.multiset_equal(Table(("A",), [(1,), (2,), (3,)]))
        assert not t.multiset_equal(Table(("A",), [(1,), (2,)]))


# ----------------------------------------------------------------------
# Direct executor entry point
# ----------------------------------------------------------------------


class TestEvaluateBlockColumnar:
    def test_direct_call(self, catalog):
        block = parse_query("SELECT A, B FROM R WHERE A = 1", catalog)
        data = Table(("A", "B"), [(1, 10), (2, 20), (1, 30)])
        result = evaluate_block_columnar(block, lambda name: data)
        assert sorted(result.rows) == [(1, 10), (1, 30)]

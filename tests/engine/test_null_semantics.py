"""Regressions for SQL NULL semantics the cross-oracle surfaced.

Both fixes were found by running the engine against stdlib sqlite3
(:mod:`repro.oracle`): aggregates must *skip* NULLs (an all-NULL input
behaves like an empty one), and division by zero yields NULL rather than
raising — rewritings routinely build ``SUM(S) / SUM(N)`` where a group's
counts can sum to zero.
"""

from fractions import Fraction

from repro.blocks.exprs import AggFunc
from repro.blocks.normalize import parse_query
from repro.catalog.load import load_schema
from repro.engine.aggregates import apply_aggregate
from repro.engine.database import Database


class TestNullSkippingAggregates:
    def test_all_null_input_behaves_as_empty(self):
        values = [None, None]
        assert apply_aggregate(AggFunc.SUM, values) is None
        assert apply_aggregate(AggFunc.MIN, values) is None
        assert apply_aggregate(AggFunc.MAX, values) is None
        assert apply_aggregate(AggFunc.AVG, values) is None
        assert apply_aggregate(AggFunc.COUNT, values) == 0

    def test_nulls_are_skipped_not_propagated(self):
        values = [1, None, 2]
        assert apply_aggregate(AggFunc.SUM, values) == 3
        assert apply_aggregate(AggFunc.COUNT, values) == 2
        assert apply_aggregate(AggFunc.MIN, values) == 1
        assert apply_aggregate(AggFunc.MAX, values) == 2
        assert apply_aggregate(AggFunc.AVG, values) == Fraction(3, 2)

    def test_null_column_through_a_query(self):
        catalog, _ = load_schema("CREATE TABLE R (a, b);")
        db = Database(catalog, {"R": [(1, None), (2, None)]})
        query = parse_query(
            "SELECT SUM(R.b) AS s, COUNT(R.b) AS n FROM R", catalog
        )
        assert db.execute(query).rows == [(None, 0)]


class TestNullJoinKeys:
    def test_hash_join_never_matches_null(self):
        # SQL: NULL = NULL is not true. The hash-join planner used to
        # match None build/probe keys (found by the nulls fuzz profile).
        catalog, _ = load_schema("CREATE TABLE R (a); CREATE TABLE S (b);")
        db = Database(catalog, {"R": [(None,), (1,)], "S": [(None,), (1,)]})
        query = parse_query(
            "SELECT R.a, S.b FROM R, S WHERE R.a = S.b", catalog
        )
        assert db.execute(query).rows == [(1, 1)]

    def test_null_join_key_in_grouped_view(self):
        catalog, _ = load_schema("CREATE TABLE R (a, b); CREATE TABLE S (c);")
        db = Database(catalog, {"R": [(None, 5)], "S": [(None,)]})
        query = parse_query(
            "SELECT R.a, COUNT(R.b) AS n FROM R, S WHERE R.a = S.c "
            "GROUP BY R.a",
            catalog,
        )
        # Empty join -> no groups at all (not a NULL-keyed group).
        assert db.execute(query).rows == []

    def test_self_join_on_null_columns(self):
        catalog, _ = load_schema("CREATE TABLE R (a, b);")
        db = Database(catalog, {"R": [(2, None), (None, 1)]})
        query = parse_query(
            "SELECT MIN(r1.a) AS out FROM R AS r1, R AS r2 "
            "WHERE r1.a = r2.b",
            catalog,
        )
        assert db.execute(query).rows == [(None,)]


class TestDivisionByZero:
    def test_zero_denominator_yields_null(self):
        # The AVG decomposition SUM(N*A)/SUM(N) with all counts zero —
        # exactly what a rewriting evaluates over NULL-bearing view rows.
        catalog, _ = load_schema("CREATE TABLE R (a, n);")
        db = Database(catalog, {"R": [(5, 0), (7, 0)]})
        query = parse_query(
            "SELECT SUM(R.n * R.a) / SUM(R.n) AS avg FROM R", catalog
        )
        assert db.execute(query).rows == [(None,)]

    def test_row_level_division_by_zero(self):
        catalog, _ = load_schema("CREATE TABLE R (a, n);")
        db = Database(catalog, {"R": [(6, 0), (6, 3)]})
        query = parse_query("SELECT R.a / R.n AS q FROM R", catalog)
        assert sorted(db.execute(query).rows, key=str) == [
            (Fraction(2),),
            (None,),
        ]

"""Regressions for SQL NULL semantics the cross-oracle surfaced.

Both fixes were found by running the engine against stdlib sqlite3
(:mod:`repro.oracle`): aggregates must *skip* NULLs (an all-NULL input
behaves like an empty one), and division by zero yields NULL rather than
raising — rewritings routinely build ``SUM(S) / SUM(N)`` where a group's
counts can sum to zero.
"""

from fractions import Fraction

from repro.blocks.exprs import AggFunc
from repro.blocks.normalize import parse_query
from repro.catalog.load import load_schema
from repro.engine.aggregates import apply_aggregate
from repro.engine.database import Database


class TestNullSkippingAggregates:
    def test_all_null_input_behaves_as_empty(self):
        values = [None, None]
        assert apply_aggregate(AggFunc.SUM, values) is None
        assert apply_aggregate(AggFunc.MIN, values) is None
        assert apply_aggregate(AggFunc.MAX, values) is None
        assert apply_aggregate(AggFunc.AVG, values) is None
        assert apply_aggregate(AggFunc.COUNT, values) == 0

    def test_nulls_are_skipped_not_propagated(self):
        values = [1, None, 2]
        assert apply_aggregate(AggFunc.SUM, values) == 3
        assert apply_aggregate(AggFunc.COUNT, values) == 2
        assert apply_aggregate(AggFunc.MIN, values) == 1
        assert apply_aggregate(AggFunc.MAX, values) == 2
        assert apply_aggregate(AggFunc.AVG, values) == Fraction(3, 2)

    def test_null_column_through_a_query(self):
        catalog, _ = load_schema("CREATE TABLE R (a, b);")
        db = Database(catalog, {"R": [(1, None), (2, None)]})
        query = parse_query(
            "SELECT SUM(R.b) AS s, COUNT(R.b) AS n FROM R", catalog
        )
        assert db.execute(query).rows == [(None, 0)]


class TestNullJoinKeys:
    def test_hash_join_never_matches_null(self):
        # SQL: NULL = NULL is not true. The hash-join planner used to
        # match None build/probe keys (found by the nulls fuzz profile).
        catalog, _ = load_schema("CREATE TABLE R (a); CREATE TABLE S (b);")
        db = Database(catalog, {"R": [(None,), (1,)], "S": [(None,), (1,)]})
        query = parse_query(
            "SELECT R.a, S.b FROM R, S WHERE R.a = S.b", catalog
        )
        assert db.execute(query).rows == [(1, 1)]

    def test_null_join_key_in_grouped_view(self):
        catalog, _ = load_schema("CREATE TABLE R (a, b); CREATE TABLE S (c);")
        db = Database(catalog, {"R": [(None, 5)], "S": [(None,)]})
        query = parse_query(
            "SELECT R.a, COUNT(R.b) AS n FROM R, S WHERE R.a = S.c "
            "GROUP BY R.a",
            catalog,
        )
        # Empty join -> no groups at all (not a NULL-keyed group).
        assert db.execute(query).rows == []

    def test_self_join_on_null_columns(self):
        catalog, _ = load_schema("CREATE TABLE R (a, b);")
        db = Database(catalog, {"R": [(2, None), (None, 1)]})
        query = parse_query(
            "SELECT MIN(r1.a) AS out FROM R AS r1, R AS r2 "
            "WHERE r1.a = r2.b",
            catalog,
        )
        assert db.execute(query).rows == [(None,)]


class TestDivisionByZero:
    def test_zero_denominator_yields_null(self):
        # The AVG decomposition SUM(N*A)/SUM(N) with all counts zero —
        # exactly what a rewriting evaluates over NULL-bearing view rows.
        catalog, _ = load_schema("CREATE TABLE R (a, n);")
        db = Database(catalog, {"R": [(5, 0), (7, 0)]})
        query = parse_query(
            "SELECT SUM(R.n * R.a) / SUM(R.n) AS avg FROM R", catalog
        )
        assert db.execute(query).rows == [(None,)]

    def test_row_level_division_by_zero(self):
        catalog, _ = load_schema("CREATE TABLE R (a, n);")
        db = Database(catalog, {"R": [(6, 0), (6, 3)]})
        query = parse_query("SELECT R.a / R.n AS q FROM R", catalog)
        assert sorted(db.execute(query).rows, key=str) == [
            (Fraction(2),),
            (None,),
        ]


def _three_way(schema_sql, instance, sql):
    """Assert row engine = columnar engine = SQLite on ``sql``.

    The columnar kernels reimplement every NULL rule from scratch
    (selection loops, arithmetic cells, group-key hashing), so each rule
    is pinned against both the row engine and the independent backend.
    Returns the columnar rows.
    """
    from repro.oracle import SQLiteBackend, rows_multiset_equal

    catalog, _ = load_schema(schema_sql)
    query = parse_query(sql, catalog)
    db = Database(catalog, instance)
    row_rows = db.execute(query, engine="row").rows
    col_rows = db.execute(query, engine="columnar").rows
    with SQLiteBackend() as backend:
        for name, schema in catalog.tables.items():
            backend.create_table(name, schema.columns)
            backend.load_rows(name, instance.get(name, []))
        sqlite_rows = backend.execute_block(query)
    assert rows_multiset_equal(row_rows, col_rows), (
        f"row vs columnar on {sql!r}: {row_rows} != {col_rows}"
    )
    assert rows_multiset_equal(col_rows, sqlite_rows), (
        f"columnar vs sqlite on {sql!r}: {col_rows} != {sqlite_rows}"
    )
    return col_rows


class TestColumnarNullSemantics:
    """NULL rules in the vectorized kernels, pinned three ways."""

    def test_null_comparison_filters(self):
        rows = [(None,), (1,), (5,), (None,)]
        for op in ("=", "<>", "<", "<=", ">", ">="):
            result = _three_way(
                "CREATE TABLE R (a);",
                {"R": rows},
                f"SELECT R.a FROM R WHERE R.a {op} 3",
            )
            assert None not in [v for (v,) in result], op

    def test_null_arithmetic_propagates(self):
        assert sorted(
            _three_way(
                "CREATE TABLE R (a, b);",
                {"R": [(1, None), (None, 2), (3, 4)]},
                "SELECT R.a + R.b AS s FROM R",
            ),
            key=str,
        ) == [(7,), (None,), (None,)]

    def test_division_by_zero_is_null(self):
        assert sorted(
            _three_way(
                "CREATE TABLE R (a, n);",
                {"R": [(6, 0), (6, 3), (None, 2)]},
                "SELECT R.a / R.n AS q FROM R",
            ),
            key=str,
        ) == [(2,), (None,), (None,)]

    def test_null_group_keys_group_together(self):
        assert sorted(
            _three_way(
                "CREATE TABLE R (k, v);",
                {"R": [(None, 1), (None, 2), (1, 3), (None, 4)]},
                "SELECT R.k, COUNT(R.v) AS n FROM R GROUP BY R.k",
            ),
            key=str,
        ) == [(1, 1), (None, 3)]

    def test_aggregates_skip_nulls_per_group(self):
        assert sorted(
            _three_way(
                "CREATE TABLE R (k, v);",
                {"R": [(1, None), (1, 4), (2, None)]},
                "SELECT R.k, SUM(R.v) AS s, COUNT(R.v) AS n "
                "FROM R GROUP BY R.k",
            )
        ) == [(1, 4, 1), (2, None, 0)]

    def test_null_join_keys_never_match(self):
        assert _three_way(
            "CREATE TABLE R (a); CREATE TABLE S (b);",
            {"R": [(None,), (1,)], "S": [(None,), (1,)]},
            "SELECT R.a, S.b FROM R, S WHERE R.a = S.b",
        ) == [(1, 1)]

    def test_scalar_aggregate_over_all_nulls(self):
        assert _three_way(
            "CREATE TABLE R (v);",
            {"R": [(None,), (None,)]},
            "SELECT SUM(R.v) AS s, COUNT(R.v) AS n FROM R",
        ) == [(None, 0)]

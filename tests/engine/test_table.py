"""Multiset table semantics."""

import pytest

from repro.engine.table import Table
from repro.errors import EvaluationError


class TestConstruction:
    def test_rows_coerced_to_tuples(self):
        t = Table(["a", "b"], [[1, 2], (3, 4)])
        assert t.rows == [(1, 2), (3, 4)]

    def test_arity_checked(self):
        with pytest.raises(EvaluationError):
            Table(["a", "b"], [(1,)])

    def test_len_and_iter(self):
        t = Table(["a"], [(1,), (2,)])
        assert len(t) == 2
        assert list(t) == [(1,), (2,)]


class TestMultisetSemantics:
    def test_duplicates_preserved(self):
        t = Table(["a"], [(1,), (1,)])
        assert len(t) == 2
        assert not t.is_set

    def test_multiset_equal_counts_duplicates(self):
        t1 = Table(["a"], [(1,), (1,), (2,)])
        t2 = Table(["x"], [(2,), (1,), (1,)])
        t3 = Table(["a"], [(1,), (2,)])
        assert t1.multiset_equal(t2)  # headers irrelevant
        assert not t1.multiset_equal(t3)

    def test_set_equal_ignores_multiplicity(self):
        t1 = Table(["a"], [(1,), (1,), (2,)])
        t3 = Table(["a"], [(1,), (2,)])
        assert t1.set_equal(t3)

    def test_distinct(self):
        t = Table(["a"], [(2,), (1,), (2,)])
        d = t.distinct()
        assert d.rows == [(2,), (1,)]  # stable order
        assert t.rows == [(2,), (1,), (2,)]  # original untouched

    def test_is_set(self):
        assert Table(["a"], [(1,), (2,)]).is_set
        assert Table(["a"], []).is_set


class TestAccess:
    def test_column_values(self):
        t = Table(["a", "b"], [(1, "x"), (2, "y")])
        assert t.column_values("b") == ["x", "y"]

    def test_unknown_column(self):
        with pytest.raises(EvaluationError):
            Table(["a"], []).column_index("zzz")

    def test_as_counter(self):
        t = Table(["a"], [(1,), (1,)])
        assert t.as_counter() == {(1,): 2}


class TestDisplay:
    def test_to_text_contains_all(self):
        text = Table(["a", "bee"], [(1, 2)]).to_text()
        assert "bee" in text and "1" in text

    def test_to_text_limit(self):
        t = Table(["a"], [(i,) for i in range(30)])
        text = t.to_text(limit=5)
        assert "25 more rows" in text

"""Shared helpers for the benchmark suite: timing and result tables.

Benchmarks print the series they measure in a fixed-width table so that
``pytest benchmarks/ --benchmark-only`` output doubles as the
EXPERIMENTS.md data source.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence


def time_once(fn: Callable[[], object]) -> float:
    """Wall-clock seconds for one call."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def time_best(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds (reduces scheduler noise)."""
    return min(time_once(fn) for _ in range(repeats))


@dataclass
class ResultTable:
    """Collects rows and renders a fixed-width table to stdout."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(values)

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            f"== {self.title} ==",
            "  ".join(c.rjust(w) for c, w in zip(self.columns, widths)),
        ]
        for row in cells:
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def speedup(baseline: float, improved: float) -> Optional[float]:
    """``baseline / improved`` guarded against zero timings."""
    if improved <= 0:
        return None
    return baseline / improved


@dataclass
class BenchReport:
    """A machine-readable benchmark report (``BENCH_rewriting.json``).

    Each workload entry carries per-workload wall times, candidate counts
    and cache statistics; ``write`` serializes the whole report with a
    schema marker so downstream tooling can detect format drift.
    """

    SCHEMA = "repro-bench/1"

    workloads: dict[str, dict] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def add_workload(self, name: str, **metrics: object) -> dict:
        entry = self.workloads.setdefault(name, {})
        entry.update(metrics)
        return entry

    def as_dict(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "generated_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime()
            ),
            "python": platform.python_version(),
            "platform": platform.platform(),
            **self.meta,
            "workloads": self.workloads,
        }

    def write(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")

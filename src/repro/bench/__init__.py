"""Benchmark harness helpers."""

from .harness import BenchReport, ResultTable, speedup, time_best, time_once

__all__ = ["BenchReport", "ResultTable", "speedup", "time_best", "time_once"]

"""Benchmark harness helpers."""

from .harness import ResultTable, speedup, time_best, time_once

__all__ = ["ResultTable", "speedup", "time_best", "time_once"]

"""Command-line interface: ``python -m repro COMMAND``.

Commands:

``rewrite``
    Load a schema script (CREATE TABLE / CREATE VIEW), rewrite a query to
    use the materialized views, print ranked rewritings.
``explain``
    Diagnose per-condition why each view is or is not usable; with
    ``--trace``, also print where the rewrite search spends its time.
``batch``
    Rewrite many queries from a JSON-lines file through the concurrent
    batch service; one JSON response per line on stdout.
``check``
    Empirically compare two queries for multiset-equivalence on random
    databases.
``advise``
    Recommend summary views for a workload under a storage budget.
``query``
    Execute a query over CSV data files, optionally through the cheapest
    view-based rewriting.
``fuzz``
    Property-based fuzzing of rewrite soundness against independent
    live backends (``--backend sqlite|duckdb|all``); mismatches are
    shrunk to replayable JSON repros (``repro fuzz --replay <file>``).
    See ``docs/oracle.md``.
``emit``
    Print a query — or the whole conformance corpus — as SQL text in a
    chosen dialect (``--dialect sqlite|duckdb|postgres|ansi``).
``rewrite-sql``
    Federation middleware, one-shot: take SQL text, rewrite it against a
    schema script or a live SQLite database file, print dialect-correct
    SQL (optionally ``--execute`` and ``--verify`` on the live file).
``serve-sql``
    The same middleware as a JSON-lines loop on stdin/stdout; per-line
    errors are reported in-band, never fatal. With
    ``--metrics-interval`` the loop also emits periodic in-band
    ``repro-metrics/1`` frames. See ``docs/dialects.md``.
``serve``
    The always-on rewriting daemon: ``repro-api/1`` JSONL over TCP
    and/or a Unix socket, with admission control, per-tenant quotas and
    a cross-worker shared memo tier. Talk to it with
    ``repro.api.connect()``. See ``docs/serving.md``.
``metrics``
    Run one rewrite search with metrics enabled and print the registry
    as Prometheus text exposition. See ``docs/observability.md``.

Schema scripts are ';'-separated statements; a workload file is a script
whose SELECT statements form the workload. Every ``--json`` output is
the consolidated ``repro-api/1`` envelope — top-level ``schema`` /
``kind`` / ``ok`` and exactly one of ``result`` or ``error`` (see
``docs/api.md``).
``rewrite``, ``batch``, ``fuzz`` and ``serve-sql`` accept
``--metrics-out FILE`` to write a scrape-ready Prometheus snapshot of
everything the command did on exit.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from . import api
from .blocks.normalize import parse_query
from .blocks.to_sql import block_to_sql, view_to_sql
from .catalog.load import load_schema
from .core.explain import explain_usability
from .core.rewriter import RewriteEngine
from .equivalence import check_equivalent
from .errors import ReproError
from .obs import SearchBudget
from .service import MODES, RewriteRequest
from .service.requests import API_SCHEMA


def _budget_from(args) -> Optional[SearchBudget]:
    """A SearchBudget from the --deadline-ms / --max-* flags, or None."""
    deadline = getattr(args, "deadline_ms", None)
    max_mappings = getattr(args, "max_mappings", None)
    max_candidates = getattr(args, "max_candidates", None)
    if deadline is None and max_mappings is None and max_candidates is None:
        return None
    return SearchBudget(
        deadline=deadline / 1000.0 if deadline is not None else None,
        max_mappings=max_mappings,
        max_candidates=max_candidates,
    )


def _print_search_report(result) -> None:
    """The --trace / budget epilogue shared by rewrite and explain."""
    if result.exhausted:
        tripped = ",".join(result.budget.get("tripped", []))
        print(
            f"\n-- search budget exhausted ({tripped}): "
            "results are partial but sound"
        )
    if result.trace is not None:
        print("\n-- trace:")
        print(result.trace.format())


def _load(args) -> tuple:
    with open(args.schema) as handle:
        script = handle.read()
    return load_schema(script)


def _query_from(args, catalog, queries):
    if args.query:
        return parse_query(args.query, catalog)
    if queries:
        return queries[-1]
    raise ReproError(
        "no query given: pass --query or end the schema script with a "
        "SELECT statement"
    )


def cmd_rewrite(args) -> int:
    catalog, queries = _load(args)
    query = _query_from(args, catalog, queries)
    if args.json:
        response = api.rewrite(
            query,
            catalog=catalog,
            budget=_budget_from(args),
            unfold=args.unfold,
            trace=args.trace,
            strategy=args.strategy,
        )
        print(json.dumps(api.to_envelope(response), indent=2))
        return 0 if response.rewritings else 1
    engine = RewriteEngine(catalog)
    result = engine.rewrite(
        query,
        unfold=args.unfold,
        budget=_budget_from(args),
        trace=args.trace,
        strategy=args.strategy,
    )
    print(f"-- query (estimated cost {result.original_cost:,.0f}):")
    print(block_to_sql(result.query))
    if not result.ranked:
        print("\n-- no usable view found")
        if args.explain:
            print()
            for view in engine.views:
                print(explain_usability(result.query, view).summary())
        _print_search_report(result)
        return 1
    shown = result.ranked if args.all else result.ranked[:1]
    for i, ranked in enumerate(shown, 1):
        print(
            f"\n-- rewriting {i} of {len(result.ranked)} "
            f"(estimated cost {ranked.cost:,.0f}, "
            f"uses {', '.join(ranked.rewriting.view_names)}):"
        )
        print(ranked.rewriting.sql())
    _print_search_report(result)
    return 0


def cmd_explain(args) -> int:
    catalog, queries = _load(args)
    query = _query_from(args, catalog, queries)
    if args.json:
        response = api.explain(query, catalog, view=args.view or None)
        print(json.dumps(api.to_envelope(response), indent=2))
        return 0
    views = list(catalog.views.values())
    if args.view:
        views = [catalog.view(args.view)]
    for view in views:
        print(explain_usability(query, view).summary())
        print()
    if args.trace:
        # Where the time goes: run the full instrumented search once.
        engine = RewriteEngine(catalog)
        result = engine.rewrite(
            query, budget=_budget_from(args), trace=True
        )
        print(
            f"-- search: {len(result.ranked)} rewriting(s) found"
        )
        _print_search_report(result)
    return 0


def _parse_batch_line(
    obj: dict, line_no: int, catalog, default_strategy: str = "c1c4"
) -> RewriteRequest:
    """One JSONL object -> RewriteRequest (see docs/api.md for fields)."""
    from .strategies import normalize_strategy

    if "query" not in obj:
        raise ReproError(f"line {line_no}: missing required field 'query'")
    try:
        strategy = normalize_strategy(
            obj.get("strategy", default_strategy)
        )
    except ReproError as error:
        raise ReproError(f"line {line_no}: {error}") from error
    deadline_ms = obj.get("deadline_ms")
    max_mappings = obj.get("max_mappings")
    max_candidates = obj.get("max_candidates")
    budget = None
    if (
        deadline_ms is not None
        or max_mappings is not None
        or max_candidates is not None
    ):
        budget = SearchBudget(
            deadline=deadline_ms / 1000.0 if deadline_ms is not None else None,
            max_mappings=max_mappings,
            max_candidates=max_candidates,
        )
    return RewriteRequest(
        query=obj["query"],
        catalog=catalog,
        budget=budget,
        max_steps=obj.get("max_steps", 3),
        unfold=obj.get("unfold", False),
        request_id=str(obj.get("id", f"line-{line_no}")),
        strategy=strategy,
    )


def cmd_batch(args) -> int:
    catalog, _queries = _load(args)
    requests = []
    with open(args.requests) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{args.requests}:{line_no}: not valid JSON ({error})"
                ) from error
            if not isinstance(obj, dict):
                raise ReproError(
                    f"{args.requests}:{line_no}: expected a JSON object"
                )
            requests.append(
                _parse_batch_line(
                    obj, line_no, catalog, default_strategy=args.strategy
                )
            )
    if not requests:
        raise ReproError(f"{args.requests}: no requests found")
    result = api.rewrite_batch(
        requests,
        mode=args.mode,
        workers=args.workers,
        deadline=(
            args.deadline_ms / 1000.0
            if args.deadline_ms is not None
            else None
        ),
    )
    # Responses as JSON lines on stdout (request order); the batch-level
    # report goes to stderr so stdout stays parseable line by line.
    for response in result:
        print(json.dumps(api.to_envelope(response)))
    print(
        json.dumps(
            api.to_envelope(
                {"batch": result.report}, kind="batch-report"
            )
        ),
        file=sys.stderr,
    )
    return 0 if result.error_count == 0 else 1


def cmd_check(args) -> int:
    catalog, queries = _load(args)
    left = parse_query(args.left, catalog)
    right = parse_query(args.right, catalog)
    counterexample = check_equivalent(
        catalog, left, right, trials=args.trials, seed=args.seed
    )
    if counterexample is None:
        print(
            f"EQUIVALENT on {args.trials} random databases "
            f"(seed {args.seed})"
        )
        return 0
    print("NOT EQUIVALENT:")
    print(counterexample)
    return 1


def cmd_advise(args) -> int:
    from .advisor import recommend_views

    catalog, queries = _load(args)
    if args.workload:
        with open(args.workload) as handle:
            _catalog, workload = load_schema(handle.read(), catalog)
    else:
        workload = queries
    if not workload:
        raise ReproError("the workload has no SELECT statements")
    recommendation = recommend_views(
        catalog, workload, space_budget_rows=args.budget
    )
    print(recommendation.summary())
    for report in recommendation.per_query:
        line = f"  {report.speedup:10,.1f}x"
        line += f"  via {report.view_used}" if report.view_used else "  (direct)"
        print(line)
    print()
    for view in recommendation.views:
        print(view_to_sql(view) + ";")
        print()
    return 0


def cmd_query(args) -> int:
    from .blocks.nested import parse_nested_query
    from .engine.io import load_database
    from .obs.metrics import timed

    catalog, queries = _load(args)
    if args.query:
        nested = parse_nested_query(args.query, catalog)
    elif queries:
        from .blocks.nested import NestedQuery

        nested = NestedQuery(block=queries[-1])
    else:
        raise ReproError(
            "no query given: pass --query or end the schema script with a "
            "SELECT statement"
        )
    db = load_database(catalog, args.data)

    plan = nested.block
    extra = dict(nested.local_map())
    used = "direct evaluation"
    if args.use_views:
        engine = RewriteEngine(catalog)
        result = engine.rewrite_nested(nested)
        plan, extra = result.best_plan()
        if result.used_views:
            used = "rewritten over " + ", ".join(result.used_views)
    with timed("repro_query_seconds") as timer:
        table = db.execute(plan, extra_views=extra, engine=args.engine)
    print(table.to_text(limit=args.limit))
    print(f"\n({len(table)} rows in {timer.seconds * 1000:.2f} ms, {used})")
    return 0


def cmd_emit(args) -> int:
    from .dialects import get_dialect
    from .dialects.conformance import emit_corpus

    dialect = get_dialect(args.dialect)
    if args.conformance:
        text = emit_corpus(dialect)
        if args.json:
            print(
                json.dumps(
                    api.to_envelope(
                        {"dialect": dialect.name, "corpus": text},
                        kind="conformance",
                    ),
                    indent=2,
                )
            )
        else:
            print(text)
        return 0
    if not args.schema:
        raise ReproError(
            "nothing to emit: pass --schema (and --query) or --conformance"
        )
    catalog, queries = _load(args)
    query = _query_from(args, catalog, queries)
    views = [
        view_to_sql(view, dialect=dialect) + ";"
        for view in catalog.views.values()
    ]
    sql = block_to_sql(query, dialect=dialect)
    if args.json:
        payload = {"dialect": dialect.name, "sql": sql}
        if args.views:
            payload["views"] = views
        print(json.dumps(api.to_envelope(payload, kind="emit"), indent=2))
        return 0
    if args.views:
        for statement in views:
            print(statement)
            print()
    print(sql + ";")
    return 0


def _materialized_from(args) -> dict:
    """--materialized NAME=SELECT... (repeatable) -> {name: sql}."""
    materialized = {}
    for entry in args.materialized or ():
        name, sep, sql = entry.partition("=")
        if not sep or not name.strip() or not sql.strip():
            raise ReproError(
                f"--materialized {entry!r}: expected NAME=SELECT ..."
            )
        materialized[name.strip()] = sql.strip()
    return materialized


def _federation_from(args):
    """(SqlRewriter-like, connection-or-None) from --schema / --db."""
    import sqlite3

    from .federation import FederationSession, SqlRewriter

    materialized = _materialized_from(args)
    if args.db:
        connection = sqlite3.connect(args.db)
        session = FederationSession(
            connection,
            dialect=args.dialect,
            materialized=materialized,
            budget=_budget_from(args),
            only_improving=not args.force_rewrite,
        )
        return session, connection
    if not args.schema:
        raise ReproError("pass --schema SCRIPT or --db FILE")
    catalog, _queries = _load(args)
    if materialized:
        from .federation import parse_materialized_views

        parse_materialized_views(catalog, materialized)
    rewriter = SqlRewriter(
        catalog,
        dialect=args.dialect,
        budget=_budget_from(args),
        only_improving=not args.force_rewrite,
    )
    return rewriter, None


def cmd_rewrite_sql(args) -> int:
    middleware, connection = _federation_from(args)
    if (args.execute or args.verify) and connection is None:
        raise ReproError("--execute/--verify require --db FILE")
    if args.execute or args.verify:
        result = middleware.execute(args.sql, verify=args.verify)
        if args.json:
            print(json.dumps(api.to_envelope(result), indent=2))
        else:
            outcome = result.outcome
            for statement in outcome.statements:
                print(statement + ";")
            for row in result.rows:
                print(tuple(row))
            if result.verified is not None:
                print(f"-- verified: {result.verified}")
        if args.verify and result.verified is False:
            return 1
        return 0
    outcome = middleware.rewrite_sql(args.sql)
    if args.json:
        print(json.dumps(api.to_envelope(outcome), indent=2))
    else:
        for statement in outcome.statements:
            print(statement + ";")
        if outcome.rewritten:
            print(
                f"-- rewritten over {', '.join(outcome.used_views)} "
                f"(cost {outcome.cost_original:,.0f} -> "
                f"{outcome.cost_rewritten:,.0f})"
            )
        else:
            print("-- passed through unchanged")
    return 0


def cmd_serve_sql(args) -> int:
    import time

    from .obs.metrics import (
        METRICS_SCHEMA,
        MetricsRegistry,
        current_metrics,
        set_global_metrics,
    )

    # Periodic in-band metric frames need a live registry; reuse the
    # --metrics-out one when present, else install our own for the loop.
    interval = getattr(args, "metrics_interval", 0.0) or 0.0
    registry = current_metrics()
    owns_registry = False
    if interval > 0 and registry is None:
        registry = MetricsRegistry()
        set_global_metrics(registry)
        owns_registry = True

    started = time.monotonic()
    last_frame = started
    seq = 0

    def emit_frame() -> None:
        nonlocal seq
        seq += 1
        print(
            json.dumps(
                {
                    "schema": METRICS_SCHEMA,
                    "kind": "metrics-frame",
                    "seq": seq,
                    "elapsed": round(time.monotonic() - started, 3),
                    "metrics": registry.snapshot().as_dict(),
                }
            ),
            flush=True,
        )

    try:
        middleware, connection = _federation_from(args)
        for line_no, line in enumerate(sys.stdin, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                obj = json.loads(line)
                if isinstance(obj, str):
                    obj = {"sql": obj}
                if not isinstance(obj, dict) or "sql" not in obj:
                    raise ReproError(
                        f"line {line_no}: expected an object with 'sql'"
                    )
                execute = bool(obj.get("execute")) or bool(obj.get("verify"))
                if execute and connection is None:
                    raise ReproError(
                        f"line {line_no}: execute/verify require --db FILE"
                    )
                if execute:
                    result = middleware.execute(
                        obj["sql"], verify=bool(obj.get("verify"))
                    )
                    doc = result.to_json_dict()
                else:
                    doc = middleware.rewrite_sql(obj["sql"]).to_json_dict()
            except (ReproError, json.JSONDecodeError) as error:
                doc = {"schema": API_SCHEMA, "kind": "error",
                       "error": str(error)}
            if isinstance(obj, dict) and "id" in obj:
                doc["id"] = obj["id"]
            print(json.dumps(doc), flush=True)
            if interval > 0 and time.monotonic() - last_frame >= interval:
                emit_frame()
                last_frame = time.monotonic()
        if interval > 0:
            # A closing frame so short sessions still report totals.
            emit_frame()
    finally:
        if owns_registry:
            set_global_metrics(None)
    return 0


def _tenant_quotas_from(args) -> dict:
    """--tenant NAME=MAX_INFLIGHT[:DEADLINE_MS] (repeatable) -> quotas."""
    from .serving import TenantQuota

    quotas = {}
    for entry in args.tenant or ():
        name, sep, spec = entry.partition("=")
        if not sep or not name.strip() or not spec.strip():
            raise ReproError(
                f"--tenant {entry!r}: expected NAME=MAX_INFLIGHT"
                "[:DEADLINE_MS]"
            )
        inflight, _sep, deadline = spec.partition(":")
        try:
            quotas[name.strip()] = TenantQuota(
                max_inflight=int(inflight),
                deadline_ms_cap=float(deadline) if deadline else None,
            )
        except ValueError as error:
            raise ReproError(f"--tenant {entry!r}: {error}") from error
    return quotas


def cmd_serve(args) -> int:
    import asyncio

    from .engine.database import Database
    from .obs.metrics import (
        MetricsRegistry,
        current_metrics,
        set_global_metrics,
    )
    from .serving import RewriteDaemon

    catalog, _queries = _load(args)

    # The daemon always runs instrumented: reuse the --metrics-out
    # registry when main() installed one, else own a fresh one so the
    # in-band `metrics` op and --metrics-interval frames have data.
    registry = current_metrics()
    owns_registry = registry is None
    if owns_registry:
        registry = MetricsRegistry()
        set_global_metrics(registry)

    daemon = RewriteDaemon(
        catalog,
        database=Database(catalog),
        workers=args.workers,
        queue_limit=args.queue_limit,
        tenant_quotas=_tenant_quotas_from(args),
        memo_capacity=args.memo_capacity,
        metrics=registry,
        metrics_interval=args.metrics_interval,
    )

    async def run() -> None:
        await daemon.start(
            host=args.host, port=args.port, unix_path=args.socket
        )
        # The ready line on stdout: harnesses wait for it and read the
        # bound addresses (TCP port 0 picks a free one).
        print(
            json.dumps(
                api.to_envelope(
                    {
                        "addresses": [list(a) for a in daemon.addresses],
                        "workers": daemon.workers,
                        "queue_limit": daemon.admission.queue_limit,
                        "shared_memo": daemon.memo.name is not None,
                    },
                    kind="serve-ready",
                )
            ),
            flush=True,
        )
        await daemon.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        daemon.stop()
    finally:
        if owns_registry:
            set_global_metrics(None)
    return 0


def cmd_metrics(args) -> int:
    from .obs.metrics import MetricsRegistry, collecting

    catalog, queries = _load(args)
    query = _query_from(args, catalog, queries)
    registry = MetricsRegistry()
    with collecting(registry):
        api.rewrite(query, catalog=catalog, budget=_budget_from(args))
    sys.stdout.write(registry.render_prometheus())
    return 0


def _fuzz_backends(args) -> Optional[tuple]:
    from .oracle import available_backends, backend_available

    if args.backend is None:
        return None
    if args.backend == "all":
        return tuple(available_backends())
    if args.backend == "duckdb":
        if not backend_available("duckdb"):
            raise ReproError(
                "oracle backend 'duckdb' requires the duckdb package "
                "(pip install duckdb)"
            )
        # N-way: the engine vs sqlite vs duckdb, never duckdb alone.
        return ("sqlite", "duckdb")
    return ("sqlite",)


def cmd_fuzz(args) -> int:
    import os
    from pathlib import Path

    from .fuzz import FuzzRunner, inject_bug, replay

    backends = _fuzz_backends(args)
    if args.replay:
        # Honour --inject-bug during replay too, so a repro produced by a
        # mutation run can be re-examined under the same injected bug.
        # When --engine is not given (None), replay() falls back to the
        # mode recorded in the repro document itself.
        if args.inject_bug:
            with inject_bug(args.inject_bug):
                report = replay(
                    Path(args.replay),
                    engine=args.engine,
                    backends=backends,
                    strategy=args.strategy,
                )
        else:
            report = replay(
                Path(args.replay),
                engine=args.engine,
                backends=backends,
                strategy=args.strategy,
            )
        print(report.describe())
        return 0 if report.ok else 1

    base_seed = args.seed
    if args.seed_from_env:
        # CI rotates the seed per run so the corpus keeps moving; any
        # failure is still reproducible from the persisted repro file.
        raw = (
            os.environ.get("FUZZ_SEED")
            or os.environ.get("GITHUB_RUN_ID")
            or "0"
        )
        base_seed = int(raw) % 1_000_000_007

    runner = FuzzRunner(
        out_dir=Path(args.out_dir),
        base_seed=base_seed,
        engine=args.engine or "auto",
        backends=backends or ("sqlite",),
        strategy=args.strategy or "c1c4",
    )

    def progress(stats, elapsed):
        print(
            f"  ... {stats.scenarios} scenarios, "
            f"{stats.rewritings} rewritings, "
            f"{stats.failures} failures ({elapsed:.0f}s)",
            file=sys.stderr,
        )

    def run():
        return runner.run(
            budget_seconds=args.budget,
            max_scenarios=args.max_scenarios,
            max_failures=args.max_failures,
            progress=None if args.json else progress,
        )

    if args.inject_bug:
        with inject_bug(args.inject_bug):
            stats = run()
    else:
        stats = run()

    if args.json:
        payload = {"base_seed": base_seed}
        payload.update(stats.as_dict())
        print(
            json.dumps(
                api.to_envelope(payload, kind="fuzz-stats"), indent=2
            )
        )
    else:
        print(
            f"fuzz: {stats.scenarios} scenarios "
            f"({stats.scenarios_per_sec:.0f}/s), {stats.checks} checks, "
            f"{stats.rewritings} rewritings, {stats.skipped} skipped, "
            f"{stats.failures} failures"
        )
        for path in stats.failure_files:
            print(f"  repro written: {path}")
    return 1 if stats.failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Answer SQL queries with aggregation using materialized views "
            "(Dar, Jagadish, Levy, Srivastava, 1996)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument(
            "--schema",
            required=True,
            help="SQL script with CREATE TABLE / CREATE VIEW statements",
        )

    def metrics_flag(p):
        p.add_argument(
            "--metrics-out",
            metavar="FILE",
            help="collect metrics while the command runs and write a "
            "Prometheus text snapshot to FILE on exit",
        )

    def strategy_flag(p):
        p.add_argument(
            "--strategy",
            choices=["c1c4", "cohen_nutt", "both"],
            default="c1c4",
            help="planner strategy: the C1-C4 usability conditions "
            "(default), or add Cohen-Nutt complete-rewriting extras "
            "(cohen_nutt/both)",
        )

    def search_knobs(p):
        p.add_argument(
            "--trace",
            action="store_true",
            help="print per-stage timings and search counters",
        )
        p.add_argument(
            "--deadline-ms",
            type=float,
            help="wall-clock budget for the rewrite search (milliseconds)",
        )
        p.add_argument(
            "--max-mappings",
            type=int,
            help="cap on column mappings enumerated by the search",
        )
        p.add_argument(
            "--max-candidates",
            type=int,
            help="cap on candidate rewritings generated by the search",
        )

    p = sub.add_parser("rewrite", help="rewrite a query to use views")
    common(p)
    p.add_argument("--query", help="the SELECT to rewrite")
    strategy_flag(p)
    p.add_argument(
        "--all", action="store_true", help="print every rewriting found"
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="on failure, print per-view condition diagnoses",
    )
    p.add_argument(
        "--unfold",
        action="store_true",
        help="first unfold conjunctive views in the query's FROM clause",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-api/1 JSON projection instead of text",
    )
    search_knobs(p)
    metrics_flag(p)
    p.set_defaults(func=cmd_rewrite)

    p = sub.add_parser("explain", help="diagnose view usability")
    common(p)
    p.add_argument("--query", help="the SELECT to diagnose against")
    p.add_argument("--view", help="restrict to one view name")
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-api/1 JSON projection instead of text",
    )
    search_knobs(p)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "batch",
        help="rewrite many queries (JSON-lines file) through the service",
    )
    common(p)
    p.add_argument(
        "requests",
        help=(
            "JSON-lines file; each line an object with 'query' plus "
            "optional id, deadline_ms, max_mappings, max_candidates, "
            "max_steps, unfold (see docs/api.md)"
        ),
    )
    p.add_argument(
        "--mode",
        choices=MODES,
        default="auto",
        help="execution backend (default: auto by batch size)",
    )
    p.add_argument(
        "--workers",
        type=int,
        help="worker count for thread/process modes (default: CPU count)",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        help="wall-clock budget for the WHOLE batch (milliseconds); "
        "overflow requests degrade gracefully",
    )
    strategy_flag(p)
    metrics_flag(p)
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser("check", help="empirical equivalence check")
    common(p)
    p.add_argument("--left", required=True)
    p.add_argument("--right", required=True)
    p.add_argument("--trials", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("advise", help="recommend views for a workload")
    common(p)
    p.add_argument(
        "--workload",
        help="SQL script of SELECTs (defaults to SELECTs in --schema)",
    )
    p.add_argument("--budget", type=float, default=float("inf"))
    p.set_defaults(func=cmd_advise)

    p = sub.add_parser("query", help="run a query over CSV data")
    common(p)
    p.add_argument("--data", required=True, help="directory of <table>.csv")
    p.add_argument("--query", help="the SELECT to run")
    p.add_argument(
        "--use-views",
        action="store_true",
        help="evaluate through the cheapest view rewriting when one wins",
    )
    p.add_argument("--limit", type=int, default=20)
    p.add_argument(
        "--engine",
        choices=["row", "columnar", "auto"],
        default="auto",
        help="execution engine (default: auto — columnar for large inputs)",
    )
    p.set_defaults(func=cmd_query)

    from .dialects import DIALECT_NAMES

    def dialect_flag(p, default="sqlite"):
        p.add_argument(
            "--dialect",
            default=default,
            metavar="NAME",
            help=(
                "target SQL dialect: one of "
                + ", ".join(DIALECT_NAMES)
                + f" (default: {default})"
            ),
        )

    p = sub.add_parser(
        "emit",
        help="print a query (or the conformance corpus) in a dialect",
    )
    dialect_flag(p)
    p.add_argument(
        "--schema",
        help="SQL script with CREATE TABLE / CREATE VIEW statements",
    )
    p.add_argument("--query", help="the SELECT to emit")
    p.add_argument(
        "--views",
        action="store_true",
        help="also emit every catalog view as CREATE VIEW",
    )
    p.add_argument(
        "--conformance",
        action="store_true",
        help="emit the built-in conformance corpus instead of a query",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-api/1 JSON projection instead of text",
    )
    p.set_defaults(func=cmd_emit)

    def federation_flags(p):
        dialect_flag(p)
        p.add_argument(
            "--schema",
            help="SQL script with CREATE TABLE / CREATE VIEW statements",
        )
        p.add_argument(
            "--db",
            help="SQLite database file to ingest the catalog from "
            "(and to execute on)",
        )
        p.add_argument(
            "--materialized",
            action="append",
            metavar="NAME=SQL",
            help="declare a table as materializing the given SELECT "
            "(repeatable); it becomes a rewriting candidate",
        )
        p.add_argument(
            "--force-rewrite",
            action="store_true",
            help="use the best rewriting even when its estimated cost "
            "does not beat direct evaluation",
        )
        search_knobs(p)

    p = sub.add_parser(
        "rewrite-sql",
        help="rewrite one SQL statement through the federation middleware",
    )
    federation_flags(p)
    p.add_argument("--sql", required=True, help="the SELECT to rewrite")
    p.add_argument(
        "--execute",
        action="store_true",
        help="execute the (rewritten) statement on --db and print rows",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="also run the original query on --db and demand "
        "multiset-equality (exit 1 on disagreement)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-api/1 JSON projection instead of text",
    )
    p.set_defaults(func=cmd_rewrite_sql)

    p = sub.add_parser(
        "serve-sql",
        help="federation middleware as a JSON-lines loop on stdin/stdout",
    )
    federation_flags(p)
    p.add_argument(
        "--metrics-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="emit an in-band repro-metrics/1 JSON frame at least this "
        "often, plus one at end of input; 0 disables (default)",
    )
    metrics_flag(p)
    p.set_defaults(func=cmd_serve_sql)

    p = sub.add_parser(
        "serve",
        help="always-on rewriting daemon over TCP / Unix sockets "
        "(repro-api/1 JSONL)",
    )
    common(p)
    p.add_argument(
        "--host",
        default=None,
        help="TCP bind address (default: 127.0.0.1 unless --socket only)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port; 0 picks a free one, reported on the serve-ready "
        "line (default: 0)",
    )
    p.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="also (or only) listen on a Unix-domain socket at PATH",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process workers sharing the memo tier; 0 = serial "
        "in-process execution (default: 0)",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="daemon-wide bound on admitted-but-unfinished requests; "
        "overload refuses in-band, never drops connections "
        "(default: 64)",
    )
    p.add_argument(
        "--tenant",
        action="append",
        metavar="NAME=MAX_INFLIGHT[:DEADLINE_MS]",
        help="per-tenant quota: in-flight cap and optional search "
        "deadline ceiling (repeatable)",
    )
    p.add_argument(
        "--memo-capacity",
        type=int,
        default=4 * 1024 * 1024,
        metavar="BYTES",
        help="shared memo segment capacity (default: 4 MiB)",
    )
    p.add_argument(
        "--metrics-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="emit a repro-metrics/1 frame on stdout this often; "
        "0 disables (default)",
    )
    metrics_flag(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "metrics",
        help="run one rewrite with metrics on and print Prometheus text",
    )
    common(p)
    p.add_argument("--query", help="the SELECT to rewrite")
    search_knobs(p)
    p.set_defaults(func=cmd_metrics)

    from .fuzz import BUG_NAMES

    p = sub.add_parser(
        "fuzz",
        help="fuzz rewrite soundness against live backend cross-oracles",
    )
    p.add_argument(
        "--backend",
        choices=["sqlite", "duckdb", "all"],
        default=None,
        help="live oracle backends: 'duckdb' means the N-way "
        "engine=sqlite=duckdb oracle; 'all' uses every installed "
        "driver. Default: sqlite for fuzzing, the recorded set for "
        "--replay",
    )
    p.add_argument(
        "--budget",
        type=float,
        default=60.0,
        help="wall-clock budget in seconds (default: 60)",
    )
    p.add_argument(
        "--max-scenarios",
        type=int,
        help="stop after this many scenarios (default: budget-bound only)",
    )
    p.add_argument(
        "--max-failures",
        type=int,
        default=5,
        help="stop after this many distinct failures (default: 5)",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="base seed (default: 0)"
    )
    p.add_argument(
        "--seed-from-env",
        action="store_true",
        help="derive the base seed from $FUZZ_SEED or $GITHUB_RUN_ID",
    )
    p.add_argument(
        "--out-dir",
        default="fuzz-failures",
        help="directory for shrunk repro files (default: fuzz-failures)",
    )
    p.add_argument(
        "--replay",
        metavar="FILE",
        help="re-run one persisted repro-fuzz/1 JSON file and exit",
    )
    p.add_argument(
        "--inject-bug",
        choices=BUG_NAMES,
        help="mutation-test the oracle: patch a known evaluator bug in "
        "and require the fuzzer to catch it",
    )
    p.add_argument(
        "--engine",
        choices=["row", "columnar", "both", "auto"],
        default=None,
        help="execution engine per scenario; 'both' cross-checks row vs "
        "columnar on every evaluation (three-way oracle with SQLite). "
        "Default: auto for fuzzing, the recorded mode for --replay",
    )
    p.add_argument(
        "--strategy",
        choices=["c1c4", "cohen_nutt", "both"],
        default=None,
        help="planner strategy the oracle searches with; 'both' runs "
        "the cross-planner differential mode (oracle soundness plus "
        "C1-C4 <= Cohen-Nutt dominance per scenario). Default: c1c4 "
        "for fuzzing, the recorded strategy for --replay",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the stats report as a repro-api/1 envelope "
        "(kind fuzz-stats)",
    )
    metrics_flag(p)
    p.set_defaults(func=cmd_fuzz)
    return parser


def _with_metrics_out(args) -> int:
    """Run the command under a fresh global registry and persist it.

    The Prometheus snapshot is written even when the command fails, so
    a crashed fuzz sweep still leaves its counters behind.
    """
    from .obs.metrics import (
        MetricsRegistry,
        render_prometheus,
        set_global_metrics,
    )

    registry = MetricsRegistry()
    previous = set_global_metrics(registry)
    try:
        return args.func(args)
    finally:
        set_global_metrics(previous)
        with open(args.metrics_out, "w") as handle:
            handle.write(render_prometheus(registry))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "metrics_out", None):
            return _with_metrics_out(args)
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

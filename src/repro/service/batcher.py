"""Group batch requests so identical view sets share planner warm-up.

The planner's expensive state — the view-signature index and the
substitution memo — is a pure function of ``(catalog tables, views,
use_set_semantics)``. Two requests with equal triples can therefore run
against one shared :class:`~repro.core.planner.RewritePlanner`, paying
for index construction once and reusing memoized single-view
substitutions across the whole group (the hot-query amortization that
motivates the service; cf. Cohen & Nutt's framing of rewriting as
parallel candidate search over a fixed view set).

Grouping is value-based, not identity-based: the fingerprint hashes the
catalog's table schemas and each view's canonical key, so equal-but-
distinct catalog objects (for example, requests deserialized from a
JSONL file) still coalesce. Canonical keys are strings, which also makes
fingerprints stable across processes under hash randomization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..blocks.query_block import ViewDef
from ..catalog.schema import Catalog
from ..core.canonical import canonical_key
from .requests import RewriteRequest

#: Fingerprint of one group: hashable, equal iff planner state is
#: interchangeable between the groups' requests.
GroupKey = tuple


def view_fingerprint(view: ViewDef) -> tuple:
    """A value-identity for one view, stable across processes."""
    return (view.name, canonical_key(view.block), view.output_names)


def catalog_fingerprint(catalog: Optional[Catalog]) -> tuple:
    """A value-identity for everything a rewrite reads off a catalog.

    Table schemas (keys and FDs feed the Section 5 set-semantics
    checks), registered views (they resolve FROM names during parsing
    and are the default candidate set) and view cardinality estimates
    (they drive cost ranking) are all included, so requests whose
    catalogs share a fingerprint are interchangeable end to end — the
    group executor runs every member against one representative catalog
    object.
    """
    if catalog is None:
        return ()
    return (
        tuple(sorted(catalog.tables.items())),
        tuple(
            view_fingerprint(view)
            for _, view in sorted(catalog.views.items())
        ),
        tuple(
            sorted(
                (name, catalog.row_count(name)) for name in catalog.views
            )
        ),
    )


def request_group_key(request: RewriteRequest) -> GroupKey:
    return (
        catalog_fingerprint(request.catalog),
        tuple(view_fingerprint(v) for v in request.effective_views()),
        request.use_set_semantics,
    )


@dataclass
class RequestGroup:
    """All requests of one batch that can share a planner."""

    key: GroupKey
    catalog: Optional[Catalog]
    views: tuple[ViewDef, ...]
    use_set_semantics: bool
    #: (position in the submitted batch, request) pairs, batch order.
    members: list[tuple[int, RewriteRequest]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.members)


def group_requests(
    requests: Sequence[RewriteRequest],
) -> list[RequestGroup]:
    """Partition a batch into planner-sharing groups, first-seen order."""
    groups: dict[GroupKey, RequestGroup] = {}
    for position, request in enumerate(requests):
        key = request_group_key(request)
        group = groups.get(key)
        if group is None:
            group = groups[key] = RequestGroup(
                key=key,
                catalog=request.catalog,
                views=request.effective_views(),
                use_set_semantics=request.use_set_semantics,
            )
        group.members.append((position, request))
    return list(groups.values())


def chunk_groups(
    groups: Iterable[RequestGroup],
    workers: int,
    min_chunk: int = 4,
) -> list[tuple[RequestGroup, list[tuple[int, RewriteRequest]]]]:
    """Split groups into dispatchable chunks, at most ``workers`` ways.

    A chunk is the unit of dispatch: one worker, one engine, one shared
    planner. Large groups split so the pool stays busy, but never below
    ``min_chunk`` requests per chunk — a tiny chunk pays the planner
    warm-up without amortizing it. Small groups stay whole.
    """
    out: list[tuple[RequestGroup, list[tuple[int, RewriteRequest]]]] = []
    for group in groups:
        members = group.members
        parts = max(1, min(workers, len(members) // max(1, min_chunk)))
        size = (len(members) + parts - 1) // parts
        for start in range(0, len(members), size):
            out.append((group, members[start:start + size]))
    return out

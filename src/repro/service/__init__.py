"""Concurrent batch rewriting service.

The public surface is intentionally small: build the immutable request
objects (:class:`RewriteRequest`), hand a sequence of them to
:class:`BatchRewriteService.submit`, and read the positionally aligned
:class:`BatchResult`. Most callers should go through the
:mod:`repro.api` facade (``repro.api.rewrite_batch``) instead of
instantiating the service directly.

Layering, bottom-up:

* :mod:`repro.service.requests` — frozen wire types and the
  ``repro-api/1`` JSON projection;
* :mod:`repro.service.batcher` — value-based grouping by planner
  fingerprint and chunking for dispatch;
* :mod:`repro.service.executor` — the single-request path every mode
  shares (this is where batch parity is won);
* :mod:`repro.service.degradation` — batch-deadline overlays and the
  graceful-refusal contract;
* :mod:`repro.service.pool` — the serial/thread/process backends and
  memo warm-start plumbing.
"""

from .batcher import (
    RequestGroup,
    catalog_fingerprint,
    chunk_groups,
    group_requests,
    request_group_key,
    view_fingerprint,
)
from .degradation import BATCH_DEADLINE, BatchDeadline, refused_response
from .executor import build_engine, execute_request
from .pool import MODES, BatchRewriteService
from .requests import (
    API_SCHEMA,
    BatchResult,
    RewriteRequest,
    RewriteResponse,
)

__all__ = [
    "API_SCHEMA",
    "BATCH_DEADLINE",
    "BatchDeadline",
    "BatchResult",
    "BatchRewriteService",
    "MODES",
    "RequestGroup",
    "RewriteRequest",
    "RewriteResponse",
    "build_engine",
    "catalog_fingerprint",
    "chunk_groups",
    "execute_request",
    "group_requests",
    "refused_response",
    "request_group_key",
    "view_fingerprint",
]

"""The concurrent batch rewriting service.

:class:`BatchRewriteService` accepts many ``(query, views, budget)``
requests at once, groups them by the planner's view-signature
fingerprint (:mod:`repro.service.batcher`) so identical view sets share
closure/residual memo warm-up, and shards the groups across an
execution backend:

``serial``
    one in-process loop, live planners cached across batches — the
    debugging/determinism baseline and the ``auto`` choice for small
    batches;
``thread``
    a :class:`~concurrent.futures.ThreadPoolExecutor` — cheap dispatch,
    shared memory; per-chunk planners warm-started from the service's
    memo store;
``process``
    a :class:`~concurrent.futures.ProcessPoolExecutor` — true
    parallelism for large CPU-bound batches; chunk payloads (catalog,
    views, requests, exported planner memo, cache snapshot) are pickled
    to workers and planner memos ship back for the next batch's
    warm start.

Every mode funnels each request through
:func:`repro.service.executor.execute_request`, so results are
mode-independent (pinned by the batch-parity differential harness). A
batch deadline degrades gracefully per :mod:`repro.service.degradation`:
late requests come back ``exhausted=True``, never dropped or raised. A
worker or pickling failure demotes the affected chunk to in-process
execution — the N-requests-in, N-responses-out contract survives
backend loss.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Optional, Sequence, Union

from ..cache import CacheSnapshot, QueryCache
from ..core.planner import RewritePlanner
from ..obs.metrics import MetricsRegistry, collecting, current_metrics
from ..obs.trace import RewriteTrace, merge_spans
from .batcher import RequestGroup, chunk_groups, group_requests
from .degradation import BatchDeadline, refused_response
from .executor import build_engine, execute_request
from .requests import BatchResult, RewriteRequest, RewriteResponse

MODES = ("auto", "serial", "thread", "process")

#: auto mode: batches at least this large go to the process pool.
PROCESS_THRESHOLD = 64
#: auto mode: batches at most this large stay serial.
SERIAL_THRESHOLD = 8


def _execute_chunk(
    group_catalog,
    group_views,
    use_set_semantics: bool,
    members,
    planner: Optional[RewritePlanner],
    deadline: Optional[BatchDeadline],
    snapshot: Optional[CacheSnapshot],
) -> list[tuple[int, RewriteResponse]]:
    """Run one chunk's requests in order on one engine/planner."""
    engine = (
        build_engine(group_catalog, use_set_semantics, planner)
        if group_catalog is not None
        else None
    )
    out: list[tuple[int, RewriteResponse]] = []
    for position, request in members:
        if deadline is not None and deadline.expired:
            out.append((position, refused_response(request)))
            metrics = current_metrics()
            if metrics is not None:
                metrics.counter(
                    "repro_service_refusals_total",
                    "Requests refused outright by an expired batch "
                    "deadline.",
                ).inc()
            continue
        overlay = (
            deadline.overlay(request)
            if deadline is not None
            else request.budget
        )
        response = execute_request(
            request,
            engine=engine,
            planner=planner,
            budget=overlay,
            cache_snapshot=snapshot,
            capture_errors=True,
        )
        out.append((position, response))
    return out


def _run_chunk_collected(
    batch_reg: Optional[MetricsRegistry],
    *args,
) -> list[tuple[int, RewriteResponse]]:
    """Run one in-process chunk, scoped to the batch registry when on.

    ``collecting`` shadows whatever registry the submitting thread had
    active, so chunk work lands in the batch aggregate only — the
    parent sees it once, when ``submit`` merges the aggregate back.
    """
    if batch_reg is None:
        return _execute_chunk(*args)
    with collecting(batch_reg):
        return _execute_chunk(*args)


def _process_chunk(payload: dict) -> dict:
    """Top-level process-pool entry point (must be importable to pickle).

    Rebuilds the chunk's planner in the worker, warm-starts it from the
    shipped memo, runs the chunk, and returns results plus the memo
    export and cache-lookup counters for the master to merge.
    """
    catalog = payload["catalog"]
    views = payload["views"]
    semantics = payload["use_set_semantics"]
    deadline = BatchDeadline(payload["remaining"])
    snapshot = payload["snapshot"]
    planner = RewritePlanner(list(views), catalog, semantics)
    if payload["memo"]:
        planner.import_memos(payload["memo"])
    # Worker-local registry: the snapshot ships back for the master to
    # merge exactly once, mirroring the memo/cache-stats discipline.
    registry = (
        MetricsRegistry() if payload.get("collect_metrics") else None
    )
    if registry is not None:
        with collecting(registry):
            results = _execute_chunk(
                catalog, views, semantics, payload["members"],
                planner, deadline, snapshot,
            )
    else:
        results = _execute_chunk(
            catalog, views, semantics, payload["members"],
            planner, deadline, snapshot,
        )
    return {
        "results": results,
        "memo": (
            planner.export_memos(payload["memo_export_max"])
            if payload["want_memo"]
            else None
        ),
        "cache_stats": (
            snapshot.stats.as_dict() if snapshot is not None else None
        ),
        "planner_stats": planner.stats.as_dict(),
        "metrics": (
            registry.snapshot().as_dict() if registry is not None else None
        ),
    }


class BatchRewriteService:
    """A reusable batch front end over the rewrite search.

    One instance amortizes planner state across :meth:`submit` calls:
    serial batches keep live planners per view-set fingerprint;
    thread/process batches keep exported substitution memos and ship
    them to workers for warm start. ``cache`` (a
    :class:`repro.cache.QueryCache`) is probed read-only before each
    search — workers receive a consistent snapshot and their lookup
    counters merge back into the live cache's stats.
    """

    #: fingerprints retained in the warm stores before LRU eviction.
    MEMO_STORE_MAX = 32
    #: substitution-memo entries shipped per chunk / kept per export.
    MEMO_EXPORT_MAX = 2048

    def __init__(
        self,
        *,
        mode: str = "auto",
        workers: Optional[int] = None,
        batch_deadline: Optional[float] = None,
        cache: Optional[QueryCache] = None,
        memo_warm_start: bool = True,
        min_chunk: int = 4,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        self.workers = workers
        self.batch_deadline = batch_deadline
        self.cache = cache
        self.memo_warm_start = memo_warm_start
        self.min_chunk = min_chunk
        self._planners: dict[tuple, RewritePlanner] = {}
        self._memo_store: dict[tuple, list] = {}

    # ------------------------------------------------------------------

    def _resolve_mode(self, n_requests: int, workers: int) -> str:
        if self.mode != "auto":
            return self.mode
        if workers <= 1 or n_requests <= SERIAL_THRESHOLD:
            return "serial"
        if n_requests < PROCESS_THRESHOLD:
            return "thread"
        return "process"

    def _live_planner(self, group: RequestGroup) -> RewritePlanner:
        """Serial mode: one long-lived planner per fingerprint."""
        planner = self._planners.get(group.key)
        if planner is None:
            planner = RewritePlanner(
                list(group.views), group.catalog, group.use_set_semantics
            )
            self._planners[group.key] = planner
            self._trim(self._planners)
        return planner

    def _fresh_planner(self, group: RequestGroup) -> RewritePlanner:
        """Thread/process mode: per-chunk planner, memo warm-started."""
        planner = RewritePlanner(
            list(group.views), group.catalog, group.use_set_semantics
        )
        memo = self._memo_store.get(group.key)
        if memo and self.memo_warm_start:
            planner.import_memos(memo)
        return planner

    def _store_memo(self, key: tuple, export: Optional[list]) -> None:
        if not self.memo_warm_start or not export:
            return
        self._memo_store[key] = export[-self.MEMO_EXPORT_MAX:]
        self._trim(self._memo_store)

    def _trim(self, store: dict) -> None:
        while len(store) > self.MEMO_STORE_MAX:
            store.pop(next(iter(store)))

    def _fresh_snapshot(self) -> Optional[CacheSnapshot]:
        if self.cache is None:
            return None
        return self.cache.snapshot()

    # ------------------------------------------------------------------

    def submit(
        self,
        requests: Sequence[Union[RewriteRequest, str]],
        *,
        deadline: Optional[float] = None,
    ) -> BatchResult:
        """Rewrite a whole batch; always len(requests) responses back.

        ``deadline`` (seconds, overriding the service default) bounds
        the entire batch wall-clock; see :mod:`repro.service.degradation`
        for the overflow contract. Plain strings are rejected — requests
        must be :class:`RewriteRequest` instances so each carries its
        catalog.
        """
        import time

        started = time.perf_counter()
        requests = list(requests)
        for request in requests:
            if not isinstance(request, RewriteRequest):
                raise TypeError(
                    "submit() takes RewriteRequest instances; wrap plain "
                    "queries with repro.api.RewriteRequest(query, catalog)"
                )
        workers = self.workers or os.cpu_count() or 1
        mode = self._resolve_mode(len(requests), workers)
        batch_deadline = BatchDeadline(
            deadline if deadline is not None else self.batch_deadline
        )
        groups = group_requests(requests)
        chunks = chunk_groups(groups, workers, self.min_chunk)

        responses: list[Optional[RewriteResponse]] = [None] * len(requests)
        planner_stats: dict[str, int] = {}
        memo_imported = sum(
            len(self._memo_store.get(g.key, ())) for g in groups
        )

        # Batch-scoped metrics: when an enclosing registry is active,
        # every chunk (serial, thread task, process worker, demoted
        # re-run) records into a batch-local aggregate which folds into
        # the parent exactly once below — the no-double-counting
        # contract for all three modes. With metrics off this is None
        # and the runners skip all registry work.
        parent_metrics = current_metrics()
        batch_reg = MetricsRegistry() if parent_metrics is not None else None

        if mode == "serial":
            self._run_serial(
                chunks, batch_deadline, responses, planner_stats, batch_reg
            )
        elif mode == "thread":
            self._run_threaded(
                chunks, workers, batch_deadline, responses, planner_stats,
                batch_reg,
            )
        else:
            self._run_processes(
                chunks, workers, batch_deadline, responses, planner_stats,
                batch_reg,
            )

        # The per-mode runners fill every position; a hole here would be
        # a bug in this module, not in the caller's batch.
        final = tuple(
            r if r is not None else RewriteResponse(error="internal: lost")
            for r in responses
        )
        elapsed = time.perf_counter() - started
        batch_metrics = None
        if batch_reg is not None:
            batch_reg.counter(
                "repro_service_batches_total",
                "Batches executed, by resolved mode.",
                ("mode",),
            ).labels(mode).inc()
            batch_reg.histogram(
                "repro_service_batch_seconds",
                "Wall-clock latency of whole batches.",
            ).observe(elapsed)
            snapshot = batch_reg.snapshot()
            parent_metrics.merge(snapshot)
            batch_metrics = snapshot.as_dict()
        result = BatchResult(
            responses=final,
            metrics=batch_metrics,
            report={
                "mode": mode,
                "workers": workers if mode != "serial" else 1,
                "requests": len(final),
                "groups": len(groups),
                "chunks": len(chunks),
                "elapsed": round(elapsed, 6),
                "requests_per_second": (
                    round(len(final) / elapsed, 3) if elapsed > 0 else None
                ),
                "deadline": batch_deadline.seconds,
                "exhausted": sum(1 for r in final if r.exhausted),
                "degraded": sum(1 for r in final if r.degraded),
                "errors": sum(1 for r in final if r.error is not None),
                "memo_entries_imported": memo_imported,
                "planner": planner_stats,
            },
            trace=self._stitch_trace(final),
        )
        return result

    # ------------------------------------------------------------------

    def _merge_planner_stats(self, into: dict, stats: dict) -> None:
        for name, value in stats.items():
            if isinstance(value, int):
                into[name] = into.get(name, 0) + value

    def _run_serial(self, chunks, deadline, responses, planner_stats,
                    batch_reg):
        for group, members in chunks:
            planner = self._live_planner(group)
            before = planner.stats.as_dict()
            snapshot = self._fresh_snapshot()
            for position, response in _run_chunk_collected(
                batch_reg,
                group.catalog, group.views, group.use_set_semantics,
                members, planner, deadline, snapshot,
            ):
                responses[position] = response
            after = planner.stats.as_dict()
            self._merge_planner_stats(
                planner_stats,
                {
                    k: v - before.get(k, 0)
                    for k, v in after.items()
                    if isinstance(v, int)
                },
            )
            if snapshot is not None and self.cache is not None:
                self.cache.merge_external(snapshot.stats)

    def _run_threaded(self, chunks, workers, deadline, responses,
                      planner_stats, batch_reg):
        def task(group, members):
            planner = self._fresh_planner(group)
            snapshot = self._fresh_snapshot()
            # Entered inside the worker thread: ``collecting`` is
            # thread-local, so each task must scope its own extent. The
            # shared batch registry is thread-safe, so tasks record into
            # it directly — nothing to merge, nothing counted twice.
            results = _run_chunk_collected(
                batch_reg,
                group.catalog, group.views, group.use_set_semantics,
                members, planner, deadline, snapshot,
            )
            return group, results, planner, snapshot

        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(task, group, members)
                for group, members in chunks
            ]
            for future in futures:
                group, results, planner, snapshot = future.result()
                for position, response in results:
                    responses[position] = response
                self._store_memo(
                    group.key, planner.export_memos(self.MEMO_EXPORT_MAX)
                )
                self._merge_planner_stats(
                    planner_stats, planner.stats.as_dict()
                )
                if snapshot is not None and self.cache is not None:
                    self.cache.merge_external(snapshot.stats)

    def _run_processes(self, chunks, workers, deadline, responses,
                       planner_stats, batch_reg):
        snapshot = self._fresh_snapshot()
        pending: dict[Future, tuple] = {}
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for group, members in chunks:
                    payload = {
                        "catalog": group.catalog,
                        "views": group.views,
                        "use_set_semantics": group.use_set_semantics,
                        "members": members,
                        "memo": (
                            self._memo_store.get(group.key)
                            if self.memo_warm_start
                            else None
                        ),
                        "remaining": deadline.remaining(),
                        "snapshot": snapshot,
                        "want_memo": self.memo_warm_start,
                        "memo_export_max": self.MEMO_EXPORT_MAX,
                        "collect_metrics": batch_reg is not None,
                    }
                    try:
                        future = pool.submit(_process_chunk, payload)
                    except Exception:
                        # Unpicklable payload or dead pool: demote this
                        # chunk to in-process execution.
                        self._demote_chunk(
                            group, members, deadline, responses,
                            planner_stats, batch_reg,
                        )
                        continue
                    pending[future] = (group, members)
                for future in list(pending):
                    group, members = pending[future]
                    try:
                        outcome = future.result()
                    except Exception:
                        self._demote_chunk(
                            group, members, deadline, responses,
                            planner_stats, batch_reg,
                        )
                        continue
                    for position, response in outcome["results"]:
                        responses[position] = response
                    self._store_memo(group.key, outcome["memo"])
                    self._merge_planner_stats(
                        planner_stats, outcome["planner_stats"]
                    )
                    if outcome["cache_stats"] and self.cache is not None:
                        self.cache.merge_external(outcome["cache_stats"])
                    if outcome.get("metrics") and batch_reg is not None:
                        # One merge per worker snapshot: the worker's
                        # registry was born empty, so these counts exist
                        # nowhere else.
                        batch_reg.merge(outcome["metrics"])
        except Exception:
            # Pool construction itself failed (restricted platforms):
            # run everything in-process rather than failing the batch.
            for group, members in chunks:
                if any(responses[p] is None for p, _ in members):
                    self._demote_chunk(
                        group, members, deadline, responses, planner_stats,
                        batch_reg,
                    )

    def _demote_chunk(self, group, members, deadline, responses,
                      planner_stats, batch_reg=None):
        if batch_reg is not None:
            batch_reg.counter(
                "repro_service_chunk_demotions_total",
                "Chunks demoted to in-process execution after a worker "
                "or pickling failure.",
            ).inc()
        planner = self._fresh_planner(group)
        snapshot = self._fresh_snapshot()
        for position, response in _run_chunk_collected(
            batch_reg,
            group.catalog, group.views, group.use_set_semantics,
            members, planner, deadline, snapshot,
        ):
            responses[position] = response
        self._store_memo(group.key, planner.export_memos(self.MEMO_EXPORT_MAX))
        self._merge_planner_stats(planner_stats, planner.stats.as_dict())
        if snapshot is not None and self.cache is not None:
            self.cache.merge_external(snapshot.stats)

    # ------------------------------------------------------------------

    def _stitch_trace(
        self, responses: Sequence[RewriteResponse]
    ) -> Optional[RewriteTrace]:
        """One batch-level trace from the per-request trees."""
        traced = [r.trace for r in responses if r.trace is not None]
        if not traced:
            return None
        counters: dict[str, int] = {}
        for trace in traced:
            for name, value in trace.counters.items():
                counters[name] = counters.get(name, 0) + value
        counters["traced_requests"] = len(traced)
        return RewriteTrace(
            merge_spans([t.root for t in traced], name="batch"),
            counters=counters,
        )

"""Graceful degradation under a batch-level deadline.

The service promises N responses for N requests, no matter what. Under a
batch deadline that means three regimes per request:

run normally
    enough time remains — the request's own budget applies, tightened by
    the remaining batch time (so a straggler cannot overrun the batch);

run truncated
    the overlay deadline trips mid-search — the anytime contract of
    :mod:`repro.obs.budget` returns partial-but-sound results tagged
    ``exhausted=True``;

refuse gracefully
    the deadline was spent before the request was dispatched — a
    degraded response comes back immediately with ``exhausted=True`` and
    ``"batch_deadline"`` among the tripped limits. Never dropped, never
    an exception.

Deadline enforcement across process workers is necessarily approximate:
monotonic clocks are per-process, so the overlay ships the *remaining
seconds at dispatch time* and the worker counts from its own start.
Queue latency can therefore stretch a batch slightly past its deadline —
by at most one in-flight chunk, since every request dispatched after the
trip refuses instantly.
"""

from __future__ import annotations

import time
from typing import Optional

from ..obs.budget import SearchBudget
from .requests import RewriteRequest, RewriteResponse

#: The trip label degraded responses report.
BATCH_DEADLINE = "batch_deadline"


class BatchDeadline:
    """Wall-clock budget for one whole batch. ``None`` = unlimited."""

    __slots__ = ("seconds", "_expires_at")

    def __init__(self, seconds: Optional[float]):
        self.seconds = seconds
        self._expires_at = (
            None if seconds is None else time.monotonic() + seconds
        )

    def remaining(self) -> Optional[float]:
        """Seconds left, ``None`` when unlimited, 0.0 once spent."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and self.remaining() == 0.0

    def overlay(self, request: RewriteRequest) -> Optional[SearchBudget]:
        """The request's effective budget under this deadline.

        Tightens (never loosens) the request's own budget; with no batch
        deadline the request budget passes through untouched.
        """
        remaining = self.remaining()
        if remaining is None:
            return request.budget
        cap = SearchBudget(deadline=remaining)
        if request.budget is None:
            return cap
        return request.budget.merged_with(cap)


def refused_response(
    request: RewriteRequest, reason: str = BATCH_DEADLINE
) -> RewriteResponse:
    """The degraded response for a request that was refused outright.

    ``reason`` is the trip label reported under ``budget["tripped"]`` —
    ``batch_deadline`` for the batch service, ``queue_full`` /
    ``tenant_quota`` for the serving daemon's admission control. The
    shape is identical either way: ``exhausted=True``, ``degraded=True``,
    never a dropped request or an exception.
    """
    return RewriteResponse(
        query=(
            request.query
            if not isinstance(request.query, str)
            else None
        ),
        exhausted=True,
        degraded=True,
        budget={
            "budget": (
                request.budget.as_dict()
                if request.budget is not None
                else SearchBudget().as_dict()
            ),
            "exhausted": True,
            "tripped": [reason],
            "mappings_enumerated": 0,
            "candidates_generated": 0,
        },
        request_id=request.request_id,
    )

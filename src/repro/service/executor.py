"""Execute one :class:`RewriteRequest` — the shared single-request path.

Every execution mode funnels through :func:`execute_request`: the
``repro.api`` facade calls it inline, the serial batch mode loops over
it, and thread/process workers run it once per request in their chunk.
One code path is what makes the batch-parity guarantee testable at all.

Determinism rule
    Requests whose budget carries *count* limits (``max_mappings`` /
    ``max_candidates``) always run against a cold planner, even inside a
    warm group: a memo hit skips mapping enumeration, so a warm memo
    would shift the trip point and the result set would depend on batch
    composition. Unbudgeted and deadline-only requests share the group
    planner freely — memoization is pure, so their result sets are
    independent of warm-up (only their latency improves).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional, Union

from ..blocks.query_block import QueryBlock
from ..cache import CacheSnapshot
from ..catalog.schema import Catalog
from ..core.cost import estimate_cost
from ..core.multiview import all_rewritings
from ..core.planner import RewritePlanner
from ..core.result import Rewriting
from ..core.rewriter import RankedRewriting, RewriteEngine
from ..errors import ReproError
from ..obs.budget import BudgetMeter, SearchBudget, ensure_meter
from ..obs.metrics import MetricsRegistry, collecting, current_metrics
from .requests import RewriteRequest, RewriteResponse

#: Distinguishes "no overlay budget supplied" from an explicit None.
_UNSET = object()


def build_engine(
    catalog: Catalog,
    use_set_semantics: bool = True,
    planner: Optional[RewritePlanner] = None,
) -> RewriteEngine:
    """One worker's engine: re-entrant, with an optional warm planner."""
    return RewriteEngine(
        catalog, use_set_semantics=use_set_semantics, planner=planner
    )


def execute_request(
    request: RewriteRequest,
    *,
    engine: Optional[RewriteEngine] = None,
    planner: Optional[RewritePlanner] = None,
    budget: Union[SearchBudget, BudgetMeter, None, object] = _UNSET,
    cache_snapshot: Optional[CacheSnapshot] = None,
    capture_errors: bool = False,
) -> RewriteResponse:
    """Run one request and shape the outcome into a `RewriteResponse`.

    ``engine`` is the chunk's shared engine (built once per worker);
    omitted, a fresh one is constructed — both are equivalent apart from
    planner warmth. ``budget`` overrides the request's own budget (the
    batch deadline overlay); the default sentinel means "use the
    request's". With ``capture_errors`` a :class:`ReproError` becomes an
    error response instead of propagating — the batch contract.

    ``request.collect_metrics`` runs the request under its own scoped
    registry: the response carries a ``repro-metrics/1`` snapshot of
    exactly this request's work, and the same snapshot is folded once
    into the enclosing registry (chunk or global) so totals stay
    complete without double counting.
    """
    if not request.collect_metrics:
        return _attempt(
            request, engine, planner, budget, cache_snapshot, capture_errors
        )
    local = MetricsRegistry()
    with collecting(local):
        response = _attempt(
            request, engine, planner, budget, cache_snapshot, capture_errors
        )
    snapshot = local.snapshot()
    parent = current_metrics()
    if parent is not None:
        parent.merge(snapshot)
    return replace(response, metrics=snapshot.as_dict())


def _attempt(
    request: RewriteRequest,
    engine: Optional[RewriteEngine],
    planner: Optional[RewritePlanner],
    budget,
    cache_snapshot: Optional[CacheSnapshot],
    capture_errors: bool,
) -> RewriteResponse:
    started = time.perf_counter()
    try:
        response = _run(
            request, engine, planner, budget, cache_snapshot, started
        )
    except ReproError as error:
        if not capture_errors:
            raise
        response = RewriteResponse(
            query=(
                request.query
                if isinstance(request.query, QueryBlock)
                else None
            ),
            request_id=request.request_id,
            elapsed=time.perf_counter() - started,
            error=str(error),
        )
    metrics = current_metrics()
    if metrics is not None:
        metrics.histogram(
            "repro_service_request_seconds",
            "Wall-clock latency of individual rewrite requests.",
        ).observe(response.elapsed)
        outcome = (
            "error"
            if response.error is not None
            else "exhausted" if response.exhausted else "ok"
        )
        metrics.counter(
            "repro_service_requests_total",
            "Rewrite requests executed, by outcome.",
            ("outcome",),
        ).labels(outcome).inc()
    return response


def _run(
    request: RewriteRequest,
    engine: Optional[RewriteEngine],
    planner: Optional[RewritePlanner],
    budget,
    cache_snapshot: Optional[CacheSnapshot],
    started: float,
) -> RewriteResponse:
    effective = request.budget if budget is _UNSET else budget
    meter = ensure_meter(effective)

    cache_info: Optional[dict] = None
    if cache_snapshot is not None:
        cached = cache_snapshot.find_rewriting(request.query, budget=meter)
        if cached is not None:
            return _cache_hit_response(
                request, cached, cache_snapshot, meter, started
            )
        cache_info = {"served_from_cache": False}

    if request.catalog is None:
        response = _run_bare(request, planner, meter)
    else:
        response = _run_engine(request, engine, meter)
    return replace(
        response,
        cache=cache_info if cache_info is not None else response.cache,
        elapsed=time.perf_counter() - started,
    )


def _run_engine(
    request: RewriteRequest,
    engine: Optional[RewriteEngine],
    meter: Optional[BudgetMeter],
) -> RewriteResponse:
    if engine is None:
        engine = build_engine(request.catalog, request.use_set_semantics)
    views = request.views
    if views is not None and list(views) == engine.views:
        # Explicitly passing the catalog's own view set is the same
        # search as views=None — normalize so it stays eligible for the
        # engine's shared (group-warm) planner.
        views = None
    if views is None and request.has_count_budget():
        # Force the explicit-views path: all_rewritings builds a cold
        # planner, keeping count-budget trip points batch-independent.
        views = request.effective_views()
    # The engine's catalog is the request's — or the group's fingerprint-
    # equal stand-in — so the shared-planner fast path stays eligible.
    result = engine.rewrite(
        request.query,
        views=views,
        max_steps=request.max_steps,
        unfold=request.unfold,
        budget=meter,
        trace=request.trace,
        include_partial=request.include_partial,
        strategy=request.strategy,
    )
    return RewriteResponse(
        query=result.query,
        rewritings=result.found,
        ranked=tuple(result.ranked),
        original_cost=result.original_cost,
        exhausted=result.exhausted,
        budget=result.budget,
        trace=result.trace,
        request_id=request.request_id,
    )


def _run_bare(
    request: RewriteRequest,
    planner: Optional[RewritePlanner],
    meter: Optional[BudgetMeter],
) -> RewriteResponse:
    """The catalog-less path (deprecated-shim compatibility).

    No parsing, no unfolding, no cost ranking — candidates come back in
    discovery order only. Tracing is not supported here.
    """
    query = request.query
    if isinstance(query, str):
        raise ReproError(
            "a textual query needs a catalog to parse against; pass "
            "catalog= or a pre-parsed QueryBlock"
        )
    query.validate()
    views = request.effective_views()
    if request.has_count_budget():
        planner = None  # cold search for deterministic trip points
    candidates = all_rewritings(
        query,
        views,
        catalog=None,
        use_set_semantics=request.use_set_semantics,
        max_steps=request.max_steps,
        include_partial=request.include_partial,
        planner=planner,
        budget=meter,
    )
    if request.strategy != "c1c4":
        from ..core.rewriter import merge_strategy_extras
        from ..strategies import cohen_nutt_rewritings, normalize_strategy

        normalize_strategy(request.strategy)
        candidates = merge_strategy_extras(
            candidates,
            cohen_nutt_rewritings(
                query, views, planner=planner, budget=meter
            ),
        )
    return RewriteResponse(
        query=query,
        rewritings=tuple(candidates),
        exhausted=meter.exhausted if meter is not None else False,
        budget=meter.as_dict() if meter is not None else None,
        request_id=request.request_id,
    )


def _cache_hit_response(
    request: RewriteRequest,
    rewriting: Rewriting,
    snapshot: CacheSnapshot,
    meter: Optional[BudgetMeter],
    started: float,
) -> RewriteResponse:
    # Cost estimation must use the snapshot's catalog: the rewriting
    # reads a cached view the request's own catalog has never heard of.
    catalog = snapshot.catalog
    ranked: tuple[RankedRewriting, ...] = ()
    original_cost = None
    if catalog is not None:
        query_block = (
            request.query
            if isinstance(request.query, QueryBlock)
            else None
        )
        ranked = (
            RankedRewriting(
                rewriting,
                estimate_cost(
                    rewriting.query, catalog, rewriting.aux_views
                ),
            ),
        )
        if query_block is not None:
            original_cost = estimate_cost(query_block, catalog)
    return RewriteResponse(
        query=(
            request.query
            if isinstance(request.query, QueryBlock)
            else None
        ),
        rewritings=(rewriting,),
        ranked=ranked,
        original_cost=original_cost,
        exhausted=meter.exhausted if meter is not None else False,
        budget=meter.as_dict() if meter is not None else None,
        cache={"served_from_cache": True},
        request_id=request.request_id,
        elapsed=time.perf_counter() - started,
    )

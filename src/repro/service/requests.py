"""Frozen request/response dataclasses of the batch rewriting service.

These are the wire types of the :mod:`repro.api` facade: everything here
is picklable (they cross the :class:`~concurrent.futures.ProcessPoolExecutor`
boundary) and JSON-projectable under the versioned ``repro-api/1``
schema (see ``docs/api.md``).

The contract the service maintains: a batch of N requests always yields
exactly N responses, in request order. A request that could not run —
parse error, batch deadline overflow — comes back as a *degraded*
response (``error`` set, or ``exhausted=True`` with ``"batch_deadline"``
among the tripped limits), never as a dropped entry or an exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..blocks.query_block import QueryBlock, ViewDef
from ..blocks.to_sql import block_to_sql
from ..catalog.schema import Catalog
from ..core.result import Rewriting
from ..core.rewriter import RankedRewriting
from ..obs.budget import SearchBudget
from ..obs.trace import RewriteTrace

#: Version tag stamped on every JSON projection of a response, so
#: downstream tooling can detect format drift. Bump on breaking change.
API_SCHEMA = "repro-api/1"


@dataclass(frozen=True)
class RewriteRequest:
    """One rewrite job: a query, the views to use, and search limits.

    ``views=None`` means "the catalog's registered views". ``catalog``
    may be omitted only when ``query`` is an already-parsed
    :class:`QueryBlock`; responses then skip cost ranking (there are no
    cardinalities to rank with) and report candidates in discovery
    order.
    """

    query: Union[str, QueryBlock]
    catalog: Optional[Catalog] = None
    views: Optional[tuple[ViewDef, ...]] = None
    budget: Optional[SearchBudget] = None
    max_steps: int = 3
    unfold: bool = False
    use_set_semantics: bool = True
    include_partial: bool = True
    trace: bool = False
    collect_metrics: bool = False
    request_id: Optional[str] = None
    #: Planner strategy (see :mod:`repro.strategies`): ``"c1c4"`` (the
    #: paper's search, the default), ``"cohen_nutt"`` or ``"both"``.
    strategy: str = "c1c4"

    def effective_views(self) -> tuple[ViewDef, ...]:
        """The view set this request searches over."""
        if self.views is not None:
            return tuple(self.views)
        if self.catalog is None:
            return ()
        return tuple(self.catalog.views.values())

    def has_count_budget(self) -> bool:
        """True when the budget carries deterministic (count) limits.

        Count-limited searches must run against a cold planner memo, or
        the trip point — and therefore the result set — would depend on
        which requests happened to share the planner first.
        """
        return self.budget is not None and (
            self.budget.max_mappings is not None
            or self.budget.max_candidates is not None
        )


@dataclass(frozen=True)
class RewriteResponse:
    """The outcome of one request: rewritings plus full observability.

    ``rewritings`` is the search's discovery order (what the legacy
    ``all_rewritings`` returned); ``ranked`` is the same set in
    estimated-cost order when the request carried a catalog. ``degraded``
    marks responses the batch deadline refused to run at all.
    """

    query: Optional[QueryBlock] = None
    rewritings: tuple[Rewriting, ...] = ()
    ranked: tuple[RankedRewriting, ...] = ()
    original_cost: Optional[float] = None
    exhausted: bool = False
    budget: Optional[dict] = None
    trace: Optional[RewriteTrace] = None
    stats: Optional[dict] = None
    cache: Optional[dict] = None
    metrics: Optional[dict] = None
    request_id: Optional[str] = None
    elapsed: float = 0.0
    error: Optional[str] = None
    degraded: bool = False

    def best(self) -> Optional[Rewriting]:
        """The cheapest rewriting (first found when unranked), or None."""
        if self.ranked:
            return self.ranked[0].rewriting
        if self.rewritings:
            return self.rewritings[0]
        return None

    def best_sql(self) -> Optional[str]:
        best = self.best()
        return best.sql() if best is not None else None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json_dict(self) -> dict:
        """The ``repro-api/1`` projection (shared by every CLI command)."""
        ranked = self.ranked or tuple(
            RankedRewriting(rw, float("nan")) for rw in self.rewritings
        )
        return {
            "schema": API_SCHEMA,
            "kind": "rewrite",
            "request_id": self.request_id,
            "query": (
                block_to_sql(self.query) if self.query is not None else None
            ),
            "original_cost": self.original_cost,
            "rewritings": [
                {
                    "sql": r.rewriting.sql(),
                    "cost": None if r.cost != r.cost else r.cost,
                    "views": list(r.rewriting.view_names),
                    "strategy": r.rewriting.strategy,
                }
                for r in ranked
            ],
            "exhausted": self.exhausted,
            "degraded": self.degraded,
            "budget": self.budget,
            "trace": self.trace.as_dict() if self.trace else None,
            "stats": self.stats,
            "cache": self.cache,
            "metrics": self.metrics,
            "elapsed": round(self.elapsed, 6),
            "error": self.error,
        }


@dataclass(frozen=True)
class BatchResult:
    """All responses of one batch, in request order, plus the batch view.

    ``report`` aggregates throughput and degradation counters; ``trace``
    is the stitched per-request span tree when any request asked for
    tracing.
    """

    responses: tuple[RewriteResponse, ...]
    report: dict = field(default_factory=dict)
    trace: Optional[RewriteTrace] = None
    metrics: Optional[dict] = None

    def __iter__(self):
        return iter(self.responses)

    def __len__(self) -> int:
        return len(self.responses)

    def __getitem__(self, index: int) -> RewriteResponse:
        return self.responses[index]

    @property
    def exhausted_count(self) -> int:
        return sum(1 for r in self.responses if r.exhausted)

    @property
    def degraded_count(self) -> int:
        return sum(1 for r in self.responses if r.degraded)

    @property
    def error_count(self) -> int:
        return sum(1 for r in self.responses if r.error is not None)

    def to_json_dict(self) -> dict:
        return {
            "schema": API_SCHEMA,
            "kind": "batch",
            "batch": dict(self.report),
            "trace": self.trace.as_dict() if self.trace else None,
            "metrics": self.metrics,
            "responses": [r.to_json_dict() for r in self.responses],
        }

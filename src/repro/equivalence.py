"""Empirical multiset-equivalence checking (the testing oracle).

Theorems 3.1, 3.2 and 4.1 claim that rewritten queries are
*multiset-equivalent* to the original. This module checks that claim
empirically: it generates seeded random database instances for a catalog
and compares the two queries' result multisets on each. A disagreement is
returned as a concrete counterexample database.

Random instances use small value domains on purpose — collisions are what
exercise joins, grouping and duplicate semantics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Optional, Union

from .blocks.query_block import QueryBlock, ViewDef
from .catalog.schema import Catalog
from .core.result import Rewriting
from .engine.database import Database
from .engine.table import Table


@dataclass
class Counterexample:
    """A database on which the two queries disagree."""

    tables: dict[str, list[tuple]]
    left_rows: list[tuple]
    right_rows: list[tuple]

    def __str__(self) -> str:
        lines = ["counterexample database:"]
        for name, rows in self.tables.items():
            lines.append(f"  {name}: {rows}")
        lines.append(f"  left result:  {sorted(map(str, self.left_rows))}")
        lines.append(f"  right result: {sorted(map(str, self.right_rows))}")
        return "\n".join(lines)


def random_instance(
    catalog: Catalog,
    rng: random.Random,
    max_rows: int = 8,
    domain: int = 4,
    respect_keys: bool = True,
) -> dict[str, list[tuple]]:
    """A random instance for every base table of the catalog.

    Values are small non-negative integers; declared keys are honoured
    (duplicated key values are dropped) unless ``respect_keys`` is False.
    """
    instance: dict[str, list[tuple]] = {}
    for name, schema in catalog.tables.items():
        rows = [
            tuple(rng.randrange(domain) for _ in schema.columns)
            for _ in range(rng.randrange(max_rows + 1))
        ]
        if respect_keys and schema.keys:
            key_positions = [
                [schema.columns.index(c) for c in key] for key in schema.keys
            ]
            seen: set[tuple] = set()
            unique_rows = []
            for row in rows:
                fingerprints = tuple(
                    tuple(row[p] for p in positions)
                    for positions in key_positions
                )
                if any(fp in seen for fp in fingerprints):
                    continue
                seen.update(fingerprints)
                unique_rows.append(row)
            rows = unique_rows
        instance[name] = rows
    return instance


def check_equivalent(
    catalog: Catalog,
    left: Union[str, QueryBlock],
    right: Union[str, QueryBlock, Rewriting],
    trials: int = 50,
    seed: int = 0,
    max_rows: int = 8,
    domain: int = 4,
    respect_keys: bool = True,
    compare: str = "multiset",
) -> Optional[Counterexample]:
    """Compare two queries on ``trials`` random databases.

    ``right`` may be a :class:`Rewriting`, whose auxiliary views are then
    supplied to the engine. ``compare`` is ``"multiset"`` (the paper's
    equivalence notion) or ``"set"`` (Section 5 comparisons).
    Returns ``None`` on agreement, else the first counterexample.
    """
    rng = random.Random(seed)
    extra: Mapping[str, ViewDef] = {}
    right_query: Union[str, QueryBlock]
    if isinstance(right, Rewriting):
        extra = right.extra_views()
        right_query = right.query
    else:
        right_query = right

    for _trial in range(trials):
        instance = random_instance(
            catalog, rng, max_rows=max_rows, domain=domain,
            respect_keys=respect_keys,
        )
        db = Database(catalog, instance)
        left_result = db.execute(left)
        right_result = db.execute(right_query, extra_views=extra)
        agree = (
            left_result.multiset_equal(right_result)
            if compare == "multiset"
            else left_result.set_equal(right_result)
        )
        if not agree:
            return Counterexample(
                tables=instance,
                left_rows=left_result.rows,
                right_rows=right_result.rows,
            )
    return None


def assert_equivalent(
    catalog: Catalog,
    left: Union[str, QueryBlock],
    right: Union[str, QueryBlock, Rewriting],
    **kwargs,
) -> None:
    """Raise ``AssertionError`` with the counterexample on disagreement."""
    counterexample = check_equivalent(catalog, left, right, **kwargs)
    if counterexample is not None:
        raise AssertionError(str(counterexample))


def materialized_speedup(
    catalog: Catalog,
    tables: Mapping[str, Union[Table, list]],
    query: Union[str, QueryBlock],
    rewriting: Rewriting,
) -> tuple[float, float]:
    """Wall-clock seconds for (original, rewritten-over-materialized-view).

    Materializes the used views first, as a warehouse would, so the
    rewritten query measures only view-scan work (Example 1.1's setting).
    """
    from .obs.metrics import timed

    db = Database(catalog, tables)
    for name in rewriting.view_names:
        db.materialize(name)

    with timed() as original:
        db.execute(query)
    with timed() as rewritten:
        db.execute(rewriting.query, extra_views=rewriting.extra_views())
    return original.seconds, rewritten.seconds

"""The dialect contract: every rendering decision that differs per DBMS.

A :class:`Dialect` gathers the genuinely engine-specific choices —
identifier quoting, literal spelling, division semantics, CAST target
types, LIMIT syntax — behind one object that the printer
(:mod:`repro.sqlparser.printer`), the SQL emitter
(:mod:`repro.blocks.to_sql`) and the execution backends
(:mod:`repro.oracle.backends`) all consume. Concrete dialects live in
:mod:`repro.dialects.rules`; the registry in
:mod:`repro.dialects.__init__` resolves them by name.

The base class *is* the ANSI dialect: bare identifiers whenever the
lexer can re-read them (quoted otherwise, so ``parse(print(q))`` still
round-trips for adversarial names), plain ``/`` division, standard
literals. Subclasses override only what their engine actually does
differently.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Optional

#: Names the lexer re-reads unquoted: ASCII letter/underscore head, then
#: letters, digits, underscores. ``$`` is lexable but quoted anyway for
#: portability (Postgres only allows it in non-initial positions).
_BARE_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: Words that lex as something other than a plain IDENT token (reserved
#: keywords plus the aggregate names the parser special-cases). Resolved
#: lazily: ``repro.dialects`` and ``repro.sqlparser`` import each other
#: at module level only through this indirection.
_RESERVED: Optional[frozenset] = None


def _reserved() -> frozenset:
    global _RESERVED
    if _RESERVED is None:
        from ..sqlparser.tokens import AGG_NAMES, KEYWORDS

        _RESERVED = frozenset(KEYWORDS) | frozenset(AGG_NAMES)
    return _RESERVED


class Dialect:
    """Rendering rules of the default (ANSI-ish, re-parseable) output."""

    #: Registry key and display name.
    name = "ansi"
    #: Quote every identifier, not just the ones that need it.
    always_quote = False
    #: CAST target for exact (non-truncating) division.
    real_type = "REAL"
    #: Whether the engine has real TRUE/FALSE literals.
    boolean_literals = True

    # -- identifiers ---------------------------------------------------

    def quote_ident(self, name: str) -> str:
        """Force-quote one identifier (`""` escaping, all dialects)."""
        return '"' + name.replace('"', '""') + '"'

    def needs_quoting(self, name: str) -> bool:
        return not _BARE_IDENT.match(name) or name.upper() in _reserved()

    def ident(self, name: str) -> str:
        if self.always_quote or self.needs_quoting(name):
            return self.quote_ident(name)
        return name

    def column(self, ref) -> str:
        """Render a :class:`~repro.sqlparser.ast.ColumnRef`."""
        if ref.qualifier:
            return f"{self.ident(ref.qualifier)}.{self.ident(ref.name)}"
        return self.ident(ref.name)

    # -- literals ------------------------------------------------------

    def null(self) -> str:
        return "NULL"

    def boolean(self, value: bool) -> str:
        if self.boolean_literals:
            return "TRUE" if value else "FALSE"
        return "1" if value else "0"

    def string(self, value: str) -> str:
        return "'" + value.replace("'", "''") + "'"

    def literal(self, value: object) -> str:
        if value is None:
            return self.null()
        if isinstance(value, bool):
            return self.boolean(value)
        if isinstance(value, str):
            return self.string(value)
        if isinstance(value, Fraction):
            if value.denominator == 1:
                return str(value.numerator)
            return self.division(
                str(value.numerator), str(value.denominator)
            )
        return str(value)

    # -- expressions ---------------------------------------------------

    def cast(self, expr: str, type_name: str) -> str:
        return f"CAST({expr} AS {type_name})"

    def division(self, left: str, right: str) -> str:
        """Exact division, matching the engine's rational semantics.

        The ANSI form is the plain operator: this output is re-parsed by
        the repro toolchain itself (repro files, equivalence checks),
        where ``/`` already divides exactly and ``x / 0`` is NULL. Real
        engines override this — see :mod:`repro.dialects.rules`.
        """
        return f"({left} / {right})"

    # -- clauses -------------------------------------------------------

    def limit(self, count: int) -> str:
        """A row-limit clause (SQL:2008 fetch-first by default)."""
        return f"FETCH FIRST {count} ROWS ONLY"

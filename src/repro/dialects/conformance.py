"""Dialect conformance corpus: one query per printable construct.

Every construct the emitter can print — projections, filters,
self-joins (forced aliases), GROUP BY with SUM/COUNT and HAVING,
DISTINCT, scalar aggregates (COUNT(*), AVG), arithmetic including
division with a zero divisor in the data, adversarial quoted/keyword
identifiers, and a programmatic NULL literal in the SELECT list — is
represented by one :class:`ConformanceCase` carrying its own schema and
a small instance.

:func:`emit_corpus` renders the whole corpus in one dialect as a
deterministic text document; the golden files under
``tests/dialects/goldens/`` pin one such document per dialect, and the
SQLite goldens are additionally *executed* against the repro engine's
answers (see ``tests/dialects/test_goldens.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..blocks.normalize import parse_query
from ..blocks.query_block import QueryBlock, SelectItem
from ..blocks.terms import Constant
from ..blocks.to_sql import block_to_sql
from ..catalog.schema import Catalog, table
from ..dialects import DIALECT_NAMES, DialectLike, get_dialect

#: Version tag embedded in every golden document; bump when the corpus
#: itself (not a dialect's emission) changes shape.
CORPUS_VERSION = "repro-conformance/1"


@dataclass(frozen=True)
class ConformanceCase:
    """One construct: schema, query and a small NULL-free instance."""

    name: str
    description: str
    #: table name -> column names.
    tables: Mapping[str, Sequence[str]]
    #: The query as SQL text (parsed through the front end), or None
    #: when ``build`` constructs the block programmatically.
    sql: Optional[str] = None
    build: Optional[object] = None
    instance: Mapping[str, Sequence[tuple]] = field(default_factory=dict)

    def catalog(self) -> Catalog:
        return Catalog(
            [table(name, list(cols)) for name, cols in self.tables.items()]
        )

    def query(self, catalog: Optional[Catalog] = None) -> QueryBlock:
        catalog = catalog or self.catalog()
        if self.build is not None:
            return self.build(catalog)
        return parse_query(self.sql, catalog)

    def emit(self, dialect: DialectLike) -> str:
        return block_to_sql(self.query(), dialect=dialect)


def _null_literal_block(catalog: Catalog) -> QueryBlock:
    # ``NULL`` cannot be written in the paper's input language, but the
    # emitter must still print it: engine-produced blocks carry
    # Constant(None) (e.g. AVG over an empty group decomposition).
    block = parse_query("SELECT A, B FROM R1", catalog)
    return QueryBlock(
        select=block.select + (SelectItem(Constant(None), alias="missing"),),
        from_=block.from_,
        where=block.where,
        group_by=block.group_by,
        having=block.having,
        distinct=block.distinct,
    )


#: The corpus, in emission order. Order is part of the golden format.
CASES: tuple[ConformanceCase, ...] = (
    ConformanceCase(
        name="projection-filter",
        description="plain projection with a conjunctive filter",
        tables={"R1": ("A", "B")},
        sql="SELECT A, B FROM R1 WHERE A < 3 AND B >= 1",
        instance={"R1": [(1, 4), (2, 1), (5, 2), (2, 0)]},
    ),
    ConformanceCase(
        name="self-join-aliases",
        description="self-join forcing occurrence aliases",
        tables={"R1": ("A", "B")},
        sql="SELECT x.A, y.B FROM R1 x, R1 y WHERE x.B = y.A",
        instance={"R1": [(1, 2), (2, 3), (3, 1)]},
    ),
    ConformanceCase(
        name="join-two-tables",
        description="equi-join of two base tables",
        tables={"R1": ("A", "B"), "R2": ("C", "D")},
        sql="SELECT A, D FROM R1, R2 WHERE B = C",
        instance={
            "R1": [(1, 10), (2, 20), (3, 10)],
            "R2": [(10, "x"), (20, "y")],
        },
    ),
    ConformanceCase(
        name="group-sum-count-having",
        description="GROUP BY with SUM/COUNT and a HAVING filter",
        tables={"sales": ("region", "amount")},
        sql=(
            "SELECT region, SUM(amount) AS total, COUNT(amount) AS n "
            "FROM sales GROUP BY region HAVING SUM(amount) > 10"
        ),
        instance={
            "sales": [
                ("east", 10),
                ("east", 20),
                ("west", 5),
                ("north", 30),
            ]
        },
    ),
    ConformanceCase(
        name="distinct",
        description="DISTINCT projection (set semantics)",
        tables={"R1": ("A", "B")},
        sql="SELECT DISTINCT A FROM R1",
        instance={"R1": [(1, 1), (1, 2), (2, 3)]},
    ),
    ConformanceCase(
        name="scalar-aggregates",
        description="scalar COUNT(*) and AVG with no GROUP BY",
        tables={"R1": ("A", "B")},
        sql="SELECT COUNT(*) AS n, AVG(B) AS avg_b FROM R1",
        instance={"R1": [(1, 2), (2, 4), (3, 6)]},
    ),
    ConformanceCase(
        name="arithmetic-division",
        description="row arithmetic incl. division; data has a 0 divisor",
        tables={"R1": ("A", "B")},
        sql="SELECT A, B / A AS ratio, (A + B) * 2 AS scaled FROM R1",
        instance={"R1": [(1, 2), (2, 5), (0, 7)]},
    ),
    ConformanceCase(
        name="aggregate-division",
        description="group-level division of aggregates (AVG shape)",
        tables={"R1": ("A", "B")},
        sql="SELECT A, SUM(B) / COUNT(B) AS mean FROM R1 GROUP BY A",
        instance={"R1": [(1, 2), (1, 4), (2, 9)]},
    ),
    ConformanceCase(
        name="quoted-identifiers",
        description="keyword and embedded-quote identifiers",
        tables={"select": ("group", "order", 'weird "name"')},
        sql=(
            'SELECT "group", "weird ""name""" FROM "select" '
            'WHERE "order" < 5'
        ),
        instance={"select": [("a", 1, "x"), ("b", 9, "y")]},
    ),
    ConformanceCase(
        name="null-literal",
        description="programmatic NULL literal in the SELECT list",
        tables={"R1": ("A", "B")},
        build=_null_literal_block,
        instance={"R1": [(1, 2), (3, 4)]},
    ),
)


def case_by_name(name: str) -> ConformanceCase:
    for case in CASES:
        if case.name == name:
            return case
    raise KeyError(name)


def emit_corpus(dialect: DialectLike) -> str:
    """The full corpus as one deterministic golden document."""
    resolved = get_dialect(dialect)
    lines = [
        f"-- {CORPUS_VERSION} dialect={resolved.name}",
        f"-- {len(CASES)} cases; regenerate with: "
        "pytest tests/dialects/test_goldens.py --update-goldens",
        "",
    ]
    for case in CASES:
        lines.append(f"-- case: {case.name}")
        lines.append(f"-- {case.description}")
        lines.append(case.emit(resolved) + ";")
        lines.append("")
    return "\n".join(lines)


def emit_all() -> dict[str, str]:
    """Corpus documents for every registered dialect."""
    return {name: emit_corpus(name) for name in DIALECT_NAMES}

"""Dialect-aware SQL emission: one emitter, many engines.

The printer in :mod:`repro.sqlparser.printer` renders syntax trees;
*how* identifiers, literals and division are spelled is delegated to a
:class:`Dialect`. This package owns the dialects:

>>> from repro.dialects import get_dialect
>>> get_dialect("postgres").division("x", "y")
'(CAST(x AS DOUBLE PRECISION) / NULLIF(y, 0))'

Everywhere a dialect is accepted — ``blocks.to_sql(dialect=...)``,
``repro emit --dialect``, the execution backends — either a registry
name or a :class:`Dialect` instance works. The golden corpus
(:mod:`repro.dialects.conformance`) pins every printable construct per
dialect so emitter drift fails tests instead of surprising users.
"""

from __future__ import annotations

from typing import Union

from ..errors import ReproError
from .base import Dialect
from .rules import DuckDBDialect, PostgresDialect, SqliteDialect

ANSI = Dialect()
SQLITE = SqliteDialect()
DUCKDB = DuckDBDialect()
POSTGRES = PostgresDialect()

#: Registry of every known dialect, keyed by ``Dialect.name``.
DIALECTS: dict[str, Dialect] = {
    d.name: d for d in (ANSI, SQLITE, DUCKDB, POSTGRES)
}

#: The names ``repro emit --dialect`` (and friends) accept.
DIALECT_NAMES: tuple[str, ...] = tuple(DIALECTS)

DialectLike = Union[str, Dialect]


def get_dialect(dialect: DialectLike) -> Dialect:
    """Resolve a dialect name (or pass an instance through).

    Raises :class:`~repro.errors.ReproError` for unknown names, listing
    the valid ones — this is the error surfaced by ``--dialect`` flags.
    """
    if isinstance(dialect, Dialect):
        return dialect
    try:
        return DIALECTS[dialect]
    except (KeyError, TypeError):
        raise ReproError(
            f"unknown dialect {dialect!r}: expected one of "
            f"{', '.join(DIALECT_NAMES)}"
        ) from None


__all__ = [
    "ANSI",
    "DIALECTS",
    "DIALECT_NAMES",
    "DUCKDB",
    "Dialect",
    "DialectLike",
    "DuckDBDialect",
    "POSTGRES",
    "PostgresDialect",
    "SQLITE",
    "SqliteDialect",
    "get_dialect",
]

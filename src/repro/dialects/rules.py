"""Concrete dialects: SQLite, DuckDB, PostgreSQL.

Each subclass records what that engine genuinely does differently from
the ANSI base; everything left untouched is a deliberate statement that
the engine agrees with the default. The table in ``docs/dialects.md``
mirrors these rules; the golden corpus in ``tests/dialects/goldens/``
pins every rendered construct per dialect.

Division is the subtle one. The repro engine divides exactly and maps
``x / 0`` to NULL, so each dialect must emit whatever incantation makes
*that* engine agree:

* SQLite ``/`` truncates INTEGER operands (``1 / 2 = 0``) but already
  yields NULL on a zero divisor — CAST the numerator to REAL, done.
* DuckDB ``/`` is float division, but what a zero divisor does has
  changed across releases (error vs NULL) — ``NULLIF`` the divisor so
  the result is NULL by construction on every version.
* PostgreSQL ``/`` truncates integers AND raises ``division_by_zero`` —
  both the CAST and the ``NULLIF`` guard are required.
"""

from __future__ import annotations

from .base import Dialect


class SqliteDialect(Dialect):
    """SQLite: quoted identifiers and non-truncating division.

    ``x / 0`` is natively NULL in SQLite, so no divisor guard is needed;
    historic SQLite (< 3.23) has no TRUE/FALSE keywords, so booleans are
    emitted as ``1`` / ``0``.
    """

    name = "sqlite"
    always_quote = True
    real_type = "REAL"
    boolean_literals = False

    def division(self, left: str, right: str) -> str:
        # SQLite's / truncates INTEGER operands; the engine divides
        # exactly. CAST the numerator so the result is REAL either way.
        return f"({self.cast(left, self.real_type)} / {right})"

    def limit(self, count: int) -> str:
        return f"LIMIT {count}"


class DuckDBDialect(Dialect):
    """DuckDB: quoted identifiers, guarded float division."""

    name = "duckdb"
    always_quote = True
    real_type = "DOUBLE"

    def division(self, left: str, right: str) -> str:
        # DuckDB's / is float division already, but a zero divisor has
        # been an error in some releases and NULL in others; NULLIF
        # forces the engine's x / 0 -> NULL semantics everywhere.
        return (
            f"({self.cast(left, self.real_type)} / NULLIF({right}, 0))"
        )

    def limit(self, count: int) -> str:
        return f"LIMIT {count}"


class PostgresDialect(Dialect):
    """PostgreSQL: quoted identifiers, guarded exact division.

    Unquoted names fold to lowercase in Postgres, so quoting everything
    is not just keyword-proofing — it preserves the catalog's case.
    """

    name = "postgres"
    always_quote = True
    real_type = "DOUBLE PRECISION"

    def division(self, left: str, right: str) -> str:
        # Integer / truncates and a zero divisor raises division_by_zero;
        # CAST for exactness, NULLIF to turn the error into NULL.
        return (
            f"({self.cast(left, self.real_type)} / NULLIF({right}, 0))"
        )

    def limit(self, count: int) -> str:
        return f"LIMIT {count}"

"""The unified public facade — the single documented entry point.

:func:`rewrite`
    one query, one response — the stable entry point that the CLI, the
    batch service and the serving daemon all reduce to;
:func:`rewrite_batch`
    many requests at once through :class:`repro.service.BatchRewriteService`
    (grouped by view signature, optionally sharded across workers,
    bounded by a batch deadline);
:func:`explain`
    per-condition usability diagnoses for every candidate view;
:func:`rewrite_iterative`
    the paper's Section 6 iterative improvement loop, one best
    single-view rewriting at a time;
:func:`connect`
    a client for a running ``repro serve`` daemon (TCP or Unix socket),
    speaking the same ``repro-api/1`` envelope as every ``--json``
    command.

All responses project to JSON under the versioned ``repro-api/1``
schema. :func:`to_envelope` is the one serializer behind every CLI
``--json`` output and every daemon response line: top-level ``schema``,
``kind``, ``ok`` and exactly one of ``result`` / ``error``, so output
stays machine-checkable across commands and releases (``docs/api.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from .blocks.normalize import parse_query
from .blocks.query_block import QueryBlock, ViewDef
from .blocks.to_sql import block_to_sql
from .catalog.schema import Catalog
from .cache import QueryCache
from .core.explain import UsabilityDiagnosis, explain_usability
from .core.result import Rewriting
from .obs.budget import BudgetMeter, SearchBudget
from .service.executor import execute_request
from .service.pool import BatchRewriteService
from .service.requests import (
    API_SCHEMA,
    BatchResult,
    RewriteRequest,
    RewriteResponse,
)

__all__ = [
    "API_SCHEMA",
    "BatchResult",
    "BatchRewriteService",
    "ExplainResponse",
    "RewriteRequest",
    "RewriteResponse",
    "connect",
    "explain",
    "rewrite",
    "rewrite_batch",
    "rewrite_iterative",
    "to_envelope",
]

BudgetLike = Union[SearchBudget, BudgetMeter, None]


def to_envelope(
    payload=None,
    *,
    kind: Optional[str] = None,
    error=None,
    request_id=None,
) -> dict:
    """Wrap any API payload in the consolidated ``repro-api/1`` envelope.

    ``payload`` may be a dict, anything with ``to_json_dict()``, or
    ``None``. An inner ``schema`` tag is dropped (the envelope carries
    the version) and an inner ``kind`` is hoisted to the top level; an
    inner non-null ``error`` field (the batch service's captured-error
    contract) marks the envelope ``ok: false`` while keeping the
    degraded result available. ``request_id`` (or the payload's own
    ``request_id``/``id``) is echoed as top-level ``id`` so clients of
    the serving daemon can pipeline.
    """
    if payload is not None and hasattr(payload, "to_json_dict"):
        payload = payload.to_json_dict()
    result = dict(payload) if payload is not None else None
    if result is not None:
        result.pop("schema", None)
        inner_kind = result.pop("kind", None)
        kind = kind or inner_kind
        if error is None and result.get("error") is not None:
            error = result["error"]
    doc = {
        "schema": API_SCHEMA,
        "kind": kind or "result",
        "ok": error is None,
    }
    if request_id is None and result is not None:
        request_id = result.get("request_id")
        if request_id is None:
            request_id = result.get("id")
    if request_id is not None:
        doc["id"] = request_id
    if result is not None:
        doc["result"] = result
    if error is not None:
        doc["error"] = (
            dict(error)
            if isinstance(error, dict)
            else {"message": str(error)}
        )
    return doc


def connect(address, timeout: Optional[float] = 10.0):
    """A synchronous client for a running ``repro serve`` daemon.

    ``address`` accepts ``(host, port)``, ``"host:port"``,
    ``"tcp://host:port"``, or ``"unix:///path/to.sock"``. Returns a
    :class:`repro.serving.client.ServingClient` (a context manager);
    see ``docs/serving.md`` for the wire protocol.
    """
    from .serving.client import ServingClient

    return ServingClient.connect(address, timeout=timeout)


def rewrite(
    query: Union[str, QueryBlock],
    catalog: Optional[Catalog] = None,
    views: Optional[Sequence[ViewDef]] = None,
    *,
    budget: BudgetLike = None,
    max_steps: int = 3,
    unfold: bool = False,
    use_set_semantics: bool = True,
    include_partial: bool = True,
    trace: bool = False,
    collect_metrics: bool = False,
    request_id: Optional[str] = None,
    strategy: Optional[str] = None,
) -> RewriteResponse:
    """Rewrite one query over materialized views.

    With a ``catalog``, textual queries parse against it and results
    come back cost-ranked (``response.ranked``, ``response.best()``).
    Without one, ``query`` must be a pre-parsed :class:`QueryBlock` and
    candidates are reported in discovery order only. ``budget`` accepts
    a :class:`SearchBudget` or an already-running :class:`BudgetMeter`
    (to span several calls with one budget). ``collect_metrics=True``
    attaches a ``repro-metrics/1`` snapshot of exactly this request's
    counters to ``response.metrics``. ``strategy`` picks the planner
    strategy (``c1c4`` default, ``cohen_nutt``, ``both`` — see
    :mod:`repro.strategies` and ``docs/strategies.md``). Errors raise
    :class:`~repro.errors.ReproError`; the batch path instead captures
    them per request.
    """
    from .strategies import normalize_strategy

    request = RewriteRequest(
        query=query,
        catalog=catalog,
        views=tuple(views) if views is not None else None,
        budget=budget if isinstance(budget, SearchBudget) else None,
        max_steps=max_steps,
        unfold=unfold,
        use_set_semantics=use_set_semantics,
        include_partial=include_partial,
        trace=trace,
        collect_metrics=collect_metrics,
        request_id=request_id,
        strategy=normalize_strategy(strategy),
    )
    if isinstance(budget, BudgetMeter):
        # A live meter cannot ride inside the (picklable) request; pass
        # it as the execution-time overlay instead.
        return execute_request(request, budget=budget)
    return execute_request(request)


def rewrite_batch(
    requests: Sequence[RewriteRequest],
    *,
    mode: str = "auto",
    workers: Optional[int] = None,
    deadline: Optional[float] = None,
    cache: Optional[QueryCache] = None,
    service: Optional[BatchRewriteService] = None,
) -> BatchResult:
    """Rewrite a whole batch of requests; N requests in, N responses out.

    Requests with equal (catalog, views, semantics) fingerprints share
    planner warm-up; ``mode`` picks the backend (``serial`` / ``thread``
    / ``process``, default ``auto`` by batch size), ``deadline`` bounds
    the batch wall-clock with graceful degradation. Pass a long-lived
    ``service`` to keep planner/memo warmth across batches; otherwise a
    fresh one is built per call.
    """
    if service is None:
        service = BatchRewriteService(mode=mode, workers=workers, cache=cache)
    return service.submit(requests, deadline=deadline)


@dataclass(frozen=True)
class ExplainResponse:
    """Per-view usability diagnoses for one query."""

    query: QueryBlock
    diagnoses: tuple[UsabilityDiagnosis, ...]

    @property
    def usable_views(self) -> tuple[str, ...]:
        return tuple(
            d.view.name for d in self.diagnoses if d.usable
        )

    def summary(self) -> str:
        return "\n\n".join(d.summary() for d in self.diagnoses)

    def to_json_dict(self) -> dict:
        """The ``repro-api/1`` projection of the diagnoses."""
        return {
            "schema": API_SCHEMA,
            "kind": "explain",
            "query": block_to_sql(self.query),
            "views": [
                {
                    "name": d.view.name,
                    "usable": d.usable,
                    "scope_failure": d.scope_failure,
                    "summary": d.summary(),
                }
                for d in self.diagnoses
            ],
        }


def explain(
    query: Union[str, QueryBlock],
    catalog: Catalog,
    view: Optional[str] = None,
) -> ExplainResponse:
    """Diagnose why each view is or is not usable for ``query``.

    ``view`` restricts the diagnosis to one registered view by name.
    """
    if isinstance(query, str):
        query = parse_query(query, catalog)
    if view is not None:
        views = [catalog.view(view)]
    else:
        views = list(catalog.views.values())
    return ExplainResponse(
        query=query,
        diagnoses=tuple(explain_usability(query, v) for v in views),
    )


def rewrite_iterative(
    query: QueryBlock,
    views: Sequence[ViewDef],
    catalog: Optional[Catalog] = None,
    use_set_semantics: bool = False,
    budget: BudgetLike = None,
) -> Optional[Rewriting]:
    """One best single-view rewriting, or ``None`` (Section 6 loop).

    The facade-level home of the paper's iterative improvement loop
    (formerly also reachable as ``repro.rewrite_iteratively``).
    """
    from .core.multiview import rewrite_iteratively as _impl

    return _impl(
        query,
        views,
        catalog=catalog,
        use_set_semantics=use_set_semantics,
        budget=budget,
    )

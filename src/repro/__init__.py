"""repro: answering SQL queries with aggregation using materialized views.

A faithful, executable reproduction of Dar, Jagadish, Levy and Srivastava,
*"Reasoning with Aggregation Constraints in Views"* (1996; the work
published at VLDB'96 as "Answering Queries with Aggregation Using Views").

:mod:`repro.api` is the single documented entry point — ``rewrite``,
``rewrite_batch``, ``explain``, ``rewrite_iterative`` and ``connect``
(for a running ``repro serve`` daemon) all return responses that project
to the versioned ``repro-api/1`` JSON envelope. Quickstart::

    from repro import Catalog, api, parse_view, table

    catalog = Catalog([
        table("Calls", ["Call_Id", "Plan_Id", "Year", "Charge"],
              key=["Call_Id"], row_count=1_000_000),
    ])
    catalog.add_view(parse_view(
        "CREATE VIEW Yearly (Plan_Id, Year, Total) AS "
        "SELECT Plan_Id, Year, SUM(Charge) FROM Calls "
        "GROUP BY Plan_Id, Year", catalog))
    response = api.rewrite(
        "SELECT Plan_Id, SUM(Charge) FROM Calls "
        "WHERE Year = 1995 GROUP BY Plan_Id", catalog)
    print(response.best().sql())

See DESIGN.md for the system inventory, docs/api.md for the facade and
docs/serving.md for the daemon; EXPERIMENTS.md has the reproduced
experiments.
"""

from .blocks import (
    AggFunc,
    Aggregate,
    Column,
    Comparison,
    Constant,
    Op,
    QueryBlock,
    Relation,
    SelectItem,
    ViewDef,
    block_to_sql,
    parse_query,
    parse_view,
    view_to_sql,
)
from .blocks.nested import NestedQuery, nested_to_sql, parse_nested_query
from .blocks.unfold import unfold_views
from .cache import CacheStats, QueryCache
from .catalog import Catalog, TableSchema, fd, table
from .maintenance import MaintainedView
from .advisor import Recommendation, recommend_views
from .constraints import (
    Closure,
    DifferenceClosure,
    equivalent,
    implies,
    normalize_having,
    satisfiable,
)
from .core import (
    RewriteEngine,
    contained_in,
    explain_usability,
    multiset_equivalent,
    set_equivalent,
    RewriteResult,
    Rewriting,
    canonical_key,
    single_view_rewritings,
    try_rewrite_aggregation,
    try_rewrite_conjunctive,
    try_rewrite_paper_va,
    try_rewrite_set_semantics,
)
from .engine import Database, Table
from .equivalence import assert_equivalent, check_equivalent
from .obs import BudgetMeter, RewriteTrace, SearchBudget
from .errors import (
    EvaluationError,
    NormalizationError,
    ReproError,
    RewriteError,
    SchemaError,
    SQLSyntaxError,
    UnsupportedSQLError,
)
from .mappings import ColumnMapping, enumerate_mappings
from . import api
from .api import (
    ExplainResponse,
    explain,
    rewrite,
    rewrite_batch,
)
from .service import (
    BatchResult,
    BatchRewriteService,
    RewriteRequest,
    RewriteResponse,
)

__version__ = "1.0.0"

__all__ = [
    "AggFunc",
    "Aggregate",
    "Column",
    "Comparison",
    "Constant",
    "Op",
    "QueryBlock",
    "Relation",
    "SelectItem",
    "ViewDef",
    "block_to_sql",
    "parse_query",
    "parse_view",
    "view_to_sql",
    "unfold_views",
    "NestedQuery",
    "nested_to_sql",
    "parse_nested_query",
    "MaintainedView",
    "QueryCache",
    "CacheStats",
    "Catalog",
    "TableSchema",
    "fd",
    "table",
    "Closure",
    "DifferenceClosure",
    "Recommendation",
    "recommend_views",
    "equivalent",
    "implies",
    "normalize_having",
    "satisfiable",
    "RewriteEngine",
    "contained_in",
    "explain_usability",
    "multiset_equivalent",
    "set_equivalent",
    "RewriteResult",
    "Rewriting",
    "canonical_key",
    "single_view_rewritings",
    "try_rewrite_aggregation",
    "try_rewrite_conjunctive",
    "try_rewrite_paper_va",
    "try_rewrite_set_semantics",
    "Database",
    "Table",
    "assert_equivalent",
    "check_equivalent",
    "BudgetMeter",
    "RewriteTrace",
    "SearchBudget",
    "EvaluationError",
    "NormalizationError",
    "ReproError",
    "RewriteError",
    "SchemaError",
    "SQLSyntaxError",
    "UnsupportedSQLError",
    "ColumnMapping",
    "enumerate_mappings",
    "api",
    "rewrite",
    "rewrite_batch",
    "explain",
    "ExplainResponse",
    "RewriteRequest",
    "RewriteResponse",
    "BatchResult",
    "BatchRewriteService",
    "__version__",
]

"""repro: answering SQL queries with aggregation using materialized views.

A faithful, executable reproduction of Dar, Jagadish, Levy and Srivastava,
*"Reasoning with Aggregation Constraints in Views"* (1996; the work
published at VLDB'96 as "Answering Queries with Aggregation Using Views").

Quickstart::

    from repro import Catalog, Database, RewriteEngine, table

    catalog = Catalog([
        table("Calls", ["Call_Id", "Plan_Id", "Year", "Charge"],
              key=["Call_Id"], row_count=1_000_000),
    ])
    engine = RewriteEngine(catalog)
    engine.add_view(
        "CREATE VIEW Yearly (Plan_Id, Year, Total) AS "
        "SELECT Plan_Id, Year, SUM(Charge) FROM Calls "
        "GROUP BY Plan_Id, Year"
    )
    result = engine.rewrite(
        "SELECT Plan_Id, SUM(Charge) FROM Calls "
        "WHERE Year = 1995 GROUP BY Plan_Id"
    )
    print(result.best().sql())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced experiments.
"""

from .blocks import (
    AggFunc,
    Aggregate,
    Column,
    Comparison,
    Constant,
    Op,
    QueryBlock,
    Relation,
    SelectItem,
    ViewDef,
    block_to_sql,
    parse_query,
    parse_view,
    view_to_sql,
)
from .blocks.nested import NestedQuery, nested_to_sql, parse_nested_query
from .blocks.unfold import unfold_views
from .cache import CacheStats, QueryCache
from .catalog import Catalog, TableSchema, fd, table
from .maintenance import MaintainedView
from .advisor import Recommendation, recommend_views
from .constraints import (
    Closure,
    DifferenceClosure,
    equivalent,
    implies,
    normalize_having,
    satisfiable,
)
from .core import (
    RewriteEngine,
    contained_in,
    explain_usability,
    multiset_equivalent,
    set_equivalent,
    RewriteResult,
    Rewriting,
    canonical_key,
    single_view_rewritings,
    try_rewrite_aggregation,
    try_rewrite_conjunctive,
    try_rewrite_paper_va,
    try_rewrite_set_semantics,
)
from .engine import Database, Table
from .equivalence import assert_equivalent, check_equivalent
from .obs import BudgetMeter, RewriteTrace, SearchBudget
from .errors import (
    EvaluationError,
    NormalizationError,
    ReproError,
    RewriteError,
    SchemaError,
    SQLSyntaxError,
    UnsupportedSQLError,
)
from .mappings import ColumnMapping, enumerate_mappings
from . import api
from .api import (
    ExplainResponse,
    explain,
    rewrite,
    rewrite_batch,
)
from .service import (
    BatchResult,
    BatchRewriteService,
    RewriteRequest,
    RewriteResponse,
)

__version__ = "1.0.0"


def all_rewritings(
    query,
    views,
    catalog=None,
    use_set_semantics=False,
    max_steps=4,
    include_partial=True,
    use_planner=True,
    planner=None,
    budget=None,
):
    """Deprecated: use :func:`repro.api.rewrite` instead.

    Same results as the historical entry point —
    ``repro.api.rewrite(...).rewritings`` preserves the search's
    discovery order. The planner escape hatches (``use_planner=False``
    or an explicit ``planner``) still route to the core search directly;
    everything else delegates to the facade.
    """
    import warnings

    warnings.warn(
        "repro.all_rewritings() is deprecated; use repro.api.rewrite() — "
        "response.rewritings preserves the old discovery order",
        DeprecationWarning,
        stacklevel=2,
    )
    if not use_planner or planner is not None:
        from .core.multiview import all_rewritings as _impl

        return _impl(
            query,
            views,
            catalog=catalog,
            use_set_semantics=use_set_semantics,
            max_steps=max_steps,
            include_partial=include_partial,
            use_planner=use_planner,
            planner=planner,
            budget=budget,
        )
    response = api.rewrite(
        query,
        catalog=catalog,
        views=tuple(views),
        budget=budget,
        max_steps=max_steps,
        use_set_semantics=use_set_semantics,
        include_partial=include_partial,
    )
    return list(response.rewritings)


def rewrite_iteratively(
    query,
    views,
    catalog=None,
    use_set_semantics=False,
    budget=None,
):
    """Deprecated: use :func:`repro.api.rewrite_iterative` instead.

    Thin compatibility shim over the facade; identical results.
    """
    import warnings

    warnings.warn(
        "repro.rewrite_iteratively() is deprecated; use "
        "repro.api.rewrite_iterative()",
        DeprecationWarning,
        stacklevel=2,
    )
    return api.rewrite_iterative(
        query,
        views,
        catalog=catalog,
        use_set_semantics=use_set_semantics,
        budget=budget,
    )

__all__ = [
    "AggFunc",
    "Aggregate",
    "Column",
    "Comparison",
    "Constant",
    "Op",
    "QueryBlock",
    "Relation",
    "SelectItem",
    "ViewDef",
    "block_to_sql",
    "parse_query",
    "parse_view",
    "view_to_sql",
    "unfold_views",
    "NestedQuery",
    "nested_to_sql",
    "parse_nested_query",
    "MaintainedView",
    "QueryCache",
    "CacheStats",
    "Catalog",
    "TableSchema",
    "fd",
    "table",
    "Closure",
    "DifferenceClosure",
    "Recommendation",
    "recommend_views",
    "equivalent",
    "implies",
    "normalize_having",
    "satisfiable",
    "RewriteEngine",
    "contained_in",
    "explain_usability",
    "multiset_equivalent",
    "set_equivalent",
    "RewriteResult",
    "Rewriting",
    "all_rewritings",
    "canonical_key",
    "rewrite_iteratively",
    "single_view_rewritings",
    "try_rewrite_aggregation",
    "try_rewrite_conjunctive",
    "try_rewrite_paper_va",
    "try_rewrite_set_semantics",
    "Database",
    "Table",
    "assert_equivalent",
    "check_equivalent",
    "BudgetMeter",
    "RewriteTrace",
    "SearchBudget",
    "EvaluationError",
    "NormalizationError",
    "ReproError",
    "RewriteError",
    "SchemaError",
    "SQLSyntaxError",
    "UnsupportedSQLError",
    "ColumnMapping",
    "enumerate_mappings",
    "api",
    "rewrite",
    "rewrite_batch",
    "explain",
    "ExplainResponse",
    "RewriteRequest",
    "RewriteResponse",
    "BatchResult",
    "BatchRewriteService",
    "__version__",
]

"""Conjunctive-query containment and multiset equivalence.

Section 6 contrasts this paper with [LMSS95] (set semantics): under set
semantics, view usability reduces to query *containment*, decided by
containment mappings (homomorphisms); under SQL's multiset semantics the
connection "does not carry over" — multiset equivalence of conjunctive
queries requires an *isomorphism* ([CV93], the paper's basis for
condition C1). This module makes both notions executable:

* :func:`contained_in` — set-semantics containment via containment
  mappings (sound and complete for equality-only predicates; sound for
  the full comparison language);
* :func:`set_equivalent` — mutual containment;
* :func:`multiset_equivalent` — isomorphism per [CV93].

Together with the engine oracle this lets tests *demonstrate* the
paper's motivating gap: pairs of queries that are set-equivalent but not
multiset-equivalent.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..blocks.query_block import QueryBlock
from ..blocks.terms import Column
from ..constraints.closure import Closure
from ..constraints.implication import equivalent
from ..errors import UnsupportedSQLError
from ..mappings.column_mapping import ColumnMapping
from ..mappings.enumerate_mappings import enumerate_mappings


def _require_conjunctive(block: QueryBlock, role: str) -> None:
    if not block.is_conjunctive:
        raise UnsupportedSQLError(
            f"{role} must be a conjunctive query (no grouping/aggregation)"
        )
    for item in block.select:
        if not isinstance(item.expr, Column):
            raise UnsupportedSQLError(
                f"{role} must select plain columns"
            )


def containment_mappings(
    container: QueryBlock, contained: QueryBlock
) -> Iterator[ColumnMapping]:
    """Containment mappings witnessing ``contained ⊆ container``.

    A containment mapping sends ``container``'s columns into
    ``contained``'s such that the mapped conditions are entailed and the
    mapped SELECT list matches position-wise (up to entailed equality).
    Many-to-1 is allowed, as in the classical set-semantics theory.
    """
    _require_conjunctive(container, "container")
    _require_conjunctive(contained, "contained")
    if len(container.select) != len(contained.select):
        return
    closure = Closure(contained.where)
    for mapping in enumerate_mappings(container, contained, many_to_one=True):
        if not closure.entails_all(mapping.apply_atoms(container.where)):
            continue
        heads_match = all(
            closure.equal(
                mapping.apply(c_item.expr), q_item.expr
            )
            for c_item, q_item in zip(container.select, contained.select)
        )
        if heads_match:
            yield mapping


def contained_in(left: QueryBlock, right: QueryBlock) -> bool:
    """Set-semantics containment ``left ⊆ right``.

    Complete for equality-only predicates (the classical theorem); sound
    in general.
    """
    return next(containment_mappings(right, left), None) is not None


def set_equivalent(left: QueryBlock, right: QueryBlock) -> bool:
    """Set-semantics equivalence: mutual containment."""
    return contained_in(left, right) and contained_in(right, left)


def multiset_equivalent(left: QueryBlock, right: QueryBlock) -> bool:
    """Multiset equivalence of conjunctive queries per [CV93]:
    a 1-1 (bijective) table mapping under which the conditions are
    equivalent and the SELECT lists agree position-wise."""
    _require_conjunctive(left, "left")
    _require_conjunctive(right, "right")
    if len(left.select) != len(right.select):
        return False
    if len(left.from_) != len(right.from_):
        return False
    closure_right = Closure(right.where)
    for mapping in enumerate_mappings(left, right, many_to_one=False):
        mapped = mapping.apply_atoms(left.where)
        # Conditions must be *equivalent*, not merely entailed —
        # otherwise the two core-table multisets differ.
        if not equivalent(list(mapped), list(right.where)):
            continue
        heads = all(
            closure_right.equal(mapping.apply(li.expr), ri.expr)
            for li, ri in zip(left.select, right.select)
        )
        if heads:
            return True
    return False


def usable_under_set_semantics(
    query: QueryBlock, view_block: QueryBlock
) -> Optional[ColumnMapping]:
    """The [LMSS95]-style usability witness (containment of the view's
    *expansion*), restricted to whole-query coverage: a containment
    mapping in each direction between query and view body. Used by tests
    to contrast with the multiset conditions."""
    if not (
        contained_in(query, view_block)
        and contained_in(view_block, query)
    ):
        return None
    return next(containment_mappings(view_block, query), None)

"""The paper's core contribution: view-usability tests and rewriting."""

from .aggregate import try_rewrite_aggregation
from .canonical import blocks_isomorphic, canonical_key
from .conjunctive import try_rewrite_conjunctive
from .containment import (
    contained_in,
    multiset_equivalent,
    set_equivalent,
)
from .explain import UsabilityDiagnosis, explain_usability
from .cost import estimate_cost, estimate_result_rows, estimate_rows
from .multiview import (
    all_rewritings,
    all_rewritings_naive,
    rewrite_iteratively,
    single_view_rewritings,
)
from .paper_va import try_rewrite_paper_va
from .planner import (
    PlannerStats,
    RewritePlanner,
    ViewSignature,
    baseline_mode,
    cache_stats,
)
from .result import Rewriting
from .rewriter import (
    NestedRewriteResult,
    RankedRewriting,
    RewriteEngine,
    RewriteResult,
)
from .setsem import try_rewrite_set_semantics

__all__ = [
    "try_rewrite_aggregation",
    "blocks_isomorphic",
    "canonical_key",
    "try_rewrite_conjunctive",
    "contained_in",
    "multiset_equivalent",
    "set_equivalent",
    "UsabilityDiagnosis",
    "explain_usability",
    "estimate_cost",
    "estimate_result_rows",
    "estimate_rows",
    "all_rewritings",
    "all_rewritings_naive",
    "rewrite_iteratively",
    "single_view_rewritings",
    "try_rewrite_paper_va",
    "PlannerStats",
    "RewritePlanner",
    "ViewSignature",
    "baseline_mode",
    "cache_stats",
    "Rewriting",
    "NestedRewriteResult",
    "RankedRewriting",
    "RewriteEngine",
    "RewriteResult",
    "try_rewrite_set_semantics",
]

"""Explain *why* a view is or is not usable for a query.

The rewriting functions answer yes/no; warehouse operators need the
reason ("the view projects out Month, which the query groups by"). This
module re-runs the usability conditions per candidate mapping and
reports each one's outcome with the offending column, predicate or
aggregate named.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..blocks.exprs import AggFunc, Aggregate
from ..blocks.query_block import QueryBlock, ViewDef
from ..blocks.terms import Column
from ..constraints.closure import Closure
from ..constraints.having import normalize_having
from ..constraints.residual import find_residual
from ..mappings.column_mapping import ColumnMapping
from ..mappings.enumerate_mappings import enumerate_mappings
from .aggregate import _ViewShape, _equal_column_output, _rewrite_aggregate
from .common import (
    make_view_occurrence,
    pick_equal_select_column,
    query_namer,
    select_is_plain,
    view_is_rewritable,
)


@dataclass
class ConditionReport:
    """One usability condition's outcome under one mapping."""

    condition: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        return f"[{mark}] {self.condition}: {self.detail}"


@dataclass
class MappingDiagnosis:
    mapping: ColumnMapping
    reports: list[ConditionReport] = field(default_factory=list)

    @property
    def usable(self) -> bool:
        return all(r.ok for r in self.reports)

    def first_failure(self) -> Optional[ConditionReport]:
        for report in self.reports:
            if not report.ok:
                return report
        return None


@dataclass
class UsabilityDiagnosis:
    query: QueryBlock
    view: ViewDef
    scope_failure: Optional[str] = None
    mappings: list[MappingDiagnosis] = field(default_factory=list)
    #: True when no 1-1 mapping exists but a many-to-1 one does — the
    #: Section 5.2 hint.
    many_to_one_possible: bool = False

    @property
    def usable(self) -> bool:
        return self.scope_failure is None and any(
            m.usable for m in self.mappings
        )

    def summary(self) -> str:
        lines = [f"view {self.view.name}: "
                 + ("USABLE" if self.usable else "not usable")]
        if self.scope_failure:
            lines.append(f"  {self.scope_failure}")
            return "\n".join(lines)
        if not self.mappings:
            lines.append(
                "  C1: no column mapping exists — some view table has no "
                "same-named counterpart in the query (Definition 2.1)"
            )
            if self.many_to_one_possible:
                lines.append(
                    "  note: many-to-1 mappings do exist; with keys or "
                    "SELECT DISTINCT the Section 5.2 set-semantics "
                    "relaxation may apply (try_rewrite_set_semantics)"
                )
        for i, diagnosis in enumerate(self.mappings, 1):
            lines.append(f"  mapping {i}: {diagnosis.mapping.describe()}")
            for report in diagnosis.reports:
                lines.append(f"    {report}")
        return "\n".join(lines)


def explain_usability(query: QueryBlock, view: ViewDef) -> UsabilityDiagnosis:
    """Diagnose usability of ``view`` for ``query`` across all mappings."""
    diagnosis = UsabilityDiagnosis(query=query, view=view)

    if not view_is_rewritable(view):
        diagnosis.scope_failure = (
            "the view is outside the rewriting class (DISTINCT, or a "
            "SELECT item that is neither a column nor AGG(column))"
        )
        return diagnosis
    if not select_is_plain(query):
        diagnosis.scope_failure = (
            "the query's SELECT items must be columns or single aggregates"
        )
        return diagnosis
    if view.block.is_aggregation and query.is_conjunctive:
        diagnosis.scope_failure = (
            "Section 4.5: an aggregation view cannot answer a conjunctive "
            "query under multiset semantics (grouping loses multiplicities)"
        )
        return diagnosis

    for mapping in enumerate_mappings(view.block, query):
        if view.block.is_conjunctive:
            diagnosis.mappings.append(_diagnose_conjunctive(query, view, mapping))
        else:
            diagnosis.mappings.append(_diagnose_aggregation(query, view, mapping))
    if not diagnosis.mappings:
        diagnosis.many_to_one_possible = (
            next(
                enumerate_mappings(view.block, query, many_to_one=True),
                None,
            )
            is not None
        )
    return diagnosis


def _describe_column(block: QueryBlock, column: Column) -> str:
    try:
        rel = block.relation_of(column)
        return f"{rel.name}.{rel.base_name_of(column)}"
    except Exception:
        return column.name


def _diagnose_conjunctive(
    query: QueryBlock, view: ViewDef, mapping: ColumnMapping
) -> MappingDiagnosis:
    out = MappingDiagnosis(mapping)
    query_n = normalize_having(query)
    closure_q = Closure(query_n.where)
    image = mapping.image_columns
    namer = query_namer(query_n, view.block)
    occurrence = make_view_occurrence(view, mapping, namer)

    # C2
    missing = [
        column
        for column in list(query_n.col_sel()) + list(query_n.group_by)
        if column in image
        and pick_equal_select_column(column, view, mapping, closure_q) is None
    ]
    out.reports.append(
        ConditionReport(
            "C2",
            not missing,
            "every needed SELECT/GROUP BY column survives the view's "
            "projection"
            if not missing
            else "the view projects out "
            + ", ".join(_describe_column(query_n, c) for c in missing)
            + " (no Conds(Q)-equal copy in Sel(V))",
        )
    )

    # C4
    bad_aggs = []
    for agg in query_n.all_aggregates():
        arg = agg.arg
        if not isinstance(arg, Column) or arg not in image:
            continue
        if pick_equal_select_column(arg, view, mapping, closure_q):
            continue
        if agg.func is AggFunc.COUNT and occurrence.select_columns:
            continue  # step S4 counts any surviving column
        bad_aggs.append(agg)
    out.reports.append(
        ConditionReport(
            "C4",
            not bad_aggs,
            "all aggregated columns are recoverable"
            if not bad_aggs
            else "cannot compute "
            + ", ".join(str(a) for a in bad_aggs)
            + ": the aggregated column is projected out of the view",
        )
    )

    # C3
    mapped = mapping.apply_atoms(view.block.where)
    if not closure_q.entails_all(mapped):
        out.reports.append(
            ConditionReport(
                "C3",
                False,
                "the view is more selective than the query: Conds(Q) does "
                "not imply "
                + ", ".join(
                    str(a) for a in mapped if not closure_q.entails(a)
                )
                + " — the view discards tuples the query needs",
            )
        )
        return out
    allowed = (query_n.cols() - image) | frozenset(occurrence.select_columns)
    residual = find_residual(query_n.where, mapped, allowed)
    out.reports.append(
        ConditionReport(
            "C3",
            residual is not None,
            "Conds(Q) factors as φ(Conds(V)) AND Conds' over surviving "
            "columns"
            if residual is not None
            else "some query condition constrains a column the view "
            "projects out, and no equal surviving column exists",
        )
    )
    return out


def _diagnose_aggregation(
    query: QueryBlock, view: ViewDef, mapping: ColumnMapping
) -> MappingDiagnosis:
    out = MappingDiagnosis(mapping)
    query_n = normalize_having(query)
    view_n = view.block
    if view_n.having:
        view_n = normalize_having(view_n)
    closure_q = Closure(query_n.where)
    closure_v = Closure(view_n.where)
    image = mapping.image_columns
    namer = query_namer(query_n, view_n)
    occurrence = make_view_occurrence(view, mapping, namer)
    shape = _ViewShape(view, mapping, occurrence)

    # C2'
    missing = [
        column
        for column in list(query_n.group_by) + list(query_n.col_sel())
        if column in image
        and _equal_column_output(column, shape, mapping, closure_q) is None
    ]
    out.reports.append(
        ConditionReport(
            "C2'",
            not missing,
            "every grouping column appears among the view's non-aggregated "
            "outputs"
            if not missing
            else "grouping column(s) "
            + ", ".join(_describe_column(query_n, c) for c in missing)
            + " are not in ColSel(V) — the view's groups are too coarse",
        )
    )

    # C3'
    mapped = mapping.apply_atoms(view_n.where)
    if not closure_q.entails_all(mapped):
        out.reports.append(
            ConditionReport(
                "C3'",
                False,
                "the view is more selective than the query (Conds(Q) does "
                "not imply φ(Conds(V)))",
            )
        )
    else:
        colsel_outputs = frozenset(shape.column_outputs.values())
        allowed = (query_n.cols() - image) | colsel_outputs
        residual = find_residual(query_n.where, mapped, allowed)
        out.reports.append(
            ConditionReport(
                "C3'",
                residual is not None,
                "residual conditions fit on grouping outputs"
                if residual is not None
                else "a query condition constrains an aggregated or "
                "projected-out view column (Example 4.4's obstruction)",
            )
        )

    # C4'
    sigma: dict[Column, Column] = {}
    for column in list(query_n.group_by) + list(query_n.col_sel()):
        if column in image:
            found = _equal_column_output(column, shape, mapping, closure_q)
            if found is not None:
                sigma[column] = found
    bad: list[str] = []
    for agg in query_n.all_aggregates():
        if not isinstance(agg.arg, Column):
            bad.append(f"{agg} has a compound argument")
            continue
        replacement, uses_count = _rewrite_aggregate(
            agg, shape, mapping, closure_q, closure_v, image, sigma
        )
        if replacement is None:
            if uses_count and shape.count_output is None:
                bad.append(
                    f"{agg} needs the view to expose a COUNT output to "
                    f"recover multiplicities (C4' part 1(b)/2)"
                )
            else:
                bad.append(
                    f"{agg}: no matching aggregate or grouping output in "
                    f"the view"
                )
        elif agg.func is AggFunc.COUNT and not query_n.group_by:
            bad.append(
                f"{agg}: COUNT over a GROUP-BY-less query cannot be "
                f"rewritten (NULL-vs-0 on empty input)"
            )
    out.reports.append(
        ConditionReport(
            "C4'",
            not bad,
            "every query aggregate is computable from the view's outputs"
            if not bad
            else "; ".join(bad),
        )
    )

    # Section 4.3: HAVING in the view.
    if view_n.having:
        from .aggregate import _check_view_having

        ok = _check_view_having(query_n, view_n, mapping, closure_q, image)
        out.reports.append(
            ConditionReport(
                "4.3",
                ok,
                "the view's HAVING clause is entailed with exactly aligned "
                "groups"
                if ok
                else "the view's HAVING clause may eliminate groups the "
                "query still needs (Section 4.3)",
            )
        )
    return out

"""Canonical forms of query blocks, up to column renaming and FROM order.

Theorem 3.2's Church-Rosser property says rewriting with a set of views
yields *the same* result regardless of the order in which the views are
incorporated — "the same" up to the bookkeeping names our normalization
invents. This module computes a canonical key for a block so that tests
(and the multi-view search's deduplication) can compare rewritings
structurally.

Only FROM occurrences with the same relation name are interchangeable, so
the search over orders is the product of per-name permutation groups —
tiny for realistic queries.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterator

from ..blocks.exprs import Aggregate, Arith, Expr
from ..blocks.query_block import QueryBlock
from ..blocks.terms import Column, Comparison, Constant


def _render_expr(expr: Expr, names: dict[Column, str]) -> str:
    if isinstance(expr, Column):
        return names.get(expr, f"?{expr.name}")
    if isinstance(expr, Constant):
        return str(expr)
    if isinstance(expr, Aggregate):
        return f"{expr.func}({_render_expr(expr.arg, names)})"
    if isinstance(expr, Arith):
        return (
            f"({_render_expr(expr.left, names)} {expr.op} "
            f"{_render_expr(expr.right, names)})"
        )
    raise TypeError(f"not an expression: {expr!r}")


def _render_atom(atom: Comparison, names: dict[Column, str]) -> str:
    norm = atom.normalized()
    left = _render_expr(norm.left, names)
    right = _render_expr(norm.right, names)
    if norm.op.value in ("=", "<>") and right < left:
        left, right = right, left
    return f"{left} {norm.op} {right}"


def _orderings(block: QueryBlock) -> Iterator[tuple[int, ...]]:
    """All FROM orders that permute only same-named occurrences, keeping
    the groups in sorted-name order."""
    by_name: dict[str, list[int]] = {}
    for i, rel in enumerate(block.from_):
        by_name.setdefault(rel.name, []).append(i)
    names = sorted(by_name)

    def expand(pos: int) -> Iterator[tuple[int, ...]]:
        if pos == len(names):
            yield ()
            return
        for perm in permutations(by_name[names[pos]]):
            for rest in expand(pos + 1):
                yield tuple(perm) + rest

    yield from expand(0)


def canonical_key(block: QueryBlock) -> str:
    """A string equal for blocks identical up to renaming / FROM order."""
    best = None
    for order in _orderings(block):
        names: dict[Column, str] = {}
        from_render = []
        for slot, idx in enumerate(order):
            rel = block.from_[idx]
            for j, col in enumerate(rel.columns):
                names[col] = f"t{slot}.{j}"
            from_render.append(f"{rel.name}#{slot}")
        parts = [
            "FROM " + ",".join(from_render),
            "SELECT "
            + ";".join(
                _render_expr(item.expr, names) for item in block.select
            ),
            "WHERE "
            + ";".join(
                sorted(_render_atom(a, names) for a in block.where)
            ),
            "GROUP "
            + ";".join(sorted(names.get(c, c.name) for c in block.group_by)),
            "HAVING "
            + ";".join(
                sorted(_render_atom(a, names) for a in block.having)
            ),
            "DISTINCT" if block.distinct else "",
        ]
        key = "|".join(parts)
        if best is None or key < best:
            best = key
    assert best is not None
    return best


def blocks_isomorphic(left: QueryBlock, right: QueryBlock) -> bool:
    """Structural equality up to column renaming and FROM reordering."""
    return canonical_key(left) == canonical_key(right)

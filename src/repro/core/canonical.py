"""Canonical forms of query blocks, up to column renaming and FROM order.

Theorem 3.2's Church-Rosser property says rewriting with a set of views
yields *the same* result regardless of the order in which the views are
incorporated — "the same" up to the bookkeeping names our normalization
invents. This module computes a canonical key for a block so that tests
(and the multi-view search's deduplication) can compare rewritings
structurally.

Only FROM occurrences with the same relation name are interchangeable, so
the search over orders is the product of per-name permutation groups —
tiny for realistic queries.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import permutations
from typing import Iterator

from ..blocks.exprs import Aggregate, Arith, Expr
from ..blocks.query_block import QueryBlock
from ..blocks.terms import Column, Comparison, Constant


def _render_expr(expr: Expr, names: dict[Column, str]) -> str:
    if isinstance(expr, Column):
        return names.get(expr, f"?{expr.name}")
    if isinstance(expr, Constant):
        return str(expr)
    if isinstance(expr, Aggregate):
        return f"{expr.func}({_render_expr(expr.arg, names)})"
    if isinstance(expr, Arith):
        return (
            f"({_render_expr(expr.left, names)} {expr.op} "
            f"{_render_expr(expr.right, names)})"
        )
    raise TypeError(f"not an expression: {expr!r}")


def _render_atom(atom: Comparison, names: dict[Column, str]) -> str:
    norm = atom.normalized()
    left = _render_expr(norm.left, names)
    right = _render_expr(norm.right, names)
    if norm.op.value in ("=", "<>") and right < left:
        left, right = right, left
    return f"{left} {norm.op} {right}"


def _orderings(block: QueryBlock) -> Iterator[tuple[int, ...]]:
    """All FROM orders that permute only same-named occurrences, keeping
    the groups in sorted-name order."""
    by_name: dict[str, list[int]] = {}
    for i, rel in enumerate(block.from_):
        by_name.setdefault(rel.name, []).append(i)
    names = sorted(by_name)

    def expand(pos: int) -> Iterator[tuple[int, ...]]:
        if pos == len(names):
            yield ()
            return
        for perm in permutations(by_name[names[pos]]):
            for rest in expand(pos + 1):
                yield tuple(perm) + rest

    yield from expand(0)


@dataclass
class CanonicalCacheStats:
    """Hit/miss accounting for the canonical-key cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "hit_rate": round(self.hit_rate, 4),
        }


CANONICAL_CACHE_MAX = 8192

# QueryBlock is deeply frozen, so equality-keyed interning is safe: equal
# blocks (the same block object re-keyed during the search, or the same
# query re-parsed by repeated rewrite traffic) share one key string
# instead of re-running the permutation minimization.
_key_cache: "OrderedDict[QueryBlock, str]" = OrderedDict()
_key_cache_enabled = True
_key_stats = CanonicalCacheStats()


def canonical_key(block: QueryBlock) -> str:
    """A string equal for blocks identical up to renaming / FROM order."""
    if not _key_cache_enabled:
        _key_stats.bypasses += 1
        return _canonical_key_uncached(block)
    cached = _key_cache.get(block)
    if cached is not None:
        _key_stats.hits += 1
        _key_cache.move_to_end(block)
        return cached
    _key_stats.misses += 1
    key = _canonical_key_uncached(block)
    _key_cache[block] = key
    if len(_key_cache) > CANONICAL_CACHE_MAX:
        _key_cache.popitem(last=False)
        _key_stats.evictions += 1
    return key


def canonical_cache_stats() -> CanonicalCacheStats:
    """The live hit/miss counters (reset by :func:`clear_canonical_cache`)."""
    return _key_stats


def clear_canonical_cache() -> None:
    """Empty the cache and zero its counters."""
    _key_cache.clear()
    _key_stats.hits = 0
    _key_stats.misses = 0
    _key_stats.evictions = 0
    _key_stats.bypasses = 0


@contextmanager
def canonical_cache_disabled() -> Iterator[None]:
    """Run with :func:`canonical_key` bypassing the cache (A/B baselines)."""
    global _key_cache_enabled
    previous = _key_cache_enabled
    _key_cache_enabled = False
    try:
        yield
    finally:
        _key_cache_enabled = previous


def _canonical_key_uncached(block: QueryBlock) -> str:
    best = None
    for order in _orderings(block):
        names: dict[Column, str] = {}
        from_render = []
        for slot, idx in enumerate(order):
            rel = block.from_[idx]
            for j, col in enumerate(rel.columns):
                names[col] = f"t{slot}.{j}"
            from_render.append(f"{rel.name}#{slot}")
        parts = [
            "FROM " + ",".join(from_render),
            "SELECT "
            + ";".join(
                _render_expr(item.expr, names) for item in block.select
            ),
            "WHERE "
            + ";".join(
                sorted(_render_atom(a, names) for a in block.where)
            ),
            "GROUP "
            + ";".join(sorted(names.get(c, c.name) for c in block.group_by)),
            "HAVING "
            + ";".join(
                sorted(_render_atom(a, names) for a in block.having)
            ),
            "DISTINCT" if block.distinct else "",
        ]
        key = "|".join(parts)
        if best is None or key < best:
            best = key
    assert best is not None
    return best


def blocks_isomorphic(left: QueryBlock, right: QueryBlock) -> bool:
    """Structural equality up to column renaming and FROM reordering."""
    return canonical_key(left) == canonical_key(right)

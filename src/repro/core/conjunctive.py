"""Section 3: rewriting aggregation queries using *conjunctive* views.

Implements the usability conditions C1–C4 (Section 3.1), the rewriting
steps S1–S4, and the HAVING-clause extension (Section 3.3). The same code
path covers conjunctive queries (no grouping/aggregation), for which the
conditions "are also applicable" per the paper.
"""

from __future__ import annotations

from typing import Optional

from ..blocks.exprs import (
    AggFunc,
    Aggregate,
    Arith,
    Expr,
)
from ..blocks.query_block import QueryBlock, SelectItem, ViewDef
from ..blocks.terms import Column, Comparison, Constant
from ..constraints.closure import closure_of
from ..constraints.having import normalize_having
from ..constraints.residual import find_residual
from ..mappings.column_mapping import ColumnMapping
from .common import (
    make_view_occurrence,
    pick_equal_select_column,
    query_namer,
    select_is_plain,
    view_is_rewritable,
)
from .result import Rewriting


def try_rewrite_conjunctive(
    query: QueryBlock,
    view: ViewDef,
    mapping: ColumnMapping,
) -> Optional[Rewriting]:
    """Check conditions C1–C4 for one mapping; apply S1–S4 when they hold.

    Returns the rewriting Q', or ``None`` when the view is not usable under
    this mapping. ``query`` may have grouping/aggregation and a HAVING
    clause; ``view`` must be conjunctive.
    """
    if not view.block.is_conjunctive:
        return None
    if not view_is_rewritable(view) or not select_is_plain(query):
        return None
    if not mapping.is_one_to_one:
        return None  # condition C1

    # Section 3.3 pre-processing: strengthen Conds(Q) from the HAVING
    # clause before checking C2-C4.
    query_n = normalize_having(query)
    closure_q = closure_of(query_n.where)
    if not closure_q.satisfiable:
        return None

    image = mapping.image_columns
    namer = query_namer(query_n, view.block)
    occurrence = make_view_occurrence(view, mapping, namer)

    # ------------------------------------------------------------------
    # Condition C2: SELECT / GROUP BY columns covered by the view must
    # survive its projection (up to Conds(Q)-entailed equality).
    # ------------------------------------------------------------------
    sigma: dict[Column, Column] = {}

    def require_output(column: Column) -> bool:
        if column not in image or column in sigma:
            return column in sigma or column not in image
        b_col = pick_equal_select_column(column, view, mapping, closure_q)
        if b_col is None:
            return False
        sigma[column] = occurrence.column_for_view_column(view, b_col)
        return True

    needed = list(query_n.col_sel()) + list(query_n.group_by)
    for column in needed:
        if not require_output(column):
            return None

    # ------------------------------------------------------------------
    # Condition C4 (extended to HAVING aggregates, Section 3.3): every
    # aggregated column covered by the view needs a surviving equal copy;
    # COUNT falls back to counting any view output column (step S4).
    # ------------------------------------------------------------------
    agg_replacements: dict[Aggregate, Aggregate] = {}
    for agg in query_n.all_aggregates():
        arg = agg.arg
        if not isinstance(arg, Column):
            return None  # the conditions are stated for AGG(column)
        if arg not in image:
            continue
        if require_output(arg):
            continue
        if agg.func is AggFunc.COUNT:
            if not occurrence.select_columns:
                return None  # C4 part 2: Sel(V) must not be empty
            agg_replacements[agg] = Aggregate(
                AggFunc.COUNT, occurrence.select_columns[0]
            )
        else:
            return None  # C4 part 1 fails for MIN/MAX/SUM/AVG

    # ------------------------------------------------------------------
    # Condition C3: Conds(Q) must factor as φ(Conds(V)) AND Conds', with
    # Conds' over non-image columns plus the view's surviving outputs.
    # ------------------------------------------------------------------
    available = frozenset(occurrence.select_columns)
    allowed = (query_n.cols() - image) | available
    residual = find_residual(
        query_n.where, mapping.apply_atoms(view.block.where), allowed
    )
    if residual is None:
        return None

    # ------------------------------------------------------------------
    # Steps S1-S4: assemble Q'.
    # ------------------------------------------------------------------
    new_from = []
    placed = False
    for idx, rel in enumerate(query_n.from_):
        if idx in mapping.image_table_indexes:
            if not placed:
                new_from.append(occurrence.relation)
                placed = True
            continue
        new_from.append(rel)

    def rewrite_expr(expr: Expr) -> Expr:
        if isinstance(expr, Aggregate):
            if expr in agg_replacements:
                return agg_replacements[expr]
            return Aggregate(expr.func, rewrite_expr(expr.arg))
        if isinstance(expr, Column):
            return sigma.get(expr, expr)
        if isinstance(expr, Arith):
            return Arith(expr.op, rewrite_expr(expr.left), rewrite_expr(expr.right))
        return expr

    new_select = tuple(
        SelectItem(rewrite_expr(item.expr), item.alias)
        for item in query_n.select
    )
    new_group_by = tuple(
        dict.fromkeys(sigma.get(c, c) for c in query_n.group_by)
    )
    new_having = tuple(
        Comparison(rewrite_expr(a.left), a.op, rewrite_expr(a.right))
        for a in query_n.having
    )

    rewritten = QueryBlock(
        select=new_select,
        from_=tuple(new_from),
        where=tuple(residual),
        group_by=new_group_by,
        having=new_having,
        distinct=query_n.distinct,
    ).validate()

    return Rewriting(
        query=rewritten,
        view_names=(view.name,),
        strategy="conjunctive",
        mapping_desc=mapping.describe(),
        notes=(
            f"replaced tables {[r.name for r in mapping.image_relations()]} "
            f"by view {view.name}",
        ),
    )

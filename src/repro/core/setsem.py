"""Section 5.2: exploiting set semantics with many-to-1 mappings.

When the query and view results are both guaranteed to be *sets* (via
keys, Section 5.1, or SELECT DISTINCT), condition C1 relaxes: the column
mapping may send distinct view tables onto one query table. Steps S1-S3
apply with two modifications:

* view SELECT columns whose images collide keep one representative; the
  later ones get fresh names and an equality predicate ties them to the
  representative (Example 5.1's ``A1 = A4``);
* for every pair of view occurrences collapsed onto one query occurrence,
  a key of that table must be *forced equal* across the pair — either
  already equal under Conds(V), or enforceable through output equalities.
  This is what makes the collapse faithful: equal keys mean the two range
  variables denote the same tuple. (The paper states only "C2 and C3 are
  still required"; without the key-coverage check the collapse is unsound,
  which ``tests/core/test_setsem.py`` demonstrates.)

The rewritten query gets SELECT DISTINCT unless its result is provably a
set, keeping it multiset-equivalent (both sides being sets) to Q.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from ..blocks.query_block import QueryBlock, SelectItem, ViewDef
from ..blocks.terms import Column, Comparison, Op
from ..catalog.keys import result_is_set
from ..catalog.schema import Catalog
from ..constraints.closure import Closure, closure_of
from ..constraints.residual import find_residual
from ..mappings.column_mapping import ColumnMapping
from .common import (
    make_view_occurrence,
    query_namer,
    select_is_plain,
    view_is_rewritable,
)
from .result import Rewriting


def try_rewrite_set_semantics(
    query: QueryBlock,
    view: ViewDef,
    mapping: ColumnMapping,
    catalog: Catalog,
) -> Optional[Rewriting]:
    """Rewrite a conjunctive query with a conjunctive view under set
    semantics, allowing many-to-1 mappings. Returns None when the set
    guarantees or the usability conditions fail."""
    if not (query.is_conjunctive and view.block.is_conjunctive):
        return None
    if not view_is_rewritable(view, allow_distinct=True):
        return None
    if not select_is_plain(query):
        return None
    if not (
        result_is_set(query, catalog) and result_is_set(view.block, catalog)
    ):
        return None

    closure_q = closure_of(query.where)
    if not closure_q.satisfiable:
        return None
    closure_v = closure_of(view.block.where)
    image = mapping.image_columns
    namer = query_namer(query, view.block)
    occurrence = make_view_occurrence(view, mapping, namer)

    # Q' columns per view SELECT position, plus collision equalities.
    sel_exprs = [item.expr for item in view.block.select]
    out_cols = occurrence.select_columns
    collision_eqs: list[Comparison] = []
    rep_for_image: dict[Column, Column] = {}
    for view_col, out_col in zip(sel_exprs, out_cols):
        img = mapping.apply(view_col)
        if img in rep_for_image:
            collision_eqs.append(Comparison(rep_for_image[img], Op.EQ, out_col))
        else:
            rep_for_image[img] = out_col

    # Key coverage: collapsed occurrence pairs must be forced onto the
    # same tuple.
    by_target: dict[int, list[int]] = {}
    for v_idx, q_idx in mapping.table_pairs:
        by_target.setdefault(q_idx, []).append(v_idx)
    for _q_idx, v_group in by_target.items():
        for i, j in combinations(v_group, 2):
            if not _key_forced_equal(view, i, j, closure_v, catalog):
                return None

    # Condition C2 over the collapsed images.
    sigma: dict[Column, Column] = {}
    for column in query.col_sel():
        if column not in image:
            continue
        rep = _equal_representative(column, rep_for_image, closure_q)
        if rep is None:
            return None
        sigma[column] = rep

    # Condition C3 with the many-to-1 φ.
    allowed = (query.cols() - image) | frozenset(rep_for_image.values())
    residual = find_residual(
        query.where, mapping.apply_atoms(view.block.where), allowed
    )
    if residual is None:
        return None

    new_from = []
    placed = False
    for idx, rel in enumerate(query.from_):
        if idx in mapping.image_table_indexes:
            if not placed:
                new_from.append(occurrence.relation)
                placed = True
            continue
        new_from.append(rel)

    rewritten = QueryBlock(
        select=tuple(
            SelectItem(
                sigma.get(item.expr, item.expr)
                if isinstance(item.expr, Column)
                else item.expr,
                item.alias,
            )
            for item in query.select
        ),
        from_=tuple(new_from),
        where=tuple(residual) + tuple(collision_eqs),
        distinct=False,
    )
    check_catalog = catalog
    if not catalog.is_view(view.name):
        check_catalog = catalog.copy()
        check_catalog.add_view(view)
    if not result_is_set(rewritten, check_catalog):
        rewritten = rewritten.with_(distinct=True)
    rewritten = rewritten.validate()

    return Rewriting(
        query=rewritten,
        view_names=(view.name,),
        strategy="set-many-to-one",
        mapping_desc=mapping.describe(),
        notes=(
            "set-semantics rewriting (Section 5.2); collapsed "
            f"{len(mapping.table_pairs) - len(mapping.image_table_indexes)}"
            " view occurrence(s)",
        ),
    )


def _equal_representative(
    column: Column,
    rep_for_image: dict[Column, Column],
    closure_q: Closure,
) -> Optional[Column]:
    """C2 under set semantics: a surviving output equal to ``column``."""
    if column in rep_for_image:
        return rep_for_image[column]
    for img, rep in rep_for_image.items():
        if closure_q.equal(column, img):
            return rep
    return None


def _key_forced_equal(
    view: ViewDef,
    occ_i: int,
    occ_j: int,
    closure_v: Closure,
    catalog: Catalog,
) -> bool:
    """Can the collapse of view occurrences i and j be made faithful?

    True when, for some candidate key of the underlying table, every key
    column is pairwise forced equal: entailed by Conds(V), or present in
    Sel(V) on both sides (so the caller's collision equalities apply).
    """
    rel_i = view.block.from_[occ_i]
    rel_j = view.block.from_[occ_j]
    if not catalog.is_table(rel_i.name):
        return False
    schema = catalog.table(rel_i.name)
    if not schema.keys:
        return False
    outputs = {
        item.expr for item in view.block.select
    }
    for key in schema.keys:
        ok = True
        for name in key:
            col_i = rel_i.column_for(name)
            col_j = rel_j.column_for(name)
            if closure_v.equal(col_i, col_j):
                continue
            if col_i in outputs and col_j in outputs:
                continue
            ok = False
            break
        if ok:
            return True
    return False

"""A simple cost model for choosing among rewritings.

The paper defers cost-based integration to future work ("integrating our
techniques with algebraic cost-based optimizers along the lines described
in [CKPS95]", Section 7); this module provides the minimal version needed
to *rank* rewritings: estimated core-table size from catalog cardinalities
with textbook selectivity factors, plus the cost of materializing any
auxiliary views.
"""

from __future__ import annotations

from typing import Iterable

from ..blocks.query_block import QueryBlock, ViewDef
from ..blocks.terms import Op
from ..catalog.schema import Catalog

#: Selectivity assumed for each predicate kind, per System R tradition.
EQUALITY_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 0.3


def estimate_rows(
    block: QueryBlock,
    catalog: Catalog,
    extra_views: Iterable[ViewDef] = (),
) -> float:
    """Estimated number of core-table rows for ``block``."""
    local = {view.name: view for view in extra_views}
    size = 1.0
    for rel in block.from_:
        if rel.name in local:
            size *= max(
                1.0, estimate_result_rows(local[rel.name].block, catalog)
            )
        else:
            size *= max(1, catalog.row_count(rel.name))
    for atom in block.where:
        if atom.op is Op.EQ:
            size *= EQUALITY_SELECTIVITY
        else:
            size *= RANGE_SELECTIVITY
    return max(size, 1.0)


def estimate_result_rows(
    block: QueryBlock,
    catalog: Catalog,
    extra_views: Iterable[ViewDef] = (),
) -> float:
    """Estimated result cardinality.

    Grouped queries emit at most one row per distinct grouping-key
    combination, estimated as the product of per-column distinct counts
    (declared via ``table(..., distinct={...})``), capped by the core
    size. This is what makes summary views score as "orders of magnitude
    smaller" (Example 1.1) in the cost model.
    """
    rows = estimate_rows(block, catalog, extra_views)
    if not block.is_aggregation:
        return rows
    if not block.group_by:
        return 1.0
    combinations = 1.0
    for col in block.group_by:
        combinations *= _distinct_estimate(block, col, catalog)
    return max(1.0, min(rows, combinations))


def _distinct_estimate(block: QueryBlock, col, catalog: Catalog) -> float:
    try:
        rel = block.relation_of(col)
    except Exception:
        return 10.0
    if catalog.is_table(rel.name):
        schema = catalog.table(rel.name)
        return float(schema.distinct_count(rel.base_name_of(col)))
    # A view output: assume its own grouping already condensed it.
    return max(1.0, catalog.row_count(rel.name) / 10.0)


def estimate_cost(
    block: QueryBlock,
    catalog: Catalog,
    extra_views: Iterable[ViewDef] = (),
) -> float:
    """A scalar cost: rows scanned/joined plus auxiliary-view work."""
    cost = estimate_rows(block, catalog, extra_views)
    for view in extra_views:
        cost += estimate_rows(view.block, catalog)
    return cost

"""The rewrite planner: indexed and memoized multi-view search.

:func:`repro.core.multiview.all_rewritings` is candidate generation plus
verification (the framing of Cohen & Nutt's rewriting algorithms): every
BFS node is matched against every view, each match enumerates column
mappings, and each mapping re-derives predicate closures and canonical
keys. This module makes that search fast without changing its result set:

view-signature index
    Per view, the multiset of FROM relation names and arities (plus its
    conjunctive/aggregation class, kept for diagnostics). A 1-1 column
    mapping (condition C1) requires the view's FROM multiset to be
    contained in the node's FROM multiset — many-to-1 mappings (set
    semantics, Section 5.2) need only set containment — so views failing
    the containment test are skipped before any backtracking happens.

memoization
    Canonical keys are interned (:mod:`repro.core.canonical`) and
    predicate closures are shared (:func:`repro.constraints.closure
    .closure_of`), so repeated C2/C3 entailment work across mappings,
    nodes and queries is paid once.

incremental maximality bookkeeping
    The naive search decides ``include_partial=False`` by re-running
    ``single_view_rewritings`` over *every* result after the fact. The
    planner records, while expanding each node, whether any view offered
    an expansion; only nodes the step bound left unexpanded are probed
    lazily.

The naive path stays callable (``all_rewritings(use_planner=False)``)
and :func:`baseline_mode` additionally switches the memoization caches
off, so A/B benchmarks can reproduce the pre-planner behavior exactly.
Result-set parity between the two paths is asserted by
``tests/core/test_planner_parity.py`` and by ``benchmarks/run_benchmarks.py``.
"""

from __future__ import annotations

import weakref
from collections import Counter, OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from ..blocks.query_block import QueryBlock, ViewDef
from ..catalog.schema import Catalog
from ..constraints.closure import (
    closure_cache_disabled,
    closure_cache_enabled,
    closure_cache_stats,
)
from ..constraints.residual import (
    residual_cache_counts,
    residual_cache_stats,
)
from ..obs.budget import BudgetMeter, SearchBudget, ensure_meter
from ..obs.metrics import current_metrics
from ..obs.trace import current_tracer
from .canonical import (
    canonical_cache_disabled,
    canonical_cache_stats,
    canonical_key,
)
from .result import Rewriting


def _from_counts(block: QueryBlock) -> Counter:
    """The FROM multiset of a block: (relation name, arity) -> count."""
    return Counter((rel.name, len(rel.columns)) for rel in block.from_)


_MERGE = None


def _resolve_merge():
    # multiview imports this module, so _merge cannot be a top-level
    # import; resolve it once instead of per _merge_options call.
    global _MERGE
    if _MERGE is None:
        from .multiview import _merge

        _MERGE = _merge
    return _MERGE


@dataclass(frozen=True)
class ViewSignature:
    """What a view needs from a query's FROM clause to be applicable.

    ``relations`` lists ``((name, arity), count)`` sorted by name; the
    class flag mirrors which rewriting path (Section 3 vs Section 4)
    the view takes, for diagnostics and the benchmark report.
    """

    relations: tuple[tuple[tuple[str, int], int], ...]
    is_conjunctive: bool

    @classmethod
    def of(cls, view: ViewDef) -> "ViewSignature":
        counts = _from_counts(view.block)
        return cls(
            relations=tuple(sorted(counts.items())),
            is_conjunctive=view.block.is_conjunctive,
        )

    def admits(self, query_counts: Counter, many_to_one: bool) -> bool:
        """Can any column mapping from the view into a query with these
        FROM counts exist?  Multiset containment is necessary for 1-1
        mappings; set containment suffices when many-to-1 mappings are
        also admissible."""
        for key, count in self.relations:
            available = query_counts.get(key, 0)
            if available == 0:
                return False
            if not many_to_one and available < count:
                return False
        return True


@dataclass
class PlannerStats:
    """Counters from one or more planned searches (benchmark surface)."""

    searches: int = 0
    nodes_expanded: int = 0
    views_considered: int = 0
    views_pruned: int = 0
    candidates_generated: int = 0
    duplicates_skipped: int = 0
    maximality_probes: int = 0
    substitution_hits: int = 0
    substitution_misses: int = 0

    @property
    def prune_rate(self) -> float:
        if not self.views_considered:
            return 0.0
        return self.views_pruned / self.views_considered

    def as_dict(self) -> dict:
        return {
            "searches": self.searches,
            "nodes_expanded": self.nodes_expanded,
            "views_considered": self.views_considered,
            "views_pruned": self.views_pruned,
            "prune_rate": round(self.prune_rate, 4),
            "candidates_generated": self.candidates_generated,
            "duplicates_skipped": self.duplicates_skipped,
            "maximality_probes": self.maximality_probes,
            "substitution_hits": self.substitution_hits,
            "substitution_misses": self.substitution_misses,
        }


class _Node:
    """One BFS node plus its maximality bookkeeping."""

    __slots__ = ("rewriting", "block", "probed", "expandable")

    def __init__(self, rewriting: Optional[Rewriting], block: QueryBlock):
        self.rewriting = rewriting
        self.block = block
        self.probed = False      # were this node's expansions attempted?
        self.expandable = False  # did any view offer an expansion?


class RewritePlanner:
    """A prepared multi-view search over a fixed set of views.

    Builds the signature index once; :meth:`all_rewritings` then runs the
    breadth-first substitution search with view pruning and incremental
    maximality bookkeeping. The result list is identical (same rewritings,
    same order) to the naive search's.
    """

    def __init__(
        self,
        views: Iterable[ViewDef],
        catalog: Optional[Catalog] = None,
        use_set_semantics: bool = False,
    ):
        self.views: list[ViewDef] = list(views)
        self.catalog = catalog
        self.use_set_semantics = use_set_semantics
        self.signatures: list[ViewSignature] = [
            ViewSignature.of(v) for v in self.views
        ]
        self.stats = PlannerStats()
        # Substitution memo: single_view_rewritings is a pure function of
        # (block, view, catalog, semantics); the planner fixes the last
        # three, and blocks are deeply frozen, so results are shared across
        # BFS nodes and repeated rewrite traffic. Honors the cache switch
        # so baseline_mode() reproduces the uncached search.
        self._substitutions: "OrderedDict[tuple[QueryBlock, int], list[Rewriting]]" = (
            OrderedDict()
        )

    SUBSTITUTION_CACHE_MAX = 8192

    def _single_view(
        self,
        block: QueryBlock,
        view_index: int,
        meter: Optional[BudgetMeter] = None,
    ) -> list[Rewriting]:
        from .multiview import single_view_rewritings

        if not closure_cache_enabled():
            return single_view_rewritings(
                block,
                self.views[view_index],
                self.catalog,
                self.use_set_semantics,
                meter=meter,
            )
        key = (block, view_index)
        cached = self._substitutions.get(key)
        if cached is not None:
            self.stats.substitution_hits += 1
            self._substitutions.move_to_end(key)
            return cached
        self.stats.substitution_misses += 1
        options = single_view_rewritings(
            block,
            self.views[view_index],
            self.catalog,
            self.use_set_semantics,
            meter=meter,
        )
        if meter is not None and meter.exhausted:
            # The budget tripped somewhere during (or before) this call,
            # so ``options`` may be a truncated enumeration. Caching it
            # would poison later unbudgeted searches with a partial list.
            return options
        self._substitutions[key] = options
        if len(self._substitutions) > self.SUBSTITUTION_CACHE_MAX:
            self._substitutions.popitem(last=False)
        return options

    # ------------------------------------------------------------------
    # Memo export/import: worker warm-start for the batch service
    # ------------------------------------------------------------------

    def export_memo(
        self, max_entries: Optional[int] = None
    ) -> list[tuple[tuple[QueryBlock, int], list[Rewriting]]]:
        """A picklable snapshot of the substitution memo, LRU-newest last.

        The entries are only meaningful for a planner prepared with an
        equal (views, catalog, use_set_semantics) triple — the batch
        service keys its memo store by exactly that fingerprint. With
        ``max_entries`` only the most recently used entries are kept.
        """
        items = list(self._substitutions.items())
        if max_entries is not None and len(items) > max_entries:
            items = items[-max_entries:]
        return items

    def import_memo(
        self,
        entries: Iterable[tuple[tuple[QueryBlock, int], list[Rewriting]]],
    ) -> int:
        """Warm-start the substitution memo from an exported snapshot.

        Existing entries win (they are at least as fresh); the cache cap
        still applies. Returns the number of entries adopted. Importing a
        memo exported under a *different* (views, catalog, semantics)
        triple is undefined — callers must match fingerprints.
        """
        adopted = 0
        for key, options in entries:
            if key in self._substitutions:
                continue
            view_index = key[1]
            if not 0 <= view_index < len(self.views):
                continue
            self._substitutions[key] = options
            self._substitutions.move_to_end(key, last=False)
            adopted += 1
        while len(self._substitutions) > self.SUBSTITUTION_CACHE_MAX:
            self._substitutions.popitem(last=False)
        return adopted

    # ------------------------------------------------------------------
    # Strategy memo families: the same export/import channel, shared by
    # every planner strategy (the substitution memo is the original
    # family; repro.strategies.cohen_nutt keeps its per-query answers in
    # its own family). The wire shape stays a flat list — the serving
    # memo tier truncates snapshots with ``list(memo)[-MAX:]`` — so
    # family entries travel as 3-tuples mixed with the legacy 2-tuples.
    # ------------------------------------------------------------------

    STRATEGY_MEMO_MAX = 2048

    def strategy_memo(self, family: str) -> "OrderedDict":
        """The named auxiliary memo (created on first use).

        Strategies own their key/value types; entries must be picklable
        and only meaningful for an equal (views, catalog, semantics)
        fingerprint, exactly like the substitution memo. Callers enforce
        their own LRU discipline (``move_to_end`` on hit, pop-oldest
        past their cap).
        """
        memos = getattr(self, "_strategy_memos", None)
        if memos is None:
            memos = {}
            self._strategy_memos = memos
        memo = memos.get(family)
        if memo is None:
            memo = OrderedDict()
            memos[family] = memo
        return memo

    def export_memos(self, max_entries: Optional[int] = None) -> list:
        """Every memo family as one flat picklable list.

        Substitution entries ride as legacy ``(key, options)`` 2-tuples
        (so pre-strategy snapshots replay unchanged), family entries as
        ``(family, key, value)`` 3-tuples, each family LRU-newest last
        and individually capped at ``max_entries``.
        """
        out: list = list(self.export_memo(max_entries))
        for family, memo in getattr(self, "_strategy_memos", {}).items():
            items = list(memo.items())
            if max_entries is not None and len(items) > max_entries:
                items = items[-max_entries:]
            out.extend((family, key, value) for key, value in items)
        return out

    def import_memos(self, entries: Iterable) -> int:
        """Warm-start from :meth:`export_memos` output (or the legacy
        :meth:`export_memo` shape). Existing entries win; returns the
        number adopted across all families."""
        legacy: list = []
        adopted = 0
        for entry in entries:
            if len(entry) == 2:
                legacy.append(entry)
                continue
            family, key, value = entry
            memo = self.strategy_memo(family)
            if key in memo:
                continue
            memo[key] = value
            memo.move_to_end(key, last=False)
            adopted += 1
        for memo in getattr(self, "_strategy_memos", {}).values():
            while len(memo) > self.STRATEGY_MEMO_MAX:
                memo.popitem(last=False)
        return adopted + self.import_memo(legacy)

    # ------------------------------------------------------------------

    def candidate_views(self, block: QueryBlock) -> list[ViewDef]:
        """The views whose signature is contained in ``block``'s FROM."""
        return [self.views[i] for i in self._candidate_indices(block)]

    def _candidate_indices(self, block: QueryBlock) -> list[int]:
        counts = _from_counts(block)
        out = []
        for index, signature in enumerate(self.signatures):
            self.stats.views_considered += 1
            if signature.admits(counts, self.use_set_semantics):
                out.append(index)
            else:
                self.stats.views_pruned += 1
        return out

    def _merge_options(
        self,
        node: "_Node",
        options: list[Rewriting],
        meter: Optional[BudgetMeter],
        seen: set[str],
        next_frontier: list["_Node"],
        result_nodes: list["_Node"],
    ) -> bool:
        """Fold one view's substitutions into the BFS; True = budget hit."""
        _merge = _resolve_merge()
        for option in options:
            if meter is not None and not meter.charge_candidate():
                return True
            merged = _merge(node.rewriting, option)
            self.stats.candidates_generated += 1
            key = canonical_key(merged.query)
            if key in seen:
                self.stats.duplicates_skipped += 1
                continue
            seen.add(key)
            child = _Node(merged, merged.query)
            next_frontier.append(child)
            result_nodes.append(child)
        return False

    # ------------------------------------------------------------------

    def all_rewritings(
        self,
        query: QueryBlock,
        max_steps: int = 4,
        include_partial: bool = True,
        budget: Union[SearchBudget, BudgetMeter, None] = None,
    ) -> list[Rewriting]:
        """The planned equivalent of the naive ``all_rewritings`` search.

        ``budget`` bounds the search. When it trips, the BFS stops where
        it stands and the rewritings found so far come back (each one
        complete and sound — only coverage of the search space degrades);
        the caller reads ``meter.exhausted`` / ``meter.tripped`` off the
        meter it passed in. Partial enumerations are never written to the
        substitution memo.
        """
        meter = None if budget is None else ensure_meter(budget)
        # Hoisted once: tracing cannot change mid-search, and the traced
        # branches below keep all span machinery (including its no-op
        # context) off the warm path entirely. Metrics follow the same
        # discipline: one current_metrics() probe per search, recorded as
        # PlannerStats deltas after the search so the BFS inner loops
        # never touch the registry.
        tracer = current_tracer()
        metrics = current_metrics()
        if metrics is not None:
            stats_before = _stats_tuple(self.stats)
            memo_before = _memo_tuple()
        self.stats.searches += 1
        seen: set[str] = {canonical_key(query)}
        frontier: list[_Node] = [_Node(None, query)]
        result_nodes: list[_Node] = []
        budget_hit = False

        for _step in range(max_steps):
            next_frontier: list[_Node] = []
            for node in frontier:
                if meter is not None and not meter.ok():
                    budget_hit = True
                    break
                node.probed = True
                self.stats.nodes_expanded += 1
                if tracer is None:
                    indices = self._candidate_indices(node.block)
                else:
                    with tracer.span("signature_probe"):
                        indices = self._candidate_indices(node.block)
                for view_index in indices:
                    options = self._single_view(node.block, view_index, meter)
                    if options:
                        node.expandable = True
                        if tracer is None:
                            budget_hit = self._merge_options(
                                node, options, meter, seen,
                                next_frontier, result_nodes,
                            )
                        else:
                            with tracer.span("merge"):
                                budget_hit = self._merge_options(
                                    node, options, meter, seen,
                                    next_frontier, result_nodes,
                                )
                    if budget_hit:
                        break
                if budget_hit:
                    break
            if budget_hit or not next_frontier:
                break
            frontier = next_frontier

        if include_partial:
            results = [node.rewriting for node in result_nodes]
        elif tracer is None:
            results = self._maximal_results(result_nodes, meter)
        else:
            with tracer.span("maximality"):
                results = self._maximal_results(result_nodes, meter)
        if metrics is not None:
            _record_search(metrics, stats_before, memo_before,
                           self.stats, len(results))
        return results

    def _maximal_results(
        self,
        result_nodes: list["_Node"],
        meter: Optional[BudgetMeter],
    ) -> list[Rewriting]:
        maximal: list[Rewriting] = []
        for node in result_nodes:
            if not node.probed:
                if meter is not None and not meter.ok():
                    # Budget spent: skip the probe and keep the node —
                    # sound, possibly non-maximal (anytime contract).
                    maximal.append(node.rewriting)
                    continue
                # The step bound cut this node off before expansion;
                # probe it now, exactly as the naive maximality
                # re-scan would.
                self.stats.maximality_probes += 1
                node.expandable = any(
                    self._single_view(node.block, view_index, meter)
                    for view_index in self._candidate_indices(node.block)
                )
                node.probed = True
            if not node.expandable:
                maximal.append(node.rewriting)
        return maximal


def cache_stats() -> dict:
    """A snapshot of both memoization caches, for the benchmark report."""
    return {
        "closure": closure_cache_stats().as_dict(),
        "canonical_key": canonical_cache_stats().as_dict(),
        "residual": residual_cache_stats(),
    }


def _memo_tuple() -> tuple:
    """The memo-cache hit/miss counters as one flat tuple.

    ``(closure_hits, closure_misses, canonical_hits, canonical_misses,
    residual_hits, residual_misses)`` — the metrics hot path reads raw
    counters; :func:`cache_stats` stays for benchmark reports.
    """
    closure = closure_cache_stats()
    canonical = canonical_cache_stats()
    residual_hits, residual_misses = residual_cache_counts()
    return (
        closure.hits, closure.misses,
        canonical.hits, canonical.misses,
        residual_hits, residual_misses,
    )


def _stats_tuple(stats: PlannerStats) -> tuple:
    """The PlannerStats counters metrics record deltas of, as a tuple."""
    return (
        stats.nodes_expanded,
        stats.views_considered,
        stats.views_pruned,
        stats.candidates_generated,
        stats.duplicates_skipped,
        stats.maximality_probes,
        stats.substitution_hits,
        stats.substitution_misses,
    )


class _SearchRecorder:
    """Pre-resolved counter children of one registry's planner families.

    On sub-millisecond cold searches, re-resolving family names and
    label tuples per search costs more than the lock-and-add updates
    themselves; caching the child handles per registry keeps
    enabled-mode recording to ~16 direct increments.
    """

    __slots__ = (
        "searches", "nodes", "views_admitted", "views_pruned",
        "cands_kept", "cands_dup", "probes", "results", "memo",
    )

    def __init__(self, metrics):
        counter = metrics.counter
        self.searches = counter(
            "repro_planner_searches_total",
            "Planned multi-view rewrite searches run.",
        ).labels()
        self.nodes = counter(
            "repro_planner_nodes_expanded_total",
            "BFS nodes expanded by the rewrite planner.",
        ).labels()
        views = counter(
            "repro_planner_views_total",
            "View applicability probes, by signature-index outcome.",
            ("outcome",),
        )
        self.views_admitted = views.labels("admitted")
        self.views_pruned = views.labels("pruned")
        cands = counter(
            "repro_planner_candidates_total",
            "Candidate rewritings generated, kept vs duplicate-pruned.",
            ("outcome",),
        )
        self.cands_kept = cands.labels("kept")
        self.cands_dup = cands.labels("duplicate")
        self.probes = counter(
            "repro_planner_maximality_probes_total",
            "Lazy maximality probes on nodes the step bound left "
            "unexpanded.",
        ).labels()
        self.results = counter(
            "repro_planner_results_total",
            "Rewritings returned by planner searches.",
        ).labels()
        memo = counter(
            "repro_planner_memo_total",
            "Planner memo lookups, by memo family and hit/miss outcome.",
            ("family", "outcome"),
        )
        self.memo = {
            family: (
                memo.labels(family, "hit"), memo.labels(family, "miss")
            )
            for family in (
                "substitution", "closure", "canonical_key", "residual"
            )
        }


_RECORDERS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _recorder_for(metrics) -> _SearchRecorder:
    recorder = _RECORDERS.get(metrics)
    if recorder is None:
        # Benign race: two threads may both build one; the registry's
        # own get-or-create makes them share the same children.
        recorder = _SearchRecorder(metrics)
        _RECORDERS[metrics] = recorder
    return recorder


def _record_search(
    metrics,
    before: tuple,
    memo_before: tuple,
    stats: PlannerStats,
    results_found: int,
) -> None:
    """Fold one search's PlannerStats / memo-cache deltas into ``metrics``.

    Runs once per search (never inside the BFS), so enabled-mode overhead
    stays a fixed ~16 counter updates per planner call. Deltas are
    clamped at zero: the process-wide closure/canonical/residual caches
    may be cleared (or raced by sibling threads) mid-search.
    """
    (nodes, considered, pruned, candidates, duplicates, probes,
     sub_hits, sub_misses) = before

    def delta(now: int, then: int) -> int:
        return now - then if now > then else 0

    rec = _recorder_for(metrics)
    rec.searches.inc()
    nodes_now = delta(stats.nodes_expanded, nodes)
    if nodes_now:
        rec.nodes.inc(nodes_now)
    pruned_now = delta(stats.views_pruned, pruned)
    admitted_now = max(
        0, delta(stats.views_considered, considered) - pruned_now
    )
    if admitted_now:
        rec.views_admitted.inc(admitted_now)
    if pruned_now:
        rec.views_pruned.inc(pruned_now)
    dup_now = delta(stats.duplicates_skipped, duplicates)
    kept_now = max(
        0, delta(stats.candidates_generated, candidates) - dup_now
    )
    if kept_now:
        rec.cands_kept.inc(kept_now)
    if dup_now:
        rec.cands_dup.inc(dup_now)
    probes_now = delta(stats.maximality_probes, probes)
    if probes_now:
        rec.probes.inc(probes_now)
    if results_found:
        rec.results.inc(results_found)

    hit, miss = rec.memo["substitution"]
    sub_hits_now = delta(stats.substitution_hits, sub_hits)
    if sub_hits_now:
        hit.inc(sub_hits_now)
    sub_misses_now = delta(stats.substitution_misses, sub_misses)
    if sub_misses_now:
        miss.inc(sub_misses_now)
    memo_after = _memo_tuple()
    for i, family in enumerate(("closure", "canonical_key", "residual")):
        hit, miss = rec.memo[family]
        hits_now = delta(memo_after[2 * i], memo_before[2 * i])
        if hits_now:
            hit.inc(hits_now)
        misses_now = delta(memo_after[2 * i + 1], memo_before[2 * i + 1])
        if misses_now:
            miss.inc(misses_now)


@contextmanager
def baseline_mode() -> Iterator[None]:
    """Disable the memoization caches — the seed behavior, for A/B runs.

    Combine with ``all_rewritings(..., use_planner=False)`` to time the
    exact pre-planner code path.
    """
    with closure_cache_disabled(), canonical_cache_disabled():
        yield

"""Section 4: rewriting aggregation queries using *aggregation* views.

Implements condition C1 plus the modified conditions C2'-C4'
(Section 4.2), the rewriting steps S1'-S5', the HAVING extensions
(Section 4.3), the AVG decomposition (Section 4.4), and the Section 4.5
impossibility (aggregation views cannot answer conjunctive queries under
multiset semantics).

Strategy note (see DESIGN.md, "Fidelity notes"). The default strategy
recovers lost multiplicities by *weighting* with the view's COUNT column:

========================  =============================================
query aggregate            rewritten form (N = view count output)
========================  =============================================
``COUNT(A)``               ``SUM(N)``
``SUM(A)``, A ~ view col   ``SUM(N * B)``  (B a grouping output of V)
``SUM(A)``, SUM in view    ``SUM(S)``      (S the view's SUM output)
``SUM(A)``, A external     ``SUM(N * A)``
``MIN/MAX``                ``MIN/MAX`` of the obvious operand
``AVG(A)``                 SUM-form / COUNT-form (Section 4.4)
========================  =============================================

This is equivalent to the paper's auxiliary-view (``Va``) construction in
the regime where that construction is sound, and correct in general. The
literal ``Va`` construction is available via
:func:`repro.core.paper_va.try_rewrite_paper_va`.
"""

from __future__ import annotations

from typing import Optional

from ..blocks.exprs import (
    AggFunc,
    Aggregate,
    Arith,
    Expr,
    div,
    mul,
)
from ..blocks.query_block import QueryBlock, SelectItem, ViewDef
from ..blocks.terms import Column, Comparison
from ..constraints.closure import Closure, closure_of
from ..constraints.having import normalize_having
from ..constraints.residual import find_residual
from ..mappings.column_mapping import ColumnMapping
from .common import (
    ViewOccurrence,
    make_view_occurrence,
    query_namer,
    select_is_plain,
    view_is_rewritable,
)
from .result import Rewriting


class _ViewShape:
    """Indexed access to an aggregation view's SELECT structure."""

    def __init__(self, view: ViewDef, mapping: ColumnMapping, occ: ViewOccurrence):
        self.view = view
        self.occ = occ
        #: non-aggregation items: view column -> Q' output column
        self.column_outputs: dict[Column, Column] = {}
        #: aggregation items: (func, view column) -> Q' output column
        self.agg_outputs: dict[tuple[AggFunc, Column], Column] = {}
        self.count_output: Optional[Column] = None
        for pos, item in enumerate(view.block.select):
            expr = item.expr
            out_col = occ.select_columns[pos]
            if isinstance(expr, Column):
                self.column_outputs.setdefault(expr, out_col)
            elif isinstance(expr, Aggregate) and isinstance(expr.arg, Column):
                self.agg_outputs.setdefault((expr.func, expr.arg), out_col)
                if expr.func is AggFunc.COUNT and self.count_output is None:
                    self.count_output = out_col

    def agg_output_for(
        self, func: AggFunc, preimages, closure_v: Closure
    ) -> Optional[Column]:
        """An output ``func(B)`` with B equal (under Conds(V)) to a
        preimage of the query column."""
        for (item_func, item_arg), out_col in self.agg_outputs.items():
            if item_func is not func:
                continue
            for pre in preimages:
                if closure_v.equal(item_arg, pre):
                    return out_col
        return None


def try_rewrite_aggregation(
    query: QueryBlock,
    view: ViewDef,
    mapping: ColumnMapping,
    conditions: str = "paper",
) -> Optional[Rewriting]:
    """Check C1, C2'-C4' for one mapping; apply S1'-S5' when they hold.

    ``conditions="paper"`` (default) requires a COUNT output in the view
    exactly where steps S4'/S5' consume one — the reading of C4' part 1(b)
    consistent with the paper's Example 1.1. ``conditions="strict"``
    enforces the literal transcription (a COUNT output whenever the query
    computes SUM/COUNT/AVG), which rejects Example 1.1; see DESIGN.md
    fidelity note 2.
    """
    if conditions not in ("paper", "strict"):
        raise ValueError(f"unknown conditions mode {conditions!r}")
    if not view.block.is_aggregation:
        return None
    if not view_is_rewritable(view) or not select_is_plain(query):
        return None
    if not mapping.is_one_to_one:
        return None  # condition C1

    # Section 4.5: an aggregation view cannot answer a conjunctive query
    # under multiset semantics (group-by loses tuple multiplicities).
    if query.is_conjunctive:
        return None

    query_n = normalize_having(query)
    view_n = view.block
    if view_n.having:
        view_n = normalize_having(view_n)

    # A GROUP-BY-less aggregation view emits exactly one row even when
    # its base relations are empty (SQL'92 scalar-aggregate semantics),
    # while the query core it replaces would be empty. Replacing tables
    # by such a view is sound only when the view covers the *whole*
    # query and the query is itself GROUP-BY-less: then both sides emit
    # exactly one row whose aggregates agree (COUNT is separately
    # refused below). Found by the SQLite cross-oracle, fuzz seed 4916.
    if not view_n.group_by:
        if query_n.group_by:
            return None
        if len(mapping.image_table_indexes) != len(query_n.from_):
            return None

    closure_q = closure_of(query_n.where)
    if not closure_q.satisfiable:
        return None
    closure_v = closure_of(view_n.where)

    image = mapping.image_columns
    namer = query_namer(query_n, view_n)
    occurrence = make_view_occurrence(view, mapping, namer)
    shape = _ViewShape(view, mapping, occurrence)

    # ------------------------------------------------------------------
    # Condition C2': grouping columns covered by the view must appear in
    # ColSel(V) (up to Conds(Q)-entailed equality).
    # ------------------------------------------------------------------
    sigma: dict[Column, Column] = {}
    for column in list(query_n.group_by) + list(query_n.col_sel()):
        if column not in image or column in sigma:
            continue
        out_col = _equal_column_output(column, shape, mapping, closure_q)
        if out_col is None:
            return None
        sigma[column] = out_col

    # ------------------------------------------------------------------
    # Condition C3': Conds(Q) must factor as φ(Conds(V)) AND Conds', with
    # Conds' over non-image columns plus φ(ColSel(V)) only — aggregated
    # view outputs admit no further constraints (Example 4.4).
    # ------------------------------------------------------------------
    colsel_outputs = frozenset(shape.column_outputs.values())
    allowed = (query_n.cols() - image) | colsel_outputs
    residual = find_residual(
        query_n.where, mapping.apply_atoms(view_n.where), allowed
    )
    if residual is None:
        return None

    # ------------------------------------------------------------------
    # Condition C4' (+ HAVING extension): compute a Q'-level expression
    # for every aggregate of SELECT and HAVING.
    # ------------------------------------------------------------------
    needs_count = False
    agg_replacements: dict[Aggregate, Expr] = {}
    for agg in query_n.all_aggregates():
        if agg in agg_replacements:
            continue
        if not isinstance(agg.arg, Column):
            return None
        replacement, uses_count = _rewrite_aggregate(
            agg, shape, mapping, closure_q, closure_v, image, sigma
        )
        if replacement is None:
            return None
        if agg.func is AggFunc.COUNT and not query_n.group_by:
            # COUNT becomes SUM(N), which is NULL (not 0) over the single
            # empty group a GROUP-BY-less query still emits on an empty
            # database. Refusing keeps the rewriting sound on that edge.
            return None
        if uses_count and shape.count_output is None:
            return None
        needs_count = needs_count or uses_count
        if conditions == "strict" and agg.func in (
            AggFunc.SUM,
            AggFunc.COUNT,
            AggFunc.AVG,
        ):
            # C4' part 1(b) read literally: a COUNT output for *any*
            # duplicate-sensitive aggregate. The paper's own Example 1.1
            # violates this reading (see DESIGN.md fidelity note 2), so
            # the default ("paper") requires the COUNT output exactly
            # where steps S4'/S5' consume it.
            if shape.count_output is None:
                return None
        agg_replacements[agg] = replacement

    # ------------------------------------------------------------------
    # Section 4.3: a HAVING clause in the view may eliminate groups that Q
    # needs. Sound regime: exact group alignment, the view covering the
    # whole query, and GConds(Q) entailing φ(GConds(V)).
    # ------------------------------------------------------------------
    if view_n.having:
        ok = _check_view_having(
            query_n, view_n, mapping, closure_q, image
        )
        if not ok:
            return None

    # ------------------------------------------------------------------
    # Steps S1'-S5': assemble Q'.
    # ------------------------------------------------------------------
    new_from = []
    placed = False
    for idx, rel in enumerate(query_n.from_):
        if idx in mapping.image_table_indexes:
            if not placed:
                new_from.append(occurrence.relation)
                placed = True
            continue
        new_from.append(rel)

    def rewrite_expr(expr: Expr) -> Expr:
        if isinstance(expr, Aggregate):
            return agg_replacements[expr]
        if isinstance(expr, Column):
            return sigma.get(expr, expr)
        if isinstance(expr, Arith):
            return Arith(
                expr.op, rewrite_expr(expr.left), rewrite_expr(expr.right)
            )
        return expr

    rewritten = QueryBlock(
        select=tuple(
            SelectItem(rewrite_expr(item.expr), item.alias)
            for item in query_n.select
        ),
        from_=tuple(new_from),
        where=tuple(residual),
        group_by=tuple(
            # Closure-equal grouping columns can collapse onto one view
            # output; grouping by it once is equivalent.
            dict.fromkeys(sigma.get(c, c) for c in query_n.group_by)
        ),
        having=tuple(
            Comparison(rewrite_expr(a.left), a.op, rewrite_expr(a.right))
            for a in query_n.having
        ),
        distinct=query_n.distinct,
    ).validate()

    notes = [
        f"replaced tables {[r.name for r in mapping.image_relations()]} "
        f"by aggregation view {view.name}",
    ]
    if needs_count:
        notes.append(
            "recovered lost multiplicities from the view's COUNT output"
        )
    return Rewriting(
        query=rewritten,
        view_names=(view.name,),
        strategy="aggregate-weighted",
        mapping_desc=mapping.describe(),
        notes=tuple(notes),
    )


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _equal_column_output(
    column: Column,
    shape: _ViewShape,
    mapping: ColumnMapping,
    closure_q: Closure,
) -> Optional[Column]:
    """C2' search: a ColSel(V) output with ``Conds(Q) ⊨ column = φ(B)``."""
    best = None
    for view_col, out_col in shape.column_outputs.items():
        imagecol = mapping.apply(view_col)
        if closure_q.equal(column, imagecol):
            if imagecol == column:
                return out_col
            if best is None:
                best = out_col
    return best


def _rewrite_aggregate(
    agg: Aggregate,
    shape: _ViewShape,
    mapping: ColumnMapping,
    closure_q: Closure,
    closure_v: Closure,
    image: frozenset[Column],
    sigma: dict[Column, Column],
) -> tuple[Optional[Expr], bool]:
    """The C4' case analysis; returns ``(replacement, uses_count)``.

    The replacement is a group-level expression over Q' columns; ``None``
    means condition C4' fails for this aggregate.
    """
    arg: Column = agg.arg  # type: ignore[assignment]
    func = agg.func
    n_col = shape.count_output

    if arg not in image:
        # C4' part 2: the aggregated column comes from a non-image table.
        if func in (AggFunc.MIN, AggFunc.MAX):
            return Aggregate(func, arg), False
        if func is AggFunc.SUM:
            if n_col is None:
                return None, True
            return Aggregate(AggFunc.SUM, mul(n_col, arg)), True
        if func is AggFunc.COUNT:
            if n_col is None:
                return None, True
            return Aggregate(AggFunc.SUM, n_col), True
        # AVG = weighted sum / total multiplicity.
        if n_col is None:
            return None, True
        return (
            div(
                Aggregate(AggFunc.SUM, mul(n_col, arg)),
                Aggregate(AggFunc.SUM, n_col),
            ),
            True,
        )

    # C4' part 1: the aggregated column is covered by the view.
    preimages = [
        v for v, q in mapping.column_map.items()
        if closure_q.equal(arg, q)
    ]
    direct = shape.agg_output_for(func, preimages, closure_v)
    column_out = None
    for view_col, out_col in shape.column_outputs.items():
        if any(closure_v.equal(view_col, p) for p in preimages) or \
                closure_q.equal(arg, mapping.apply(view_col)):
            column_out = out_col
            break

    if func in (AggFunc.MIN, AggFunc.MAX):
        if direct is not None:
            # S4' 1(a): min-of-mins / max-of-maxes over coalesced groups.
            return Aggregate(func, direct), False
        if column_out is not None:
            # S4' 1(b) for MIN/MAX: the column survives; aggregate it.
            return Aggregate(func, column_out), False
        return None, False

    if func is AggFunc.COUNT:
        # S4' part 2: COUNT becomes the sum of subgroup counts.
        if n_col is None:
            return None, True
        return Aggregate(AggFunc.SUM, n_col), True

    if func is AggFunc.SUM:
        sum_expr, uses = _sum_expression(
            shape, preimages, closure_v, column_out, n_col
        )
        return sum_expr, uses

    # AVG (Section 4.4): SUM-form / COUNT-form, both exact.
    if n_col is None:
        return None, True
    sum_expr, _uses = _sum_expression(
        shape, preimages, closure_v, column_out, n_col
    )
    if sum_expr is None:
        return None, True
    return div(sum_expr, Aggregate(AggFunc.SUM, n_col)), True


def _sum_expression(
    shape: _ViewShape,
    preimages,
    closure_v: Closure,
    column_out: Optional[Column],
    n_col: Optional[Column],
) -> tuple[Optional[Expr], bool]:
    """SUM of an image column: direct SUM output, N-weighted grouping
    column, or AVG * COUNT (all per Section 4.4's SUM/COUNT/AVG triangle).
    """
    direct = shape.agg_output_for(AggFunc.SUM, preimages, closure_v)
    if direct is not None:
        return Aggregate(AggFunc.SUM, direct), False
    if column_out is not None and n_col is not None:
        return Aggregate(AggFunc.SUM, mul(n_col, column_out)), True
    avg_out = shape.agg_output_for(AggFunc.AVG, preimages, closure_v)
    if avg_out is not None and n_col is not None:
        return Aggregate(AggFunc.SUM, mul(avg_out, n_col)), True
    return None, n_col is None


def _check_view_having(
    query_n: QueryBlock,
    view_n: QueryBlock,
    mapping: ColumnMapping,
    closure_q: Closure,
    image: frozenset[Column],
) -> bool:
    """Section 4.3 soundness regime for a view with a HAVING clause.

    Requires (i) the view covers every query table, (ii) every view
    grouping column is fixed within each query group (no coalescing of
    view groups, so no eliminated group is ever needed), and (iii)
    GConds(Q) entails φ(GConds(V)) with aggregates treated as opaque
    terms after canonicalizing their arguments.
    """
    if len(mapping.image_table_indexes) != len(query_n.from_):
        return False

    group_cols = set(query_n.group_by)
    for view_col in view_n.group_by:
        q_col = mapping.apply(view_col)
        if not any(closure_q.equal(q_col, g) for g in group_cols):
            return False

    def canonical(expr: Expr) -> Expr:
        if isinstance(expr, Aggregate) and isinstance(expr.arg, Column):
            reps = sorted(
                (
                    t
                    for t in closure_q.equality_class(expr.arg)
                    if isinstance(t, Column)
                ),
                key=str,
            )
            return Aggregate(expr.func, reps[0] if reps else expr.arg)
        return expr

    def canonical_atom(atom: Comparison) -> Comparison:
        return Comparison(canonical(atom.left), atom.op, canonical(atom.right))

    premises = [canonical_atom(a) for a in query_n.having]
    premises += list(query_n.where)
    goal = [
        canonical_atom(mapping.apply_atom(a)) for a in view_n.having
    ]
    return Closure(premises).entails_all(goal)

"""The result of a rewriting: Q' plus its auxiliary views and provenance."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..blocks.query_block import QueryBlock, ViewDef
from ..blocks.to_sql import block_to_sql, view_to_sql


@dataclass(frozen=True)
class Rewriting:
    """A query Q' that is multiset-equivalent to Q and uses a view.

    ``aux_views`` are the auxiliary views the rewriting introduces (the
    ``Va`` of steps S4'/S5'); they are defined over the used view and must
    accompany ``query`` wherever it is executed or printed.
    """

    query: QueryBlock
    view_names: tuple[str, ...]
    strategy: str
    mapping_desc: str = ""
    aux_views: tuple[ViewDef, ...] = ()
    notes: tuple[str, ...] = field(default=())

    def extra_views(self) -> dict[str, ViewDef]:
        """Auxiliary view definitions keyed by name (for the engine)."""
        return {view.name: view for view in self.aux_views}

    def sql(self) -> str:
        """SQL text: auxiliary CREATE VIEW statements, then the query."""
        pieces = [view_to_sql(v) + ";" for v in self.aux_views]
        pieces.append(block_to_sql(self.query))
        return "\n\n".join(pieces)

    def __str__(self) -> str:
        return self.sql()

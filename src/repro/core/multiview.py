"""Multiple uses of views: the iterative procedure of Section 3.2.

Rewritings with several views (or several uses of one view) are obtained
by successive single-view rewriting steps; views incorporated earlier are
treated as database tables in later steps (their FROM names simply do not
match any candidate view's base tables, so this falls out of mapping
enumeration). Theorem 3.2: the procedure is sound, Church-Rosser (order
does not matter), and — for equality-only predicates and conjunctive
views — complete.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover
    from .planner import RewritePlanner

from ..blocks.query_block import QueryBlock, ViewDef
from ..catalog.schema import Catalog
from ..mappings.enumerate_mappings import enumerate_mappings
from ..obs.budget import BudgetMeter, SearchBudget, ensure_meter
from ..obs.metrics import current_metrics
from ..obs.trace import span
from .aggregate import try_rewrite_aggregation
from .canonical import canonical_key
from .conjunctive import try_rewrite_conjunctive
from .result import Rewriting
from .setsem import try_rewrite_set_semantics

BudgetLike = Optional[Union[SearchBudget, BudgetMeter]]

#: Per-registry cache of the two mapping-counter children; resolving
#: the family and label per enumeration call would dominate the cost of
#: recording on small views (see ``benchmarks/bench_metrics.py``).
_MAPPING_COUNTERS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _mapping_counters(metrics):
    counters = _MAPPING_COUNTERS.get(metrics)
    if counters is None:
        family = metrics.counter(
            "repro_planner_mappings_total",
            "Column mappings enumerated, by kind.",
            ("kind",),
        )
        counters = (family.labels("one_to_one"), family.labels("many_to_one"))
        _MAPPING_COUNTERS[metrics] = counters
    return counters


def single_view_rewritings(
    query: QueryBlock,
    view: ViewDef,
    catalog: Optional[Catalog] = None,
    use_set_semantics: bool = False,
    meter: Optional[BudgetMeter] = None,
) -> list[Rewriting]:
    """Every rewriting of ``query`` using ``view`` once (all mappings).

    Tries the Section 3 path for conjunctive views, the Section 4 path for
    aggregation views, and — when ``use_set_semantics`` and a catalog with
    key information are supplied — the Section 5.2 many-to-1 path.

    ``meter`` bounds mapping enumeration and is polled between the C1–C4
    checks, so a spent budget returns the (sound) rewritings found so
    far; completeness of the list is what degrades.
    """
    out: list[Rewriting] = []
    seen: set[str] = set()

    def add(rewriting: Optional[Rewriting]) -> None:
        if rewriting is None:
            return
        key = canonical_key(rewriting.query)
        if key not in seen:
            seen.add(key)
            out.append(rewriting)

    with span("mapping_enumeration"):
        mappings = list(enumerate_mappings(view.block, query, meter=meter))
    metrics = current_metrics()
    if metrics is not None and mappings:
        _mapping_counters(metrics)[0].inc(len(mappings))
    with span("checks"):
        for mapping in mappings:
            if meter is not None and not meter.ok():
                return out
            if view.block.is_conjunctive:
                add(try_rewrite_conjunctive(query, view, mapping))
            else:
                add(try_rewrite_aggregation(query, view, mapping))
    if use_set_semantics and catalog is not None:
        if meter is not None and not meter.ok():
            return out
        with span("mapping_enumeration"):
            many = [
                m
                for m in enumerate_mappings(
                    view.block, query, many_to_one=True, meter=meter
                )
                if not m.is_one_to_one
            ]
        if metrics is not None and many:
            _mapping_counters(metrics)[1].inc(len(many))
        with span("checks"):
            for mapping in many:
                if meter is not None and not meter.ok():
                    return out
                add(try_rewrite_set_semantics(query, view, mapping, catalog))
    return out


def _merge(base: Optional[Rewriting], step: Rewriting) -> Rewriting:
    """Compose provenance of successive rewriting steps."""
    if base is None:
        return step
    return Rewriting(
        query=step.query,
        view_names=base.view_names + step.view_names,
        strategy=f"{base.strategy}+{step.strategy}",
        mapping_desc=f"{base.mapping_desc}; {step.mapping_desc}",
        aux_views=base.aux_views + step.aux_views,
        notes=base.notes + step.notes,
    )


def rewrite_iteratively(
    query: QueryBlock,
    views: Sequence[ViewDef],
    catalog: Optional[Catalog] = None,
    use_set_semantics: bool = False,
    budget: BudgetLike = None,
) -> Optional[Rewriting]:
    """Apply the views in the given order, greedily taking the first
    usable mapping of each; views that are not usable are skipped.

    Used by the Church-Rosser experiments: for conjunctive views with
    equality predicates, any order yields the same result (Theorem 3.2).

    The ``budget`` is honored *between* per-view iterations as well as
    inside each ``single_view_rewritings`` call: once spent, remaining
    views are not attempted at all, so one expensive view cannot consume
    the whole deadline and then let the stragglers spin. The partial
    composition built so far is returned (it is a complete, sound
    rewriting of the query).
    """
    meter = ensure_meter(budget)
    current: Optional[Rewriting] = None
    block = query
    for view in views:
        if meter is not None and not meter.ok():
            break
        options = single_view_rewritings(
            block, view, catalog, use_set_semantics, meter=meter
        )
        if not options:
            continue
        current = _merge(current, options[0])
        block = current.query
    return current


@dataclass(frozen=True)
class _SearchNode:
    rewriting: Optional[Rewriting]
    block: QueryBlock


def all_rewritings(
    query: QueryBlock,
    views: Iterable[ViewDef],
    catalog: Optional[Catalog] = None,
    use_set_semantics: bool = False,
    max_steps: int = 4,
    include_partial: bool = True,
    use_planner: bool = True,
    planner: Optional["RewritePlanner"] = None,
    budget: BudgetLike = None,
) -> list[Rewriting]:
    """Every rewriting reachable by iterated single-view substitution.

    Breadth-first over substitution sequences, deduplicated by canonical
    form. ``max_steps`` bounds the number of view incorporations (each
    step removes at least one base table, so the bound is also naturally
    limited by the query's FROM size). With ``include_partial`` every
    intermediate rewriting is returned, not only the maximal ones.

    By default the search runs through the indexed/memoized
    :class:`repro.core.planner.RewritePlanner`, which returns the same
    result list faster; ``use_planner=False`` runs the original
    enumeration (kept callable for A/B benchmarks and parity tests). A
    prepared ``planner`` may be passed to reuse its signature index and
    stats across queries (``views`` is ignored then).

    ``budget`` (a :class:`repro.obs.SearchBudget`, or an already-running
    :class:`repro.obs.BudgetMeter`) bounds the search; when it trips,
    the rewritings found so far are returned and the meter reports
    ``exhausted=True``. Budgets never raise.
    """
    if planner is not None or use_planner:
        from .planner import RewritePlanner

        if planner is None:
            planner = RewritePlanner(views, catalog, use_set_semantics)
        return planner.all_rewritings(
            query, max_steps, include_partial, budget=budget
        )
    return all_rewritings_naive(
        query,
        views,
        catalog,
        use_set_semantics,
        max_steps,
        include_partial,
        budget=budget,
    )


def all_rewritings_naive(
    query: QueryBlock,
    views: Iterable[ViewDef],
    catalog: Optional[Catalog] = None,
    use_set_semantics: bool = False,
    max_steps: int = 4,
    include_partial: bool = True,
    budget: BudgetLike = None,
) -> list[Rewriting]:
    """The original (unindexed, non-incremental) search.

    Every view is tried at every node and maximality is decided by
    re-running ``single_view_rewritings`` over every result. Kept as the
    parity baseline for :mod:`repro.core.planner`. Honors ``budget``
    with the same partial-results contract as the planner.
    """
    meter = ensure_meter(budget)
    view_list = list(views)
    results: list[Rewriting] = []
    seen: set[str] = {canonical_key(query)}
    frontier: list[_SearchNode] = [_SearchNode(None, query)]
    for _step in range(max_steps):
        next_frontier: list[_SearchNode] = []
        for node in frontier:
            if meter is not None and not meter.ok():
                break
            for view in view_list:
                for option in single_view_rewritings(
                    node.block, view, catalog, use_set_semantics, meter=meter
                ):
                    if meter is not None and not meter.charge_candidate():
                        break
                    merged = _merge(node.rewriting, option)
                    key = canonical_key(merged.query)
                    if key in seen:
                        continue
                    seen.add(key)
                    next_frontier.append(_SearchNode(merged, merged.query))
                    results.append(merged)
        if not next_frontier:
            break
        frontier = next_frontier
    if include_partial:
        return results
    if meter is not None and not meter.ok():
        # Budget spent: skip the (expensive) maximality re-scan and
        # return every result — sound, possibly non-maximal.
        return results
    return [
        r
        for r in results
        if not any(
            single_view_rewritings(r.query, v, catalog, use_set_semantics)
            for v in view_list
        )
    ]

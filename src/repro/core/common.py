"""Shared helpers for the rewriting algorithms of Sections 3 and 4."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..blocks.exprs import Aggregate, Expr, has_aggregate
from ..blocks.naming import FreshNames
from ..blocks.query_block import QueryBlock, Relation, ViewDef
from ..blocks.terms import Column
from ..constraints.closure import Closure
from ..errors import RewriteError
from ..mappings.column_mapping import ColumnMapping


def view_is_rewritable(view: ViewDef, allow_distinct: bool = False) -> bool:
    """Views usable by the paper's algorithms: SELECT items are columns or
    ``AGG(column)``. Without ``allow_distinct``, DISTINCT views are
    rejected — they collapse duplicates a multiset query may need; the
    Section 5.2 set-semantics path passes ``allow_distinct=True``."""
    if view.block.distinct and not allow_distinct:
        return False
    for item in view.block.select:
        expr = item.expr
        if isinstance(expr, Column):
            continue
        if isinstance(expr, Aggregate) and isinstance(expr.arg, Column):
            continue
        return False
    return True


@dataclass(frozen=True)
class ViewOccurrence:
    """The paper's ``φ(V)``: one FROM occurrence of a view inside Q'.

    ``relation`` is the FROM item; ``select_columns[i]`` is the Q' column
    holding the view's i-th SELECT item. Non-aggregation items adopt the
    query column name ``φ(B)`` (so residual conditions and SELECT items of
    Q referring to ``φ(B)`` automatically read the view's output);
    aggregation items receive fresh names.
    """

    relation: Relation
    select_columns: tuple[Column, ...]

    def column_for_item(self, position: int) -> Column:
        return self.select_columns[position]

    def column_for_view_column(self, view: ViewDef, column: Column) -> Column:
        """Q' column for a view SELECT item that is the plain ``column``."""
        for i, item in enumerate(view.block.select):
            if item.expr == column:
                return self.select_columns[i]
        raise RewriteError(f"{column} is not a SELECT column of {view.name}")


def make_view_occurrence(
    view: ViewDef,
    mapping: ColumnMapping,
    namer: FreshNames,
) -> ViewOccurrence:
    """Build ``φ(V)`` for one use of ``view`` under ``mapping``."""
    columns: list[Column] = []
    seen: set[Column] = set()
    for position, item in enumerate(view.block.select):
        expr = item.expr
        if isinstance(expr, Column):
            image = mapping.apply(expr)
            if image in seen:
                # Two SELECT items map onto one query column (possible with
                # many-to-1 mappings); later items get fresh names, with an
                # equality predicate added by the caller.
                image = namer.column(view.output_names[position])
            columns.append(image)
            seen.add(image)
        else:
            columns.append(namer.column(view.output_names[position]))
    relation = Relation(
        name=view.name,
        columns=tuple(columns),
        base_names=tuple(view.output_names),
    )
    return ViewOccurrence(relation, tuple(columns))


def query_namer(query: QueryBlock, *more_blocks: QueryBlock) -> FreshNames:
    """A fresh-name allocator avoiding every column of the given blocks."""
    taken = [c.name for c in query.cols()]
    for block in more_blocks:
        taken += [c.name for c in block.cols()]
    return FreshNames(taken)


def pick_equal_select_column(
    target: Column,
    view: ViewDef,
    mapping: ColumnMapping,
    closure_q: Closure,
    column_only: bool = False,
) -> Optional[Column]:
    """Find ``B_A``: a view SELECT column with ``Conds(Q) ⊨ A = φ(B_A)``.

    This is the search behind conditions C2/C2' and C4 part 1. When
    ``column_only`` is set, only non-aggregation SELECT items qualify
    (``ColSel(V)``, as required by C2').
    """
    best: Optional[Column] = None
    for item in view.block.select:
        expr = item.expr
        if not isinstance(expr, Column):
            continue
        image = mapping.apply(expr)
        if closure_q.equal(target, image):
            if image == target:
                return expr  # φ(B_A) = A: the canonical choice
            if best is None:
                best = expr
    if column_only or best is not None:
        return best
    return None


def select_is_plain(query: QueryBlock) -> bool:
    """True when every SELECT item is a column or a single aggregate.

    The usability conditions are stated for this shape; arithmetic select
    expressions (which rewritings *produce*) are not accepted as input.
    """
    for item in query.select:
        expr = item.expr
        if isinstance(expr, Column):
            continue
        if isinstance(expr, Aggregate):
            continue
        if has_aggregate(expr):
            return False
        return False
    return True

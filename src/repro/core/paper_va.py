"""The paper's literal auxiliary-view construction (steps S4' 1(b), S5').

Steps S4' part 1(b) and S5' recover lost multiplicities by joining an
auxiliary view ``Va`` that sums the view's COUNT output over
``QV_Groups`` — the view grouping columns shared with the query — and then
scaling the query's aggregate by ``Cnt_Va``.

As written in the tech report, the construction keeps ``φ(V)`` in the FROM
clause, so when several view groups share one ``QV_Groups`` value inside a
query group, the aggregate is scaled once *per view row* and over-counts
(DESIGN.md fidelity note 1 works Example 4.2's own data). The construction
is sound exactly when ``QV_Groups`` covers all of ``φ(Groups(V))`` — every
view grouping column's image is fixed inside each query group — which this
module checks before rewriting. ``tests/core/test_paper_va.py``
demonstrates both the sound regime and the over-counting regime.
"""

from __future__ import annotations

from typing import Optional

from ..blocks.exprs import AggFunc, Aggregate, Arith, Expr, mul
from ..blocks.naming import FreshNames
from ..blocks.query_block import (
    QueryBlock,
    Relation,
    SelectItem,
    ViewDef,
)
from ..blocks.terms import Column, Comparison, Op
from ..constraints.closure import Closure
from ..constraints.having import normalize_having
from ..constraints.residual import find_residual
from ..mappings.column_mapping import ColumnMapping
from .aggregate import _ViewShape, _equal_column_output
from .common import make_view_occurrence, query_namer, select_is_plain, view_is_rewritable
from .result import Rewriting


def try_rewrite_paper_va(
    query: QueryBlock,
    view: ViewDef,
    mapping: ColumnMapping,
    check_alignment: bool = True,
) -> Optional[Rewriting]:
    """Rewrite with the literal ``Va`` construction of steps S4'/S5'.

    With ``check_alignment=True`` (default), refuses the regime where the
    construction over-counts. Setting it to False reproduces the paper's
    unconditional steps — used by tests to exhibit the Example 4.2
    discrepancy; never do this in production code.
    """
    if not view.block.is_aggregation or query.is_conjunctive:
        return None
    if not view_is_rewritable(view) or not select_is_plain(query):
        return None
    if not mapping.is_one_to_one:
        return None

    query_n = normalize_having(query)
    if not query_n.group_by:
        # Adding Cnt_Va to an empty GROUP BY would change the
        # one-row-on-empty-input semantics; the construction assumes
        # grouped queries (as in the paper's examples).
        return None
    view_n = view.block
    if view_n.having:
        return None  # keep the literal construction simple: no view HAVING
    if not view_n.group_by:
        # A scalar aggregation view has one row even over an empty base,
        # but the (necessarily grouped, see above) query would then have
        # no groups — the construction would manufacture them. Same
        # soundness hole as in try_rewrite_aggregation; see fuzz seed
        # 4916 in tests/core/test_scalar_view_soundness.py.
        return None
    closure_q = Closure(query_n.where)
    if not closure_q.satisfiable:
        return None

    image = mapping.image_columns
    namer = query_namer(query_n, view_n)
    occurrence = make_view_occurrence(view, mapping, namer)
    shape = _ViewShape(view, mapping, occurrence)

    # C2' on grouping columns.
    sigma: dict[Column, Column] = {}
    for column in list(query_n.group_by) + list(query_n.col_sel()):
        if column not in image or column in sigma:
            continue
        out_col = _equal_column_output(column, shape, mapping, closure_q)
        if out_col is None:
            return None
        sigma[column] = out_col

    # C3'.
    colsel_outputs = frozenset(shape.column_outputs.values())
    allowed = (query_n.cols() - image) | colsel_outputs
    residual = find_residual(
        query_n.where, mapping.apply_atoms(view_n.where), allowed
    )
    if residual is None:
        return None

    # QV_Groups in Q' column terms: view grouping columns that survive as
    # outputs and whose image is a (closure-equal) query grouping column.
    group_cols = set(query_n.group_by)
    qv_groups: list[Column] = []
    covered = 0
    for v_col in view_n.group_by:
        out = shape.column_outputs.get(v_col)
        q_image = mapping.apply(v_col)
        determined = any(closure_q.equal(q_image, g) for g in group_cols)
        if determined and out is not None:
            qv_groups.append(out)
            covered += 1

    alignment = covered == len(view_n.group_by)
    if check_alignment and not alignment:
        return None

    n_col = shape.count_output
    extra_where: list[Comparison] = []
    extra_group: list[Column] = []
    aux_views: list[ViewDef] = []
    new_from_extra: list[Relation] = []
    va_cnt_col: Optional[Column] = None

    def ensure_va() -> Optional[Column]:
        """Build Va = SELECT QV_Groups, SUM(N) FROM φ(V) GROUP BY QV_Groups
        and join it on QV_Groups; returns the Cnt_Va column of Q'."""
        nonlocal va_cnt_col
        if va_cnt_col is not None:
            return va_cnt_col
        if n_col is None:
            return None
        # The Va definition reads the *view*, so its block is over a fresh
        # occurrence of the view itself.
        va_namer = FreshNames()
        va_rel = Relation(
            name=view.name,
            columns=va_namer.columns(view.output_names),
            base_names=tuple(view.output_names),
        )
        pos_of = {c: i for i, c in enumerate(occurrence.select_columns)}
        va_group = tuple(va_rel.columns[pos_of[g]] for g in qv_groups)
        va_n = va_rel.columns[pos_of[n_col]]
        va_block = QueryBlock(
            select=tuple(SelectItem(c) for c in va_group)
            + (SelectItem(Aggregate(AggFunc.SUM, va_n), "Cnt_Va"),),
            from_=(va_rel,),
            group_by=va_group,
        ).validate()
        va_name = f"Va_{view.name}"
        va_def = ViewDef(
            va_name,
            va_block,
            tuple(va_block.output_names()[:-1]) + ("Cnt_Va",),
        )
        aux_views.append(va_def)
        # Occurrence of Va inside Q': fresh G columns plus Cnt_Va.
        g_cols = tuple(namer.column(f"G_{c.name}") for c in qv_groups)
        cnt = namer.column("Cnt_Va")
        va_occ = Relation(va_name, g_cols + (cnt,), va_def.output_names)
        new_from_extra.append(va_occ)
        for g, q_col in zip(g_cols, qv_groups):
            extra_where.append(Comparison(q_col, Op.EQ, g))
        extra_group.append(cnt)
        va_cnt_col = cnt
        return cnt

    agg_replacements: dict[Aggregate, Expr] = {}
    for agg in query_n.all_aggregates():
        if agg in agg_replacements:
            continue
        if not isinstance(agg.arg, Column):
            return None
        arg, func = agg.arg, agg.func
        if arg in image:
            preimages = [
                v for v, q in mapping.column_map.items()
                if closure_q.equal(arg, q)
            ]
            closure_v = Closure(view_n.where)
            direct = shape.agg_output_for(func, preimages, closure_v)
            column_out = None
            for view_col, out_col in shape.column_outputs.items():
                if closure_q.equal(arg, mapping.apply(view_col)):
                    column_out = out_col
                    break
            if func in (AggFunc.MIN, AggFunc.MAX):
                if direct is not None:
                    agg_replacements[agg] = Aggregate(func, direct)
                elif column_out is not None:
                    agg_replacements[agg] = Aggregate(func, column_out)
                else:
                    return None
            elif func is AggFunc.SUM:
                if direct is not None:
                    agg_replacements[agg] = Aggregate(AggFunc.SUM, direct)
                elif column_out is not None:
                    # S4' 1(b): Sum over the column times the recovered
                    # multiplicity. In the aligned regime Cnt_Va equals the
                    # view row's own count, so SUM(column * Cnt) is the
                    # paper's construction with QV_Groups ∋ A.
                    cnt = ensure_va()
                    if cnt is None:
                        return None
                    agg_replacements[agg] = Aggregate(
                        AggFunc.SUM, mul(cnt, column_out)
                    )
                else:
                    return None
            elif func is AggFunc.COUNT:
                if n_col is None:
                    return None
                agg_replacements[agg] = Aggregate(AggFunc.SUM, n_col)
            else:
                return None  # AVG: not part of the literal construction
        else:
            if func in (AggFunc.MIN, AggFunc.MAX):
                agg_replacements[agg] = Aggregate(func, arg)
            elif func in (AggFunc.SUM, AggFunc.COUNT):
                # S5': join Va, group by Cnt_Va, scale by it.
                cnt = ensure_va()
                if cnt is None:
                    return None
                agg_replacements[agg] = mul(cnt, Aggregate(func, arg))
            else:
                return None

    new_from = []
    placed = False
    for idx, rel in enumerate(query_n.from_):
        if idx in mapping.image_table_indexes:
            if not placed:
                new_from.append(occurrence.relation)
                placed = True
            continue
        new_from.append(rel)
    new_from.extend(new_from_extra)

    def rewrite_expr(expr: Expr) -> Expr:
        if isinstance(expr, Aggregate):
            return agg_replacements[expr]
        if isinstance(expr, Column):
            return sigma.get(expr, expr)
        if isinstance(expr, Arith):
            return Arith(expr.op, rewrite_expr(expr.left), rewrite_expr(expr.right))
        return expr

    rewritten = QueryBlock(
        select=tuple(
            SelectItem(rewrite_expr(i.expr), i.alias) for i in query_n.select
        ),
        from_=tuple(new_from),
        where=tuple(residual) + tuple(extra_where),
        group_by=tuple(dict.fromkeys(sigma.get(c, c) for c in query_n.group_by))
        + tuple(extra_group),
        having=tuple(
            Comparison(rewrite_expr(a.left), a.op, rewrite_expr(a.right))
            for a in query_n.having
        ),
        distinct=query_n.distinct,
    ).validate()

    return Rewriting(
        query=rewritten,
        view_names=(view.name,),
        strategy="aggregate-paper-va",
        mapping_desc=mapping.describe(),
        aux_views=tuple(aux_views),
        notes=(
            "literal S4'/S5' auxiliary-view construction"
            + ("" if alignment else " (UNSOUND regime: alignment unchecked)"),
        ),
    )

"""The user-facing facade: register views, rewrite queries, pick winners.

Typical use::

    from repro import Catalog, RewriteEngine, table

    catalog = Catalog([table("Calls", [...], key=["Call_Id"])])
    engine = RewriteEngine(catalog)
    engine.add_view("CREATE VIEW V1 (...) AS SELECT ...")
    result = engine.rewrite("SELECT ... FROM Calls ... GROUP BY ...")
    print(result.best().sql())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover
    from .planner import RewritePlanner

from ..blocks.normalize import as_block, parse_view
from ..blocks.query_block import QueryBlock, ViewDef
from ..catalog.schema import Catalog
from ..obs.budget import BudgetMeter, SearchBudget, ensure_meter
from ..obs.trace import RewriteTrace, Tracer, span, tracing
from .cost import estimate_cost
from .multiview import all_rewritings, single_view_rewritings
from .result import Rewriting


@dataclass(frozen=True)
class RankedRewriting:
    """A rewriting with its estimated cost (lower is better)."""

    rewriting: Rewriting
    cost: float

    def sql(self) -> str:
        return self.rewriting.sql()


class RewriteResult:
    """All rewritings found for one query, ranked by estimated cost.

    ``exhausted`` is True when a :class:`repro.obs.SearchBudget` tripped
    during the search: ``ranked`` then holds a partial (but individually
    sound) result set and ``budget`` records which limits tripped and the
    work consumed. ``trace`` carries the stage-span tree when the rewrite
    was called with ``trace=True``.
    """

    def __init__(
        self,
        query: QueryBlock,
        ranked: list[RankedRewriting],
        original_cost: float,
        exhausted: bool = False,
        budget: Optional[dict] = None,
        trace: Optional[RewriteTrace] = None,
        found: tuple[Rewriting, ...] = (),
    ):
        self.query = query
        self.ranked = ranked
        self.original_cost = original_cost
        self.exhausted = exhausted
        self.budget = budget
        self.trace = trace
        # The candidates in search-discovery order, before ranking; the
        # repro.api facade exposes this so the deprecated all_rewritings
        # shim can return the exact legacy list.
        self.found = found

    def __iter__(self):
        return iter(self.ranked)

    def __len__(self) -> int:
        return len(self.ranked)

    @property
    def rewritings(self) -> list[Rewriting]:
        return [r.rewriting for r in self.ranked]

    def best(self) -> Optional[Rewriting]:
        """The cheapest rewriting, or None when no view is usable."""
        return self.ranked[0].rewriting if self.ranked else None

    def best_or_original(self) -> QueryBlock:
        """The cheapest plan overall: a rewriting or the original query."""
        best = self.ranked[0] if self.ranked else None
        if best is not None and best.cost < self.original_cost:
            return best.rewriting.query
        return self.query


def merge_strategy_extras(
    candidates: Sequence[Rewriting], extras: Sequence[Rewriting]
) -> list[Rewriting]:
    """The strategy union: C1–C4 candidates plus the extras another
    strategy found, deduplicated by canonical key (C1–C4's member wins a
    tie, so rankings and provenance of the base set never shift)."""
    from .canonical import canonical_key

    seen = {canonical_key(rw.query) for rw in candidates}
    merged = list(candidates)
    for extra in extras:
        key = canonical_key(extra.query)
        if key not in seen:
            seen.add(key)
            merged.append(extra)
    return merged


def _rename_relation(block: QueryBlock, old: str, new: str) -> QueryBlock:
    """A copy of ``block`` with FROM occurrences of ``old`` renamed."""
    from ..blocks.query_block import Relation

    return block.with_(
        from_=tuple(
            Relation(new, rel.columns, rel.base_names)
            if rel.name == old
            else rel
            for rel in block.from_
        )
    )


@dataclass
class NestedRewriteResult:
    """Outcome of rewriting a nested query (Section 7 fragment).

    ``locals`` holds the final derived-table definitions — inner
    rewritings already applied; ``outer`` ranks rewritings of the
    flattened outer block.
    """

    original: "NestedQuery"
    flattened: "NestedQuery"
    locals: dict[str, ViewDef]
    inner_rewrites: dict[str, Rewriting]
    outer: "RewriteResult"

    @property
    def used_views(self) -> list[str]:
        """Catalog views consumed, inner rewrites and outer combined."""
        names: list[str] = []
        for rewriting in self.inner_rewrites.values():
            names.extend(rewriting.view_names)
        best = self.outer.ranked[0] if self.outer.ranked else None
        if best is not None and best.cost < self.outer.original_cost:
            names.extend(best.rewriting.view_names)
        return list(dict.fromkeys(names))

    def best_plan(self) -> tuple[QueryBlock, dict[str, ViewDef]]:
        """The cheapest executable plan: (block, extra view definitions)."""
        extra = dict(self.locals)
        best = self.outer.ranked[0] if self.outer.ranked else None
        if best is not None and best.cost < self.outer.original_cost:
            extra.update(best.rewriting.extra_views())
            return best.rewriting.query, extra
        return self.flattened.block, extra

    def execute(self, database) -> "Table":
        block, extra = self.best_plan()
        return database.execute(block, extra_views=extra)


class RewriteEngine:
    """Rewrites SQL queries to use the catalog's materialized views.

    ``use_planner`` selects the indexed/memoized search of
    :mod:`repro.core.planner` (default); the planner instance — and its
    view-signature index — is shared across :meth:`rewrite` calls until
    the view set changes.
    """

    def __init__(
        self,
        catalog: Catalog,
        use_set_semantics: bool = True,
        use_planner: bool = True,
        budget: Optional[SearchBudget] = None,
        planner: Optional["RewritePlanner"] = None,
    ):
        self.catalog = catalog
        self.use_set_semantics = use_set_semantics
        self.use_planner = use_planner
        # Per-query default budget; rewrite(budget=...) overrides per call.
        self.budget = budget
        # ``planner`` adopts a prepared planner (and its warm substitution
        # memo) — the batch service constructs one engine per worker and
        # injects the group's shared planner here. The engine still
        # replaces it if the view set drifts.
        self._planner: Optional["RewritePlanner"] = planner

    # ------------------------------------------------------------------

    def add_view(
        self,
        definition: Union[str, ViewDef],
        name: Optional[str] = None,
        row_count: Optional[int] = None,
    ) -> ViewDef:
        """Register a materialized view (SQL text or a prepared ViewDef)."""
        if isinstance(definition, str):
            view = parse_view(definition, self.catalog, name=name)
        else:
            view = definition
        self.catalog.add_view(view, row_count=row_count)
        self._planner = None
        return view

    def _shared_planner(self) -> "RewritePlanner":
        from .planner import RewritePlanner

        if self._planner is None or self._planner.views != self.views:
            self._planner = RewritePlanner(
                self.views, self.catalog, self.use_set_semantics
            )
        return self._planner

    @property
    def views(self) -> list[ViewDef]:
        return list(self.catalog.views.values())

    # ------------------------------------------------------------------

    def rewrite(
        self,
        query: Union[str, QueryBlock],
        views: Optional[Sequence[ViewDef]] = None,
        max_steps: int = 3,
        unfold: bool = False,
        catalog: Optional[Catalog] = None,
        budget: Union[SearchBudget, BudgetMeter, None] = None,
        trace: bool = False,
        include_partial: bool = True,
        strategy: str = "c1c4",
    ) -> RewriteResult:
        """Find all rewritings of ``query`` using the registered views.

        Returns a :class:`RewriteResult` ranked by estimated cost. Multi-
        view rewritings are explored up to ``max_steps`` substitutions.
        With ``unfold=True``, conjunctive views in the query's own FROM
        clause are first expanded into base tables (paper Section 7), so
        the rewriter can reassemble the query from *different* views.

        ``budget`` (default: the engine's) bounds the search; a tripped
        budget yields a partial-but-sound result with ``exhausted=True``
        rather than an exception. ``trace=True`` attaches a
        :class:`repro.obs.RewriteTrace` of per-stage timings and search
        counters to the result.

        ``strategy`` selects the search regime (see
        :mod:`repro.strategies`): ``"c1c4"`` is the paper's search;
        ``"cohen_nutt"`` / ``"both"`` add the Cohen–Nutt complete-
        rewriting extras to the candidate set, deduplicated by
        canonical key.
        """
        shared = (
            views is None
            and (catalog is None or catalog is self.catalog)
            and self.use_planner
        )
        catalog = catalog if catalog is not None else self.catalog
        meter = ensure_meter(budget if budget is not None else self.budget)
        tracer = Tracer() if trace else None

        def run() -> RewriteResult:
            from .planner import RewritePlanner

            with span("parse"):
                block = as_block(query, catalog)
            with span("normalize"):
                block.validate()
                if unfold:
                    from ..blocks.unfold import unfold_views

                    block = unfold_views(block, catalog)
            planner: Optional["RewritePlanner"] = None
            if self.use_planner:
                planner = (
                    self._shared_planner()
                    if shared
                    else RewritePlanner(
                        views if views is not None else self.views,
                        catalog,
                        self.use_set_semantics,
                    )
                )
            stats_before = (
                planner.stats.as_dict() if planner is not None else None
            )
            with span("search"):
                candidates = all_rewritings(
                    block,
                    views if views is not None else self.views,
                    catalog=catalog,
                    use_set_semantics=self.use_set_semantics,
                    max_steps=max_steps,
                    include_partial=include_partial,
                    use_planner=self.use_planner,
                    planner=planner,
                    budget=meter,
                )
                if strategy != "c1c4":
                    from ..strategies import (
                        cohen_nutt_rewritings,
                        normalize_strategy,
                    )

                    normalize_strategy(strategy)
                    candidates = merge_strategy_extras(
                        candidates,
                        cohen_nutt_rewritings(
                            block,
                            views if views is not None else self.views,
                            planner=planner,
                            budget=meter,
                        ),
                    )
            with span("rank"):
                ranked = sorted(
                    (
                        RankedRewriting(
                            rw,
                            estimate_cost(rw.query, catalog, rw.aux_views),
                        )
                        for rw in candidates
                    ),
                    key=lambda r: (r.cost, r.rewriting.mapping_desc),
                )
            if tracer is not None and stats_before is not None:
                for name, value in planner.stats.as_dict().items():
                    if isinstance(value, int):
                        delta = value - stats_before.get(name, 0)
                        if delta:
                            tracer.add(name, delta)
            return RewriteResult(
                block,
                ranked,
                estimate_cost(block, catalog),
                exhausted=meter.exhausted if meter is not None else False,
                budget=meter.as_dict() if meter is not None else None,
                found=tuple(candidates),
            )

        if tracer is None:
            return run()
        with tracing(tracer):
            result = run()
        result.trace = RewriteTrace(
            tracer.finish(),
            counters=tracer.counters,
            budget=meter.as_dict() if meter is not None else None,
        )
        return result

    def rewrite_with(
        self, query: Union[str, QueryBlock], view: ViewDef
    ) -> list[Rewriting]:
        """All single-use rewritings of ``query`` with one view."""
        block = as_block(query, self.catalog)
        return single_view_rewritings(
            block, view, self.catalog, self.use_set_semantics
        )

    def rewrite_nested(
        self,
        query,
        max_steps: int = 3,
        budget: Union[SearchBudget, BudgetMeter, None] = None,
    ) -> "NestedRewriteResult":
        """Rewrite a query with FROM-clause subqueries (Section 7).

        Conjunctive derived tables are first flattened into the outer
        block; each surviving (aggregation) derived table's body is
        rewritten independently when a registered view makes it cheaper;
        finally the outer block itself is rewritten as usual.

        One ``budget`` meter covers the whole request — every inner
        rewrite plus the outer one — so a nested query cannot multiply
        the deadline by its number of derived tables.
        """
        from ..blocks.nested import NestedQuery, parse_nested_query

        meter = ensure_meter(budget if budget is not None else self.budget)
        if isinstance(query, str):
            nested = parse_nested_query(query, self.catalog)
        else:
            nested = query
        flat = nested.flatten(self.catalog)
        working = flat.with_locals_registered(self.catalog)

        final_locals: dict[str, ViewDef] = {}
        inner_rewrites: dict[str, Rewriting] = {}
        for view in flat.local_views:
            if meter is not None and not meter.ok():
                # Budget spent: serve the derived table directly.
                final_locals[view.name] = view
                continue
            direct_cost = estimate_cost(view.block, working)
            best: Optional[Rewriting] = None
            best_cost = direct_cost
            for candidate in all_rewritings(
                view.block,
                self.views,
                catalog=working,
                use_set_semantics=self.use_set_semantics,
                max_steps=max_steps,
                use_planner=self.use_planner,
                budget=meter,
            ):
                cost = estimate_cost(
                    candidate.query, working, candidate.aux_views
                )
                if cost < best_cost:
                    best, best_cost = candidate, cost
            if best is None:
                final_locals[view.name] = view
                continue
            inner_rewrites[view.name] = best
            # Namespace the rewriting's auxiliary views per local so two
            # inner rewrites over the same catalog view cannot collide.
            body = best.query
            for aux in best.aux_views:
                fresh = f"{aux.name}__{view.name}"
                body = _rename_relation(body, aux.name, fresh)
                final_locals[fresh] = ViewDef(
                    fresh, aux.block, aux.output_names
                )
            final_locals[view.name] = ViewDef(
                view.name, body, view.output_names
            )

        outer = self.rewrite(
            flat.block, max_steps=max_steps, catalog=working, budget=meter
        )
        return NestedRewriteResult(
            original=nested,
            flattened=flat,
            locals=final_locals,
            inner_rewrites=inner_rewrites,
            outer=outer,
        )

    def answer(self, query: Union[str, QueryBlock], database) -> "Table":
        """Evaluate ``query`` on ``database`` through the cheapest plan.

        Picks between direct evaluation and the best rewriting by
        estimated cost; either way the same multiset of answers comes
        back (Theorems 3.1/4.1).
        """
        result = self.rewrite(query)
        best = result.ranked[0] if result.ranked else None
        if best is not None and best.cost < result.original_cost:
            return database.execute(
                best.rewriting.query,
                extra_views=best.rewriting.extra_views(),
            )
        return database.execute(result.query)

"""Planner strategies: named search regimes behind one ``repro.api`` facade.

The paper's C1–C4 conditions are sound but incomplete — many queries
with perfectly good view-based rewritings get none. This package hosts
the alternatives:

``c1c4``
    the default: the paper's usability-condition search exactly as
    :func:`repro.core.multiview.all_rewritings` runs it.
``cohen_nutt``
    the C1–C4 result set *plus* the Cohen & Nutt complete-rewriting
    extras of :mod:`repro.strategies.cohen_nutt` (unfolding candidate
    views into the query body and deciding equivalence under aggregation
    semantics). Every C1–C4 rewriting is found or subsumed by
    construction — the union is deduplicated by canonical key.
``both``
    the same result set as ``cohen_nutt``, but callers that know about
    strategies (the fuzzer, the differential oracle, the benchmark
    collectors) additionally run the two searches independently and
    cross-check them: every Cohen–Nutt rewriting must pass the multiset
    oracle, and the C1–C4 set must be dominated (find-or-subsume) by the
    Cohen–Nutt set.

The strategy name travels end to end: ``repro.api.rewrite(strategy=...)``,
``--strategy`` on the ``rewrite`` / ``batch`` / ``fuzz`` CLI commands,
the ``strategy`` field of a ``repro-api/1`` wire request (the serving
daemon registers one runner per name), and the ``strategy`` field of
``repro-fuzz/1`` repro files. See ``docs/strategies.md``.
"""

from __future__ import annotations

from ..errors import ReproError

#: Engine-level strategy names, in documentation order. The serving
#: daemon's registry additionally keeps ``default`` as an alias of the
#: plain executor (which honors the request's own ``strategy`` field).
STRATEGY_NAMES = ("c1c4", "cohen_nutt", "both")

#: What unannotated requests (and pre-strategy repro-fuzz/1 files) mean.
DEFAULT_STRATEGY = "c1c4"


def normalize_strategy(name) -> str:
    """Validate a strategy name; ``None`` means the default (``c1c4``)."""
    if name is None:
        return DEFAULT_STRATEGY
    if name not in STRATEGY_NAMES:
        known = ", ".join(STRATEGY_NAMES)
        raise ReproError(f"unknown strategy {name!r} (known: {known})")
    return name


def uses_cohen_nutt(name: str) -> bool:
    """True when the strategy's result set includes the Cohen–Nutt extras."""
    return name in ("cohen_nutt", "both")


from .cohen_nutt import cohen_nutt_rewritings  # noqa: E402

__all__ = [
    "DEFAULT_STRATEGY",
    "STRATEGY_NAMES",
    "cohen_nutt_rewritings",
    "normalize_strategy",
    "uses_cohen_nutt",
]

"""Cohen & Nutt complete rewriting for count/sum/max aggregate queries.

The paper's C1–C4 usability conditions reject many sound rewritings.
Cohen & Nutt ("Algorithms for Rewriting Aggregate Queries Using Views",
arXiv cs/0011024) decide rewritability the other way around: build a
*candidate* that reads the view, unfold the view occurrence back into
base tables, and check that the unfolded query is equivalent to the
original under the aggregate's semantics — bag equivalence for the
duplicate-sensitive aggregates (COUNT/SUM/AVG), set equivalence for the
duplicate-insensitive ones (MIN/MAX). This module implements the two
regimes that extend the C1–C4 result set:

direct view reads (``cohen-nutt-direct``)
    An aggregation view whose body covers the whole query 1-1: when the
    conditions factor (``Conds(Q) ≡ φ(Conds(V)) ∧ Conds'`` with the
    residual over the view's group outputs), the groups align both ways
    under ``Conds(Q)``'s closure, and every SELECT/HAVING aggregate of Q
    matches an output of V, then Q is answered by *selecting view rows*
    — no re-aggregation at all. Symbolically unfolding the candidate
    gives back a query whose core is condition-equivalent to Q with
    identical grouping, which is exactly bag equivalence, so the read is
    sound for every aggregate, including the shapes C1–C4 refuses:
    scalar COUNT views, AVG views without a COUNT output, and views
    whose HAVING is vacuously true on non-empty groups.

many-to-one MIN/MAX reads (``cohen-nutt-maxmin``)
    A conjunctive view used through a *many-to-one* mapping (e.g. a
    self-join view collapsed onto one query occurrence) changes tuple
    multiplicities, which C1 forbids. MIN and MAX cannot see
    multiplicities, so set equivalence suffices: the candidate is built
    like the Section 5.2 set-semantics substitution, its view occurrence
    is unfolded into base tables, and the unfolded query is checked
    set-equivalent to Q by a two-way homomorphism test (closure-entailed
    atoms, distinguished columns pinned through the construction).

Both regimes *verify* rather than trust the construction: a candidate
only becomes a :class:`~repro.core.result.Rewriting` after its unfolding
check passes. The strategy's full result set is the C1–C4 set plus these
extras (``repro.core.rewriter`` performs the canonical-key union), so
C1–C4 ⊆ Cohen–Nutt dominance holds by construction and is re-asserted
scenario-by-scenario by the differential oracle.

Scope notes. COUNT outputs are matched argument-exactly first, then any
COUNT output is accepted: the engine's language is the paper's NULL-free
model where every ``COUNT(B)`` equals the group size (the oracle vacates
rewriting checks on NULL-carrying instances for the same reason).
DISTINCT on either side is refused — it changes multiplicities for the
duplicate-sensitive aggregates and is owned by the set-semantics path.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..blocks.exprs import Aggregate, AggFunc, columns_in
from ..blocks.naming import FreshNames
from ..blocks.query_block import QueryBlock, Relation, SelectItem, ViewDef
from ..blocks.terms import Column, Comparison, Constant, Op
from ..constraints.closure import Closure, closure_cache_enabled, closure_of
from ..constraints.residual import find_residual
from ..errors import NormalizationError
from ..mappings.enumerate_mappings import enumerate_mappings
from ..obs.budget import BudgetMeter, ensure_meter
from ..core.canonical import canonical_key
from ..core.common import ViewOccurrence, make_view_occurrence, query_namer
from ..core.result import Rewriting

#: Provenance tags carried in ``Rewriting.strategy``.
DIRECT = "cohen-nutt-direct"
MAXMIN = "cohen-nutt-maxmin"

#: Entries kept in the planner's ``cohen_nutt`` memo family.
MEMO_FAMILY = "cohen_nutt"
MEMO_MAX = 2048


def cohen_nutt_rewritings(
    query: QueryBlock,
    views: Iterable[ViewDef],
    planner=None,
    budget=None,
) -> list[Rewriting]:
    """The Cohen–Nutt extras for ``query``: rewritings beyond C1–C4.

    Results are deduplicated among themselves by canonical key; callers
    union them with the C1–C4 set (deduplicating again). ``planner``
    optionally memoizes the whole answer per query block in its
    ``cohen_nutt`` memo family — the entries ride the same
    export/import channel as the substitution memo, so serving
    warm-starts cover this strategy too. ``budget`` bounds the mapping
    enumeration and candidate count (the anytime contract: a tripped
    budget yields a sound prefix, never a wrong rewriting).
    """
    meter = None if budget is None else ensure_meter(budget)
    memo = None
    if planner is not None and closure_cache_enabled():
        memo = planner.strategy_memo(MEMO_FAMILY)
        cached = memo.get(query)
        if cached is not None:
            memo.move_to_end(query)
            return list(cached)
    closure_q = closure_of(query.where)
    out: list[Rewriting] = []
    seen: set[str] = set()
    for view in views:
        if meter is not None and not meter.ok():
            break
        for rewriting in _view_rewritings(query, view, closure_q, meter):
            if meter is not None and not meter.charge_candidate():
                break
            key = canonical_key(rewriting.query)
            if key in seen:
                continue
            seen.add(key)
            out.append(rewriting)
    if memo is not None and (meter is None or not meter.exhausted):
        # Budget-tripped enumerations are partial; caching one would
        # poison later unbudgeted searches (same rule as the planner's
        # substitution memo).
        memo[query] = tuple(out)
        while len(memo) > MEMO_MAX:
            memo.popitem(last=False)
    return out


def _view_rewritings(
    query: QueryBlock,
    view: ViewDef,
    closure_q: Closure,
    meter: Optional[BudgetMeter],
) -> Iterable[Rewriting]:
    if query.distinct or not query.is_aggregation:
        return
    if view.block.distinct:
        return
    yield from _direct_rewritings(query, view, closure_q, meter)
    yield from _maxmin_rewritings(query, view, closure_q, meter)


# ----------------------------------------------------------------------
# Regime 1: direct reads of an aggregation view (no re-aggregation)
# ----------------------------------------------------------------------


def _direct_rewritings(
    query: QueryBlock,
    view: ViewDef,
    closure_q: Closure,
    meter: Optional[BudgetMeter],
) -> Iterable[Rewriting]:
    body = view.block
    if not body.is_aggregation:
        return
    if body.having:
        # A vacuous HAVING (true on every non-empty group) can be
        # dropped — but only when Q is grouped: a *scalar* view's single
        # group may be empty (the one-row-even-when-empty rule), and
        # then HAVING COUNT > 0 erases the row Q still returns.
        if not query.group_by or not body.group_by:
            return
        if not all(_vacuous_having_atom(atom) for atom in body.having):
            return
    for mapping in enumerate_mappings(body, query, meter=meter):
        if len(mapping.table_pairs) != len(query.from_):
            continue  # must cover the whole FROM clause of Q
        rewriting = _direct_from_mapping(query, view, mapping, closure_q)
        if rewriting is not None:
            yield rewriting


def _direct_from_mapping(
    query: QueryBlock,
    view: ViewDef,
    mapping,
    closure_q: Closure,
) -> Optional[Rewriting]:
    body = view.block
    # Groups must align in both directions under Conds(Q): V's grouping
    # neither splits a Q group (finer) nor merges two (coarser).
    v_groups = [mapping.apply(g) for g in body.group_by]
    if not _groups_align(query.group_by, v_groups, closure_q):
        return None

    # Conds(Q) ≡ φ(Conds(V)) ∧ residual, residual over the view's group
    # outputs only — it filters whole groups, never rows within one.
    mapped_conds = mapping.apply_atoms(body.where)
    allowed = [
        mapping.apply(item.expr)
        for item in body.select
        if isinstance(item.expr, Column)
    ]
    residual = find_residual(query.where, mapped_conds, allowed)
    if residual is None:
        return None

    namer = query_namer(query, body)
    occurrence = make_view_occurrence(view, mapping, namer)
    # The occurrence adopts the image name φ(B) for each column output
    # (first occurrence wins), so the residual — written over those very
    # images — already reads the view's outputs verbatim.

    output_names = query.output_names()
    select: list[SelectItem] = []
    for i, item in enumerate(query.select):
        translated = _translate_group_expr(
            item.expr, view, mapping, occurrence, closure_q
        )
        if translated is None:
            return None
        select.append(SelectItem(translated, alias=output_names[i]))

    having_atoms: list[Comparison] = []
    for atom in query.having:
        left = _translate_group_expr(
            atom.left, view, mapping, occurrence, closure_q
        )
        right = _translate_group_expr(
            atom.right, view, mapping, occurrence, closure_q
        )
        if left is None or right is None:
            return None
        having_atoms.append(Comparison(left, atom.op, right))

    where = tuple(residual) + tuple(having_atoms)
    try:
        rewritten = QueryBlock(
            select=tuple(select),
            from_=(occurrence.relation,),
            where=where,
        ).validate()
    except NormalizationError:
        return None
    return Rewriting(
        query=rewritten,
        view_names=(view.name,),
        strategy=DIRECT,
        mapping_desc=mapping.describe(),
        notes=("unfolding-equivalent direct read (Cohen–Nutt)",),
    )


def _groups_align(
    q_groups: Iterable[Column],
    v_group_images: Iterable[Column],
    closure_q: Closure,
) -> bool:
    q_groups = list(q_groups)
    v_group_images = list(v_group_images)
    for q_col in q_groups:
        if not any(closure_q.equal(q_col, v) for v in v_group_images):
            return False
    for v_col in v_group_images:
        if not any(closure_q.equal(v_col, q) for q in q_groups):
            return False
    return True


def _translate_group_expr(
    expr,
    view: ViewDef,
    mapping,
    occurrence: ViewOccurrence,
    closure_q: Closure,
) -> Optional[object]:
    """A Q SELECT/HAVING side as one Q' term over the view's outputs."""
    if isinstance(expr, Constant):
        return expr
    if isinstance(expr, Column):
        best = None
        for position, item in enumerate(view.block.select):
            if not isinstance(item.expr, Column):
                continue
            image = mapping.apply(item.expr)
            if image == expr:
                return occurrence.select_columns[position]
            if best is None and closure_q.equal(expr, image):
                best = occurrence.select_columns[position]
        return best
    if isinstance(expr, Aggregate):
        fallback = None
        for position, item in enumerate(view.block.select):
            candidate = item.expr
            if not isinstance(candidate, Aggregate):
                continue
            if candidate.func is not expr.func:
                continue
            if _agg_args_match(expr.arg, candidate.arg, mapping, closure_q):
                return occurrence.select_columns[position]
            if fallback is None and expr.func is AggFunc.COUNT:
                # NULL-free model: every COUNT output is the group size.
                fallback = occurrence.select_columns[position]
        return fallback
    return None  # Arith sides are outside the accepted input language


def _agg_args_match(q_arg, v_arg, mapping, closure_q: Closure) -> bool:
    if isinstance(q_arg, Column) and isinstance(v_arg, Column):
        return closure_q.equal(q_arg, mapping.apply(v_arg))
    return mapping.apply_expr(v_arg) == q_arg


def _vacuous_having_atom(atom: Comparison) -> bool:
    """True when the atom holds on every non-empty group.

    Recognized shape: ``COUNT(B) op c`` (either orientation) where the
    comparison is implied by ``COUNT(B) >= 1`` — the weakest fact true
    of any group that exists.
    """
    if isinstance(atom.left, Aggregate):
        agg, op, other = atom.left, atom.op, atom.right
    elif isinstance(atom.right, Aggregate):
        agg, op, other = atom.right, atom.op.flipped, atom.left
    else:
        return False
    if agg.func is not AggFunc.COUNT or not isinstance(other, Constant):
        return False
    if not other.is_numeric:
        return False
    value = other.value
    if op is Op.GT or op is Op.NE:
        return value < 1
    if op is Op.GE:
        return value <= 1
    return False


# ----------------------------------------------------------------------
# Regime 2: MIN/MAX through many-to-one conjunctive-view mappings
# ----------------------------------------------------------------------


def _maxmin_rewritings(
    query: QueryBlock,
    view: ViewDef,
    closure_q: Closure,
    meter: Optional[BudgetMeter],
) -> Iterable[Rewriting]:
    aggregates = query.all_aggregates()
    if not aggregates or any(
        agg.func not in (AggFunc.MIN, AggFunc.MAX) for agg in aggregates
    ):
        return
    body = view.block
    if not body.is_conjunctive:
        return
    if any(not isinstance(item.expr, Column) for item in body.select):
        return
    for mapping in enumerate_mappings(
        body, query, many_to_one=True, meter=meter
    ):
        if mapping.is_one_to_one:
            continue  # the 1-1 regime belongs to the C1–C4 search
        rewriting = _maxmin_from_mapping(query, view, mapping, meter)
        if rewriting is not None:
            yield rewriting


def _maxmin_from_mapping(
    query: QueryBlock,
    view: ViewDef,
    mapping,
    meter: Optional[BudgetMeter],
) -> Optional[Rewriting]:
    body = view.block
    image = mapping.image_columns
    namer = query_namer(query, body)
    occurrence = make_view_occurrence(view, mapping, namer)

    # The first output per image column keeps the image name (that is
    # make_view_occurrence's contract); later outputs onto the same
    # image received fresh names and owe an equality predicate.
    exported: set[Column] = set()
    collision_atoms: list[Comparison] = []
    for position, item in enumerate(body.select):
        occ_col = occurrence.select_columns[position]
        image_col = mapping.apply(item.expr)
        if image_col == occ_col and image_col not in exported:
            exported.add(image_col)
        else:
            collision_atoms.append(Comparison(image_col, Op.EQ, occ_col))

    # Every image column Q still mentions outside WHERE must survive as
    # a view output.
    used = set(query.group_by)
    for item in query.select:
        used.update(columns_in(item.expr))
    for atom in query.having:
        used.update(columns_in(atom.left))
        used.update(columns_in(atom.right))
    if any(col in image and col not in exported for col in used):
        return None

    mapped_conds = mapping.apply_atoms(body.where)
    allowed = (query.cols() - image) | exported
    residual = find_residual(query.where, mapped_conds, allowed)
    if residual is None:
        return None

    first_image_index = min(mapping.image_table_indexes)
    from_: list[Relation] = []
    for index, relation in enumerate(query.from_):
        if index == first_image_index:
            from_.append(occurrence.relation)
        elif index not in mapping.image_table_indexes:
            from_.append(relation)
    where = tuple(residual) + tuple(collision_atoms)
    try:
        candidate = query.with_(from_=tuple(from_), where=where).validate()
    except NormalizationError:
        return None

    # The Cohen–Nutt check: unfold the view occurrence back into base
    # tables and require two-way set equivalence with Q. MIN and MAX are
    # duplicate-insensitive, so set equivalence of the distinguished
    # tuples is exactly aggregate equivalence.
    unfolded = _unfold_occurrence(candidate, view, occurrence.relation)
    pins = _distinguished_pairs(query, unfolded)
    if not _hom_exists(query, unfolded, pins, meter):
        return None
    if not _hom_exists(
        unfolded, query, [(u, q) for q, u in pins], meter
    ):
        return None
    return Rewriting(
        query=candidate,
        view_names=(view.name,),
        strategy=MAXMIN,
        mapping_desc=mapping.describe(),
        notes=(
            "set-equivalent unfolding, duplicate-insensitive "
            "aggregates (Cohen–Nutt)",
        ),
    )


def _unfold_occurrence(
    block: QueryBlock, view: ViewDef, occurrence: Relation
) -> QueryBlock:
    """Replace one view occurrence by a fresh copy of the view's body.

    A catalog-free sibling of :func:`repro.blocks.unfold.unfold_views`
    for the verification step — the view need not be registered
    anywhere, and exactly one known occurrence is expanded.
    """
    namer = FreshNames(
        [c.name for c in block.cols()]
        + [c.name for c in view.block.cols()]
    )
    theta = {
        col: namer.column(col.name)
        for relation in view.block.from_
        for col in relation.columns
    }
    body_from = tuple(
        Relation(
            relation.name,
            tuple(theta[c] for c in relation.columns),
            relation.base_names,
        )
        for relation in view.block.from_
    )
    body_where = tuple(a.substitute(theta) for a in view.block.where)
    sigma = {
        occ_col: theta[item.expr]
        for occ_col, item in zip(occurrence.columns, view.block.select)
    }
    from_: list[Relation] = []
    for relation in block.from_:
        if relation is occurrence or (
            relation.name == occurrence.name
            and relation.columns == occurrence.columns
        ):
            from_.extend(body_from)
        else:
            from_.append(relation)
    return block.substitute(sigma).with_(
        from_=tuple(from_),
        where=tuple(
            a.substitute(sigma) for a in block.where
        ) + body_where,
    )


def _distinguished_pairs(
    left: QueryBlock, right: QueryBlock
) -> list[tuple[Column, Column]]:
    """Positionally paired distinguished columns of two same-shape blocks.

    ``right`` is built from ``left`` by column substitution, so the
    column lists of corresponding SELECT/GROUP BY/HAVING positions line
    up exactly.
    """
    pairs: list[tuple[Column, Column]] = []
    for l_item, r_item in zip(left.select, right.select):
        pairs.extend(
            zip(columns_in(l_item.expr), columns_in(r_item.expr))
        )
    pairs.extend(zip(left.group_by, right.group_by))
    for l_atom, r_atom in zip(left.having, right.having):
        pairs.extend(zip(columns_in(l_atom.left), columns_in(r_atom.left)))
        pairs.extend(
            zip(columns_in(l_atom.right), columns_in(r_atom.right))
        )
    return pairs


def _hom_exists(
    source: QueryBlock,
    target: QueryBlock,
    pins: list[tuple[Column, Column]],
    meter: Optional[BudgetMeter],
) -> bool:
    """Is there a homomorphism from ``source``'s core into ``target``'s?

    The classic containment test, modulo the constraint closure: an
    occurrence assignment under which every source atom is entailed by
    the target's closure and every pinned source column lands on (a
    closure-equal of) its paired target column. Existence proves
    answers(target) ⊆ answers(source) on the distinguished columns,
    under set semantics.
    """
    closure_t = closure_of(target.where)
    for assignment in enumerate_mappings(
        source, target, many_to_one=True, meter=meter
    ):
        if not all(
            closure_t.entails(atom)
            for atom in assignment.apply_atoms(source.where)
        ):
            continue
        if all(
            closure_t.equal(assignment.apply(s), t) for s, t in pins
        ):
            return True
    return False

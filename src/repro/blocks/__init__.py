"""Normalized query blocks: the paper's Section 2 representation."""

from .exprs import (
    AggFunc,
    Aggregate,
    Arith,
    ArithOp,
    Expr,
    aggregates_in,
    columns_in,
    div,
    has_aggregate,
    is_row_expr,
    mul,
    substitute_expr,
)
from .naming import FreshNames, base_of
from .normalize import as_block, normalize_select, parse_query, parse_view
from .query_block import QueryBlock, Relation, SelectItem, ViewDef
from .terms import Column, Comparison, Constant, Op, Term
from .to_sql import block_to_ast, block_to_sql, view_to_sql
from .unfold import unfold_once, unfold_views

__all__ = [
    "AggFunc",
    "Aggregate",
    "Arith",
    "ArithOp",
    "Expr",
    "aggregates_in",
    "columns_in",
    "div",
    "has_aggregate",
    "is_row_expr",
    "mul",
    "substitute_expr",
    "FreshNames",
    "base_of",
    "as_block",
    "normalize_select",
    "parse_query",
    "parse_view",
    "QueryBlock",
    "Relation",
    "SelectItem",
    "ViewDef",
    "Column",
    "Comparison",
    "Constant",
    "Op",
    "Term",
    "block_to_ast",
    "unfold_once",
    "unfold_views",
    "block_to_sql",
    "view_to_sql",
]

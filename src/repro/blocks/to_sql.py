"""Render a QueryBlock back to SQL text, in any registered dialect.

The unique column names of the normalized form are translated back to
``alias.base_column`` references; each FROM occurrence gets an alias when
its relation name is not already unique in the FROM clause.

``dialect`` accepts a :class:`~repro.dialects.Dialect` instance or a
registry name (``"ansi"``, ``"sqlite"``, ``"duckdb"``, ``"postgres"``):

>>> block_to_sql(block, dialect="postgres")   # doctest: +SKIP
"""

from __future__ import annotations

from collections import Counter

from ..errors import NormalizationError
from ..sqlparser.ast import (
    BinOp,
    ColumnRef,
    FuncCall,
    Literal,
    SelectItemSyntax,
    SelectStmt,
    SqlComparison,
    SqlExpr,
    TableRef,
)
from ..dialects import ANSI, DialectLike, get_dialect
from ..sqlparser.printer import print_create_view, print_select
from .exprs import Aggregate, Arith, Expr
from .query_block import QueryBlock, ViewDef
from .terms import Column, Comparison, Constant


def block_to_ast(block: QueryBlock) -> SelectStmt:
    """Convert a QueryBlock to a printable SQL syntax tree."""
    name_counts = Counter(rel.name for rel in block.from_)
    qualifiers: dict[int, str] = {}
    tables: list[TableRef] = []
    seen: Counter = Counter()
    for i, rel in enumerate(block.from_):
        if name_counts[rel.name] == 1:
            qualifiers[i] = rel.name
            tables.append(TableRef(rel.name))
        else:
            seen[rel.name] += 1
            alias = f"{rel.name.lower()}_{seen[rel.name]}"
            qualifiers[i] = alias
            tables.append(TableRef(rel.name, alias))

    col_to_ref: dict[Column, ColumnRef] = {}
    for i, rel in enumerate(block.from_):
        for col, base in zip(rel.columns, rel.base_names):
            col_to_ref[col] = ColumnRef(base, qualifier=qualifiers[i])

    def expr_to_ast(expr: Expr) -> SqlExpr:
        if isinstance(expr, Column):
            try:
                return col_to_ref[expr]
            except KeyError:
                raise NormalizationError(
                    f"column {expr} not bound to a FROM occurrence"
                ) from None
        if isinstance(expr, Constant):
            return Literal(expr.value)
        if isinstance(expr, Arith):
            return BinOp(
                expr.op.value, expr_to_ast(expr.left), expr_to_ast(expr.right)
            )
        if isinstance(expr, Aggregate):
            return FuncCall(expr.func.value, expr_to_ast(expr.arg))
        raise NormalizationError(f"cannot render expression {expr!r}")

    def atom_to_ast(atom: Comparison) -> SqlComparison:
        return SqlComparison(
            expr_to_ast(atom.left), atom.op.value, expr_to_ast(atom.right)
        )

    items = tuple(
        SelectItemSyntax(expr_to_ast(item.expr), item.alias)
        for item in block.select
    )
    return SelectStmt(
        items=items,
        from_tables=tuple(tables),
        where=tuple(atom_to_ast(a) for a in block.where),
        group_by=tuple(
            col_to_ref[c]
            if c in col_to_ref
            else ColumnRef(c.name)
            for c in block.group_by
        ),
        having=tuple(atom_to_ast(a) for a in block.having),
        distinct=block.distinct,
    )


def block_to_sql(block: QueryBlock, dialect: DialectLike = ANSI) -> str:
    """Render a QueryBlock as SQL text in the given dialect (or name)."""
    return print_select(block_to_ast(block), dialect=get_dialect(dialect))


def view_to_sql(view: ViewDef, dialect: DialectLike = ANSI) -> str:
    """Render a ViewDef as ``CREATE VIEW ... AS SELECT ...`` text."""
    from ..sqlparser.ast import CreateViewStmt

    stmt = CreateViewStmt(
        view.name, tuple(view.output_names), block_to_ast(view.block)
    )
    return print_create_view(stmt, dialect=get_dialect(dialect))

"""Convert a parsed SELECT statement into a normalized QueryBlock.

Implements the paper's Section 2 naming convention: every column of every
FROM-clause occurrence receives a globally unique name, and all references
in SELECT / WHERE / GROUP BY / HAVING are resolved to those unique columns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from ..errors import NormalizationError, SchemaError, UnsupportedSQLError

if TYPE_CHECKING:  # avoid a circular import; Catalog is duck-typed here
    from ..catalog.schema import Catalog
from ..sqlparser.ast import (
    BinOp,
    ColumnRef,
    CreateViewStmt,
    FuncCall,
    Literal,
    SelectStmt,
    SqlExpr,
    Star,
)
from ..sqlparser.parser import parse_select, parse_statement
from .exprs import AggFunc, Aggregate, Arith, ArithOp, Expr
from .naming import FreshNames
from .query_block import QueryBlock, Relation, SelectItem, ViewDef
from .terms import Column, Comparison, Constant, Op


class _Scope:
    """Column resolution context for one SELECT statement."""

    def __init__(self, stmt: SelectStmt, catalog: Catalog):
        self.relations: list[Relation] = []
        self._by_qualifier: dict[str, Relation] = {}
        namer = FreshNames()
        for ref in stmt.from_tables:
            if not hasattr(ref, "name"):
                raise UnsupportedSQLError(
                    "FROM-clause subqueries need parse_nested_query "
                    "(repro.blocks.nested), not parse_query"
                )
            base_names = catalog.columns_of(ref.name)
            relation = Relation(
                name=ref.name,
                columns=namer.columns(base_names),
                base_names=tuple(base_names),
            )
            self.relations.append(relation)
            qualifier = ref.alias or ref.name
            if qualifier in self._by_qualifier:
                raise NormalizationError(
                    f"FROM clause uses the name {qualifier!r} twice; give "
                    f"each occurrence a distinct alias"
                )
            self._by_qualifier[qualifier] = relation

    def resolve(self, ref: ColumnRef) -> Column:
        if ref.qualifier is not None:
            relation = self._by_qualifier.get(ref.qualifier)
            if relation is None:
                raise SchemaError(
                    f"unknown table or alias {ref.qualifier!r} in reference "
                    f"{ref}"
                )
            if ref.name not in relation.base_names:
                raise SchemaError(
                    f"table {relation.name} has no column {ref.name!r}"
                )
            return relation.column_for(ref.name)

        owners = [
            rel for rel in self.relations if ref.name in rel.base_names
        ]
        if not owners:
            raise SchemaError(f"unknown column {ref.name!r}")
        if len(owners) > 1:
            raise NormalizationError(
                f"ambiguous column {ref.name!r}: qualify it with a table "
                f"name or alias"
            )
        return owners[0].column_for(ref.name)


def _normalize_expr(expr: SqlExpr, scope: _Scope) -> Expr:
    if isinstance(expr, ColumnRef):
        return scope.resolve(expr)
    if isinstance(expr, Literal):
        return Constant(expr.value)
    if isinstance(expr, Star):
        # COUNT(*) counts rows; with no NULLs in the data model it equals
        # COUNT(c) for any column, so normalize to the first FROM column.
        return scope.relations[0].columns[0]
    if isinstance(expr, FuncCall):
        func = AggFunc(expr.name)
        return Aggregate(func, _normalize_expr(expr.arg, scope))
    if isinstance(expr, BinOp):
        return Arith(
            ArithOp(expr.op),
            _normalize_expr(expr.left, scope),
            _normalize_expr(expr.right, scope),
        )
    raise NormalizationError(f"cannot normalize expression {expr!r}")


def _normalize_where_atom(atom, scope: _Scope) -> Comparison:
    left = _normalize_expr(atom.left, scope)
    right = _normalize_expr(atom.right, scope)
    for side in (left, right):
        if not isinstance(side, (Column, Constant)):
            raise UnsupportedSQLError(
                "WHERE predicates must compare columns and constants "
                f"(paper Section 2); got {side}"
            )
    return Comparison(left, Op(atom.op), right)


def _normalize_having_atom(atom, scope: _Scope) -> Comparison:
    left = _normalize_expr(atom.left, scope)
    right = _normalize_expr(atom.right, scope)
    return Comparison(left, Op(atom.op), right)


def normalize_select(stmt: SelectStmt, catalog: Catalog) -> QueryBlock:
    """Resolve names and produce a validated :class:`QueryBlock`."""
    scope = _Scope(stmt, catalog)
    select = tuple(
        SelectItem(_normalize_expr(item.expr, scope), item.alias)
        for item in stmt.items
    )
    where = tuple(_normalize_where_atom(a, scope) for a in stmt.where)
    group_by = tuple(scope.resolve(ref) for ref in stmt.group_by)
    having = tuple(_normalize_having_atom(a, scope) for a in stmt.having)
    block = QueryBlock(
        select=select,
        from_=tuple(scope.relations),
        where=where,
        group_by=group_by,
        having=having,
        distinct=stmt.distinct,
    )
    return block.validate()


def parse_query(sql: str, catalog: Catalog) -> QueryBlock:
    """Parse SQL text and normalize it against ``catalog``."""
    return normalize_select(parse_select(sql), catalog)


def parse_view(sql: str, catalog: Catalog, name: Optional[str] = None) -> ViewDef:
    """Parse a view definition.

    Accepts either ``CREATE VIEW name [(cols)] AS SELECT ...`` or a bare
    SELECT plus an explicit ``name`` argument.
    """
    stmt = parse_statement(sql)
    if isinstance(stmt, CreateViewStmt):
        block = normalize_select(stmt.select, catalog)
        view_name = name or stmt.name
        output_names = stmt.columns or block.output_names()
        return ViewDef(view_name, block, tuple(output_names))
    if name is None:
        raise NormalizationError(
            "a bare SELECT view definition needs an explicit name"
        )
    block = normalize_select(stmt, catalog)
    return ViewDef(name, block)


StatementLike = Union[str, SelectStmt, QueryBlock]


def as_block(query: StatementLike, catalog: Catalog) -> QueryBlock:
    """Coerce SQL text, a parsed statement or a block to a QueryBlock."""
    if isinstance(query, QueryBlock):
        return query
    if isinstance(query, SelectStmt):
        return normalize_select(query, catalog)
    return parse_query(query, catalog)
